"""Trace sessions: wiring a Tracer into a live simulation.

:class:`TraceSession` owns the sinks, the auditor, and the install/
uninstall of trace hooks across the component layers:

* ``engine`` — the :class:`~repro.engine.simulator.Simulator` carries
  the session's tracer in its ``trace`` slot (the discovery point for
  components built after install) and contributes the final ``end``
  record (clock + executed-event count) at close;
* ``network`` — every HCA (inject/rx/CNP) and every output port of
  every switch and HCA (tx with credit balance);
* ``core`` — every :class:`~repro.core.switch_cc.SwitchCC` (FECN
  marks) and :class:`~repro.core.hca_cc.HcaCC` (BECN, CCTI changes,
  recovery-timer fires).

:class:`TraceSpec` is the small picklable description of a tracing
request, used to carry trace settings into pool workers
(:class:`repro.experiments.runner.TracedRun`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional

from repro.trace.auditor import TraceAuditor
from repro.trace.records import TraceRecord
from repro.trace.digest import DigestSink
from repro.trace.sinks import JsonlSink, RingBufferSink
from repro.trace.tracer import Tracer


@dataclass(frozen=True)
class TraceSpec:
    """A picklable tracing request.

    ``jsonl_dir`` — write each run's JSONL trace into this directory
    (None keeps the trace digest-only). ``ring`` — keep the last N
    records in memory (0 disables). ``audit`` — run the online
    :class:`TraceAuditor`. ``strict`` — raise
    :class:`~repro.trace.auditor.TraceViolation` at the first broken
    invariant instead of recording it.
    """

    jsonl_dir: Optional[str] = None
    ring: int = 0
    audit: bool = True
    strict: bool = False


class TraceSession:
    """One run's tracing state: sinks + auditor + installed hooks."""

    def __init__(
        self,
        *,
        jsonl_path: Optional[str] = None,
        ring: int = 0,
        digest: bool = True,
        audit: bool = True,
        ccti_limit: int = 127,
        strict: bool = False,
        min_retx_gap_ns: Optional[float] = None,
    ) -> None:
        self._digest_sink = DigestSink() if digest else None
        self._jsonl = JsonlSink(jsonl_path) if jsonl_path else None
        self._ring = RingBufferSink(ring) if ring else None
        # min_retx_gap_ns (the run's TransportConfig.min_retx_gap_ns)
        # switches the auditor into transport mode: strict conservation
        # plus the PSN/retx-timing invariants. Derived per run from the
        # config, not part of the picklable TraceSpec.
        self.auditor = (
            TraceAuditor(
                ccti_limit=ccti_limit, strict=strict,
                min_retx_gap_ns=min_retx_gap_ns,
            )
            if audit
            else None
        )
        sinks = [s for s in (self._digest_sink, self._jsonl, self._ring) if s is not None]
        self.tracer = Tracer(sinks, auditor=self.auditor)
        # Installed components (engine/network/core layers); Any avoids
        # a trace -> network import cycle.
        self._sim: Optional[Any] = None
        self._network: Optional[Any] = None
        self._manager: Optional[Any] = None
        self._closed: bool = False

    # -- wiring --------------------------------------------------------
    def install(
        self, sim: Any, network: Any = None, manager: Any = None
    ) -> "TraceSession":
        """Attach the tracer to every instrumented component."""
        tracer = self.tracer
        self._sim = sim
        sim.trace = tracer
        if network is not None:
            self._network = network
            for hca in network.hcas:
                hca.trace = tracer
                obuf = hca.obuf
                obuf.trace = tracer
                obuf.trace_kind = "h"
                obuf.trace_node = hca.node_id
            for sw in network.switches:
                for out in sw.output_ports:
                    out.trace = tracer
                    out.trace_kind = "s"
                    out.trace_node = sw.node_id
        if manager is not None:
            self._manager = manager
            manager.attach_trace(tracer)
        return self

    def uninstall(self) -> None:
        """Detach every hook, restoring the null fast path."""
        if self._sim is not None:
            self._sim.trace = None
        if self._network is not None:
            for hca in self._network.hcas:
                hca.trace = None
                hca.obuf.trace = None
            for sw in self._network.switches:
                for out in sw.output_ports:
                    out.trace = None
        if self._manager is not None:
            self._manager.attach_trace(None)

    def close(self) -> "TraceSession":
        """Seal the trace: emit the ``end`` record and close sinks."""
        if not self._closed:
            self._closed = True
            if self._sim is not None:
                self.tracer.end(self._sim.now, self._sim.events_executed)
            self.uninstall()
            self.tracer.close()
        return self

    # -- results -------------------------------------------------------
    @property
    def digest(self) -> Optional[str]:
        """The run's trace digest (stable across identical runs)."""
        return self._digest_sink.hexdigest() if self._digest_sink else None

    @property
    def violations(self) -> List[str]:
        """Stored auditor violations (empty when clean or unaudited)."""
        return self.auditor.violations if self.auditor else []

    @property
    def violation_count(self) -> int:
        return self.auditor.violation_count if self.auditor else 0

    @property
    def records(self) -> List[TraceRecord]:
        """Ring-buffered records (empty when the ring is disabled)."""
        return self._ring.records if self._ring else []

    @property
    def jsonl_path(self) -> Optional[str]:
        return self._jsonl.path if self._jsonl else None

    @property
    def records_emitted(self) -> int:
        return self.tracer.records_emitted
