"""Trace sinks: where emitted records go.

Every sink implements ``write(rec)`` and ``close()``. The digest sink
lives in :mod:`repro.trace.digest`; this module holds the storage
sinks:

* :class:`RingBufferSink` — the last N records in memory, for
  interactive debugging and tests that inspect recent events;
* :class:`JsonlSink` — one JSON array per line, the replayable on-disk
  form (``digest_of_jsonl`` recomputes the run digest from it).
"""

from __future__ import annotations

import json
from collections import deque
from typing import Deque, List, Optional, Protocol, TextIO

from repro.trace.records import TraceRecord


class TraceSink(Protocol):
    """The structural protocol every sink implements.

    The :class:`~repro.trace.tracer.Tracer` only ever calls these two
    methods; any object providing them (including test doubles) is a
    valid sink.
    """

    def write(self, rec: TraceRecord) -> None:
        """Consume one record."""

    def close(self) -> None:
        """Release resources; must be idempotent."""


class RingBufferSink:
    """Keep the most recent ``maxlen`` records in memory."""

    __slots__ = ("_buf",)

    def __init__(self, maxlen: int = 10_000) -> None:
        if maxlen <= 0:
            raise ValueError("ring buffer size must be positive")
        self._buf: Deque[TraceRecord] = deque(maxlen=maxlen)

    def write(self, rec: TraceRecord) -> None:
        self._buf.append(rec)

    def close(self) -> None:
        """Nothing to release; the buffer stays readable after close."""

    @property
    def records(self) -> List[TraceRecord]:
        """The buffered records, oldest first."""
        return list(self._buf)

    def __len__(self) -> int:
        return len(self._buf)


class JsonlSink:
    """Stream records to a JSONL file (one JSON array per record)."""

    __slots__ = ("path", "_fh", "records_written")

    def __init__(self, path: str) -> None:
        self.path = path
        self._fh: Optional[TextIO] = open(path, "w", buffering=1 << 16)
        self.records_written = 0

    def write(self, rec: TraceRecord) -> None:
        if self._fh is None:
            raise ValueError("sink is closed")
        self._fh.write(json.dumps(rec, separators=(",", ":")))
        self._fh.write("\n")
        self.records_written += 1

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None
