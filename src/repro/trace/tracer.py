"""The Tracer: typed emission hooks fanning out to sinks + auditor.

Components hold a ``trace`` attribute that is ``None`` when tracing is
off — the hot-path cost of disabled tracing is a single attribute load
and ``is not None`` branch per instrumented event (benchmarked in
``benchmarks/test_bench_trace.py``). When tracing is on, the attribute
is a :class:`Tracer`; each typed hook builds the canonical record
tuple once and hands it to the auditor and every sink.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.trace.auditor import TraceAuditor
from repro.trace.sinks import TraceSink
from repro.trace.records import (
    EV_ACK,
    EV_BECN,
    EV_CCTI,
    EV_CNP,
    EV_DROP,
    EV_END,
    EV_FAULT,
    EV_FECN,
    EV_FLOW_FAILED,
    EV_FLOWSUM,
    EV_INJECT,
    EV_RATE,
    EV_RETX,
    EV_RX,
    EV_TIMER,
    EV_TX,
    TraceRecord,
)


class Tracer:
    """Builds canonical records and dispatches them."""

    __slots__ = ("sinks", "auditor", "records_emitted")

    def __init__(
        self,
        sinks: Sequence[TraceSink] = (),
        *,
        auditor: Optional[TraceAuditor] = None,
    ) -> None:
        self.sinks: List[TraceSink] = list(sinks)
        self.auditor = auditor
        self.records_emitted = 0

    # -- dispatch ------------------------------------------------------
    def emit(self, rec: TraceRecord) -> None:
        """Route one already-built record to the auditor and sinks."""
        self.records_emitted += 1
        auditor = self.auditor
        if auditor is not None:
            auditor.observe(rec)
        for sink in self.sinks:
            sink.write(rec)

    # -- typed hooks (one per event schema) ----------------------------
    def inject(self, t: float, node: int, dst: int, vl: int, payload: int) -> None:
        self.emit((EV_INJECT, t, node, dst, vl, payload))

    def tx(
        self,
        t: float,
        kind: str,
        node: int,
        port: int,
        vl: int,
        src: int,
        dst: int,
        wire: int,
        fecn: int,
        credit: float,
    ) -> None:
        self.emit((EV_TX, t, kind, node, port, vl, src, dst, wire, fecn, credit))

    def rx(
        self,
        t: float,
        node: int,
        src: int,
        dst: int,
        vl: int,
        payload: int,
        fecn: int,
        becn: int,
        ctrl: int,
    ) -> None:
        self.emit((EV_RX, t, node, src, dst, vl, payload, fecn, becn, ctrl))

    def fecn_mark(
        self, t: float, switch: int, port: int, vl: int, src: int, dst: int, queued: int
    ) -> None:
        self.emit((EV_FECN, t, switch, port, vl, src, dst, queued))

    def cnp(self, t: float, node: int, dst: int) -> None:
        self.emit((EV_CNP, t, node, dst))

    def becn(self, t: float, node: int, src: int, dst: int, sl: int) -> None:
        self.emit((EV_BECN, t, node, src, dst, sl))

    def ccti_change(
        self, t: float, node: int, ksrc: int, kdst: int, old: int, new: int
    ) -> None:
        self.emit((EV_CCTI, t, node, ksrc, kdst, old, new))

    def rate_change(
        self, t: float, node: int, ksrc: int, kdst: int, old: float, new: float
    ) -> None:
        self.emit((EV_RATE, t, node, ksrc, kdst, old, new))

    def timer_fire(self, t: float, node: int, decremented: int) -> None:
        self.emit((EV_TIMER, t, node, decremented))

    def fault(
        self, t: float, action: str, kind: str, node: int, port: int, value: float
    ) -> None:
        self.emit((EV_FAULT, t, action, kind, node, port, value))

    def drop(
        self,
        t: float,
        kind: str,
        node: int,
        port: int,
        vl: int,
        src: int,
        dst: int,
        payload: int,
        ctrl: int,
        reason: str,
    ) -> None:
        self.emit((EV_DROP, t, kind, node, port, vl, src, dst, payload, ctrl, reason))

    def retx(
        self, t: float, node: int, dst: int, psn: int, attempt: int,
        payload: int, due: float,
    ) -> None:
        self.emit((EV_RETX, t, node, dst, psn, attempt, payload, due))

    def ack(self, t: float, node: int, src: int, psn: int) -> None:
        self.emit((EV_ACK, t, node, src, psn))

    def flow_failed(
        self, t: float, node: int, dst: int, acked: int, pending: int,
        timeouts: int,
    ) -> None:
        self.emit((EV_FLOW_FAILED, t, node, dst, acked, pending, timeouts))

    def flow_summary(
        self, t: float, node: int, dst: int, state: str, acked: int,
        next_psn: int, pending: int, retx: int, timeouts: int,
    ) -> None:
        self.emit(
            (EV_FLOWSUM, t, node, dst, state, acked, next_psn, pending, retx,
             timeouts)
        )

    def end(self, t: float, events: int) -> None:
        self.emit((EV_END, t, events))

    def close(self) -> None:
        """Close every sink (idempotent)."""
        for sink in self.sinks:
            sink.close()
