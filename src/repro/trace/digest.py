"""Streaming trace digests.

The digest of a trace is the SHA-256 of its canonical record lines
(each line terminated by ``\\n``), truncated to 16 hex characters —
long enough that an accidental collision across a test suite's worth
of runs is implausible, short enough to read in a manifest diff.

Two runs have equal digests iff they emitted the identical record
stream, making the digest the strongest practical equality check for
"same seed, same behavior" regressions: end metrics can agree by
accident; half a million interleaved packet events cannot.
"""

from __future__ import annotations

import hashlib
import json
from typing import Iterable

from repro.trace.records import TraceRecord

DIGEST_HEX_CHARS = 16


class DigestSink:
    """Incrementally hash the canonical record stream.

    Lines are buffered and folded into the hash in large chunks: the
    digest is a property of the *byte stream*, and SHA-256 is invariant
    under update() chunking, so batching changes cost, never the value.
    A traced quick cell emits ~1M records; batching replaces two hash
    updates and an encode per record with list appends plus one
    join+encode+update per few thousand records.
    """

    __slots__ = ("_hash", "_buf", "records_hashed")

    #: Buffered line fragments (records + newlines) between hash folds.
    _FLUSH_AT = 8192

    def __init__(self) -> None:
        self._hash = hashlib.sha256()
        self._buf: list = []
        self.records_hashed = 0

    def write(self, rec: TraceRecord) -> None:
        """Fold one record into the digest (buffered)."""
        buf = self._buf
        # repr() IS canonical_line(); inlined for the per-record path.
        buf.append(repr(rec))
        buf.append("\n")
        self.records_hashed += 1
        if len(buf) >= self._FLUSH_AT:
            self._hash.update("".join(buf).encode())
            buf.clear()

    def _flush(self) -> None:
        if self._buf:
            self._hash.update("".join(self._buf).encode())
            self._buf.clear()

    def close(self) -> None:
        """Sinks share a close() protocol; fold any buffered tail."""
        self._flush()

    def hexdigest(self) -> str:
        """Digest of everything written so far (does not finalize)."""
        self._flush()
        return self._hash.hexdigest()[:DIGEST_HEX_CHARS]


def digest_of_records(records: Iterable[TraceRecord]) -> str:
    """Digest an in-memory record stream (e.g. a ring buffer's)."""
    sink = DigestSink()
    for rec in records:
        sink.write(rec)
    return sink.hexdigest()


def digest_of_jsonl(path: str) -> str:
    """Recompute a run's digest from its JSONL trace file.

    The JSONL array form round-trips losslessly to the canonical tuple
    form (ints stay ints, floats reparse to the identical value), so
    this reproduces exactly the digest the original run reported —
    letting a saved trace be verified independently of the simulator.
    """
    sink = DigestSink()
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            sink.write(tuple(json.loads(line)))
    return sink.hexdigest()
