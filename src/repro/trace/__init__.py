"""repro.trace — deterministic tracing, online audit, trace digests.

The paper's results hinge on closed-loop FECN/BECN dynamics that are
easy to break silently while refactoring the hot path; end metrics can
agree by accident, event streams cannot. This package provides:

* opt-in structured trace hooks across the engine/network/core layers
  (:mod:`repro.trace.tracer`, :mod:`repro.trace.records`) — packet
  injection/tx/rx, FECN marks, CNP/BECN, CCTI changes, recovery-timer
  fires — emitted to a JSONL file, an in-memory ring buffer, or a
  streaming digest (:mod:`repro.trace.sinks`,
  :mod:`repro.trace.digest`);
* a :class:`~repro.trace.auditor.TraceAuditor` checking invariants
  online: event-time monotonicity, credit non-negativity, per-flow
  byte conservation, CCTI bounds, notification-flag consistency;
* a stable per-run trace **digest** — the behavioral fingerprint used
  by the golden regression suite (``tests/golden/``) and recorded per
  cell in the :class:`~repro.parallel.manifest.RunManifest`, so
  ``jobs=1`` and ``jobs=N`` campaigns can be proven event-equivalent.

Tracing disabled costs one ``is not None`` branch per instrumented
event (see ``benchmarks/test_bench_trace.py``). Enable it per run via
``run_experiment(cfg, trace=TraceSpec(...))`` or per campaign via
``run_fn=TracedRun(...)`` / the CLI's ``--trace``/``--trace-dir``.
"""

from repro.trace.auditor import TraceAuditor, TraceViolation
from repro.trace.digest import DigestSink, digest_of_jsonl, digest_of_records
from repro.trace.records import (
    ALL_EVENTS,
    EV_BECN,
    EV_CCTI,
    EV_CNP,
    EV_END,
    EV_FECN,
    EV_INJECT,
    EV_RX,
    EV_TIMER,
    EV_TX,
    canonical_line,
)
from repro.trace.session import TraceSession, TraceSpec
from repro.trace.sinks import JsonlSink, RingBufferSink
from repro.trace.tracer import Tracer

__all__ = [
    "ALL_EVENTS",
    "DigestSink",
    "EV_BECN",
    "EV_CCTI",
    "EV_CNP",
    "EV_END",
    "EV_FECN",
    "EV_INJECT",
    "EV_RX",
    "EV_TIMER",
    "EV_TX",
    "JsonlSink",
    "RingBufferSink",
    "TraceAuditor",
    "TraceSession",
    "TraceSpec",
    "TraceViolation",
    "Tracer",
    "canonical_line",
    "digest_of_jsonl",
    "digest_of_records",
]
