"""Online trace auditing: invariants checked as records are emitted.

The simulator's unit tests assert invariants on *final* state; the
auditor asserts them on *every event* of a live run, so a refactor
that transiently violates flow control or CC bounds is caught at the
moment it happens, with the offending record in hand. Checked
invariants:

* **event-time monotonicity** — records are emitted in non-decreasing
  virtual time (the event loop's fundamental ordering contract);
* **credit non-negativity** — no port ever transmits past its
  link-level credit balance (lossless fabric);
* **byte conservation modulo drops** — no flow delivers more payload
  than its source injected, counting payload lost to injected faults
  (the fabric never fabricates data, even when it loses some);
* **CCTI bounds** — every CCT-index change lands in
  ``[0, CCTI_Limit]`` (also under CNP loss/duplication faults);
* **flag consistency** — BECN rides only control packets (CNPs), CNPs
  always carry BECN, FECN never appears on control packets, and
  packets are only delivered to their addressed destination;
* **no transmission on a dead link** — between ``link_down`` and
  ``link_up`` fault records (and while a switch is paused) the affected
  output port must not begin transmitting.

Violations are recorded (and optionally raised via ``strict=True``);
``summary()`` renders them for failure messages.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.trace.records import (
    EV_BECN,
    EV_CCTI,
    EV_DROP,
    EV_FAULT,
    EV_INJECT,
    EV_RX,
    EV_TX,
    TraceRecord,
    canonical_line,
)

# Keep failure output bounded even if a bug floods the stream.
MAX_STORED_VIOLATIONS = 100


class TraceViolation(RuntimeError):
    """Raised in strict mode when a record breaks an invariant."""


class TraceAuditor:
    """Checks the invariant set over one record stream."""

    __slots__ = (
        "ccti_limit",
        "strict",
        "violations",
        "violation_count",
        "_last_t",
        "_injected",
        "_delivered",
        "_dropped",
        "_down_ports",
        "_paused_switches",
    )

    def __init__(self, *, ccti_limit: int = 127, strict: bool = False) -> None:
        self.ccti_limit = ccti_limit
        self.strict = strict
        self.violations: List[str] = []
        self.violation_count = 0
        self._last_t = 0.0
        # Per-flow payload totals for the conservation check.
        self._injected: Dict[Tuple[int, int], int] = {}
        self._delivered: Dict[Tuple[int, int], int] = {}
        # Payload lost to injected faults, per flow (conservation is
        # checked modulo these drops).
        self._dropped: Dict[Tuple[int, int], int] = {}
        # Links currently down / switches currently paused, learned
        # from fault records.
        self._down_ports: set = set()
        self._paused_switches: set = set()

    @property
    def ok(self) -> bool:
        return self.violation_count == 0

    def _violate(self, msg: str, rec: TraceRecord) -> None:
        self.violation_count += 1
        if len(self.violations) < MAX_STORED_VIOLATIONS:
            self.violations.append(f"{msg}: {canonical_line(rec)}")
        if self.strict:
            raise TraceViolation(f"{msg}: {canonical_line(rec)}")

    def observe(self, rec: TraceRecord) -> None:
        """Check one record against every applicable invariant."""
        t = rec[1]
        if t < self._last_t:
            self._violate(
                f"time went backwards ({t} < {self._last_t})", rec
            )
        else:
            self._last_t = t

        etype = rec[0]
        if etype == EV_TX:
            # (tx, t, kind, node, port, vl, src, dst, wire, fecn, credit)
            if rec[10] < 0:
                self._violate("negative credit after transmit", rec)
            kind, node, port = rec[2], rec[3], rec[4]
            if (kind, node, port) in self._down_ports:
                self._violate("transmission on a downed link", rec)
            if kind == "s" and node in self._paused_switches:
                self._violate("transmission from a paused switch", rec)
        elif etype == EV_RX:
            # (rx, t, node, src, dst, vl, payload, fecn, becn, ctrl)
            node, src, dst = rec[2], rec[3], rec[4]
            payload, fecn, becn, ctrl = rec[6], rec[7], rec[8], rec[9]
            if dst != node:
                self._violate("misdelivery (dst != receiving node)", rec)
            if ctrl and fecn:
                self._violate("control packet carries FECN", rec)
            if ctrl and not becn:
                self._violate("control packet without BECN", rec)
            if becn and not ctrl:
                self._violate("BECN on a data packet", rec)
            if not ctrl:
                flow = (src, dst)
                delivered = self._delivered.get(flow, 0) + payload
                self._delivered[flow] = delivered
                accounted = delivered + self._dropped.get(flow, 0)
                if accounted > self._injected.get(flow, 0):
                    self._violate(
                        f"byte conservation broken for flow {flow} "
                        f"(delivered {delivered} + dropped "
                        f"{self._dropped.get(flow, 0)} > injected "
                        f"{self._injected.get(flow, 0)})",
                        rec,
                    )
        elif etype == EV_INJECT:
            # (inj, t, node, dst, vl, payload)
            flow = (rec[2], rec[3])
            self._injected[flow] = self._injected.get(flow, 0) + rec[5]
        elif etype == EV_CCTI:
            # (ccti, t, node, ksrc, kdst, old, new)
            new = rec[6]
            if not 0 <= new <= self.ccti_limit:
                self._violate(
                    f"CCTI {new} outside [0, {self.ccti_limit}]", rec
                )
        elif etype == EV_BECN:
            # (becn, t, node, src, dst, sl) — the notified node must be
            # the flow's source (BECNs throttle the injector).
            if rec[2] != rec[3]:
                self._violate("BECN applied at a non-source node", rec)
        elif etype == EV_DROP:
            # (drop, t, kind, node, port, vl, src, dst, payload, ctrl, reason)
            src, dst, payload, ctrl = rec[6], rec[7], rec[8], rec[9]
            if not ctrl:
                flow = (src, dst)
                dropped = self._dropped.get(flow, 0) + payload
                self._dropped[flow] = dropped
                accounted = self._delivered.get(flow, 0) + dropped
                if accounted > self._injected.get(flow, 0):
                    self._violate(
                        f"byte conservation broken for flow {flow} "
                        f"(delivered {self._delivered.get(flow, 0)} + "
                        f"dropped {dropped} > injected "
                        f"{self._injected.get(flow, 0)})",
                        rec,
                    )
        elif etype == EV_FAULT:
            # (fault, t, action, kind, node, port, value)
            action, kind, node, port = rec[2], rec[3], rec[4], rec[5]
            if action == "link_down":
                self._down_ports.add((kind, node, port))
            elif action == "link_up":
                self._down_ports.discard((kind, node, port))
            elif action == "switch_pause":
                self._paused_switches.add(node)
            elif action == "switch_resume":
                self._paused_switches.discard(node)

    def summary(self) -> str:
        """Human-readable violation report (empty string when clean)."""
        if self.ok:
            return ""
        lines = [f"{self.violation_count} trace invariant violation(s):"]
        lines += [f"  {v}" for v in self.violations]
        if self.violation_count > len(self.violations):
            lines.append(
                f"  ... and {self.violation_count - len(self.violations)} more"
            )
        return "\n".join(lines)
