"""Online trace auditing: invariants checked as records are emitted.

The simulator's unit tests assert invariants on *final* state; the
auditor asserts them on *every event* of a live run, so a refactor
that transiently violates flow control or CC bounds is caught at the
moment it happens, with the offending record in hand. Checked
invariants:

* **event-time monotonicity** — records are emitted in non-decreasing
  virtual time (the event loop's fundamental ordering contract);
* **credit non-negativity** — no port ever transmits past its
  link-level credit balance (lossless fabric);
* **byte conservation modulo drops** — no flow delivers more payload
  than its source injected, counting payload lost to injected faults
  (the fabric never fabricates data, even when it loses some);
* **CCTI bounds** — every CCT-index change lands in
  ``[0, CCTI_Limit]`` (also under CNP loss/duplication faults);
* **rate bounds** — every rate change of a rate-based mechanism
  (:mod:`repro.cc`) lands in ``(0, 1]`` of link rate;
* **flag consistency** — BECN rides only control packets (CNPs), CNPs
  always carry BECN, FECN never appears on control packets, and
  packets are only delivered to their addressed destination;
* **no transmission on a dead link** — between ``link_down`` and
  ``link_up`` fault records (and while a switch is paused) the affected
  output port must not begin transmitting.

With the reliable transport active (``min_retx_gap_ns`` given), the
invariant set is upgraded:

* **strict byte conservation** — conservation is checked against
  ``injected + retransmitted`` while the run progresses (lost copies
  are re-sent, so drops may transiently exceed injections), and at
  session close every non-FAILED flow's ``flowsum`` record must show
  ``delivered + pending >= injected``: every dropped byte was either
  retransmitted to delivery or explicitly attributed to a FAILED flow
  — nothing is silently lost;
* **ack PSN monotonicity** — cumulative acks of a flow never regress;
* **no retx before timeout** — a retransmission is emitted at or after
  the timeout that queued it, and consecutive timeouts of one flow are
  spaced by at least the minimum (jittered) RTO;
* ``ctrl`` packets without BECN are permitted (acks ride the control
  path), and duplicate/out-of-order receiver discards (``dup``/``ooo``
  drop reasons) are surplus copies, exempt from conservation.

Violations are recorded (and optionally raised via ``strict=True``);
``summary()`` renders them for failure messages.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.trace.records import (
    EV_ACK,
    EV_BECN,
    EV_CCTI,
    EV_CNP,
    EV_DROP,
    EV_END,
    EV_FAULT,
    EV_FECN,
    EV_FLOW_FAILED,
    EV_FLOWSUM,
    EV_INJECT,
    EV_RATE,
    EV_RETX,
    EV_RX,
    EV_TIMER,
    EV_TX,
    TraceRecord,
    canonical_line,
)

# Keep failure output bounded even if a bug floods the stream.
MAX_STORED_VIOLATIONS = 100


class TraceViolation(RuntimeError):
    """Raised in strict mode when a record breaks an invariant."""


class TraceAuditor:
    """Checks the invariant set over one record stream."""

    __slots__ = (
        "ccti_limit",
        "strict",
        "min_retx_gap_ns",
        "violations",
        "violation_count",
        "_last_t",
        "_injected",
        "_delivered",
        "_dropped",
        "_down_ports",
        "_paused_switches",
        "_retransmitted",
        "_last_ack",
        "_last_due",
        "_failed_flows",
    )

    def __init__(
        self,
        *,
        ccti_limit: int = 127,
        strict: bool = False,
        min_retx_gap_ns: Optional[float] = None,
    ) -> None:
        self.ccti_limit = ccti_limit
        self.strict = strict
        # Non-None enables transport mode: the strict-conservation /
        # PSN / retx-timing invariant set. The value is the tightest
        # legal spacing of consecutive RTO fires per flow
        # (TransportConfig.min_retx_gap_ns).
        self.min_retx_gap_ns = min_retx_gap_ns
        self.violations: List[str] = []
        self.violation_count = 0
        self._last_t = 0.0
        # Per-flow payload totals for the conservation check.
        self._injected: Dict[Tuple[int, int], int] = {}
        self._delivered: Dict[Tuple[int, int], int] = {}
        # Payload lost to injected faults, per flow (conservation is
        # checked modulo these drops).
        self._dropped: Dict[Tuple[int, int], int] = {}
        # Links currently down / switches currently paused, learned
        # from fault records.
        self._down_ports: Set[Tuple[str, int, int]] = set()
        self._paused_switches: Set[int] = set()
        # Transport mode: per-flow retransmitted payload, last ack PSN,
        # last RTO-fire time, and flows declared FAILED.
        self._retransmitted: Dict[Tuple[int, int], int] = {}
        self._last_ack: Dict[Tuple[int, int], int] = {}
        self._last_due: Dict[Tuple[int, int], float] = {}
        self._failed_flows: Set[Tuple[int, int]] = set()

    @property
    def ok(self) -> bool:
        return self.violation_count == 0

    def _check_conservation(self, flow: Tuple[int, int], rec: TraceRecord) -> None:
        """Delivered + dropped may not exceed injected (+ retransmitted).

        Retransmissions legitimately put extra copies of injected bytes
        on the wire, so in transport mode the budget includes them; the
        strict "nothing permanently lost" direction is closed by the
        per-flow ``flowsum`` check at session end.
        """
        delivered = self._delivered.get(flow, 0)
        dropped = self._dropped.get(flow, 0)
        budget = self._injected.get(flow, 0) + self._retransmitted.get(flow, 0)
        if delivered + dropped > budget:
            self._violate(
                f"byte conservation broken for flow {flow} "
                f"(delivered {delivered} + dropped {dropped} > "
                f"injected+retransmitted {budget})",
                rec,
            )

    def _violate(self, msg: str, rec: TraceRecord) -> None:
        self.violation_count += 1
        if len(self.violations) < MAX_STORED_VIOLATIONS:
            self.violations.append(f"{msg}: {canonical_line(rec)}")
        if self.strict:
            raise TraceViolation(f"{msg}: {canonical_line(rec)}")

    def observe(self, rec: TraceRecord) -> None:
        """Check one record against every applicable invariant."""
        t = rec[1]
        if t < self._last_t:
            self._violate(
                f"time went backwards ({t} < {self._last_t})", rec
            )
        else:
            self._last_t = t

        etype = rec[0]
        if etype == EV_TX:
            # (tx, t, kind, node, port, vl, src, dst, wire, fecn, credit)
            if rec[10] < 0:
                self._violate("negative credit after transmit", rec)
            kind, node, port = rec[2], rec[3], rec[4]
            if (kind, node, port) in self._down_ports:
                self._violate("transmission on a downed link", rec)
            if kind == "s" and node in self._paused_switches:
                self._violate("transmission from a paused switch", rec)
        elif etype == EV_RX:
            # (rx, t, node, src, dst, vl, payload, fecn, becn, ctrl)
            node, src, dst = rec[2], rec[3], rec[4]
            payload, fecn, becn, ctrl = rec[6], rec[7], rec[8], rec[9]
            if dst != node:
                self._violate("misdelivery (dst != receiving node)", rec)
            if ctrl and fecn:
                self._violate("control packet carries FECN", rec)
            if ctrl and not becn and self.min_retx_gap_ns is None:
                # Transport mode: cumulative acks are BECN-free control.
                self._violate("control packet without BECN", rec)
            if becn and not ctrl:
                self._violate("BECN on a data packet", rec)
            if not ctrl:
                flow = (src, dst)
                delivered = self._delivered.get(flow, 0) + payload
                self._delivered[flow] = delivered
                self._check_conservation(flow, rec)
        elif etype == EV_INJECT:
            # (inj, t, node, dst, vl, payload)
            flow = (rec[2], rec[3])
            self._injected[flow] = self._injected.get(flow, 0) + rec[5]
        elif etype == EV_CCTI:
            # (ccti, t, node, ksrc, kdst, old, new)
            new = rec[6]
            if not 0 <= new <= self.ccti_limit:
                self._violate(
                    f"CCTI {new} outside [0, {self.ccti_limit}]", rec
                )
        elif etype == EV_RATE:
            # (rate, t, node, ksrc, kdst, old, new) — rate-based
            # mechanisms (repro.cc) keep injection-rate fractions in
            # (0, 1]; a rate record outside that range means a clamp
            # was bypassed.
            old, new = rec[5], rec[6]
            if not 0.0 < new <= 1.0:
                self._violate(f"injection rate {new} outside (0, 1]", rec)
            if not 0.0 < old <= 1.0:
                self._violate(f"prior injection rate {old} outside (0, 1]", rec)
        elif etype == EV_BECN:
            # (becn, t, node, src, dst, sl) — the notified node must be
            # the flow's source (BECNs throttle the injector).
            if rec[2] != rec[3]:
                self._violate("BECN applied at a non-source node", rec)
        elif etype == EV_DROP:
            # (drop, t, kind, node, port, vl, src, dst, payload, ctrl, reason)
            src, dst, payload, ctrl, reason = rec[6], rec[7], rec[8], rec[9], rec[10]
            if not ctrl and reason not in ("dup", "ooo"):
                # Receiver dup/ooo discards are surplus copies of bytes
                # already accounted — only genuine losses count.
                flow = (src, dst)
                self._dropped[flow] = self._dropped.get(flow, 0) + payload
                self._check_conservation(flow, rec)
        elif etype == EV_RETX:
            # (retx, t, node, dst, psn, attempt, payload, due)
            flow = (rec[2], rec[3])
            payload, due = rec[6], rec[7]
            self._retransmitted[flow] = (
                self._retransmitted.get(flow, 0) + payload
            )
            if t < due:
                self._violate("retransmission before its timeout fired", rec)
            last_due = self._last_due.get(flow)
            if last_due is not None and due != last_due:
                if due < last_due:
                    self._violate("retransmission deadline went backwards", rec)
                elif (
                    self.min_retx_gap_ns is not None
                    and due - last_due < self.min_retx_gap_ns
                ):
                    self._violate(
                        f"consecutive timeouts of flow {flow} only "
                        f"{due - last_due:.0f} ns apart "
                        f"(min {self.min_retx_gap_ns:.0f})",
                        rec,
                    )
            self._last_due[flow] = due
        elif etype == EV_ACK:
            # (ack, t, node, src, psn) — cumulative ack for flow
            # (src, node); the acked PSN must never regress.
            flow = (rec[3], rec[2])
            psn = rec[4]
            last = self._last_ack.get(flow)
            if last is not None and psn < last:
                self._violate(
                    f"cumulative ack regressed for flow {flow} "
                    f"({psn} < {last})",
                    rec,
                )
            else:
                self._last_ack[flow] = psn
        elif etype == EV_FLOW_FAILED:
            # (flowfail, t, node, dst, acked, pending, timeouts)
            self._failed_flows.add((rec[2], rec[3]))
        elif etype == EV_FLOWSUM:
            # (flowsum, t, node, dst, state, acked, next_psn, pending,
            #  retx, timeouts) — the strict-conservation closing check.
            flow = (rec[2], rec[3])
            state, pending = rec[4], rec[7]
            if state != "failed" and flow not in self._failed_flows:
                injected = self._injected.get(flow, 0)
                delivered = self._delivered.get(flow, 0)
                if delivered + pending < injected:
                    self._violate(
                        f"bytes permanently lost on flow {flow} "
                        f"(delivered {delivered} + pending {pending} "
                        f"< injected {injected}, flow not FAILED)",
                        rec,
                    )
        elif etype == EV_FAULT:
            # (fault, t, action, kind, node, port, value)
            action, kind, node, port = rec[2], rec[3], rec[4], rec[5]
            if action == "link_down":
                self._down_ports.add((kind, node, port))
            elif action == "link_up":
                self._down_ports.discard((kind, node, port))
            elif action == "switch_pause":
                self._paused_switches.add(node)
            elif action == "switch_resume":
                self._paused_switches.discard(node)
        elif etype in (EV_CNP, EV_FECN, EV_TIMER, EV_END):
            # Time monotonicity (checked above) is the only invariant
            # for these; named explicitly so trace-event coverage is
            # exhaustive (simlint TRC001) and the backstop below stays
            # meaningful.
            pass
        else:
            self._violate(f"unknown event type {etype!r}", rec)

    def summary(self) -> str:
        """Human-readable violation report (empty string when clean)."""
        if self.ok:
            return ""
        lines = [f"{self.violation_count} trace invariant violation(s):"]
        lines += [f"  {v}" for v in self.violations]
        if self.violation_count > len(self.violations):
            lines.append(
                f"  ... and {self.violation_count - len(self.violations)} more"
            )
        return "\n".join(lines)
