"""Canonical trace records and their stable encoding.

A trace is a stream of flat tuples, one per observed event, in
execution order. The first element is the event type tag, the second
the virtual time; the remaining fields are scalars (ints, floats,
short strings). Because the simulator is deterministic for a fixed
seed, the encoded stream — and therefore its digest — is a *behavioral
fingerprint* of a run: any change to packet-level dynamics (ordering,
marking, throttling, timer cadence) changes the digest.

Record schemas (all times in virtual ns):

========  ==============================================================
tag       fields after ``(tag, t, ...)``
========  ==============================================================
``inj``   ``node, dst, vl, payload`` — HCA injects a data packet
``tx``    ``kind, node, port, vl, src, dst, wire, fecn, credit`` — a
          port begins transmitting; ``kind`` is ``"h"`` (HCA obuf) or
          ``"s"`` (switch output); ``credit`` is the VL's credit balance
          *after* reserving this packet
``rx``    ``node, src, dst, vl, payload, fecn, becn, ctrl`` — HCA sink
          delivers a packet (flags encoded 0/1)
``fecn``  ``switch, port, vl, src, dst, queued`` — a switch FECN-marks
          a packet; ``queued`` is the Port VL's queued bytes
``cnp``   ``node, dst`` — an HCA returns a congestion notification
``becn``  ``node, src, dst, sl`` — HCA-side CC receives a BECN for flow
          ``(src, dst)``
``ccti``  ``node, ksrc, kdst, old, new`` — a flow's CCT index changed;
          in SL mode the key is encoded ``(-1, sl)``
``rate``  ``node, ksrc, kdst, old, new`` — a rate-based mechanism
          (:mod:`repro.cc`) moved a flow's injection-rate fraction;
          both rates in ``(0, 1]``, key encoded as for ``ccti``. The
          IB mechanism never emits this (its ``ccti`` records carry
          the same information), which keeps default traces
          byte-identical
``timer`` ``node, decremented`` — recovery timer fired, decrementing
          ``decremented`` flow indices
``fault`` ``action, kind, node, port, value`` — a fault-injection
          action fired (:mod:`repro.faults`); ``action`` names the
          transition (``link_down``/``link_up``, ``degrade``/
          ``restore``, ``switch_pause``/``switch_resume``,
          ``timer_freeze``/``timer_thaw``, ``cnp_*``/``cnp_*_end``),
          ``kind`` is ``"h"``/``"s"`` as for ``tx`` (empty when not
          port-addressed), and ``value`` carries the action parameter
          (rate factor, drop probability, delay)
``drop``  ``kind, node, port, vl, src, dst, payload, ctrl, reason`` — a
          packet was lost to an injected fault or discarded by the
          reliable transport; ``reason`` is ``"link"`` (lost on a
          downed link), ``"cnp"`` (control-packet loss), or — with
          :mod:`repro.transport` active — ``"dup"``/``"ooo"``
          (duplicate / out-of-order copy discarded at the receiver;
          surplus copies, exempt from conservation accounting)
``retx``  ``node, dst, psn, attempt, payload, due`` — the transport
          retransmits PSN ``psn`` of flow ``(node, dst)``; ``attempt``
          counts retransmissions of this packet, ``due`` is the virtual
          time of the timeout that queued it
``ack``   ``node, src, psn`` — the receiver ``node`` returns a
          cumulative ack for flow ``(src, node)`` covering PSNs
          ``<= psn``
``flowfail``  ``node, dst, acked, pending, timeouts`` — flow
          ``(node, dst)`` exhausted its retry budget and entered the
          FAILED state with ``pending`` unacked payload bytes
``flowsum``  ``node, dst, state, acked, next_psn, pending, retx,
          timeouts`` — per-flow transport summary emitted once at
          session close; the auditor's strict conservation closes over
          these (delivered + pending must cover injected for every
          non-failed flow)
``end``   ``events`` — emitted once at session close with the
          simulator's executed-event count
========  ==============================================================

The canonical encoding of a record is ``repr()`` of its tuple — stable
across runs and Python versions (ints render exactly; floats use the
shortest-roundtrip repr). The JSONL form is the JSON array of the same
fields, which round-trips losslessly back to the canonical form (see
:func:`repro.trace.digest.digest_of_jsonl`).
"""

from __future__ import annotations

from typing import Tuple

TraceRecord = Tuple

# Event type tags (index 0 of every record).
EV_INJECT = "inj"
EV_TX = "tx"
EV_RX = "rx"
EV_FECN = "fecn"
EV_CNP = "cnp"
EV_BECN = "becn"
EV_CCTI = "ccti"
EV_RATE = "rate"
EV_TIMER = "timer"
EV_FAULT = "fault"
EV_DROP = "drop"
EV_RETX = "retx"
EV_ACK = "ack"
EV_FLOW_FAILED = "flowfail"
EV_FLOWSUM = "flowsum"
EV_END = "end"

ALL_EVENTS = (
    EV_INJECT,
    EV_TX,
    EV_RX,
    EV_FECN,
    EV_CNP,
    EV_BECN,
    EV_CCTI,
    EV_RATE,
    EV_TIMER,
    EV_FAULT,
    EV_DROP,
    EV_RETX,
    EV_ACK,
    EV_FLOW_FAILED,
    EV_FLOWSUM,
    EV_END,
)


def canonical_line(rec: TraceRecord) -> str:
    """The canonical single-line encoding of one record."""
    return repr(rec)
