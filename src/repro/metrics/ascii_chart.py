"""Terminal rendering of experiment series.

No plotting stack is assumed (the reference environment is offline);
these helpers render the paper's figure panels as ASCII charts so the
CLI can show the *shape* of a result — the quantity the reproduction is
judged on — directly in the terminal.
"""

from __future__ import annotations

from typing import Dict, Sequence


def sparkline(values: Sequence[float]) -> str:
    """A one-line sparkline (unicode block elements)."""
    blocks = "▁▂▃▄▅▆▇█"
    vals = [float(v) for v in values]
    if not vals:
        return ""
    lo, hi = min(vals), max(vals)
    if hi <= lo:
        return blocks[0] * len(vals)
    span = hi - lo
    return "".join(blocks[int((v - lo) / span * (len(blocks) - 1))] for v in vals)


def line_chart(
    series: Dict[str, Sequence[float]],
    x: Sequence[float],
    *,
    width: int = 60,
    height: int = 12,
    x_label: str = "",
    y_label: str = "",
) -> str:
    """Render one or more aligned series as an ASCII line chart.

    Each series gets a marker character (``*``, ``o``, ``+``, ``x`` in
    order); overlapping points show the later series' marker.
    """
    if not series:
        raise ValueError("need at least one series")
    markers = "*o+x#@"
    names = list(series)
    all_vals = [v for vals in series.values() for v in vals]
    if not all_vals:
        raise ValueError("series are empty")
    lo = min(all_vals + [0.0])
    hi = max(all_vals)
    if hi <= lo:
        hi = lo + 1.0
    xs = list(x)
    x_lo, x_hi = min(xs), max(xs)
    x_span = (x_hi - x_lo) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for idx, name in enumerate(names):
        marker = markers[idx % len(markers)]
        for xv, yv in zip(xs, series[name]):
            col = int((xv - x_lo) / x_span * (width - 1))
            row = height - 1 - int((yv - lo) / (hi - lo) * (height - 1))
            grid[row][col] = marker

    lines = []
    if y_label:
        lines.append(y_label)
    for i, row in enumerate(grid):
        if i == 0:
            label = f"{hi:8.2f} |"
        elif i == height - 1:
            label = f"{lo:8.2f} |"
        else:
            label = " " * 9 + "|"
        lines.append(label + "".join(row))
    lines.append(" " * 9 + "+" + "-" * width)
    footer = f"{x_lo:<10.3g}{'':^{max(0, width - 20)}}{x_hi:>10.3g}"
    lines.append(" " * 10 + footer)
    if x_label:
        lines.append(" " * 10 + x_label.center(width))
    legend = "   ".join(
        f"{markers[i % len(markers)]} {name}" for i, name in enumerate(names)
    )
    lines.append(" " * 10 + legend)
    return "\n".join(lines)
