"""Online congestion-tree tracking and classification.

Section III of the paper classifies congestion trees as *silent*
(stable root, stable branches), *windy* (stable root, branches moving
as the contributor set changes) and *moving* (the root itself
relocates). This module observes a live network at a fixed cadence and
computes, per sample, the congested roots and their first-level
branches; afterwards it scores the observed dynamics on two axes:

* **root churn** — one minus the containment between the persistent
  dominant-root populations (ports carrying >= half the deepest
  backlog in at least a quarter of a half-trace's samples) of the
  first and second halves of the trace: if the main trees of the late
  samples live somewhere else than the early ones, the forest has
  moved;
* **branch churn** — how often the feeder sets of *persistent* roots
  changed (windy trees score high, silent trees low).

The classifier is deliberately simple (it is an analysis aid, not a
contribution of the paper), but the thresholds reproduce the paper's
taxonomy on the scenarios of section V: C-node workloads classify as
silent, B-node workloads as windy, and moving-hotspot workloads as
moving.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Tuple

from repro.metrics.congestion_tree import congested_ports


PortKey = Tuple[int, int]


@dataclass
class TreeSample:
    """One observation instant."""

    time_ns: float
    roots: FrozenSet[PortKey]
    branches: Dict[PortKey, FrozenSet[int]]
    # Roots carrying at least half of the sample's deepest backlog —
    # the "main trees" of the paper's section III, as opposed to the
    # small transient trees background traffic creates.
    dominant: FrozenSet[PortKey] = frozenset()


@dataclass
class TreeDynamics:
    """Churn scores over a tracked interval."""

    samples: int
    root_churn: float
    branch_churn: float
    congested_fraction: float

    def classify(self) -> str:
        """Map churn scores onto the paper's taxonomy."""
        if self.congested_fraction < 0.05:
            return "none"
        if self.root_churn > 0.4:
            return "moving"
        if self.branch_churn > 0.25:
            return "windy"
        return "silent"


class CongestionTreeTracker:
    """Sample a network's congestion trees on a fixed cadence."""

    __slots__ = ("network", "interval_ns", "fraction", "vl", "samples", "_running")

    def __init__(
        self,
        network,
        interval_ns: float,
        *,
        fraction: float = 0.25,
        vl: int = 0,
    ) -> None:
        if interval_ns <= 0:
            raise ValueError("interval must be positive")
        self.network = network
        self.interval_ns = interval_ns
        self.fraction = fraction
        self.vl = vl
        self.samples: List[TreeSample] = []
        self._running = False

    def start(self) -> "CongestionTreeTracker":
        """Arm the tracker (idempotent); returns self."""
        if not self._running:
            self._running = True
            self.network.sim.schedule(self.interval_ns, self._tick)
        return self

    def stop(self) -> None:
        """Stop sampling; the pending tick becomes a no-op."""
        self._running = False

    def _tick(self) -> None:
        if not self._running:
            return
        net = self.network
        roots = congested_ports(net, vl=self.vl, fraction=self.fraction)
        branches: Dict[PortKey, FrozenSet[int]] = {}
        backlog: Dict[PortKey, int] = {}
        for sw_id, out in roots:
            sw = net.switches[sw_id]
            feeders = frozenset(
                ip.port_id for ip in sw.input_ports if ip.voqs[out][self.vl]
            )
            branches[(sw_id, out)] = feeders
            backlog[(sw_id, out)] = sw.arbiters[out].queued_bytes[self.vl]
        deepest = max(backlog.values(), default=0)
        dominant = frozenset(
            key for key, depth in backlog.items() if depth >= 0.5 * deepest
        )
        self.samples.append(
            TreeSample(net.sim.now, frozenset(roots), branches, dominant)
        )
        net.sim.schedule(self.interval_ns, self._tick)

    # -- analysis ------------------------------------------------------
    def dynamics(self) -> TreeDynamics:
        """Score root/branch churn over all collected samples."""
        samples = self.samples
        if len(samples) < 2:
            raise ValueError("need at least two samples to assess dynamics")
        branch_changes = 0
        branch_comparisons = 0
        congested = sum(1 for s in samples if s.roots)
        for prev, cur in zip(samples, samples[1:]):
            for root in prev.roots & cur.roots:
                branch_comparisons += 1
                if prev.branches[root] != cur.branches[root]:
                    branch_changes += 1
        half = len(samples) // 2

        def persistent_roots(window):
            # A port belongs to a window's main forest if it was a
            # dominant root in at least a quarter of the window's
            # samples; one-off transient trees are filtered out.
            counts: Dict[PortKey, int] = {}
            for s in window:
                for key in s.dominant:
                    counts[key] = counts.get(key, 0) + 1
            cutoff = max(1, len(window) // 4)
            return frozenset(k for k, c in counts.items() if c >= cutoff)

        early = persistent_roots(samples[:half])
        late = persistent_roots(samples[half:])
        # Containment rather than Jaccard: extra secondary roots in one
        # half must not register as movement; what matters is whether
        # the established main roots are still where they were.
        smaller = min(len(early), len(late))
        if smaller:
            root_churn = 1.0 - len(early & late) / smaller
        else:
            root_churn = 0.0
        return TreeDynamics(
            samples=len(samples),
            root_churn=root_churn,
            branch_churn=(
                branch_changes / branch_comparisons if branch_comparisons else 0.0
            ),
            congested_fraction=congested / len(samples),
        )
