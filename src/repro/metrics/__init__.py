"""Measurement and analysis.

:class:`~repro.metrics.collector.Collector` records per-node
transmitted/received bytes with a warmup cutoff; the analysis helpers
aggregate them into the quantities the paper reports — average receive
rate per node group, total network throughput, improvement factors and
the analytic ``tmax`` curve of figures 5–8.
"""

from repro.metrics.collector import Collector, NullCollector
from repro.metrics.analysis import (
    mean_rate_gbps,
    group_rates,
    improvement_factor,
    tmax_gbps,
    jain_fairness,
)
from repro.metrics.congestion_tree import congestion_snapshot, congested_ports
from repro.metrics.timeseries import TimeSeries
from repro.metrics.tree_tracker import CongestionTreeTracker, TreeDynamics
from repro.metrics.ascii_chart import sparkline, line_chart
from repro.metrics.latency import LatencyTracker

__all__ = [
    "Collector",
    "NullCollector",
    "mean_rate_gbps",
    "group_rates",
    "improvement_factor",
    "tmax_gbps",
    "jain_fairness",
    "congestion_snapshot",
    "congested_ports",
    "TimeSeries",
    "CongestionTreeTracker",
    "TreeDynamics",
    "sparkline",
    "line_chart",
    "LatencyTracker",
]
