"""Congestion-tree observation.

Section III of the paper classifies congestion trees (silent / windy /
moving) by how their branches develop. These helpers take a live
:class:`~repro.network.network.Network` and extract the instantaneous
tree structure from buffer state: a (switch, output-port) is congested
when the bytes queued for it exceed a fraction of the input-buffer
capacity; edges follow the backpressure direction (from a congested
port upstream toward contributing inputs).
"""

from __future__ import annotations

from typing import Dict, List, Tuple


def congested_ports(
    network, *, vl: int = 0, fraction: float = 0.25
) -> List[Tuple[int, int]]:
    """(switch_id, out_port) pairs whose VoQ backlog exceeds ``fraction``
    of one input buffer's capacity."""
    result = []
    threshold = network.config.switch_ibuf_capacity * fraction
    for sw in network.switches:
        for out in range(sw.n_ports):
            if sw.arbiters[out].queued_bytes[vl] > threshold:
                result.append((sw.node_id, out))
    return result


def congestion_snapshot(network, *, vl: int = 0) -> Dict[str, object]:
    """A structural snapshot of current congestion.

    Returns the per-switch buffered bytes, the congested ports, and the
    set of (switch, input-port) feeding each congested output — i.e.
    the first level of branches of each congestion tree.
    """
    ports = congested_ports(network, vl=vl)
    branches: Dict[Tuple[int, int], List[int]] = {}
    for sw_id, out in ports:
        sw = network.switches[sw_id]
        feeders = [
            ip.port_id
            for ip in sw.input_ports
            if ip.voqs[out][vl]
        ]
        branches[(sw_id, out)] = feeders
    return {
        "time_ns": network.sim.now,
        "buffered_bytes": {
            sw.node_id: sw.total_buffered() for sw in network.switches
        },
        "congested_ports": ports,
        "branches": branches,
    }
