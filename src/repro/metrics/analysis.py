"""Aggregations matching the paper's reported quantities."""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence


def mean_rate_gbps(rates: Sequence[float], nodes: Iterable[int]) -> float:
    """Average of ``rates`` over the given node set (Gbit/s)."""
    nodes = list(nodes)
    if not nodes:
        raise ValueError("empty node set")
    return sum(rates[n] for n in nodes) / len(nodes)


def group_rates(
    rates: Sequence[float], hotspots: Iterable[int]
) -> Dict[str, float]:
    """Split the average receive rate into hotspot / non-hotspot / all.

    Matches the row structure of the paper's Table II and the y-axes of
    figures 5–8 (a: non-hotspots, b: hotspots) and 9–10 (all nodes).
    """
    hotspot_set = set(hotspots)
    n = len(rates)
    others = [i for i in range(n) if i not in hotspot_set]
    out = {"all": sum(rates) / n, "total": float(sum(rates))}
    if hotspot_set:
        out["hotspot"] = mean_rate_gbps(rates, hotspot_set)
    if others:
        out["non_hotspot"] = mean_rate_gbps(rates, others)
    return out


def improvement_factor(with_cc: float, without_cc: float) -> float:
    """``with_cc / without_cc`` — the paper's "Y times improvement"."""
    if without_cc <= 0:
        raise ValueError("baseline must be positive")
    return with_cc / without_cc


def tmax_gbps(
    *,
    n_nodes: int,
    n_b: int,
    n_v: int,
    p: float,
    inj_rate_gbps: float,
    sink_rate_gbps: float,
) -> float:
    """Theoretical max average non-hotspot receive rate (figures 5–8).

    Uniform-destination traffic is offered by the ``n_b`` B nodes at
    ``(1-p)`` of the injection rate and by the ``n_v`` V nodes at the
    full injection rate; spread over all ``n_nodes`` destinations it
    bounds what non-hotspots could receive if the hotspots were absent.
    E.g. the paper's x=25 %, p=0 point: (162 + 97) * 13.5 / 648 =
    5.4 Gbit/s.
    """
    if not 0.0 <= p <= 1.0:
        raise ValueError("p must be within [0, 1]")
    if n_nodes <= 0:
        raise ValueError("n_nodes must be positive")
    offered = (n_b * (1.0 - p) + n_v) * inj_rate_gbps / n_nodes
    return min(offered, sink_rate_gbps)


def jain_fairness(values: Sequence[float]) -> float:
    """Jain's fairness index in (0, 1]; 1 means perfectly equal shares."""
    vals: List[float] = [v for v in values]
    if not vals:
        raise ValueError("empty value set")
    total = sum(vals)
    squares = sum(v * v for v in vals)
    if total == 0 or squares == 0.0:
        # All-zero (or denormal underflow): everyone equally starved.
        return 1.0
    return total * total / (len(vals) * squares)
