"""Periodic time-series sampling of a running network.

The paper reports steady-state averages; understanding *why* a point
looks the way it does often needs the time dimension — how fast the
congestion tree grows, how long the CC loop takes to converge, how the
CCTI population decays after a hotspot moves. A :class:`TimeSeries`
schedules itself on the simulator and snapshots arbitrary probes at a
fixed interval.
"""

from __future__ import annotations

from typing import Callable, Dict, List


class TimeSeries:
    """Sample named probes every ``interval_ns``.

    Parameters
    ----------
    sim:
        The simulation kernel.
    interval_ns:
        Sampling period.
    probes:
        Mapping from series name to a zero-argument callable returning
        a float (evaluated at each sample time).

    Examples
    --------
    >>> from repro.engine import Simulator
    >>> sim = Simulator()
    >>> ts = TimeSeries(sim, 100.0, {"clock": lambda: sim.now}).start()
    >>> sim.run(until=1000.0)   # bound the run: the sampler re-arms itself
    >>> len(ts.samples["clock"]) >= 10
    True
    """

    __slots__ = ("sim", "interval_ns", "probes", "times", "samples", "_running")

    def __init__(
        self,
        sim,
        interval_ns: float,
        probes: Dict[str, Callable[[], float]],
    ) -> None:
        if interval_ns <= 0:
            raise ValueError("interval must be positive")
        if not probes:
            raise ValueError("need at least one probe")
        self.sim = sim
        self.interval_ns = interval_ns
        self.probes = dict(probes)
        self.times: List[float] = []
        self.samples: Dict[str, List[float]] = {name: [] for name in probes}
        self._running = False

    def start(self) -> "TimeSeries":
        """Arm the sampler (idempotent); returns self."""
        if not self._running:
            self._running = True
            self.sim.schedule(self.interval_ns, self._tick)
        return self

    def stop(self) -> None:
        """Stop sampling; the pending tick becomes a no-op."""
        self._running = False

    def _tick(self) -> None:
        if not self._running:
            return
        self.times.append(self.sim.now)
        for name, probe in self.probes.items():
            self.samples[name].append(float(probe()))
        self.sim.schedule(self.interval_ns, self._tick)

    # -- convenience probes --------------------------------------------
    @staticmethod
    def rate_probe(collector, node: int, interval_ns: float) -> Callable[[], float]:
        """Per-interval receive rate (Gbit/s) of one node."""
        last = {"bytes": 0}

        def probe() -> float:
            cur = collector.rx_bytes[node]
            delta = cur - last["bytes"]
            last["bytes"] = cur
            return delta * 8.0 / interval_ns

        return probe

    @staticmethod
    def queue_probe(switch, out_port: int, vl: int = 0) -> Callable[[], float]:
        """Bytes queued for a switch output Port VL."""
        return lambda: float(switch.arbiters[out_port].queued_bytes[vl])

    @staticmethod
    def throttle_probe(manager) -> Callable[[], float]:
        """Number of currently throttled flows network-wide."""
        return lambda: float(manager.throttled_flows())
