"""Byte counters with a warmup window.

The paper measures steady-state receive rates; transients while queues
fill and the CC loop converges are excluded by only counting bytes
after ``warmup_ns``. Control packets (CNPs) are tallied separately and
never count toward goodput.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.network.packet import FLAG_CONTROL, FLAG_FECN, Packet


class Collector:
    """Per-node TX/RX accounting.

    Parameters
    ----------
    n_nodes:
        Number of end nodes (indexes the counter arrays).
    warmup_ns:
        Bytes moved strictly before this virtual time are ignored.
    """

    __slots__ = (
        "n_nodes",
        "warmup_ns",
        "rx_bytes",
        "tx_bytes",
        "rx_packets",
        "tx_packets",
        "rx_by_src",
        "control_rx",
        "fecn_rx",
        "track_pairs",
    )

    def __init__(self, n_nodes: int, *, warmup_ns: float = 0.0, track_pairs: bool = False) -> None:
        self.n_nodes = n_nodes
        self.warmup_ns = warmup_ns
        self.rx_bytes: List[int] = [0] * n_nodes
        self.tx_bytes: List[int] = [0] * n_nodes
        self.rx_packets: List[int] = [0] * n_nodes
        self.tx_packets: List[int] = [0] * n_nodes
        self.control_rx = 0
        self.fecn_rx = 0
        self.track_pairs = track_pairs
        self.rx_by_src: Optional[Dict[tuple, int]] = {} if track_pairs else None

    # -- hooks called by HCAs ------------------------------------------
    def record_rx(self, node: int, pkt: Packet, now: float) -> None:
        """Account one delivered packet at ``node``."""
        if pkt.flags & FLAG_CONTROL:
            if now >= self.warmup_ns:
                self.control_rx += 1
            return
        if now < self.warmup_ns:
            return
        self.rx_bytes[node] += pkt.payload
        self.rx_packets[node] += 1
        if pkt.flags & FLAG_FECN:
            self.fecn_rx += 1
        if self.track_pairs:
            key = (pkt.src, node)
            self.rx_by_src[key] = self.rx_by_src.get(key, 0) + pkt.payload

    def record_tx(self, node: int, pkt: Packet, now: float) -> None:
        """Account one injected packet at ``node``."""
        if pkt.flags & FLAG_CONTROL or now < self.warmup_ns:
            return
        self.tx_bytes[node] += pkt.payload
        self.tx_packets[node] += 1

    # -- reductions -----------------------------------------------------
    def measurement_window(self, t_end: float) -> float:
        """Length of the counted window in ns (raises if not started)."""
        window = t_end - self.warmup_ns
        if window <= 0:
            raise ValueError(
                f"measurement window empty: t_end={t_end} <= warmup={self.warmup_ns}"
            )
        return window

    def rx_rate_gbps(self, node: int, t_end: float) -> float:
        """Average receive goodput of ``node`` over the window, Gbit/s."""
        return self.rx_bytes[node] * 8.0 / self.measurement_window(t_end)

    def all_rx_rates_gbps(self, t_end: float) -> List[float]:
        """Per-node receive rates over the measurement window."""
        window = self.measurement_window(t_end)
        return [b * 8.0 / window for b in self.rx_bytes]

    def total_rx_rate_gbps(self, t_end: float) -> float:
        """Total network throughput (sum of node receive rates), Gbit/s."""
        return sum(self.rx_bytes) * 8.0 / self.measurement_window(t_end)


class NullCollector:
    """A do-nothing collector for tests that only care about dynamics."""

    __slots__ = ()

    def record_rx(self, node: int, pkt: Packet, now: float) -> None:
        """Ignore (null sink)."""
        pass

    def record_tx(self, node: int, pkt: Packet, now: float) -> None:
        """Ignore (null sink)."""
        pass
