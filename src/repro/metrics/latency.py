"""Packet latency statistics.

Throughput is the paper's headline metric, but congestion trees are
felt first as latency: a packet crossing a saturated tree waits in
every buffer along a branch. :class:`LatencyTracker` records
injection-to-delivery times (using ``Packet.t_inject``, stamped by the
source HCA) and reports percentiles per node group — handy for showing
*victim* latency collapsing when CC prunes the tree.

Implementation note: samples are kept in plain lists and reduced with
numpy on demand; at the bench scales used here (1e5..1e6 packets) this
is cheaper than maintaining online quantile sketches and exact rather
than approximate.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from repro.network.packet import Packet


class LatencyTracker:
    """A metrics collector add-on recording per-packet latencies.

    Wraps (and forwards to) an inner collector so it can be installed
    wherever a :class:`~repro.metrics.collector.Collector` is expected::

        col = LatencyTracker(Collector(n, warmup_ns=...), warmup_ns=...)
        net = Network(sim, topo, cfg, collector=col)
    """

    __slots__ = ("inner", "warmup_ns", "samples_ns")

    def __init__(self, inner, *, warmup_ns: float = 0.0) -> None:
        self.inner = inner
        self.warmup_ns = warmup_ns
        self.samples_ns: Dict[int, List[float]] = {}

    # -- collector protocol ------------------------------------------------
    def record_rx(self, node: int, pkt: Packet, now: float) -> None:
        """Forward to the inner collector and record the packet's latency."""
        if self.inner is not None:
            self.inner.record_rx(node, pkt, now)
        if pkt.is_control or now < self.warmup_ns or pkt.t_inject < 0:
            return
        self.samples_ns.setdefault(node, []).append(now - pkt.t_inject)

    def record_tx(self, node: int, pkt: Packet, now: float) -> None:
        """Forward to the inner collector."""
        if self.inner is not None:
            self.inner.record_tx(node, pkt, now)

    # -- reductions -----------------------------------------------------
    def percentiles(
        self,
        nodes: Optional[Iterable[int]] = None,
        qs: Sequence[float] = (50.0, 99.0),
    ) -> Dict[float, float]:
        """Latency percentiles (ns) over the given destination nodes."""
        if nodes is None:
            pools = self.samples_ns.values()
        else:
            pools = (self.samples_ns.get(n, []) for n in nodes)
        merged: List[float] = []
        for pool in pools:
            merged.extend(pool)
        if not merged:
            raise ValueError("no latency samples recorded")
        arr = np.asarray(merged)
        return {q: float(np.percentile(arr, q)) for q in qs}

    def mean_ns(self, nodes: Optional[Iterable[int]] = None) -> float:
        """Mean latency (ns) over the given destination nodes."""
        out = self.percentiles(nodes, qs=(50.0,))  # validate non-empty
        if nodes is None:
            pools = self.samples_ns.values()
        else:
            pools = (self.samples_ns.get(n, []) for n in nodes)
        merged = [v for pool in pools for v in pool]
        return float(np.mean(merged))

    def count(self) -> int:
        """Total latency samples recorded."""
        return sum(len(v) for v in self.samples_ns.values())

    # -- passthrough convenience --------------------------------------
    def __getattr__(self, name):
        # Delegate everything else (rx_bytes, rx_rate_gbps, ...) to the
        # wrapped collector so drivers work unchanged.
        return getattr(self.inner, name)
