"""Whole-program symbol table + call graph for simlint v2.

The per-file rules (DET001–DET004) stop at module boundaries: a
``time.time()`` buried in a shared helper escapes them the moment the
helper lives outside a sim-critical package. The interprocedural rule
families (DET1xx taint, PERF0xx hot path, CON0xx concurrency) need to
see *through* calls, so this module builds, once per lint run:

* a **symbol table** — every module, top-level function, class (with
  methods, resolved base classes, ``__slots__``/``@dataclass`` flags
  and inferred instance-attribute types) and module-level alias in the
  linted tree, addressable by dotted qualname;
* a **call graph** — for every function, the resolved call sites in
  its body, each tagged with how the callee is reached:

  ========== =========================================================
  ``call``    direct invocation (``f()``, ``mod.f()``, ``self.m()``,
              ``obj.m()`` on an inferred type, ``Class()`` →
              ``Class.__init__``)
  ``ref``     a function reference passed as an argument — it may be
              invoked by the receiver
  ``scheduled`` a reference passed to a ``schedule``/``schedule_at``
              call: the event loop *will* invoke it, so it joins the
              hot set and carries determinism taint
  ``thread``  a reference passed as ``target=`` to a ``Thread`` (or an
              ``run_in_executor``/``to_thread`` argument): it runs off
              the event loop
  ``process`` a reference passed as ``target=`` to a ``Process``: a
              worker-process entry point
  ``loop``    a reference posted via ``call_soon_threadsafe`` — it
              runs *on* the loop even though the post happens off it
  ========== =========================================================

Resolution is deliberately an under-approximation (an unresolvable
call contributes no edge): the whole-program rules promise "what they
flag is real", not "they flag everything". Module names are derived
from the walk root (``src/repro/engine/rng.py`` → ``repro.engine.rng``;
a fixture tree rooted at ``tmp/`` gets ``engine.rng``), and imported
dotted names are matched against project modules by longest dotted
suffix, so the same analysis works on the shipped tree and on the
sandboxed fixture trees the test suite builds.
"""

from __future__ import annotations

import ast
from collections import deque
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.lint.project import Project, SourceFile, is_dataclass

#: Call-site kinds (see module docstring).
KIND_CALL = "call"
KIND_REF = "ref"
KIND_SCHEDULED = "scheduled"
KIND_THREAD = "thread"
KIND_PROCESS = "process"
KIND_LOOP = "loop"

#: Attribute/function names that schedule an event-loop callback.
_SCHEDULE_NAMES = frozenset({"schedule", "schedule_at"})
#: Constructor names whose ``target=`` kwarg is a thread entry point.
_THREAD_CTORS = frozenset({"Thread", "Timer"})
#: Constructor names whose ``target=`` kwarg is a process entry point.
_PROCESS_CTORS = frozenset({"Process"})
#: Call names whose function arguments run on an executor thread.
_OFFLOAD_NAMES = frozenset({"run_in_executor", "to_thread"})
#: Call names whose function arguments run on the asyncio loop.
_LOOP_POST_NAMES = frozenset({"call_soon_threadsafe"})


@dataclass
class CallSite:
    """One resolved callee reference inside a function body."""

    callee: str
    line: int
    col: int
    kind: str = KIND_CALL


@dataclass
class FuncNode:
    """One function or method in the linted tree."""

    qualname: str
    module: str
    name: str
    cls: Optional[str]
    path: str
    node: ast.AST
    is_async: bool = False

    @property
    def lineno(self) -> int:
        return int(getattr(self.node, "lineno", 1))


@dataclass
class ClassNode:
    """One class definition plus what the rules need to judge it."""

    qualname: str
    module: str
    name: str
    path: str
    node: ast.ClassDef
    #: Resolved project base-class qualnames (unresolvable bases dropped).
    bases: List[str] = field(default_factory=list)
    has_slots: bool = False
    dataclass: bool = False
    #: ``self.attr`` → inferred project class qualname.
    attr_types: Dict[str, str] = field(default_factory=dict)
    #: method name → function qualname.
    methods: Dict[str, str] = field(default_factory=dict)


@dataclass
class ModuleInfo:
    """Per-module symbol bindings."""

    name: str
    path: str
    #: local name → dotted target ("repro.engine.rng" for module
    #: imports, "repro.engine.rng.RngRegistry" for from-imports,
    #: a project qualname for top-level defs/classes/aliases).
    bindings: Dict[str, str] = field(default_factory=dict)


def module_name_for(path: str, root: str) -> str:
    """Dotted module name of ``path`` relative to the walk ``root``.

    A ``src`` segment anywhere in the path restarts the module path
    (the conventional layout marker), so explicit file arguments like
    ``src/repro/engine/rng.py`` still resolve to ``repro.engine.rng``.
    ``__init__`` maps to its package name.
    """
    import os

    rel = os.path.relpath(path, root) if root else path
    parts = [p for p in rel.replace("\\", "/").split("/") if p not in ("", ".")]
    full = [p for p in path.replace("\\", "/").split("/") if p]
    if "src" in full:
        parts = full[len(full) - 1 - full[::-1].index("src"):][1:]
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][:-3]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


class CallGraph:
    """The resolved whole-program view (build via :func:`build_callgraph`)."""

    def __init__(self) -> None:
        self.modules: Dict[str, ModuleInfo] = {}
        self.functions: Dict[str, FuncNode] = {}
        self.classes: Dict[str, ClassNode] = {}
        self.calls: Dict[str, List[CallSite]] = {}
        #: Callees of ``scheduled`` references anywhere in the tree —
        #: the event loop invokes these, so they seed the hot set.
        self.scheduled: Set[str] = set()
        #: Thread / worker-process entry points and loop-posted callbacks.
        self.thread_entries: Set[str] = set()
        self.process_entries: Set[str] = set()
        self.loop_posted: Set[str] = set()
        #: ``caller → [(class qualname, line, col)]`` instantiations.
        self.instantiations: Dict[str, List[Tuple[str, int, int]]] = {}

    # -- symbol resolution ---------------------------------------------

    def resolve_module(self, dotted: str) -> Optional[str]:
        """Project module matching ``dotted`` by longest dotted suffix."""
        if dotted in self.modules:
            return dotted
        parts = dotted.split(".")
        for start in range(1, len(parts)):
            cand = ".".join(parts[start:])
            if cand in self.modules:
                return cand
        return None

    def resolve_symbol(self, dotted: str) -> Optional[str]:
        """Resolve a dotted name to a function/class/method qualname."""
        if dotted in self.functions or dotted in self.classes:
            return dotted
        # Split into (module, attr...) at every boundary, longest first.
        parts = dotted.split(".")
        for cut in range(len(parts) - 1, 0, -1):
            mod = self.resolve_module(".".join(parts[:cut]))
            if mod is None:
                continue
            attrs = parts[cut:]
            return self._resolve_in_module(mod, attrs)
        return None

    def _resolve_in_module(self, mod: str, attrs: List[str]) -> Optional[str]:
        info = self.modules.get(mod)
        if info is None or not attrs:
            return None
        target = info.bindings.get(attrs[0])
        if target is None:
            return None
        resolved = self._chase(target)
        for attr in attrs[1:]:
            if resolved in self.classes:
                method = self.lookup_method(resolved, attr)
                if method is None:
                    return None
                resolved = method
            else:
                return None
        return resolved

    def _chase(self, target: str) -> str:
        """Follow alias bindings until a concrete symbol (or give up)."""
        seen = set()
        while target not in self.functions and target not in self.classes:
            if target in seen:
                break
            seen.add(target)
            sym = None
            parts = target.split(".")
            for cut in range(len(parts) - 1, 0, -1):
                mod = self.resolve_module(".".join(parts[:cut]))
                if mod is not None:
                    info = self.modules[mod]
                    bound = info.bindings.get(parts[cut])
                    if bound is not None and bound != target:
                        rest = parts[cut + 1:]
                        sym = ".".join([bound, *rest]) if rest else bound
                    break
            if sym is None:
                break
            target = sym
        return target

    def lookup_method(self, class_qual: str, name: str) -> Optional[str]:
        """Resolve ``name`` on ``class_qual`` walking project bases."""
        seen: Set[str] = set()
        stack = [class_qual]
        while stack:
            cq = stack.pop(0)
            if cq in seen:
                continue
            seen.add(cq)
            cls = self.classes.get(cq)
            if cls is None:
                continue
            if name in cls.methods:
                return cls.methods[name]
            stack.extend(cls.bases)
        return None

    def class_has_slots(self, class_qual: str) -> bool:
        """Whether the class (or every project ancestor) declares slots."""
        cls = self.classes.get(class_qual)
        return cls is not None and cls.has_slots

    # -- graph queries --------------------------------------------------

    def reachable(
        self,
        roots: Iterable[str],
        kinds: FrozenSet[str] = frozenset({KIND_CALL}),
    ) -> Set[str]:
        """Closure of ``roots`` over call sites of the given kinds."""
        out: Set[str] = set()
        queue = deque(r for r in roots if r in self.functions)
        while queue:
            fn = queue.popleft()
            if fn in out:
                continue
            out.add(fn)
            for site in self.calls.get(fn, ()):
                if site.kind in kinds and site.callee not in out:
                    queue.append(site.callee)
        return out

    def chain(
        self,
        start: str,
        targets: Set[str],
        kinds: FrozenSet[str] = frozenset({KIND_CALL, KIND_SCHEDULED}),
    ) -> List[str]:
        """Shortest call chain from ``start`` to any of ``targets``."""
        parent: Dict[str, Optional[str]] = {start: None}
        queue = deque([start])
        hit: Optional[str] = start if start in targets else None
        while queue and hit is None:
            fn = queue.popleft()
            for site in self.calls.get(fn, ()):
                if site.kind not in kinds or site.callee in parent:
                    continue
                parent[site.callee] = fn
                if site.callee in targets:
                    hit = site.callee
                    break
                queue.append(site.callee)
        if hit is None:
            return []
        out = []
        cur: Optional[str] = hit
        while cur is not None:
            out.append(cur)
            cur = parent[cur]
        return list(reversed(out))


# ---------------------------------------------------------------------------
# construction


def _slots_declared(node: ast.ClassDef) -> bool:
    for stmt in node.body:
        if isinstance(stmt, ast.Assign):
            if any(
                isinstance(t, ast.Name) and t.id == "__slots__"
                for t in stmt.targets
            ):
                return True
        elif isinstance(stmt, ast.AnnAssign):
            if isinstance(stmt.target, ast.Name) and stmt.target.id == "__slots__":
                return True
    return False


def _dotted(node: ast.AST) -> Optional[str]:
    """``a.b.c`` expression → ``"a.b.c"`` (None for anything else)."""
    chain: List[str] = []
    while isinstance(node, ast.Attribute):
        chain.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    chain.append(node.id)
    return ".".join(reversed(chain))


def _annotation_name(node: Optional[ast.AST]) -> Optional[str]:
    """A plain/dotted annotation → dotted string (Optional[...] etc. ignored)."""
    if node is None:
        return None
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return _dotted(node)


def _collect_module(f: SourceFile, module: str) -> ModuleInfo:
    """First pass: bindings introduced at module top level."""
    info = ModuleInfo(name=module, path=f.path)
    pkg_parts = module.split(".") if module else []
    for node in f.tree.body:
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                info.bindings[local] = alias.name if alias.asname else alias.name.split(".")[0]
        elif isinstance(node, ast.ImportFrom):
            base: Optional[str]
            if node.level:
                # Relative import: resolve against this module's package.
                up = len(pkg_parts) - node.level
                if up < 0:
                    continue
                prefix = pkg_parts[:up]
                base = ".".join(prefix + ([node.module] if node.module else []))
            else:
                base = node.module
            if not base:
                continue
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                info.bindings[local] = f"{base}.{alias.name}"
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            info.bindings[node.name] = f"{module}.{node.name}" if module else node.name
        elif isinstance(node, ast.ClassDef):
            info.bindings[node.name] = f"{module}.{node.name}" if module else node.name
        elif isinstance(node, ast.Assign) and isinstance(node.value, (ast.Name, ast.Attribute)):
            # Module-level alias: ``fast_lft = _lft_direct``. Resolve
            # the head through bindings collected so far, so an alias
            # of a from-import (``fast = h``) lands on the import's
            # dotted target rather than a bare local name.
            target_dotted = _dotted(node.value)
            if target_dotted is None:
                continue
            head, *rest = target_dotted.split(".")
            bound_head = info.bindings.get(head)
            if bound_head is not None and bound_head != target_dotted:
                target_dotted = ".".join([bound_head, *rest])
            for tgt in node.targets:
                if isinstance(tgt, ast.Name):
                    info.bindings.setdefault(tgt.id, target_dotted)
    return info


class _FunctionScanner(ast.NodeVisitor):
    """Second pass: resolve the call sites inside one function body."""

    def __init__(
        self,
        graph: CallGraph,
        mod: ModuleInfo,
        func: FuncNode,
        local_types: Dict[str, str],
    ) -> None:
        self.graph = graph
        self.mod = mod
        self.func = func
        self.local_types = local_types
        self.sites: List[CallSite] = []
        self.instantiations: List[Tuple[str, int, int]] = []

    # Nested defs/lambdas are attributed to the enclosing function:
    # their bodies execute (if at all) on behalf of this node, which is
    # the sound over-approximation for taint and hot-set purposes.

    def _resolve_expr(self, node: ast.AST) -> Optional[str]:
        """Resolve an expression to a project function/class qualname."""
        graph, mod = self.graph, self.mod
        if isinstance(node, ast.Name):
            bound = mod.bindings.get(node.id)
            if bound is None:
                return None
            sym = graph._chase(bound)
            if sym in graph.functions or sym in graph.classes:
                return sym
            return graph.resolve_symbol(bound)
        if not isinstance(node, ast.Attribute):
            return None
        # self.attr... chains.
        root = node
        chain: List[str] = []
        while isinstance(root, ast.Attribute):
            chain.append(root.attr)
            root = root.value
        chain.reverse()
        if isinstance(root, ast.Name):
            if root.id == "self" and self.func.cls is not None:
                return self._resolve_on_class(self.func.cls, chain)
            # Locally-typed variable: ``hca = Hca(...); hca.on_packet``.
            var_type = self.local_types.get(root.id)
            if var_type is not None:
                return self._resolve_on_class(var_type, chain)
            dotted = _dotted(node)
            if dotted is not None:
                bound = mod.bindings.get(dotted.split(".")[0])
                if bound is not None:
                    rest = dotted.split(".")[1:]
                    return graph.resolve_symbol(".".join([bound, *rest]))
        return None

    def _resolve_on_class(self, class_qual: str, chain: List[str]) -> Optional[str]:
        graph = self.graph
        cur = class_qual
        for i, attr in enumerate(chain):
            cls = graph.classes.get(cur)
            if cls is None:
                return None
            last = i == len(chain) - 1
            method = graph.lookup_method(cur, attr)
            if method is not None:
                return method if last else None
            attr_type = self._attr_type(cur, attr)
            if attr_type is None:
                return None
            if last:
                return attr_type if attr_type in graph.classes else None
            cur = attr_type
        return None

    def _attr_type(self, class_qual: str, attr: str) -> Optional[str]:
        seen: Set[str] = set()
        stack = [class_qual]
        while stack:
            cq = stack.pop(0)
            if cq in seen:
                continue
            seen.add(cq)
            cls = self.graph.classes.get(cq)
            if cls is None:
                continue
            if attr in cls.attr_types:
                return cls.attr_types[attr]
            stack.extend(cls.bases)
        return None

    def _add(self, callee: str, node: ast.AST, kind: str) -> None:
        self.sites.append(CallSite(
            callee=callee,
            line=int(getattr(node, "lineno", self.func.lineno)),
            col=int(getattr(node, "col_offset", 0)),
            kind=kind,
        ))

    def visit_Assign(self, node: ast.Assign) -> None:
        # Local type inference: ``v = ClassName(...)``.
        if isinstance(node.value, ast.Call):
            target = self._resolve_expr(node.value.func)
            if target in self.graph.classes:
                for tgt in node.targets:
                    if isinstance(tgt, ast.Name):
                        self.local_types[tgt.id] = str(target)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        ann = _annotation_name(node.annotation)
        if ann is not None and isinstance(node.target, ast.Name):
            sym = self.graph.resolve_symbol(ann) or self.mod.bindings.get(ann)
            if sym in self.graph.classes:
                self.local_types[node.target.id] = str(sym)
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        graph = self.graph
        target = self._resolve_expr(node.func)
        attr_name = node.func.attr if isinstance(node.func, ast.Attribute) else (
            node.func.id if isinstance(node.func, ast.Name) else ""
        )
        if target is not None:
            if target in graph.classes:
                self.instantiations.append((
                    target, node.lineno, node.col_offset,
                ))
                init = graph.lookup_method(target, "__init__")
                if init is not None:
                    self._add(init, node, KIND_CALL)
            else:
                self._add(target, node, KIND_CALL)

        # Classify function references handed to this call.
        ref_kind = KIND_REF
        if attr_name in _SCHEDULE_NAMES:
            ref_kind = KIND_SCHEDULED
        elif attr_name in _OFFLOAD_NAMES:
            ref_kind = KIND_THREAD
        elif attr_name in _LOOP_POST_NAMES:
            ref_kind = KIND_LOOP
        elif attr_name in _THREAD_CTORS or attr_name in _PROCESS_CTORS:
            ctor_kind = (
                KIND_THREAD if attr_name in _THREAD_CTORS else KIND_PROCESS
            )
            for kw in node.keywords:
                if kw.arg == "target":
                    ref = self._resolve_expr(kw.value)
                    if ref in graph.functions:
                        self._add(str(ref), kw.value, ctor_kind)
            self.generic_visit(node)
            return

        for arg in list(node.args) + [kw.value for kw in node.keywords]:
            ref = self._resolve_expr(arg)
            if ref in graph.functions:
                self._add(str(ref), arg, ref_kind)
        self.generic_visit(node)


def _scan_class_attr_types(
    graph: CallGraph, mod: ModuleInfo, cls: ClassNode
) -> None:
    """Infer ``self.attr`` project-class types from the class body."""
    def resolve_class(expr: ast.AST) -> Optional[str]:
        dotted = _dotted(expr)
        if dotted is None:
            return None
        parts = dotted.split(".")
        bound = mod.bindings.get(parts[0])
        if bound is None:
            return None
        sym = graph.resolve_symbol(".".join([bound, *parts[1:]]))
        return sym if sym in graph.classes else None

    for stmt in ast.walk(cls.node):
        if isinstance(stmt, ast.AnnAssign):
            target = stmt.target
            ann = _annotation_name(stmt.annotation)
            if ann is None:
                continue
            sym = graph.resolve_symbol(ann)
            if sym is None:
                bound = mod.bindings.get(ann.split(".")[0])
                if bound is not None:
                    sym = graph.resolve_symbol(
                        ".".join([bound, *ann.split(".")[1:]])
                    )
            if sym not in graph.classes:
                continue
            if (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                cls.attr_types.setdefault(target.attr, str(sym))
            elif isinstance(target, ast.Name):
                cls.attr_types.setdefault(target.id, str(sym))
        elif isinstance(stmt, ast.Assign) and isinstance(stmt.value, ast.Call):
            target_cls = resolve_class(stmt.value.func)
            if target_cls is None:
                continue
            for tgt in stmt.targets:
                if (
                    isinstance(tgt, ast.Attribute)
                    and isinstance(tgt.value, ast.Name)
                    and tgt.value.id == "self"
                ):
                    cls.attr_types.setdefault(tgt.attr, target_cls)


def build_callgraph(project: Project) -> CallGraph:
    """Build the whole-program graph for one lint run."""
    graph = CallGraph()

    # Pass 1: modules, functions, classes, bindings.
    per_file_mod: Dict[str, ModuleInfo] = {}
    for f in project.files:
        module = module_name_for(f.path, getattr(f, "root", "") or "")
        info = _collect_module(f, module)
        graph.modules[module] = info
        per_file_mod[f.path] = info
        for node in f.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qual = f"{module}.{node.name}" if module else node.name
                graph.functions[qual] = FuncNode(
                    qualname=qual, module=module, name=node.name, cls=None,
                    path=f.path, node=node,
                    is_async=isinstance(node, ast.AsyncFunctionDef),
                )
            elif isinstance(node, ast.ClassDef):
                cqual = f"{module}.{node.name}" if module else node.name
                cnode = ClassNode(
                    qualname=cqual, module=module, name=node.name,
                    path=f.path, node=node,
                    has_slots=_slots_declared(node),
                    dataclass=is_dataclass(node),
                )
                graph.classes[cqual] = cnode
                for item in node.body:
                    if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        mqual = f"{cqual}.{item.name}"
                        graph.functions[mqual] = FuncNode(
                            qualname=mqual, module=module, name=item.name,
                            cls=cqual, path=f.path, node=item,
                            is_async=isinstance(item, ast.AsyncFunctionDef),
                        )
                        cnode.methods[item.name] = mqual

    # Pass 2: class bases + instance-attribute types (needs all classes).
    for f in project.files:
        mod = per_file_mod[f.path]
        for node in f.tree.body:
            if not isinstance(node, ast.ClassDef):
                continue
            cqual = f"{mod.name}.{node.name}" if mod.name else node.name
            cls = graph.classes[cqual]
            for base in node.bases:
                dotted = _dotted(base)
                if dotted is None:
                    continue
                parts = dotted.split(".")
                bound = mod.bindings.get(parts[0])
                cand = None
                if bound is not None:
                    cand = graph.resolve_symbol(".".join([bound, *parts[1:]]))
                if cand is None:
                    cand = graph.resolve_symbol(dotted)
                if cand in graph.classes:
                    cls.bases.append(str(cand))
            _scan_class_attr_types(graph, mod, cls)

    # Inherited slots: a class "has slots" only if its whole project
    # ancestry declares them (one slotless ancestor reintroduces the dict).
    def slots_closed(cq: str, seen: Set[str]) -> bool:
        if cq in seen:
            return True
        seen.add(cq)
        cls = graph.classes[cq]
        if not cls.has_slots:
            return False
        return all(b not in graph.classes or slots_closed(b, seen)
                   for b in cls.bases)

    for cq in list(graph.classes):
        graph.classes[cq].has_slots = slots_closed(cq, set())

    # Pass 3: call sites per function.
    for qual, func in graph.functions.items():
        mod = per_file_mod[func.path]
        local_types: Dict[str, str] = {}
        fn_node = func.node
        args = getattr(fn_node, "args", None)
        if args is not None:
            for arg in list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs):
                ann = _annotation_name(arg.annotation)
                if ann is None:
                    continue
                sym = graph.resolve_symbol(ann)
                if sym is None:
                    bound = mod.bindings.get(ann.split(".")[0])
                    if bound is not None:
                        sym = graph.resolve_symbol(
                            ".".join([bound, *ann.split(".")[1:]])
                        )
                if sym in graph.classes:
                    local_types[arg.arg] = str(sym)
        scanner = _FunctionScanner(graph, mod, func, local_types)
        for stmt in getattr(fn_node, "body", []):
            scanner.visit(stmt)
        graph.calls[qual] = scanner.sites
        if scanner.instantiations:
            graph.instantiations[qual] = scanner.instantiations
        for site in scanner.sites:
            if site.kind == KIND_SCHEDULED:
                graph.scheduled.add(site.callee)
            elif site.kind == KIND_THREAD:
                graph.thread_entries.add(site.callee)
            elif site.kind == KIND_PROCESS:
                graph.process_entries.add(site.callee)
            elif site.kind == KIND_LOOP:
                graph.loop_posted.add(site.callee)

    return graph


def hot_roots(project: Project, graph: CallGraph) -> Set[str]:
    """Seed functions for the hot set (config roots + scheduled callbacks)."""
    roots: Set[str] = set(graph.scheduled)
    for cls_name, method in project.config.hot_roots:
        for cqual, cls in graph.classes.items():
            if cls.name != cls_name:
                continue
            resolved = graph.lookup_method(cqual, method)
            if resolved is not None:
                roots.add(resolved)
    return roots


def hot_set(project: Project, graph: CallGraph) -> Set[str]:
    """Everything reachable from the hot roots over call/scheduled edges."""
    return graph.reachable(
        hot_roots(project, graph),
        kinds=frozenset({KIND_CALL, KIND_SCHEDULED}),
    )
