"""simlint: AST-based determinism & invariant linter for this repo.

The reproduction's headline results rest on bit-for-bit deterministic
replay — golden trace digests, ``jobs=1`` vs ``jobs=4`` digest
equality, seeded chaos schedules. One stray ``random.random()``,
wall-clock read, or unordered-``set`` iteration inside the event path
silently breaks every digest downstream, and the runtime campaigns
only catch it an hour later. simlint moves that detection to a static
pass that fails in seconds.

Per-file rules (see :mod:`repro.lint.rules_determinism` /
:mod:`repro.lint.rules_crossref` / :mod:`repro.lint.rules_robustness`):

========  ==============================================================
DET001    no raw ``random.*`` / ``numpy.random`` stateful calls in
          sim-critical packages — randomness routes through
          :class:`repro.engine.rng.RngRegistry`
DET002    no wall-clock reads on the event path (telemetry packages
          are allowlisted)
DET003    no iteration over bare ``set()`` / non-literal ``.keys()``
          in sim-critical code without an explicit ``sorted(...)``
DET004    no float accumulation via ``sum()`` over unordered
          (set-typed) iterables in ``metrics`` / ``core``
KEY001    store-key drift — every ``ExperimentConfig`` (and nested
          fault/transport config) dataclass field must be reflected in
          ``store.config_key``'s serialization
TRC001    every ``EV_*`` trace constant must be listed in
          ``ALL_EVENTS``, emitted by a ``Tracer`` hook, and handled by
          the ``TraceAuditor``
ERR001    no bare ``except:`` and no broad ``except Exception`` /
          ``BaseException`` whose body only passes — errors surface as
          data (manifest ``error_kind`` records), never silently
          swallowed
IMP001    unused module-level import (dead-code hygiene; never fails
          the build)
========  ==============================================================

Whole-program rules, built on the project call graph
(:mod:`repro.lint.callgraph`; see :mod:`repro.lint.rules_taint` /
:mod:`repro.lint.rules_hotpath` / :mod:`repro.lint.rules_concurrency`):

========  ==============================================================
DET101    interprocedural DET001 — sim-critical call into a helper
          whose call closure draws raw random numbers
DET102    interprocedural DET002 — sim-critical call into a helper
          whose call closure reads the wall clock
DET103    ``id()`` / ``os.environ`` reads / unordered-set iteration on
          the event path, directly or through helper chains
PERF0xx   hot-path costs (allocation, ``**kwargs``, ``try/except``,
          un-slotted instantiation, f-strings/logging) in functions
          reachable from ``Simulator.run``/``schedule`` — warnings
CON001    blocking calls (``time.sleep``, file I/O, subprocess) inside
          ``async def``, directly or through sync helpers
CON002    module-level mutable state mutated by code reachable from a
          worker-process entry point
CON003    asyncio loop-owned state written from thread context without
          ``call_soon_threadsafe``
MPC0xx    ``--mypyc-report`` compile-readiness pass over
          ``engine``/``network`` (opt-in, info only)
========  ==============================================================

Suppress a finding with a line pragma ``# simlint: disable=DET001`` on
the flagged line, ``# simlint: disable-next-line=DET001`` on the line
above it, or a file pragma ``# simlint: disable-file=DET001`` on its
own comment line. Every suppression should carry a justifying comment.
Accepted legacy findings live in a fingerprint-keyed baseline file
(:mod:`repro.lint.baseline`) so only *new* findings fail the build.

Programmatic use::

    from repro.lint import run_lint
    report = run_lint(["src"], baseline="lint-baseline.json")
    assert not report.errors, report.format()

CLI: ``ibcc-repro lint [paths] [--json] [--rule ID] [--baseline FILE]
[--update-baseline] [--changed-only REF] [--mypyc-report]`` (also
``python -m repro lint``).
"""

from repro.lint.baseline import DEFAULT_BASELINE, Baseline
from repro.lint.callgraph import CallGraph, build_callgraph
from repro.lint.engine import (
    LintPathError,
    LintReport,
    iter_python_files,
    run_lint,
)
from repro.lint.findings import (
    SEV_ERROR,
    SEV_INFO,
    SEV_WARNING,
    Finding,
)
from repro.lint.registry import (
    RULES,
    all_rule_ids,
    default_rule_ids,
    get_rules,
)

# Importing the rule modules registers their rules.
from repro.lint import rules_concurrency as _rules_concurrency  # noqa: F401
from repro.lint import rules_crossref as _rules_crossref  # noqa: F401
from repro.lint import rules_determinism as _rules_determinism  # noqa: F401
from repro.lint import rules_hotpath as _rules_hotpath  # noqa: F401
from repro.lint import rules_robustness as _rules_robustness  # noqa: F401
from repro.lint import rules_taint as _rules_taint  # noqa: F401

__all__ = [
    "Baseline",
    "CallGraph",
    "DEFAULT_BASELINE",
    "Finding",
    "LintPathError",
    "LintReport",
    "RULES",
    "SEV_ERROR",
    "SEV_INFO",
    "SEV_WARNING",
    "all_rule_ids",
    "build_callgraph",
    "default_rule_ids",
    "get_rules",
    "iter_python_files",
    "run_lint",
]
