"""Concurrency rules for the service/parallel runtimes: CON001–CON003.

The ``repro serve`` daemon and the supervised worker fleet rely on
three disciplines that earlier PRs documented in comments; these rules
enforce them structurally, using the whole-program call graph:

* **CON001** — an ``async def`` must never block the event loop: no
  ``time.sleep``, file/pipe I/O, or ``subprocess`` calls, neither
  directly nor through a sync helper it calls (the call graph carries
  blocking taint through call edges; references handed to
  ``run_in_executor``/``to_thread`` are exactly the sanctioned escape
  and carry nothing).
* **CON002** — code reachable from a worker-*process* entry point
  (``Process(target=...)`` or a configured ``worker_main``) must not
  mutate module-level mutable state: the mutation happens in the
  child's copy, silently diverging from the parent — the classic
  "works serially, wrong under jobs=4" bug.
* **CON003** — state owned by the asyncio loop (instance attributes
  assigned inside ``async def`` methods) must not be written from
  thread context (functions reachable from ``Thread(target=...)`` /
  executor offloads) except via ``call_soon_threadsafe`` — the PR-9
  executor discipline, now enforced instead of documented.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.lint.callgraph import (
    KIND_CALL,
    KIND_REF,
    KIND_SCHEDULED,
    CallGraph,
    FuncNode,
)
from repro.lint.findings import SEV_ERROR, Finding
from repro.lint.project import Project, SourceFile
from repro.lint.registry import rule
from repro.lint.rules_determinism import ImportTable

#: Resolved dotted names that block the calling thread.
_BLOCKING_PREFIXES = ("subprocess.", "requests.", "urllib.request.")
_BLOCKING_CALLS = frozenset({
    "time.sleep",
    "os.system", "os.popen", "os.read", "os.write", "os.fsync",
    "os.replace", "os.rename", "os.remove", "os.unlink",
    "os.makedirs", "os.mkdir",
    "socket.create_connection",
    "shutil.copy", "shutil.copytree", "shutil.rmtree", "shutil.move",
})
#: Attribute spellings that hit the filesystem no matter the receiver.
_BLOCKING_ATTRS = frozenset({
    "read_text", "read_bytes", "write_text", "write_bytes",
})
#: Mutating container methods (list/dict/set/deque).
_MUTATING_METHODS = frozenset({
    "append", "appendleft", "add", "update", "extend", "insert",
    "setdefault", "pop", "popleft", "popitem", "remove", "discard",
    "clear",
})


def _by_path(project: Project) -> Dict[str, SourceFile]:
    return {f.path: f for f in project.files}


def _blocking_sites(
    func: FuncNode, table: ImportTable
) -> List[Tuple[str, int, int]]:
    """Direct blocking calls inside one function body."""
    out: List[Tuple[str, int, int]] = []
    for node in ast.walk(func.node):
        if not isinstance(node, ast.Call):
            continue
        dotted = table.resolve(node.func)
        if dotted is not None and (
            dotted in _BLOCKING_CALLS
            or dotted.startswith(_BLOCKING_PREFIXES)
        ):
            out.append((f"{dotted}()", node.lineno, node.col_offset))
        elif isinstance(node.func, ast.Name) and node.func.id == "open":
            out.append(("open()", node.lineno, node.col_offset))
        elif (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in _BLOCKING_ATTRS
        ):
            out.append((
                f".{node.func.attr}()", node.lineno, node.col_offset,
            ))
    return out


def _blocking_closure(
    graph: CallGraph, direct: Dict[str, List[Tuple[str, int, int]]]
) -> Set[str]:
    """Functions whose call closure (call edges only) blocks."""
    blocking = {q for q, sites in direct.items() if sites}
    changed = True
    while changed:
        changed = False
        for qual in graph.functions:
            if qual in blocking:
                continue
            for site in graph.calls.get(qual, ()):
                if site.kind == KIND_CALL and site.callee in blocking:
                    blocking.add(qual)
                    changed = True
                    break
    return blocking


@rule(
    "CON001",
    severity=SEV_ERROR,
    summary=(
        "blocking call (time.sleep / file or pipe I/O / subprocess) "
        "inside async def — directly or through a sync helper; "
        "offload via run_in_executor"
    ),
)
def con001_blocking_in_async(project: Project) -> Iterator[Finding]:
    """The event loop thread must never block.

    A blocked loop stalls every campaign's SSE stream, heartbeat and
    admission decision at once. Small writes feel free until the disk
    stalls; the sanctioned pattern is the PR-9 one — do the I/O on the
    executor thread and post completions back.
    """
    graph = project.callgraph()
    assert isinstance(graph, CallGraph)
    by_path = _by_path(project)
    tables: Dict[str, ImportTable] = {}
    direct: Dict[str, List[Tuple[str, int, int]]] = {}
    for qual, func in graph.functions.items():
        f = by_path.get(func.path)
        if f is None:
            continue
        if func.path not in tables:
            tables[func.path] = ImportTable(f.tree)
        direct[qual] = _blocking_sites(func, tables[func.path])
    closure = _blocking_closure(graph, direct)

    for qual in sorted(graph.functions):
        func = graph.functions[qual]
        f = by_path.get(func.path)
        if f is None or not project.async_scope(f) or not func.is_async:
            continue
        for what, line, col in direct.get(qual, ()):
            yield Finding(
                "CON001", SEV_ERROR, func.path, line, col,
                f"blocking {what} inside async {func.name}(): the event "
                "loop stalls for its full duration; use asyncio.sleep / "
                "run_in_executor",
            )
        for site in graph.calls.get(qual, ()):
            if site.kind != KIND_CALL:
                continue
            callee = graph.functions.get(site.callee)
            if callee is None or callee.is_async:
                continue  # async callees are flagged at their own body
            if site.callee not in closure:
                continue
            chain = graph.chain(
                site.callee,
                {q for q, sites in direct.items() if sites},
                kinds=frozenset({KIND_CALL}),
            )
            via = " -> ".join(chain) if chain else site.callee
            first = next(
                (s for s in direct.get(chain[-1] if chain else "", ()) if s),
                None,
            )
            where = f" ({first[0]} at line {first[1]})" if first else ""
            yield Finding(
                "CON001", SEV_ERROR, func.path, site.line, site.col,
                f"async {func.name}() calls {site.callee}(), whose call "
                f"closure blocks: {via}{where}; offload it with "
                "run_in_executor",
            )


def _module_mutables(f: SourceFile) -> Dict[str, int]:
    """Module-level names bound to mutable containers → lineno."""
    out: Dict[str, int] = {}
    for node in f.tree.body:
        value: Optional[ast.expr] = None
        targets: List[ast.expr] = []
        if isinstance(node, ast.Assign):
            value, targets = node.value, node.targets
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            value, targets = node.value, [node.target]
        if value is None:
            continue
        mutable = isinstance(value, (
            ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp,
            ast.SetComp,
        ))
        if not mutable and isinstance(value, ast.Call):
            fn = value.func
            name = fn.id if isinstance(fn, ast.Name) else (
                fn.attr if isinstance(fn, ast.Attribute) else ""
            )
            mutable = name in (
                "list", "dict", "set", "defaultdict", "deque", "Counter",
                "OrderedDict",
            )
        if not mutable:
            continue
        for tgt in targets:
            if isinstance(tgt, ast.Name) and not tgt.id.startswith("__"):
                out[tgt.id] = node.lineno
    return out


def _local_bindings(func_node: ast.AST) -> Set[str]:
    """Names bound locally in a function (params + assignments)."""
    out: Set[str] = set()
    args = getattr(func_node, "args", None)
    if args is not None:
        for a in (
            list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
        ):
            out.add(a.arg)
        if args.vararg:
            out.add(args.vararg.arg)
        if args.kwarg:
            out.add(args.kwarg.arg)
    for node in ast.walk(func_node):
        if isinstance(node, ast.Assign):
            for tgt in node.targets:
                if isinstance(tgt, ast.Name):
                    out.add(tgt.id)
        elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            out.add(node.target.id)
        elif isinstance(node, (ast.For, ast.AsyncFor)) and isinstance(
            node.target, ast.Name
        ):
            out.add(node.target.id)
        elif isinstance(node, ast.Global):
            out.difference_update(node.names)
    return out


def _global_mutations(
    func: FuncNode, module_globals: Dict[str, int]
) -> List[Tuple[str, int, int]]:
    """Sites in ``func`` that mutate a module-level mutable global."""
    local = _local_bindings(func.node)
    declared_global: Set[str] = set()
    for node in ast.walk(func.node):
        if isinstance(node, ast.Global):
            declared_global.update(node.names)

    def is_global(name: str) -> bool:
        if name not in module_globals:
            return False
        return name in declared_global or name not in local

    out: List[Tuple[str, int, int]] = []
    for node in ast.walk(func.node):
        if isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for tgt in targets:
                if (
                    isinstance(tgt, ast.Subscript)
                    and isinstance(tgt.value, ast.Name)
                    and is_global(tgt.value.id)
                ):
                    out.append((tgt.value.id, node.lineno, node.col_offset))
                elif isinstance(tgt, ast.Name) and tgt.id in declared_global \
                        and tgt.id in module_globals:
                    out.append((tgt.id, node.lineno, node.col_offset))
        elif isinstance(node, ast.Delete):
            for tgt in node.targets:
                if (
                    isinstance(tgt, ast.Subscript)
                    and isinstance(tgt.value, ast.Name)
                    and is_global(tgt.value.id)
                ):
                    out.append((tgt.value.id, node.lineno, node.col_offset))
        elif isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            recv = node.func.value
            if (
                node.func.attr in _MUTATING_METHODS
                and isinstance(recv, ast.Name)
                and is_global(recv.id)
            ):
                out.append((recv.id, node.lineno, node.col_offset))
    return out


def _worker_roots(project: Project, graph: CallGraph) -> Set[str]:
    roots = set(graph.process_entries)
    names = project.config.worker_entry_names
    for qual, func in graph.functions.items():
        if func.name in names:
            roots.add(qual)
    return roots


@rule(
    "CON002",
    severity=SEV_ERROR,
    summary=(
        "module-level mutable state mutated by code reachable from a "
        "worker-process entry point — the write lands in the child's "
        "copy and silently diverges from the parent"
    ),
)
def con002_worker_global_mutation(project: Project) -> Iterator[Finding]:
    """Worker processes must treat module state as read-only."""
    graph = project.callgraph()
    assert isinstance(graph, CallGraph)
    by_path = _by_path(project)
    roots = _worker_roots(project, graph)
    if not roots:
        return
    # Refs escape into the worker too (callbacks shipped to it), so the
    # closure follows call, scheduled *and* plain ref edges.
    reachable = graph.reachable(
        roots, kinds=frozenset({KIND_CALL, KIND_SCHEDULED, KIND_REF})
    )
    globals_by_path: Dict[str, Dict[str, int]] = {}
    for qual in sorted(reachable):
        func = graph.functions.get(qual)
        if func is None:
            continue
        f = by_path.get(func.path)
        if f is None:
            continue
        if func.path not in globals_by_path:
            globals_by_path[func.path] = _module_mutables(f)
        for name, line, col in _global_mutations(func, globals_by_path[func.path]):
            yield Finding(
                "CON002", SEV_ERROR, func.path, line, col,
                f"{func.qualname}() mutates module-level {name!r} and is "
                "reachable from a worker-process entry point: the write "
                "happens in the worker's copy only; pass state through "
                "the cell protocol instead",
            )


@rule(
    "CON003",
    severity=SEV_ERROR,
    summary=(
        "asyncio loop-owned instance state written from thread context "
        "without call_soon_threadsafe (the serve executor discipline)"
    ),
)
def con003_off_loop_state_write(project: Project) -> Iterator[Finding]:
    """Loop-owned attributes are written on the loop, full stop.

    An attribute a class assigns inside ``async def`` methods is loop
    state. Plain methods reachable from thread entry points
    (``Thread(target=...)``, executor offloads) may read it, but a
    write needs ``loop.call_soon_threadsafe`` — functions posted that
    way run on the loop and are exempt.
    """
    graph = project.callgraph()
    assert isinstance(graph, CallGraph)
    by_path = _by_path(project)

    # (class qualname, attr) pairs assigned inside async defs, per
    # async-package class.
    loop_owned: Set[Tuple[str, str]] = set()
    for qual, func in graph.functions.items():
        f = by_path.get(func.path)
        if f is None or not project.async_scope(f):
            continue
        if not func.is_async or func.cls is None:
            continue
        for node in ast.walk(func.node):
            targets: List[ast.expr] = []
            if isinstance(node, ast.Assign):
                targets = node.targets
            elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
                targets = [node.target]
            for tgt in targets:
                if (
                    isinstance(tgt, ast.Attribute)
                    and isinstance(tgt.value, ast.Name)
                    and tgt.value.id == "self"
                ):
                    loop_owned.add((func.cls, tgt.attr))
    if not loop_owned:
        return

    thread_ctx = graph.reachable(
        graph.thread_entries,
        kinds=frozenset({KIND_CALL, KIND_REF}),
    ) - graph.loop_posted

    for qual in sorted(thread_ctx):
        func = graph.functions.get(qual)
        if func is None or func.cls is None or func.is_async:
            continue
        if qual in graph.loop_posted:
            continue
        f = by_path.get(func.path)
        if f is None or not project.async_scope(f):
            continue
        for node in ast.walk(func.node):
            targets = []
            if isinstance(node, ast.Assign):
                targets = node.targets
            elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
                targets = [node.target]
            for tgt in targets:
                if not (
                    isinstance(tgt, ast.Attribute)
                    and isinstance(tgt.value, ast.Name)
                    and tgt.value.id == "self"
                ):
                    continue
                if (func.cls, tgt.attr) not in loop_owned:
                    continue
                yield Finding(
                    "CON003", SEV_ERROR, func.path, node.lineno,
                    node.col_offset,
                    f"{func.qualname}() runs in thread context but "
                    f"writes self.{tgt.attr}, which async methods of "
                    f"the same class also write — post the update "
                    "through loop.call_soon_threadsafe instead",
                )
