"""Per-file determinism rules: DET001–DET004 and IMP001.

All four DET rules work on resolved dotted call names: the import
table of each module maps local names back to the modules they came
from (``import numpy as np`` → ``np.random.random`` resolves to
``numpy.random.random``; ``from time import perf_counter as clock`` →
``clock()`` resolves to ``time.perf_counter``), so aliasing cannot
dodge the linter.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.lint.findings import SEV_ERROR, SEV_INFO, SEV_WARNING, Finding
from repro.lint.project import Project
from repro.lint.registry import rule

# numpy.random attributes that only *construct seeded machinery* and
# never draw — explicit-seed plumbing is exactly what engine.rng does.
_SAFE_NP_RANDOM = frozenset(
    {"SeedSequence", "BitGenerator", "PCG64", "PCG64DXSM", "MT19937",
     "Philox", "SFC64"}
)

# Wall-clock reads (resolved dotted names). ``time.process_time`` and
# CLOCK_* reads count too: any host-machine clock on the event path
# couples simulated behavior to scheduler noise.
_WALLCLOCK = frozenset(
    {"time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
     "time.perf_counter", "time.perf_counter_ns", "time.process_time",
     "time.process_time_ns", "time.clock_gettime", "time.clock_gettime_ns",
     "datetime.datetime.now", "datetime.datetime.utcnow",
     "datetime.datetime.today", "datetime.date.today"}
)


class ImportTable:
    """Local name → origin mapping for one module."""

    __slots__ = ("modules", "names")

    def __init__(self, tree: ast.Module) -> None:
        # 'np' -> 'numpy'; 'random' -> 'random'
        self.modules: Dict[str, str] = {}
        # 'perf_counter' -> 'time.perf_counter'; 'datetime' -> 'datetime.datetime'
        self.names: Dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    # 'import numpy.random' binds 'numpy'.
                    target = alias.name if alias.asname else alias.name.split(".")[0]
                    self.modules[local] = target
            elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    self.names[local] = f"{node.module}.{alias.name}"

    def resolve(self, node: ast.AST) -> Optional[str]:
        """Resolve a Name/Attribute chain to its imported dotted origin."""
        chain: List[str] = []
        while isinstance(node, ast.Attribute):
            chain.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        chain.reverse()
        root = node.id
        if root in self.names:
            return ".".join([self.names[root], *chain])
        if root in self.modules:
            return ".".join([self.modules[root], *chain])
        return None


def _calls(tree: ast.Module) -> Iterator[ast.Call]:
    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            yield node


@rule(
    "DET001",
    severity=SEV_ERROR,
    summary=(
        "raw random.* / numpy.random draw or generator construction in a "
        "sim-critical package; route randomness through "
        "repro.engine.rng.RngRegistry"
    ),
)
def det001_raw_random(project: Project) -> Iterator[Finding]:
    """No untracked randomness on the event path.

    Flags every call into the stdlib ``random`` module and every
    ``numpy.random`` call except pure seeded-machinery constructors
    (``SeedSequence``/bit generators). Constructing an
    ``np.random.Generator`` directly is flagged too — outside the
    blessed :mod:`repro.engine.rng` module a local generator bypasses
    the keyed-stream registry that keeps draws stable as the code
    evolves (a justified, documented ``# simlint: disable=DET001``
    pragma is the escape hatch).
    """
    for f in project.files:
        if not project.sim_critical(f) or project.rng_blessed(f):
            continue
        table = ImportTable(f.tree)
        for call in _calls(f.tree):
            dotted = table.resolve(call.func)
            if dotted is None:
                continue
            if dotted.startswith("random."):
                yield Finding(
                    "DET001", SEV_ERROR, f.path, call.lineno, call.col_offset,
                    f"call to stdlib {dotted}() in sim-critical code; use a "
                    "seeded stream from repro.engine.rng.RngRegistry",
                )
            elif dotted.startswith("numpy.random."):
                attr = dotted.split(".")[-1]
                if attr in _SAFE_NP_RANDOM:
                    continue
                yield Finding(
                    "DET001", SEV_ERROR, f.path, call.lineno, call.col_offset,
                    f"call to {dotted}() in sim-critical code; draw from a "
                    "keyed repro.engine.rng.RngRegistry stream instead",
                )


@rule(
    "DET002",
    severity=SEV_ERROR,
    summary=(
        "wall-clock read (time.*/datetime.now) on the event path; real "
        "time is allowed only in telemetry packages"
    ),
)
def det002_wall_clock(project: Project) -> Iterator[Finding]:
    """No host-clock reads inside sim-critical packages."""
    for f in project.files:
        if not project.sim_critical(f) or project.wallclock_allowed(f):
            continue
        table = ImportTable(f.tree)
        for call in _calls(f.tree):
            dotted = table.resolve(call.func)
            if dotted in _WALLCLOCK:
                yield Finding(
                    "DET002", SEV_ERROR, f.path, call.lineno, call.col_offset,
                    f"wall-clock read {dotted}() on the event path; virtual "
                    "time comes from the simulator, telemetry belongs in "
                    "parallel/experiments",
                )


def _set_valued(node: ast.AST) -> bool:
    """Whether an expression statically evaluates to a set."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("set", "frozenset")
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
    ):
        # Set algebra (a | b, a - b, ...) stays a set if either side is.
        return _set_valued(node.left) or _set_valued(node.right)
    return False


def _set_assigned_names(tree: ast.Module) -> Set[str]:
    """Names assigned a set-valued expression anywhere in the module."""
    out: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Assign) and _set_valued(node.value):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    out.add(target.id)
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            if _set_valued(node.value) and isinstance(node.target, ast.Name):
                out.add(node.target.id)
    return out


def _unordered_iter(node: ast.AST, set_names: Set[str]) -> Optional[str]:
    """Describe why iterating ``node`` is order-unstable, or None."""
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Name) and func.id in ("set", "frozenset"):
            return f"bare {func.id}(...)"
        if isinstance(func, ast.Attribute) and func.attr == "keys":
            # Literal dicts iterate in source order — deterministic.
            if not isinstance(func.value, ast.Dict):
                return ".keys() of a non-literal dict"
    if isinstance(node, ast.SetComp):
        return "a set comprehension"
    if isinstance(node, ast.Name) and node.id in set_names:
        return f"set-valued name {node.id!r}"
    return None


def _iteration_sites(tree: ast.Module) -> Iterator[Tuple[ast.expr, int, int]]:
    """Every ``for``-iterated expression (statements + comprehensions)."""
    for node in ast.walk(tree):
        if isinstance(node, (ast.For, ast.AsyncFor)):
            yield node.iter, node.iter.lineno, node.iter.col_offset
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                               ast.GeneratorExp)):
            for gen in node.generators:
                yield gen.iter, gen.iter.lineno, gen.iter.col_offset


@rule(
    "DET003",
    severity=SEV_WARNING,
    summary=(
        "iteration over an unordered container (bare set / non-literal "
        ".keys()) in sim-critical code without sorted(...)"
    ),
)
def det003_unordered_iteration(project: Project) -> Iterator[Finding]:
    """Event handlers must not depend on set/hash iteration order.

    Set iteration order depends on hash seeds and insertion history;
    a handler that walks one unsorted feeds hash noise straight into
    the event schedule. Wrap the iterable in ``sorted(...)`` (the fix)
    or a pragma (the documented exception).
    """
    for f in project.files:
        if not project.sim_critical(f):
            continue
        set_names = _set_assigned_names(f.tree)
        for expr, lineno, col in _iteration_sites(f.tree):
            why = _unordered_iter(expr, set_names)
            if why is not None:
                yield Finding(
                    "DET003", SEV_WARNING, f.path, lineno, col,
                    f"iterating {why} in sim-critical code; wrap in "
                    "sorted(...) to pin the order",
                )


@rule(
    "DET004",
    severity=SEV_WARNING,
    summary=(
        "float accumulation with sum() over an unordered (set-typed) "
        "iterable in metrics/core"
    ),
)
def det004_unordered_sum(project: Project) -> Iterator[Finding]:
    """``sum()`` over a set re-associates float addition per hash order."""
    for f in project.files:
        if not project.float_sum_scope(f):
            continue
        set_names = _set_assigned_names(f.tree)
        for call in _calls(f.tree):
            if not (isinstance(call.func, ast.Name) and call.func.id == "sum"):
                continue
            if not call.args:
                continue
            arg = call.args[0]
            why = _unordered_iter(arg, set_names)
            if why is None and isinstance(arg, (ast.GeneratorExp, ast.ListComp)):
                for gen in arg.generators:
                    why = _unordered_iter(gen.iter, set_names)
                    if why is not None:
                        break
            if why is not None:
                yield Finding(
                    "DET004", SEV_WARNING, f.path, call.lineno, call.col_offset,
                    f"sum() over {why}: float accumulation order follows "
                    "hash order; sort the operands first",
                )


def _used_names(tree: ast.Module) -> Set[str]:
    """Every Name referenced (loads/stores) outside import statements,
    plus string entries of ``__all__``."""
    used: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, (ast.Import, ast.ImportFrom)):
            continue
        if isinstance(node, ast.Name):
            used.add(node.id)
        elif isinstance(node, ast.Attribute):
            pass  # the root Name is walked separately
    for node in tree.body:
        if isinstance(node, ast.Assign):
            targets = [t.id for t in node.targets if isinstance(t, ast.Name)]
            if "__all__" in targets and isinstance(node.value, (ast.List, ast.Tuple)):
                for elt in node.value.elts:
                    if isinstance(elt, ast.Constant) and isinstance(elt.value, str):
                        used.add(elt.value)
    return used


@rule(
    "IMP001",
    severity=SEV_INFO,
    summary="unused module-level import (dead-code hygiene)",
)
def imp001_unused_import(project: Project) -> Iterator[Finding]:
    """Top-level imports never referenced in the module.

    ``__init__.py`` files are skipped (imports there *are* the public
    API), as are ``__future__`` imports and explicit re-export aliases
    (``import x as x``).
    """
    for f in project.files:
        if f.is_init:
            continue
        used = _used_names(f.tree)
        for node in f.tree.body:
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    if alias.asname == alias.name:
                        continue
                    if local not in used:
                        yield Finding(
                            "IMP001", SEV_INFO, f.path, node.lineno,
                            node.col_offset,
                            f"import {alias.name!r} is never used",
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.module == "__future__":
                    continue
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    if alias.asname == alias.name:
                        continue
                    if local not in used:
                        yield Finding(
                            "IMP001", SEV_INFO, f.path, node.lineno,
                            node.col_offset,
                            f"imported name {local!r} is never used",
                        )
