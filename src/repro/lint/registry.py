"""The rule registry.

A rule is a function ``(Project) -> Iterable[Finding]`` registered
under a stable id with a default severity and a one-line summary.
Registration happens at import time via the :func:`rule` decorator;
:func:`get_rules` resolves a user selection (``--rule`` flags) to the
registered callables.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence

from repro.lint.findings import SEVERITY_RANK, Finding
from repro.lint.project import Project

RuleFn = Callable[[Project], Iterable[Finding]]


@dataclass(frozen=True)
class Rule:
    """One registered lint rule."""

    id: str
    severity: str
    summary: str
    check: RuleFn
    #: Opt-in rules (``default=False``) never run unless selected by
    #: id — the ``--mypyc-report`` readiness pass lives behind this.
    default: bool = True


#: All registered rules, keyed by id (import the rule modules to fill).
RULES: Dict[str, Rule] = {}


def rule(
    rule_id: str, *, severity: str, summary: str, default: bool = True
) -> Callable[[RuleFn], RuleFn]:
    """Class-less registration decorator for rule functions."""
    if severity not in SEVERITY_RANK:
        raise ValueError(f"unknown severity {severity!r} for rule {rule_id}")

    def register(fn: RuleFn) -> RuleFn:
        if rule_id in RULES:
            raise ValueError(f"duplicate rule id {rule_id}")
        RULES[rule_id] = Rule(
            id=rule_id, severity=severity, summary=summary, check=fn,
            default=default,
        )
        return fn

    return register


def all_rule_ids() -> List[str]:
    """Every registered rule id, sorted."""
    return sorted(RULES)


def default_rule_ids() -> List[str]:
    """The rule ids that run when no selection is given."""
    return [rid for rid in sorted(RULES) if RULES[rid].default]


def get_rules(selection: Optional[Sequence[str]] = None) -> List[Rule]:
    """Resolve a rule-id selection (None = every default rule)."""
    if selection is None:
        return [RULES[rid] for rid in default_rule_ids()]
    out = []
    for rid in selection:
        if rid not in RULES:
            raise KeyError(
                f"unknown rule {rid!r} (known: {', '.join(all_rule_ids())})"
            )
        out.append(RULES[rid])
    return out
