"""Fingerprint-stable finding baseline — the simlint ratchet.

Whole-program rules fire on real latent findings the moment they land;
without a ratchet they could only ship at error severity after a
big-bang sweep of the whole tree. The baseline records the
*judged-acceptable* findings of one audited run; subsequent runs
subtract them, so the exit-code policy applies only to findings that
are genuinely new. CI fails on any non-baselined error finding, and
the baseline file is committed — shrinking it is progress, growing it
is a reviewed decision.

Fingerprints must survive unrelated edits: a finding is identified by

* the rule id,
* the file path (as reported, i.e. relative to the lint invocation),
* the **stripped source-line text** of the flagged line, and
* its ordinal among identical (rule, path, line-text) triples.

Line *numbers* are deliberately excluded — inserting a comment above a
baselined finding shifts every line number but changes none of the
fingerprints, so nothing resurrects. Messages are excluded too: taint
messages embed call chains whose line numbers move for the same
reason.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.lint.findings import Finding

#: The conventional committed baseline file, auto-loaded by the CLI
#: when present (pass ``--no-baseline`` to lint without it).
DEFAULT_BASELINE = "lint-baseline.json"

_BASELINE_VERSION = 1


def _line_text(source: Optional[str], line: int) -> str:
    if source is None:
        return ""
    lines = source.splitlines()
    if 1 <= line <= len(lines):
        return lines[line - 1].strip()
    return ""


def _normalize_path(path: str) -> str:
    """Invocation-form-independent path: ``lint src/`` and ``lint
    /abs/path/src`` must produce identical fingerprints."""
    ap = os.path.abspath(path)
    cwd = os.getcwd()
    if ap == cwd or ap.startswith(cwd + os.sep):
        path = os.path.relpath(ap, cwd)
    return path.replace("\\", "/").lstrip("./")


def fingerprint_findings(
    findings: Sequence[Finding],
    sources: Dict[str, str],
) -> List[Tuple[Finding, str]]:
    """Pair each finding with its stable fingerprint.

    ``sources`` maps finding paths to raw file contents (used for the
    flagged line's text). Ordinals disambiguate repeated identical
    lines — two ``random.random()`` calls on textually identical lines
    get ordinals 0 and 1 in (line, col) order, so fixing one of them
    surfaces exactly one new finding.
    """
    ordered = sorted(findings, key=lambda f: f.sort_key)
    counts: Dict[Tuple[str, str, str], int] = {}
    out: List[Tuple[Finding, str]] = []
    by_input: Dict[Finding, str] = {}
    for f in ordered:
        text = _line_text(sources.get(f.path), f.line)
        base = (f.rule, _normalize_path(f.path), text)
        ordinal = counts.get(base, 0)
        counts[base] = ordinal + 1
        digest = hashlib.sha256(
            "\x1f".join([*base, str(ordinal)]).encode("utf-8")
        ).hexdigest()[:16]
        by_input[f] = digest
    for f in findings:
        out.append((f, by_input[f]))
    return out


@dataclass
class Baseline:
    """The accepted-findings set loaded from / saved to disk."""

    #: fingerprint → descriptive entry (rule/path/message snapshot —
    #: informational only; matching is by fingerprint).
    entries: Dict[str, Dict[str, Any]] = field(default_factory=dict)

    def __contains__(self, fingerprint: str) -> bool:
        return fingerprint in self.entries

    def __len__(self) -> int:
        return len(self.entries)

    @classmethod
    def load(cls, path: str) -> "Baseline":
        with open(path, encoding="utf-8") as fh:
            data = json.load(fh)
        if not isinstance(data, dict) or "fingerprints" not in data:
            raise ValueError(f"{path}: not a simlint baseline file")
        entries = data["fingerprints"]
        if not isinstance(entries, dict):
            raise ValueError(f"{path}: malformed fingerprint table")
        return cls(entries=dict(entries))

    @classmethod
    def from_findings(
        cls, pairs: Sequence[Tuple[Finding, str]]
    ) -> "Baseline":
        entries: Dict[str, Dict[str, Any]] = {}
        for finding, fp in sorted(pairs, key=lambda p: p[0].sort_key):
            entries[fp] = {
                "rule": finding.rule,
                "severity": finding.severity,
                "path": _normalize_path(finding.path),
                "message": finding.message,
            }
        return cls(entries=entries)

    def save(self, path: str) -> None:
        payload = {
            "version": _BASELINE_VERSION,
            "count": len(self.entries),
            "fingerprints": {
                fp: self.entries[fp] for fp in sorted(self.entries)
            },
        }
        tmp = f"{path}.tmp.{os.getpid()}"
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
        os.replace(tmp, path)
