"""Interprocedural determinism taint: DET101–DET103.

The per-file rules (DET001/DET002) stop at module boundaries: a
``time.time()`` buried in a shared utility escapes them entirely the
moment the utility lives outside a sim-critical package, even though a
sim-critical caller feeds the read straight into the event schedule.
The taint rules close that hole with the whole-program call graph:

1. every function's body is scanned for **nondeterminism sources** —
   raw ``random``/``numpy.random`` draws, wall-clock reads, ``id()``,
   ``os.environ``/``os.getenv`` reads, unordered-``set`` iteration;
2. sources propagate backwards over call and scheduled-callback edges
   (a tainted helper taints everyone who invokes it, and a tainted
   event callback taints the schedule);
3. a finding fires at the **boundary call site** — the edge where a
   sim-critical caller invokes a callee *outside* the sim-critical
   zone whose closure contains a source. Sources inside sim-critical
   files are DET001/DET002's business (they flag the read directly),
   so the taint rules report each escaping chain exactly once, at the
   edge where it leaves the zone the per-file rules can see.

Messages carry the offending chain (``helper.now_ms → time.time at
util/clock.py:12``) so the fix — threading virtual time / a seeded
stream through the helper — is obvious from the finding alone.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterator, List, Optional, Set

from repro.lint.callgraph import KIND_CALL, KIND_SCHEDULED, CallGraph
from repro.lint.findings import SEV_ERROR, Finding
from repro.lint.project import Project, SourceFile
from repro.lint.registry import rule
from repro.lint.rules_determinism import (
    _SAFE_NP_RANDOM,
    _WALLCLOCK,
    ImportTable,
    _set_assigned_names,
    _iteration_sites,
    _unordered_iter,
)

#: Taint kinds.
K_RANDOM = "random"
K_WALLCLOCK = "wallclock"
K_OTHER = "other"  # id() / os.environ / unordered-set iteration

_TAINT_EDGE_KINDS = frozenset({KIND_CALL, KIND_SCHEDULED})


@dataclass(frozen=True)
class TaintSource:
    """One direct nondeterminism source inside a function body."""

    kind: str
    what: str
    func: str
    path: str
    line: int


def _direct_sources(
    project: Project, graph: CallGraph
) -> Dict[str, List[TaintSource]]:
    """Scan every function body for direct nondeterminism sources."""
    out: Dict[str, List[TaintSource]] = {}
    tables: Dict[str, ImportTable] = {}
    set_names: Dict[str, Set[str]] = {}
    by_path: Dict[str, SourceFile] = {f.path: f for f in project.files}

    for qual, func in graph.functions.items():
        f = by_path.get(func.path)
        if f is None:
            continue
        if f.path not in tables:
            tables[f.path] = ImportTable(f.tree)
            set_names[f.path] = _set_assigned_names(f.tree)
        table = tables[f.path]
        sources: List[TaintSource] = []
        for node in ast.walk(func.node):
            if isinstance(node, ast.Call):
                dotted = table.resolve(node.func)
                if dotted is not None:
                    if dotted.startswith("random."):
                        sources.append(TaintSource(
                            K_RANDOM, f"{dotted}()", qual, f.path, node.lineno,
                        ))
                    elif dotted.startswith("numpy.random."):
                        if dotted.split(".")[-1] not in _SAFE_NP_RANDOM:
                            sources.append(TaintSource(
                                K_RANDOM, f"{dotted}()", qual, f.path,
                                node.lineno,
                            ))
                    elif dotted in _WALLCLOCK:
                        sources.append(TaintSource(
                            K_WALLCLOCK, f"{dotted}()", qual, f.path,
                            node.lineno,
                        ))
                    elif dotted in ("os.getenv", "os.environ.get"):
                        sources.append(TaintSource(
                            K_OTHER, f"{dotted}()", qual, f.path, node.lineno,
                        ))
                elif isinstance(node.func, ast.Name) and node.func.id == "id":
                    sources.append(TaintSource(
                        K_OTHER, "id()", qual, f.path, node.lineno,
                    ))
            elif isinstance(node, ast.Subscript):
                dotted = table.resolve(node.value)
                if dotted == "os.environ":
                    sources.append(TaintSource(
                        K_OTHER, "os.environ[...]", qual, f.path, node.lineno,
                    ))
        # Unordered-set iteration sites inside this function.
        names = set_names[f.path]
        for expr, lineno, _col in _iteration_sites(func.node):
            why = _unordered_iter(expr, names)
            if why is not None:
                sources.append(TaintSource(
                    K_OTHER, f"iteration over {why}", qual, f.path, lineno,
                ))
        if sources:
            out[qual] = sources
    return out


def _closures(
    graph: CallGraph, direct: Dict[str, List[TaintSource]]
) -> Dict[str, FrozenSet[str]]:
    """Fixpoint: the taint-kind closure of every function."""
    closure: Dict[str, Set[str]] = {
        q: {s.kind for s in direct.get(q, ())} for q in graph.functions
    }
    changed = True
    while changed:
        changed = False
        for qual in graph.functions:
            kinds = closure[qual]
            before = len(kinds)
            for site in graph.calls.get(qual, ()):
                if site.kind in _TAINT_EDGE_KINDS and site.callee in closure:
                    kinds |= closure[site.callee]
            if len(kinds) != before:
                changed = True
    return {q: frozenset(k) for q, k in closure.items()}


def _in_sim_critical(project: Project, path: str) -> bool:
    f = _file_of(project, path)
    return f is not None and project.sim_critical(f)


def _file_of(project: Project, path: str) -> Optional[SourceFile]:
    for f in project.files:
        if f.path == path:
            return f
    return None


@dataclass
class _TaintAnalysis:
    """Shared per-run taint computation (built once, used by 3 rules)."""

    graph: CallGraph
    direct: Dict[str, List[TaintSource]]
    #: Per-function closure over *escaping* sources only — sources
    #: defined outside sim-critical files, i.e. the ones DET001/DET002
    #: cannot see. Boundary findings key off this closure.
    escaping_closures: Dict[str, FrozenSet[str]]
    escaping: Dict[str, List[TaintSource]]
    by_path: Dict[str, SourceFile]


def _analysis(project: Project) -> _TaintAnalysis:
    cached = getattr(project, "_taint_analysis", None)
    if cached is not None:
        return cached  # type: ignore[no-any-return]
    graph = project.callgraph()
    assert isinstance(graph, CallGraph)
    direct = _direct_sources(project, graph)
    escaping = {
        qual: kept
        for qual, srcs in direct.items()
        if (kept := [s for s in srcs if not _in_sim_critical(project, s.path)])
    }
    analysis = _TaintAnalysis(
        graph=graph,
        direct=direct,
        escaping_closures=_closures(graph, escaping),
        escaping=escaping,
        by_path={f.path: f for f in project.files},
    )
    # Cached on the Project object: the three DET1xx rules (and CON001)
    # share one whole-program pass per lint run.
    project._taint_analysis = analysis  # type: ignore[attr-defined]
    return analysis


def _describe_chain(
    analysis: _TaintAnalysis, callee: str, kind: str
) -> str:
    """Human chain from ``callee`` to the nearest escaping source."""
    tainted = {
        q for q, srcs in analysis.escaping.items()
        if any(s.kind == kind for s in srcs)
    }
    chain = analysis.graph.chain(callee, tainted)
    if not chain:
        return callee
    source = next(
        s for s in analysis.escaping[chain[-1]] if s.kind == kind
    )
    hops = " -> ".join(chain)
    return f"{hops} -> {source.what} at {source.path}:{source.line}"


def _boundary_findings(
    project: Project, kind: str, rule_id: str, severity: str, advice: str,
    *, caller_exempt: str = "",
) -> Iterator[Finding]:
    """Findings at sim-critical call sites whose callee closure carries
    ``kind`` taint originating *outside* the sim-critical zone."""
    analysis = _analysis(project)
    graph = analysis.graph
    for qual, func in graph.functions.items():
        caller_file = analysis.by_path.get(func.path)
        if caller_file is None or not project.sim_critical(caller_file):
            continue
        if caller_exempt == "wallclock" and project.wallclock_allowed(caller_file):
            continue
        if caller_exempt == "rng" and project.rng_blessed(caller_file):
            continue
        for site in graph.calls.get(qual, ()):
            if site.kind not in _TAINT_EDGE_KINDS:
                continue
            callee = graph.functions.get(site.callee)
            if callee is None:
                continue
            # Boundary edge: callee lives outside the sim-critical
            # zone (inside it, DET001/DET002 see the source directly),
            # and its closure carries a source the per-file rules
            # cannot flag — one defined outside sim-critical files.
            if _in_sim_critical(project, callee.path):
                continue
            if kind not in analysis.escaping_closures.get(
                site.callee, frozenset()
            ):
                continue
            chain = _describe_chain(analysis, site.callee, kind)
            yield Finding(
                rule_id, severity, func.path, site.line, site.col,
                f"call into {site.callee}() carries {kind} "
                f"nondeterminism into sim-critical code "
                f"(via {chain}); {advice}",
            )


@rule(
    "DET101",
    severity=SEV_ERROR,
    summary=(
        "sim-critical call into a helper whose call closure draws raw "
        "random/numpy.random numbers (interprocedural DET001)"
    ),
)
def det101_random_taint(project: Project) -> Iterator[Finding]:
    """Raw randomness reached through helper calls, across files."""
    yield from _boundary_findings(
        project, K_RANDOM, "DET101", SEV_ERROR,
        "route the helper's randomness through a seeded "
        "repro.engine.rng.RngRegistry stream",
        caller_exempt="rng",
    )


@rule(
    "DET102",
    severity=SEV_ERROR,
    summary=(
        "sim-critical call into a helper whose call closure reads the "
        "wall clock (interprocedural DET002)"
    ),
)
def det102_wallclock_taint(project: Project) -> Iterator[Finding]:
    """Wall-clock reads reached through helper calls, across files."""
    yield from _boundary_findings(
        project, K_WALLCLOCK, "DET102", SEV_ERROR,
        "thread virtual time (sim.now) into the helper instead of "
        "letting it read host clocks",
        caller_exempt="wallclock",
    )


@rule(
    "DET103",
    severity=SEV_ERROR,
    summary=(
        "order/identity nondeterminism (id(), os.environ reads, "
        "unordered-set iteration) on the event path — directly or "
        "through helper calls"
    ),
)
def det103_other_taint(project: Project) -> Iterator[Finding]:
    """Identity/environment/iteration-order nondeterminism on the path.

    Unlike randomness and wall clocks, these sources have no per-file
    error rule, so DET103 flags *direct* uses inside sim-critical files
    too, not just escaped helper chains: ``id()`` values change per
    process (breaking any ordering or hashing built on them),
    ``os.environ`` reads couple behavior to launcher state, and set
    iteration order follows hash seeds.
    """
    analysis = _analysis(project)
    # Direct uses inside sim-critical files (except set iteration,
    # which DET003 already reports per file with better context).
    for qual, sources in sorted(analysis.direct.items()):
        func = analysis.graph.functions.get(qual)
        if func is None:
            continue
        f = analysis.by_path.get(func.path)
        if f is None or not project.sim_critical(f):
            continue
        for src in sources:
            if src.kind != K_OTHER or src.what.startswith("iteration over"):
                continue
            yield Finding(
                "DET103", SEV_ERROR, func.path, src.line, 0,
                f"{src.what} in sim-critical code: the value depends on "
                "process/launcher state, not simulation inputs; pass it "
                "in as explicit configuration",
            )
    yield from _boundary_findings(
        project, K_OTHER, "DET103", SEV_ERROR,
        "make the helper take its inputs explicitly (no process "
        "identity, environment reads, or hash-order iteration)",
    )
