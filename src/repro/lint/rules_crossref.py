"""Cross-file invariant rules: KEY001 (store-key drift), TRC001
(trace-event coverage), and SCH001 (scheduler-registry drift).

Both rules cross-reference two ASTs instead of importing anything: the
dataclass that *defines* a schema and the code that *consumes* it. The
definitions are discovered by name in the linted file set, so the
rules work unchanged on sandbox copies in tests and silently skip when
the relevant files are outside the lint scope (e.g. ``repro lint
src/repro/network``).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Optional, Set, Tuple

from repro.lint.findings import SEV_ERROR, Finding
from repro.lint.project import (
    Project,
    SourceFile,
    dataclass_fields,
    is_dataclass,
)
from repro.lint.registry import rule


def _find_method(cls: ast.ClassDef, name: str) -> Optional[ast.FunctionDef]:
    for node in cls.body:
        if isinstance(node, ast.FunctionDef) and node.name == name:
            return node
    return None


def _calls_asdict(fn: ast.FunctionDef) -> bool:
    """Whether the function calls ``asdict`` / ``dataclasses.asdict``."""
    for node in ast.walk(fn):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if isinstance(func, ast.Name) and func.id == "asdict":
            return True
        if isinstance(func, ast.Attribute) and func.attr == "asdict":
            return True
    return False


def _string_keys(fn: ast.FunctionDef) -> Set[str]:
    """String keys the serializer emits: dict-literal keys and
    ``out["key"] = ...`` subscript-assignment targets."""
    keys: Set[str] = set()
    for node in ast.walk(fn):
        if isinstance(node, ast.Dict):
            for key in node.keys:
                if isinstance(key, ast.Constant) and isinstance(key.value, str):
                    keys.add(key.value)
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                if (
                    isinstance(target, ast.Subscript)
                    and isinstance(target.slice, ast.Constant)
                    and isinstance(target.slice.value, str)
                ):
                    keys.add(target.slice.value)
    return keys


def _popped_keys(fn: ast.FunctionDef) -> Set[str]:
    """Keys removed with ``<dict>.pop("key", ...)`` or ``del d["key"]``."""
    keys: Set[str] = set()
    for node in ast.walk(fn):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "pop"
            and node.args
            and isinstance(node.args[0], ast.Constant)
            and isinstance(node.args[0].value, str)
        ):
            keys.add(node.args[0].value)
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                if (
                    isinstance(target, ast.Subscript)
                    and isinstance(target.slice, ast.Constant)
                    and isinstance(target.slice.value, str)
                ):
                    keys.add(target.slice.value)
    return keys


def _check_serializer(
    cls_file: SourceFile,
    cls: ast.ClassDef,
    ser_file: SourceFile,
    ser: ast.FunctionDef,
    ser_label: str,
) -> Iterator[Finding]:
    """Every dataclass field must survive into the serialized dict.

    Generic ``asdict`` covers every field automatically, *except* keys
    the serializer then pops without re-adding. A hand-written dict
    must name every field explicitly.
    """
    fields = dataclass_fields(cls)
    if not fields:
        return
    generic = _calls_asdict(ser)
    emitted = _string_keys(ser)
    popped = _popped_keys(ser)
    for name, lineno in sorted(fields.items()):
        if generic:
            covered = name not in popped or name in emitted
        else:
            covered = name in emitted
        if not covered:
            yield Finding(
                "KEY001", SEV_ERROR, ser_file.path, ser.lineno, ser.col_offset,
                f"{cls.name}.{name} (defined at {cls_file.path}:{lineno}) is "
                f"not reflected in {ser_label}; the store content key would "
                "alias configs that differ in this field",
            )


#: (dataclass, serializer) pairs the store key is built from. The
#: serializer is either a top-level function or ``Class.to_dict``.
_KEY_PAIRS: Tuple[Tuple[str, str], ...] = (
    ("ExperimentConfig", "config_to_dict"),
    ("ScaleProfile", "config_to_dict"),
    ("FaultSpec", "FaultSpec.to_dict"),
    ("ChaosSpec", "ChaosSpec.to_dict"),
    ("TransportConfig", "transport_to_dict"),
    ("CCConfig", "cc_config_to_dict"),
)


@rule(
    "KEY001",
    severity=SEV_ERROR,
    summary=(
        "store-key drift: a config dataclass field is missing from the "
        "config_key serialization chain"
    ),
)
def key001_store_key_drift(project: Project) -> Iterator[Finding]:
    """Cross-reference config dataclasses with their serializers.

    A config field that never reaches :func:`config_to_dict`'s output
    silently aliases distinct experiment cells onto one cache entry —
    the exact failure the content-keyed result store exists to
    prevent. Skips pairs whose definition or serializer is outside the
    linted set.
    """
    for cls_name, ser_name in _KEY_PAIRS:
        found_cls = project.find_class(cls_name)
        if found_cls is None or not is_dataclass(found_cls[1]):
            continue
        cls_file, cls = found_cls
        ser: Optional[ast.FunctionDef]
        if "." in ser_name:
            owner_name, method_name = ser_name.split(".", 1)
            owner = project.find_class(owner_name)
            if owner is None:
                continue
            ser_file, owner_cls = owner
            ser = _find_method(owner_cls, method_name)
        else:
            found_fn = project.find_function(ser_name)
            if found_fn is None:
                continue
            ser_file, ser = found_fn
        if ser is None:
            continue
        yield from _check_serializer(cls_file, cls, ser_file, ser, ser_name)

    # config_key must hash the full config_to_dict blob, not some
    # ad-hoc subset.
    found_key = project.find_function("config_key")
    found_dict = project.find_function("config_to_dict")
    if found_key is not None and found_dict is not None:
        key_file, key_fn = found_key
        names = {
            n.id for n in ast.walk(key_fn) if isinstance(n, ast.Name)
        }
        if "config_to_dict" not in names:
            yield Finding(
                "KEY001", SEV_ERROR, key_file.path, key_fn.lineno,
                key_fn.col_offset,
                "config_key does not hash config_to_dict(cfg); the store "
                "key no longer covers the full configuration",
            )


def _schedulers_registry(f: SourceFile) -> Optional[Tuple[Set[str], int]]:
    """String keys of a top-level ``SCHEDULERS = {...}`` dict literal."""
    for node in f.tree.body:
        if isinstance(node, ast.AnnAssign):
            targets = [node.target] if isinstance(node.target, ast.Name) else []
            value = node.value
        elif isinstance(node, ast.Assign):
            targets = [t for t in node.targets if isinstance(t, ast.Name)]
            value = node.value
        else:
            continue
        if not any(t.id == "SCHEDULERS" for t in targets):
            continue
        if not isinstance(value, ast.Dict):
            return None
        keys = {
            k.value for k in value.keys
            if isinstance(k, ast.Constant) and isinstance(k.value, str)
        }
        return keys, node.lineno
    return None


def _cli_scheduler_choices(f: SourceFile) -> Optional[Tuple[Set[str], int]]:
    """Literal ``choices`` of an ``add_argument("--scheduler", ...)``."""
    for node in ast.walk(f.tree):
        if not (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "add_argument"
            and node.args
            and isinstance(node.args[0], ast.Constant)
            and node.args[0].value == "--scheduler"
        ):
            continue
        for kw in node.keywords:
            if kw.arg == "choices" and isinstance(kw.value, (ast.List, ast.Tuple)):
                return {
                    elt.value for elt in kw.value.elts
                    if isinstance(elt, ast.Constant)
                    and isinstance(elt.value, str)
                }, node.lineno
        return set(), node.lineno
    return None


@rule(
    "SCH001",
    severity=SEV_ERROR,
    summary=(
        "scheduler-registry drift: the SCHEDULERS registry and the CLI "
        "--scheduler choices disagree"
    ),
)
def sch001_scheduler_registry_drift(project: Project) -> Iterator[Finding]:
    """Cross-reference the kernel registry with the CLI surface.

    A scheduler registered in :data:`repro.engine.scheduler.SCHEDULERS`
    but missing from the CLI's ``--scheduler`` choices is unreachable
    from the command line; a CLI choice without a registry entry fails
    at :func:`make_scheduler` time deep inside the first cell. Both
    directions are drift the type system cannot catch, because the
    linkage is an environment-variable string. Skips silently when
    either file is outside the linted set.
    """
    registry = None
    choices = None
    for f in project.files:
        if registry is None:
            registry = _schedulers_registry(f)
            if registry is not None:
                registry_file = f
        if choices is None:
            choices = _cli_scheduler_choices(f)
            if choices is not None:
                choices_file = f
    if registry is None or choices is None:
        return
    registry_keys, registry_line = registry
    choice_keys, choices_line = choices
    for name in sorted(registry_keys - choice_keys):
        yield Finding(
            "SCH001", SEV_ERROR, choices_file.path, choices_line, 0,
            f"scheduler {name!r} (registered at {registry_file.path}:"
            f"{registry_line}) is missing from the CLI --scheduler choices",
        )
    for name in sorted(choice_keys - registry_keys):
        yield Finding(
            "SCH001", SEV_ERROR, choices_file.path, choices_line, 0,
            f"CLI --scheduler choice {name!r} has no entry in the "
            f"SCHEDULERS registry ({registry_file.path}:{registry_line}); "
            "selecting it raises at make_scheduler time",
        )


def _ev_constants(f: SourceFile) -> Dict[str, int]:
    """Top-level ``EV_* = "tag"`` assignments → ``name -> lineno``."""
    out: Dict[str, int] = {}
    for node in f.tree.body:
        if not isinstance(node, ast.Assign):
            continue
        if not (isinstance(node.value, ast.Constant)
                and isinstance(node.value.value, str)):
            continue
        for target in node.targets:
            if isinstance(target, ast.Name) and target.id.startswith("EV_"):
                out[target.id] = node.lineno
    return out


def _all_events_names(f: SourceFile) -> Optional[Set[str]]:
    """The EV_* names listed in the module's ``ALL_EVENTS`` tuple."""
    for node in f.tree.body:
        if not isinstance(node, ast.Assign):
            continue
        targets = [t.id for t in node.targets if isinstance(t, ast.Name)]
        if "ALL_EVENTS" not in targets:
            continue
        if isinstance(node.value, (ast.Tuple, ast.List)):
            return {
                elt.id for elt in node.value.elts if isinstance(elt, ast.Name)
            }
    return None


def _names_in(node: ast.AST) -> Set[str]:
    return {n.id for n in ast.walk(node) if isinstance(n, ast.Name)}


@rule(
    "TRC001",
    severity=SEV_ERROR,
    summary=(
        "trace-event coverage: an EV_* constant is missing from "
        "ALL_EVENTS, the Tracer hooks, or the TraceAuditor dispatch"
    ),
)
def trc001_trace_event_coverage(project: Project) -> Iterator[Finding]:
    """Every trace event tag must be fully wired.

    A new ``EV_*`` tag that is defined but not listed in
    ``ALL_EVENTS``, never emitted by a :class:`Tracer` hook, or not
    acknowledged by the :class:`TraceAuditor` dispatch is a latent
    hole: records either can't be produced, or flow past the auditor's
    invariants unchecked. The auditor must name *every* tag, even ones
    whose only invariant is time monotonicity — that is what keeps its
    unknown-tag backstop honest.
    """
    records_file: Optional[SourceFile] = None
    ev_defs: Dict[str, int] = {}
    for f in project.files:
        consts = _ev_constants(f)
        if consts and _all_events_names(f) is not None:
            records_file, ev_defs = f, consts
            break
    if records_file is None:
        return

    listed = _all_events_names(records_file) or set()
    for name, lineno in sorted(ev_defs.items()):
        if name not in listed:
            yield Finding(
                "TRC001", SEV_ERROR, records_file.path, lineno, 0,
                f"{name} is not listed in ALL_EVENTS",
            )

    tracer = project.find_class("Tracer")
    if tracer is not None:
        tracer_file, tracer_cls = tracer
        referenced = _names_in(tracer_cls)
        for name, _ in sorted(ev_defs.items()):
            if name not in referenced:
                yield Finding(
                    "TRC001", SEV_ERROR, tracer_file.path, tracer_cls.lineno, 0,
                    f"no Tracer hook emits {name}; records with this tag "
                    "can never reach the sinks",
                )

    auditor = project.find_class("TraceAuditor")
    if auditor is not None:
        auditor_file, auditor_cls = auditor
        observe = _find_method(auditor_cls, "observe")
        handler_scope = observe if observe is not None else auditor_cls
        referenced = _names_in(handler_scope)
        for name, _ in sorted(ev_defs.items()):
            if name not in referenced:
                yield Finding(
                    "TRC001", SEV_ERROR, auditor_file.path,
                    handler_scope.lineno, 0,
                    f"TraceAuditor.observe has no handler mentioning {name}; "
                    "list it explicitly (even as a time-only event) so the "
                    "unknown-tag backstop stays meaningful",
                )
