"""Robustness rules: ERR001, ERR002.

The supervised campaign runtime (:mod:`repro.parallel.supervisor`)
guarantees that every failure surfaces as structured data — a manifest
record with a taxonomy ``error_kind`` — never as a silently swallowed
exception. That contract is only as strong as the weakest ``except``
in the tree, so ERR001 statically forbids the two constructs that lose
errors without a trace:

* a bare ``except:`` — it catches ``SystemExit`` and
  ``KeyboardInterrupt`` too, so even a Ctrl-C drain can be eaten;
* ``except Exception:`` / ``except BaseException:`` whose body only
  passes — the error is caught broadly and then discarded.

A broad handler with a *real* body (logging, classification, cleanup,
re-raise) is fine; catching a specific exception and ignoring it
(``except OSError: pass``) is a deliberate, reviewable decision and is
fine too. Justified exceptions to the rule carry a
``# simlint: disable=ERR001`` pragma with a comment saying why.

ERR002 guards the asyncio service packages (``serve``): an
``asyncio.create_task(...)`` whose returned handle is immediately
dropped is a fire-and-forget task — the event loop holds only a weak
reference, so the task can be garbage-collected mid-flight, and any
exception it raises is reported nowhere. Handles must be stored,
awaited, or otherwise consumed; deliberate fire-and-forget carries a
``# simlint: disable=ERR002`` pragma.
"""

from __future__ import annotations

import ast
from typing import Iterator, List

from repro.lint.findings import SEV_ERROR, Finding
from repro.lint.project import Project
from repro.lint.registry import rule

#: Exception names considered "broad": catching these and discarding
#: the error hides every failure class behind one silent handler.
_BROAD_NAMES = frozenset({"Exception", "BaseException"})


def _names_broad(node: ast.expr) -> bool:
    """Whether an ``except`` type expression names a broad exception.

    Handles plain names, dotted ``builtins.Exception``, and tuples
    containing either.
    """
    if isinstance(node, ast.Name):
        return node.id in _BROAD_NAMES
    if isinstance(node, ast.Attribute):
        return node.attr in _BROAD_NAMES
    if isinstance(node, ast.Tuple):
        return any(_names_broad(elt) for elt in node.elts)
    return False


def _body_swallows(body: List[ast.stmt]) -> bool:
    """Whether a handler body discards the error without acting on it.

    Only ``pass`` statements and bare ``...`` expressions count; any
    other statement (logging, re-raise, assignment, return of a
    fallback value) is taken as a deliberate handling decision.
    """
    for stmt in body:
        if isinstance(stmt, ast.Pass):
            continue
        if (
            isinstance(stmt, ast.Expr)
            and isinstance(stmt.value, ast.Constant)
            and stmt.value.value is Ellipsis
        ):
            continue
        return False
    return True


@rule(
    "ERR001",
    severity=SEV_ERROR,
    summary=(
        "bare except: or broad except Exception/BaseException whose body "
        "only passes — errors must surface as data, never be silently "
        "swallowed"
    ),
)
def err001_swallowed_exceptions(project: Project) -> Iterator[Finding]:
    """No silent error loss anywhere in the tree.

    Every failure in this repo is supposed to end up as structured data
    (a taxonomy ``error_kind`` in the run manifest, a lint finding, a
    raised error) — a handler that catches everything and does nothing
    breaks that chain invisibly.
    """
    for f in project.files:
        for node in ast.walk(f.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield Finding(
                    "ERR001", SEV_ERROR, f.path, node.lineno, node.col_offset,
                    "bare except: catches SystemExit/KeyboardInterrupt too; "
                    "name the exceptions this handler is prepared to handle",
                )
            elif _names_broad(node.type) and _body_swallows(node.body):
                yield Finding(
                    "ERR001", SEV_ERROR, f.path, node.lineno, node.col_offset,
                    "broad exception handler silently swallows the error; "
                    "handle it, record it as data, or catch something "
                    "specific",
                )


def _is_create_task(call: ast.Call) -> bool:
    """Whether a call is ``asyncio.create_task`` / ``create_task``.

    Also matches ``loop.create_task`` / ``ensure_future`` spellings —
    every way of launching a task whose handle could be dropped.
    """
    fn = call.func
    if isinstance(fn, ast.Name):
        return fn.id in ("create_task", "ensure_future")
    if isinstance(fn, ast.Attribute):
        return fn.attr in ("create_task", "ensure_future")
    return False


@rule(
    "ERR002",
    severity=SEV_ERROR,
    summary=(
        "asyncio.create_task(...) whose returned handle is dropped — the "
        "loop keeps only a weak reference, so the task can be collected "
        "mid-flight and its exceptions vanish"
    ),
)
def err002_dropped_task_handle(project: Project) -> Iterator[Finding]:
    """No fire-and-forget tasks in the asyncio service packages.

    A ``create_task`` call used as a bare expression statement discards
    the only strong reference to the task. Store the handle, await it,
    or pass it into a collection; deliberate fire-and-forget needs a
    ``# simlint: disable=ERR002`` pragma explaining why task loss and
    silent exceptions are acceptable there.
    """
    for f in project.files:
        if not project.async_scope(f):
            continue
        for node in ast.walk(f.tree):
            if (
                isinstance(node, ast.Expr)
                and isinstance(node.value, ast.Call)
                and _is_create_task(node.value)
            ):
                yield Finding(
                    "ERR002", SEV_ERROR, f.path, node.lineno,
                    node.col_offset,
                    "task handle dropped: keep a reference to the task "
                    "(assign it, add it to a set, or await it) so it "
                    "cannot be garbage-collected mid-flight",
                )
