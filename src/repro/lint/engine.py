"""Run the registered rules over a file set and aggregate findings.

:func:`run_lint` is the one public entry point — the CLI, the CI job
and the test suite all go through it, so they can never disagree about
what "clean" means.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.lint.baseline import Baseline, fingerprint_findings
from repro.lint.findings import SEV_ERROR, SEV_WARNING, Finding
from repro.lint.pragmas import PragmaIndex
from repro.lint.project import (
    DEFAULT_CONFIG,
    LintConfig,
    Project,
    SourceFile,
    classify_parts,
)
from repro.lint.registry import Rule, get_rules

#: Directory names never descended into.
_SKIP_DIRS = frozenset(
    {"__pycache__", ".git", ".hypothesis", ".pytest_cache", "build", "dist"}
)


class LintPathError(ValueError):
    """An explicit path argument that cannot be linted.

    Raised (never silently ignored) when an argument does not exist or
    is a file without a ``.py`` suffix — ``repro lint typo.py`` must be
    a hard error, not a successful zero-file run.
    """


def _walk_with_roots(paths: Sequence[str]) -> List[Tuple[str, str]]:
    """Expand files/directories into ``(file, walk_root)`` pairs."""
    out: List[Tuple[str, str]] = []
    for path in paths:
        if os.path.isdir(path):
            for root, dirs, names in os.walk(path):
                dirs[:] = sorted(
                    d for d in dirs
                    if d not in _SKIP_DIRS and not d.startswith(".")
                )
                for name in sorted(names):
                    if name.endswith(".py"):
                        out.append((os.path.join(root, name), path))
        elif not os.path.exists(path):
            raise LintPathError(f"no such file or directory: {path!r}")
        elif path.endswith(".py"):
            out.append((path, os.path.dirname(path)))
        else:
            raise LintPathError(
                f"not a Python file: {path!r} (explicit file arguments "
                "must end in .py; directories are walked recursively)"
            )
    # De-duplicate while keeping the sorted walk order stable.
    seen = set()
    unique = []
    for pair in out:
        if pair[0] not in seen:
            seen.add(pair[0])
            unique.append(pair)
    return unique


def iter_python_files(paths: Sequence[str]) -> List[str]:
    """Expand files/directories into a sorted list of ``.py`` files.

    Explicit arguments that do not exist, or that name a non-``.py``
    file, raise :class:`LintPathError` — a typo'd path must never
    produce a clean zero-file lint run.
    """
    return [path for path, _root in _walk_with_roots(paths)]


@dataclass
class LintReport:
    """The outcome of one lint run."""

    findings: List[Finding]
    files_checked: int
    rules_run: List[str] = field(default_factory=list)
    #: Findings suppressed by the loaded baseline (ratchet debt).
    baselined: int = 0
    #: Findings outside the ``--changed-only`` file set (whole-program
    #: analysis still saw those files; only reporting is narrowed).
    out_of_scope: int = 0

    @property
    def errors(self) -> List[Finding]:
        return [f for f in self.findings if f.severity == SEV_ERROR]

    @property
    def warnings(self) -> List[Finding]:
        return [f for f in self.findings if f.severity == SEV_WARNING]

    def exit_code(self, *, strict: bool = False) -> int:
        """1 when error findings exist (or warnings under strict)."""
        if self.errors:
            return 1
        if strict and self.warnings:
            return 1
        return 0

    def format(self) -> str:
        """Human-readable report: one line per finding + a summary."""
        lines = [f.format() for f in self.findings]
        n_err, n_warn = len(self.errors), len(self.warnings)
        n_info = len(self.findings) - n_err - n_warn
        summary = (
            f"simlint: {self.files_checked} file(s) checked, "
            f"{n_err} error(s), {n_warn} warning(s), {n_info} info"
        )
        if self.baselined:
            summary += f", {self.baselined} baselined"
        if self.out_of_scope:
            summary += f", {self.out_of_scope} outside --changed-only scope"
        lines.append(summary)
        return "\n".join(lines)

    def to_json_dict(self) -> Dict[str, Any]:
        """The stable machine-readable form (``repro lint --json``)."""
        return {
            "version": 2,
            "files_checked": self.files_checked,
            "rules_run": list(self.rules_run),
            "summary": {
                "errors": len(self.errors),
                "warnings": len(self.warnings),
                "info": (
                    len(self.findings)
                    - len(self.errors)
                    - len(self.warnings)
                ),
                "baselined": self.baselined,
                "out_of_scope": self.out_of_scope,
            },
            "findings": [f.to_dict() for f in self.findings],
        }


def _load_file(path: str, root: str = "") -> SourceFile:
    with open(path, encoding="utf-8") as fh:
        source = fh.read()
    tree = ast.parse(source, filename=path)
    return SourceFile(
        path=path,
        source=source,
        tree=tree,
        pragmas=PragmaIndex.from_source(source),
        parts=classify_parts(path),
        root=root,
    )


def _norm(path: str) -> str:
    return os.path.normpath(os.path.abspath(path))


def run_lint(
    paths: Sequence[str],
    *,
    rules: Optional[Sequence[str]] = None,
    config: Optional[LintConfig] = None,
    baseline: Union[Baseline, str, None] = None,
    changed_only: Optional[Sequence[str]] = None,
) -> LintReport:
    """Lint ``paths`` (files and/or directories) with the selected rules.

    Unparseable files produce a ``PARSE001`` error finding rather than
    aborting the run. Findings suppressed by ``# simlint:`` pragmas are
    dropped before aggregation; the rest come back sorted by location,
    each carrying its baseline fingerprint.

    ``baseline`` (a :class:`~repro.lint.baseline.Baseline` or a file
    path) subtracts previously-accepted findings by fingerprint; the
    count survives in :attr:`LintReport.baselined`. ``changed_only``
    narrows *reporting* to findings located in the given files — the
    whole-program analysis still runs over every linted file, so a
    change in a helper correctly surfaces findings at its sim-critical
    call sites when those call sites are in the changed set.
    """
    selected: List[Rule] = get_rules(rules)
    files: List[SourceFile] = []
    findings: List[Finding] = []
    pairs = _walk_with_roots(paths)
    for path, root in pairs:
        try:
            files.append(_load_file(path, root))
        except (SyntaxError, ValueError, UnicodeDecodeError) as exc:
            lineno = getattr(exc, "lineno", None) or 1
            findings.append(Finding(
                "PARSE001", SEV_ERROR, path, int(lineno), 0,
                f"file does not parse: {exc}",
            ))

    project = Project(files=files, config=config or DEFAULT_CONFIG)
    by_path = {f.path: f for f in files}
    for rule_obj in selected:
        for finding in rule_obj.check(project):
            src = by_path.get(finding.path)
            if src is not None and src.pragmas.suppressed(
                finding.rule, finding.line
            ):
                continue
            findings.append(finding)

    # Attach fingerprints (stable across line-number shifts).
    sources = {f.path: f.source for f in files}
    from dataclasses import replace

    findings = [
        replace(f, fingerprint=fp)
        for f, fp in fingerprint_findings(findings, sources)
    ]

    baselined = 0
    if baseline is not None:
        if isinstance(baseline, str):
            baseline = Baseline.load(baseline)
        kept = []
        for f in findings:
            if f.fingerprint in baseline:
                baselined += 1
            else:
                kept.append(f)
        findings = kept

    out_of_scope = 0
    if changed_only is not None:
        scope = {_norm(p) for p in changed_only}
        kept = []
        for f in findings:
            if _norm(f.path) in scope:
                kept.append(f)
            else:
                out_of_scope += 1
        findings = kept

    findings.sort(key=lambda f: f.sort_key)
    return LintReport(
        findings=findings,
        files_checked=len(pairs),
        rules_run=[r.id for r in selected],
        baselined=baselined,
        out_of_scope=out_of_scope,
    )
