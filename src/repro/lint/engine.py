"""Run the registered rules over a file set and aggregate findings.

:func:`run_lint` is the one public entry point — the CLI, the CI job
and the test suite all go through it, so they can never disagree about
what "clean" means.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from repro.lint.findings import SEV_ERROR, SEV_WARNING, Finding
from repro.lint.pragmas import PragmaIndex
from repro.lint.project import (
    DEFAULT_CONFIG,
    LintConfig,
    Project,
    SourceFile,
    classify_parts,
)
from repro.lint.registry import Rule, get_rules

#: Directory names never descended into.
_SKIP_DIRS = frozenset(
    {"__pycache__", ".git", ".hypothesis", ".pytest_cache", "build", "dist"}
)


def iter_python_files(paths: Sequence[str]) -> List[str]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    out: List[str] = []
    for path in paths:
        if os.path.isdir(path):
            for root, dirs, names in os.walk(path):
                dirs[:] = sorted(
                    d for d in dirs
                    if d not in _SKIP_DIRS and not d.startswith(".")
                )
                for name in sorted(names):
                    if name.endswith(".py"):
                        out.append(os.path.join(root, name))
        elif path.endswith(".py"):
            out.append(path)
    # De-duplicate while keeping the sorted walk order stable.
    seen = set()
    unique = []
    for p in out:
        if p not in seen:
            seen.add(p)
            unique.append(p)
    return unique


@dataclass
class LintReport:
    """The outcome of one lint run."""

    findings: List[Finding]
    files_checked: int
    rules_run: List[str] = field(default_factory=list)

    @property
    def errors(self) -> List[Finding]:
        return [f for f in self.findings if f.severity == SEV_ERROR]

    @property
    def warnings(self) -> List[Finding]:
        return [f for f in self.findings if f.severity == SEV_WARNING]

    def exit_code(self, *, strict: bool = False) -> int:
        """1 when error findings exist (or warnings under strict)."""
        if self.errors:
            return 1
        if strict and self.warnings:
            return 1
        return 0

    def format(self) -> str:
        """Human-readable report: one line per finding + a summary."""
        lines = [f.format() for f in self.findings]
        n_err, n_warn = len(self.errors), len(self.warnings)
        n_info = len(self.findings) - n_err - n_warn
        lines.append(
            f"simlint: {self.files_checked} file(s) checked, "
            f"{n_err} error(s), {n_warn} warning(s), {n_info} info"
        )
        return "\n".join(lines)

    def to_json_dict(self) -> Dict[str, Any]:
        """The stable machine-readable form (``repro lint --json``)."""
        return {
            "version": 1,
            "files_checked": self.files_checked,
            "rules_run": list(self.rules_run),
            "summary": {
                "errors": len(self.errors),
                "warnings": len(self.warnings),
                "info": (
                    len(self.findings)
                    - len(self.errors)
                    - len(self.warnings)
                ),
            },
            "findings": [f.to_dict() for f in self.findings],
        }


def _load_file(path: str) -> SourceFile:
    with open(path, encoding="utf-8") as fh:
        source = fh.read()
    tree = ast.parse(source, filename=path)
    return SourceFile(
        path=path,
        source=source,
        tree=tree,
        pragmas=PragmaIndex.from_source(source),
        parts=classify_parts(path),
    )


def run_lint(
    paths: Sequence[str],
    *,
    rules: Optional[Sequence[str]] = None,
    config: Optional[LintConfig] = None,
) -> LintReport:
    """Lint ``paths`` (files and/or directories) with the selected rules.

    Unparseable files produce a ``PARSE001`` error finding rather than
    aborting the run. Findings suppressed by ``# simlint:`` pragmas are
    dropped before aggregation; the rest come back sorted by location.
    """
    selected: List[Rule] = get_rules(rules)
    files: List[SourceFile] = []
    findings: List[Finding] = []
    file_paths = iter_python_files(paths)
    for path in file_paths:
        try:
            files.append(_load_file(path))
        except (SyntaxError, ValueError, UnicodeDecodeError) as exc:
            lineno = getattr(exc, "lineno", None) or 1
            findings.append(Finding(
                "PARSE001", SEV_ERROR, path, int(lineno), 0,
                f"file does not parse: {exc}",
            ))

    project = Project(files=files, config=config or DEFAULT_CONFIG)
    by_path = {f.path: f for f in files}
    for rule_obj in selected:
        for finding in rule_obj.check(project):
            src = by_path.get(finding.path)
            if src is not None and src.pragmas.suppressed(
                finding.rule, finding.line
            ):
                continue
            findings.append(finding)

    findings.sort(key=lambda f: f.sort_key)
    return LintReport(
        findings=findings,
        files_checked=len(file_paths),
        rules_run=[r.id for r in selected],
    )
