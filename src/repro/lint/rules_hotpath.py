"""Hot-path performance rules (PERF001–PERF004) + mypyc readiness (MPC0xx).

The ROADMAP's kernel-speed work needs to know which functions are
actually on the per-event path. Rather than a hardcoded file list, the
**hot set** is computed from the whole-program call graph: everything
reachable from the configured hot roots (``Simulator.run`` /
``schedule`` / ``schedule_at`` / ``step``) plus every callback handed
to a ``schedule``/``schedule_at`` call — the event loop invokes those,
so they and their call closures execute once per event. Moving a
function out of that reachable set removes its PERF findings; no rule
here ever consults a path allowlist.

The PERF rules are warnings: they flag costs, not bugs, and the
baseline ratchet keeps the accepted ones from drowning new ones. They
only examine hot functions in sim-critical packages — a hot helper in
telemetry code is not the inner loop.

The MPC rules are the ``repro lint --mypyc-report`` readiness pass for
the planned compiled build of ``engine``/``network``: mypyc gives
native classes fixed layouts, so dynamic attribute assignment
(``setattr``), monkeypatch points (assigning attributes on classes or
modules from outside), and ``__getattr__``-style dynamic hooks all
block compilation. They are opt-in (``default=False``) info findings —
a planning report, not a gate.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Tuple

from repro.lint.callgraph import CallGraph, FuncNode, hot_set
from repro.lint.findings import SEV_INFO, SEV_WARNING, Finding
from repro.lint.project import Project, SourceFile
from repro.lint.registry import rule

#: Logging-ish attribute names treated as logging calls on hot paths.
_LOG_METHODS = frozenset(
    {"debug", "info", "warning", "error", "exception", "critical", "log"}
)
_LOG_ROOTS = frozenset({"log", "logger", "logging"})


def _hot_functions(project: Project) -> List[Tuple[FuncNode, "SourceFile"]]:
    """Hot functions that live in sim-critical files, with their files."""
    graph = project.callgraph()
    assert isinstance(graph, CallGraph)
    hot = hot_set(project, graph)
    by_path = {f.path: f for f in project.files}
    out: List[Tuple[FuncNode, SourceFile]] = []
    for qual in sorted(hot):
        func = graph.functions.get(qual)
        if func is None:
            continue
        f = by_path.get(func.path)
        if f is not None and project.sim_critical(f):
            out.append((func, f))
    return out


def _inside_raise_or_assert(node: ast.AST, parents: Dict[ast.AST, ast.AST]) -> bool:
    cur: Optional[ast.AST] = node
    while cur is not None:
        if isinstance(cur, (ast.Raise, ast.Assert)):
            return True
        cur = parents.get(cur)
    return False


def _parent_map(root: ast.AST) -> Dict[ast.AST, ast.AST]:
    parents: Dict[ast.AST, ast.AST] = {}
    for parent in ast.walk(root):
        for child in ast.iter_child_nodes(parent):
            parents[child] = parent
    return parents


def _error_path_positions(func_node: ast.AST) -> "set":
    """(line, col) of calls inside ``raise``/``assert`` statements.

    Exception construction only runs when the event path already
    failed, so it is exempt from the per-event allocation rules — same
    policy as PERF004's f-string exemption.
    """
    parents = _parent_map(func_node)
    return {
        (node.lineno, node.col_offset)
        for node in ast.walk(func_node)
        if isinstance(node, ast.Call)
        and _inside_raise_or_assert(node, parents)
    }


@rule(
    "PERF001",
    severity=SEV_WARNING,
    summary=(
        "per-event allocation on the hot path (dict/dataclass "
        "construction, comprehensions) — reachable from Simulator.run"
    ),
)
def perf001_hot_allocation(project: Project) -> Iterator[Finding]:
    """Allocation inside functions the event loop runs per event.

    Dict literals/constructors, comprehensions and dataclass
    instantiation each allocate on every event; the kernel work (PR 7)
    got its wins precisely by hoisting these out of the loop. Findings
    here are costs to weigh, not bugs — fix, hoist, pool, or baseline.
    """
    graph = project.callgraph()
    assert isinstance(graph, CallGraph)
    for func, f in _hot_functions(project):
        qual = func.qualname
        error_path = _error_path_positions(func.node)
        parents = _parent_map(func.node)
        for node in ast.walk(func.node):
            if _inside_raise_or_assert(node, parents):
                continue
            if isinstance(node, ast.Dict) and node.keys:
                yield Finding(
                    "PERF001", SEV_WARNING, f.path, node.lineno,
                    node.col_offset,
                    f"dict literal allocated in hot function {qual}() "
                    "(reachable from Simulator.run); hoist or reuse it",
                )
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp)):
                kind = type(node).__name__
                yield Finding(
                    "PERF001", SEV_WARNING, f.path, node.lineno,
                    node.col_offset,
                    f"{kind} allocated in hot function {qual}() "
                    "(reachable from Simulator.run); hoist it out of the "
                    "per-event path",
                )
        for cls_qual, line, col in graph.instantiations.get(qual, ()):
            if (line, col) in error_path:
                continue
            cls = graph.classes.get(cls_qual)
            if cls is not None and cls.dataclass:
                yield Finding(
                    "PERF001", SEV_WARNING, f.path, line, col,
                    f"dataclass {cls.name} constructed in hot function "
                    f"{qual}(); dataclass __init__ is pure-Python "
                    "per-event overhead — use a pooled/slotted plain "
                    "class or reuse instances",
                )


@rule(
    "PERF002",
    severity=SEV_WARNING,
    summary=(
        "**kwargs signature or try/except block inside a hot function "
        "(per-event dict build / zero-cost-until-it-isn't handler)"
    ),
)
def perf002_hot_kwargs_try(project: Project) -> Iterator[Finding]:
    """Calling-convention and exception overhead on the event path."""
    for func, f in _hot_functions(project):
        qual = func.qualname
        args = getattr(func.node, "args", None)
        if args is not None and args.kwarg is not None:
            yield Finding(
                "PERF002", SEV_WARNING, f.path, func.lineno, 0,
                f"hot function {qual}() takes **{args.kwarg.arg}: every "
                "call builds a dict; use explicit parameters on the "
                "event path",
            )
        for node in ast.walk(func.node):
            if isinstance(node, ast.Try) and node.handlers:
                yield Finding(
                    "PERF002", SEV_WARNING, f.path, node.lineno,
                    node.col_offset,
                    f"try/except inside hot function {qual}(): exception "
                    "handlers on the per-event path hide costs and "
                    "mask bugs; hoist the guard or precheck",
                )


@rule(
    "PERF003",
    severity=SEV_WARNING,
    summary=(
        "un-slotted project class instantiated inside a hot function "
        "(per-event __dict__ allocation)"
    ),
)
def perf003_unslotted_hot_instantiation(project: Project) -> Iterator[Finding]:
    """Instances created per event should not carry a ``__dict__``."""
    graph = project.callgraph()
    assert isinstance(graph, CallGraph)
    for func, f in _hot_functions(project):
        qual = func.qualname
        error_path = _error_path_positions(func.node)
        for cls_qual, line, col in graph.instantiations.get(qual, ()):
            if (line, col) in error_path:
                continue
            cls = graph.classes.get(cls_qual)
            if cls is None or cls.has_slots:
                continue
            yield Finding(
                "PERF003", SEV_WARNING, f.path, line, col,
                f"class {cls.name} (no __slots__ through its ancestry) "
                f"instantiated in hot function {qual}(); each instance "
                "allocates a __dict__ on the per-event path",
            )


@rule(
    "PERF004",
    severity=SEV_WARNING,
    summary=(
        "f-string or logging call inside a hot function (string work "
        "per event; exception-path f-strings are exempt)"
    ),
)
def perf004_hot_string_work(project: Project) -> Iterator[Finding]:
    """String formatting per event, outside error paths.

    An f-string inside ``raise``/``assert`` only evaluates when things
    already went wrong, so those are exempt; everything else — log
    calls included, even at suppressed levels — pays argument
    formatting per event.
    """
    for func, f in _hot_functions(project):
        qual = func.qualname
        parents = _parent_map(func.node)
        for node in ast.walk(func.node):
            if isinstance(node, ast.JoinedStr):
                if _inside_raise_or_assert(node, parents):
                    continue
                yield Finding(
                    "PERF004", SEV_WARNING, f.path, node.lineno,
                    node.col_offset,
                    f"f-string built in hot function {qual}() outside an "
                    "error path; move formatting off the per-event path",
                )
            elif isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
                attr = node.func
                root = attr.value
                if (
                    attr.attr in _LOG_METHODS
                    and isinstance(root, ast.Name)
                    and root.id in _LOG_ROOTS
                ):
                    yield Finding(
                        "PERF004", SEV_WARNING, f.path, node.lineno,
                        node.col_offset,
                        f"logging call in hot function {qual}(): argument "
                        "evaluation happens per event even when the level "
                        "is suppressed; guard it or trace via the "
                        "null-hook tracer",
                    )


# ---------------------------------------------------------------------------
# mypyc readiness (--mypyc-report; opt-in)


def _mypyc_files(project: Project) -> List[SourceFile]:
    return [
        f for f in project.files
        if f.in_package(project.config.mypyc_packages)
    ]


@rule(
    "MPC001",
    severity=SEV_INFO,
    summary=(
        "dynamic attribute assignment / monkeypatch point in a "
        "compile-target package (blocks the mypyc build)"
    ),
    default=False,
)
def mpc001_dynamic_attributes(project: Project) -> Iterator[Finding]:
    """Attribute surgery mypyc cannot compile away.

    Flags ``setattr``/``delattr``/``vars``/``__dict__`` use, and
    assignments to attributes of anything other than ``self``/``cls``
    at class or module scope — each one is a monkeypatch point that
    forces the interpreter's dynamic attribute protocol.
    """
    for f in _mypyc_files(project):
        for node in ast.walk(f.tree):
            if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
                if node.func.id in ("setattr", "delattr", "vars"):
                    yield Finding(
                        "MPC001", SEV_INFO, f.path, node.lineno,
                        node.col_offset,
                        f"{node.func.id}() forces the dynamic attribute "
                        "protocol; a compiled class needs a fixed layout",
                    )
            elif isinstance(node, ast.Attribute) and node.attr == "__dict__":
                yield Finding(
                    "MPC001", SEV_INFO, f.path, node.lineno, node.col_offset,
                    "__dict__ access assumes dict-backed instances; "
                    "compiled (and __slots__) classes have none",
                )
            elif isinstance(node, ast.Assign):
                for tgt in node.targets:
                    if not isinstance(tgt, ast.Attribute):
                        continue
                    root = tgt.value
                    while isinstance(root, ast.Attribute):
                        root = root.value
                    if isinstance(root, ast.Name) and root.id in ("self", "cls"):
                        continue
                    if isinstance(root, ast.Name) and root.id[:1].isupper():
                        yield Finding(
                            "MPC001", SEV_INFO, f.path, node.lineno,
                            node.col_offset,
                            f"attribute assigned on class/module "
                            f"{root.id!r} from outside its body — a "
                            "monkeypatch point the compiled build "
                            "cannot honor",
                        )


@rule(
    "MPC002",
    severity=SEV_INFO,
    summary=(
        "compiled-class readiness: un-slotted class or dynamic dunder "
        "hook (__getattr__/__setattr__) in a compile-target package"
    ),
    default=False,
)
def mpc002_class_readiness(project: Project) -> Iterator[Finding]:
    """Classes the compiled build would change semantics for."""
    graph = project.callgraph()
    assert isinstance(graph, CallGraph)
    mypyc_paths = {f.path for f in _mypyc_files(project)}
    for cqual in sorted(graph.classes):
        cls = graph.classes[cqual]
        if cls.path not in mypyc_paths:
            continue
        if not cls.has_slots:
            yield Finding(
                "MPC002", SEV_INFO, cls.path, cls.node.lineno,
                cls.node.col_offset,
                f"class {cls.name} has no __slots__ (or inherits a "
                "slotless ancestor): instances grow arbitrary "
                "attributes, which a compiled fixed layout forbids",
            )
        for item in cls.node.body:
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if item.name in ("__getattr__", "__setattr__", "__getattribute__"):
                    yield Finding(
                        "MPC002", SEV_INFO, cls.path, item.lineno,
                        item.col_offset,
                        f"{cls.name}.{item.name} intercepts attribute "
                        "access dynamically; compiled classes resolve "
                        "attributes statically",
                    )
