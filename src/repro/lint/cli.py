"""``ibcc-repro lint`` / ``python -m repro lint`` — the simlint CLI.

Examples::

    ibcc-repro lint src/                    # human output, exit 1 on errors
    ibcc-repro lint src/ --json             # machine output on stdout
    ibcc-repro lint src/ --json-out f.json  # human output + JSON artifact
    ibcc-repro lint --rule DET001 --rule KEY001 src/repro
    ibcc-repro lint --list-rules
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional, Sequence

from repro.lint.engine import run_lint
from repro.lint.registry import RULES, all_rule_ids


def build_lint_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="ibcc-repro lint",
        description=(
            "simlint: AST-based determinism & invariant linter "
            "(DET001-DET004 event-path determinism, KEY001 store-key "
            "drift, TRC001 trace-event coverage, IMP001 import hygiene)"
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files/directories to lint (default: src/ if present, else .)",
    )
    parser.add_argument(
        "--rule",
        action="append",
        default=None,
        metavar="ID",
        help="run only this rule (repeatable; default: all registered rules)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit the JSON findings report on stdout instead of text",
    )
    parser.add_argument(
        "--json-out",
        default=None,
        metavar="FILE",
        help="also write the JSON findings report to FILE (CI artifact)",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="exit nonzero on warnings too, not only errors",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list the registered rules and exit",
    )
    return parser


def _default_paths() -> List[str]:
    return ["src"] if os.path.isdir("src") else ["."]


def lint_main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point for the lint subcommand; returns a process exit code."""
    args = build_lint_parser().parse_args(argv)
    if args.list_rules:
        for rid in all_rule_ids():
            rule = RULES[rid]
            print(f"{rid}  [{rule.severity}]  {rule.summary}")
        return 0
    paths = list(args.paths) or _default_paths()
    missing = [p for p in paths if not os.path.exists(p)]
    if missing:
        print(f"lint: no such path: {', '.join(missing)}", file=sys.stderr)
        return 2
    try:
        report = run_lint(paths, rules=args.rule)
    except KeyError as exc:
        print(f"lint: {exc.args[0]}", file=sys.stderr)
        return 2
    if args.json_out is not None:
        from repro.experiments.store import atomic_write_json

        atomic_write_json(args.json_out, report.to_json_dict())
    if args.json:
        json.dump(report.to_json_dict(), sys.stdout, indent=2)
        print()
    else:
        print(report.format())
    return report.exit_code(strict=args.strict)
