"""``ibcc-repro lint`` / ``python -m repro lint`` — the simlint CLI.

Examples::

    ibcc-repro lint src/                    # human output, exit 1 on errors
    ibcc-repro lint src/ --json             # machine output on stdout
    ibcc-repro lint src/ --json-out f.json  # human output + JSON artifact
    ibcc-repro lint --rule DET001 --rule KEY001 src/repro
    ibcc-repro lint src/ --update-baseline  # accept current findings
    ibcc-repro lint src/ --changed-only origin/main   # PR-diff scope
    ibcc-repro lint src/ --mypyc-report mypyc.json    # readiness pass
    ibcc-repro lint --list-rules

A committed ``lint-baseline.json`` (see :mod:`repro.lint.baseline`) is
auto-loaded when present in the current directory, so ``repro lint
src/`` is the ratchet check: it fails only on findings *newer than the
baseline*. ``--no-baseline`` shows the full debt; ``--update-baseline``
re-accepts the current state (a reviewed decision — the diff of the
baseline file is the review surface).
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
from typing import List, Optional, Sequence

from repro.lint.baseline import DEFAULT_BASELINE, Baseline
from repro.lint.engine import LintPathError, run_lint
from repro.lint.registry import RULES, all_rule_ids

#: Rule ids of the opt-in mypyc readiness pass (``--mypyc-report``).
_MYPYC_RULES = ("MPC001", "MPC002")


def build_lint_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="ibcc-repro lint",
        description=(
            "simlint: whole-program determinism & invariant linter "
            "(DET per-file + DET1xx interprocedural taint, PERF0xx "
            "hot-path costs, CON0xx concurrency discipline, KEY001 "
            "store-key drift, TRC001 trace coverage)"
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files/directories to lint (default: src/ if present, else .)",
    )
    parser.add_argument(
        "--rule",
        action="append",
        default=None,
        metavar="ID",
        help="run only this rule (repeatable; default: all default rules)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit the JSON findings report on stdout instead of text",
    )
    parser.add_argument(
        "--json-out",
        default=None,
        metavar="FILE",
        help="also write the JSON findings report to FILE (CI artifact)",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="exit nonzero on warnings too, not only errors",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        metavar="FILE",
        help=(
            "baseline file of accepted findings to subtract "
            f"(default: {DEFAULT_BASELINE} when it exists)"
        ),
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any baseline file; report the full finding set",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help=(
            "write the current findings to the baseline file and exit 0 "
            "(accepting them; review the baseline diff)"
        ),
    )
    parser.add_argument(
        "--changed-only",
        default=None,
        metavar="GITREF",
        help=(
            "report only findings in files changed since the merge-base "
            "with GITREF (whole-program analysis still covers all paths)"
        ),
    )
    parser.add_argument(
        "--mypyc-report",
        nargs="?",
        const="-",
        default=None,
        metavar="FILE",
        help=(
            "also run the opt-in mypyc compile-readiness pass "
            f"({', '.join(_MYPYC_RULES)}) over the same paths and write "
            "its JSON report to FILE (default: stdout); never affects "
            "the exit code"
        ),
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list the registered rules and exit",
    )
    return parser


def _default_paths() -> List[str]:
    return ["src"] if os.path.isdir("src") else ["."]


def _changed_files(ref: str) -> List[str]:
    """``.py`` files changed vs. the merge-base with ``ref``.

    Uses the three-dot diff (merge-base semantics, the PR-review view)
    plus uncommitted changes, so local runs before commit behave like
    CI runs after.
    """
    out: List[str] = []
    for cmd in (
        ["git", "diff", "--name-only", f"{ref}...", "--"],
        ["git", "diff", "--name-only", "HEAD", "--"],
        ["git", "ls-files", "--others", "--exclude-standard"],
    ):
        proc = subprocess.run(
            cmd, capture_output=True, text=True, check=False
        )
        if proc.returncode != 0:
            raise LintPathError(
                f"--changed-only: {' '.join(cmd)} failed: "
                f"{proc.stderr.strip() or 'unknown git error'}"
            )
        out.extend(
            line for line in proc.stdout.splitlines()
            if line.endswith(".py")
        )
    seen = set()
    unique = []
    for path in out:
        if path not in seen:
            seen.add(path)
            unique.append(path)
    return unique


def _resolve_baseline(args: argparse.Namespace) -> Optional[str]:
    if args.no_baseline:
        return None
    if args.baseline is not None:
        return args.baseline
    return DEFAULT_BASELINE if os.path.isfile(DEFAULT_BASELINE) else None


def lint_main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point for the lint subcommand; returns a process exit code."""
    args = build_lint_parser().parse_args(argv)
    if args.list_rules:
        for rid in all_rule_ids():
            rule = RULES[rid]
            tag = "" if rule.default else "  (opt-in)"
            print(f"{rid}  [{rule.severity}]  {rule.summary}{tag}")
        return 0
    paths = list(args.paths) or _default_paths()

    if args.update_baseline:
        target = args.baseline or DEFAULT_BASELINE
        try:
            report = run_lint(paths, rules=args.rule)
        except (LintPathError, KeyError) as exc:
            print(f"lint: {exc.args[0]}", file=sys.stderr)
            return 2
        pairs = [(f, f.fingerprint) for f in report.findings]
        Baseline.from_findings(pairs).save(target)
        print(
            f"simlint: baseline {target} updated with "
            f"{len(report.findings)} finding(s)"
        )
        return 0

    changed: Optional[List[str]] = None
    try:
        if args.changed_only is not None:
            changed = _changed_files(args.changed_only)
        report = run_lint(
            paths,
            rules=args.rule,
            baseline=_resolve_baseline(args),
            changed_only=changed,
        )
    except (LintPathError, FileNotFoundError) as exc:
        print(f"lint: {exc}", file=sys.stderr)
        return 2
    except KeyError as exc:
        print(f"lint: {exc.args[0]}", file=sys.stderr)
        return 2

    if args.json_out is not None:
        from repro.experiments.store import atomic_write_json

        atomic_write_json(args.json_out, report.to_json_dict())
    if args.json:
        json.dump(report.to_json_dict(), sys.stdout, indent=2)
        print()
    else:
        print(report.format())

    if args.mypyc_report is not None:
        try:
            mpc = run_lint(paths, rules=list(_MYPYC_RULES))
        except (LintPathError, KeyError) as exc:
            print(f"lint: {exc.args[0]}", file=sys.stderr)
            return 2
        payload = mpc.to_json_dict()
        if args.mypyc_report == "-":
            json.dump(payload, sys.stdout, indent=2)
            print()
        else:
            from repro.experiments.store import atomic_write_json

            atomic_write_json(args.mypyc_report, payload)
            print(
                f"simlint: mypyc readiness report "
                f"({len(mpc.findings)} finding(s)) -> {args.mypyc_report}"
            )

    return report.exit_code(strict=args.strict)
