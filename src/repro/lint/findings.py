"""Findings: what a lint rule reports.

A :class:`Finding` pins one defect to a file/line/column with a rule
id, a severity, and an actionable message. Severities order the exit
code policy: ``error`` findings fail the build, ``warning`` findings
fail only under ``--strict``, ``info`` findings never fail.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Tuple

SEV_ERROR = "error"
SEV_WARNING = "warning"
SEV_INFO = "info"

#: Rank for sorting/threshold checks (higher = more severe).
SEVERITY_RANK: Dict[str, int] = {SEV_INFO: 0, SEV_WARNING: 1, SEV_ERROR: 2}


@dataclass(frozen=True)
class Finding:
    """One lint defect, pinned to a source location."""

    rule: str
    severity: str
    path: str
    line: int
    col: int
    message: str
    #: Stable identity for the baseline ratchet (rule + path + source
    #: line text + ordinal; see :mod:`repro.lint.baseline`). Attached
    #: by the engine after aggregation — rules leave it empty.
    fingerprint: str = ""

    def __post_init__(self) -> None:
        if self.severity not in SEVERITY_RANK:
            raise ValueError(f"unknown severity {self.severity!r}")

    @property
    def sort_key(self) -> Tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.rule)

    def format(self) -> str:
        """The human one-liner: ``path:line:col: RULE error: message``."""
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.rule} {self.severity}: {self.message}"
        )

    def to_dict(self) -> Dict[str, Any]:
        """The JSON-output form (stable schema, see ``repro lint --json``)."""
        return {
            "rule": self.rule,
            "severity": self.severity,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "fingerprint": self.fingerprint,
        }
