"""``# simlint:`` suppression pragmas.

Three forms, all comments so they survive formatting:

* line pragma — ``# simlint: disable=DET001[,DET002]`` suppresses the
  named rules (or ``all``) for findings *on that physical line*;
* next-line pragma — ``# simlint: disable-next-line=DET001`` on a
  comment line suppresses the named rules for findings on the *next*
  physical line (the readable form when the flagged line is already
  long);
* file pragma — ``# simlint: disable-file=DET001`` on a line of its
  own suppresses the named rules for the whole file.

Pragmas are matched against the line the AST node *starts* on, so a
multi-line call is suppressed by a pragma on its opening line. Every
pragma in real code should carry a comment justifying the exception —
the point of a suppression is a reviewed, documented deviation, not a
mute button.
"""

from __future__ import annotations

import re
from typing import Dict, FrozenSet, Set

_PRAGMA_RE = re.compile(
    r"#\s*simlint:\s*(?P<kind>disable-next-line|disable-file|disable)\s*=\s*"
    r"(?P<rules>[A-Za-z0-9_]+(?:\s*,\s*[A-Za-z0-9_]+)*)"
)

#: Sentinel rule name matching every rule.
ALL = "all"


class PragmaIndex:
    """Per-file suppression lookup built from the raw source text."""

    __slots__ = ("_file_rules", "_line_rules")

    def __init__(
        self,
        file_rules: FrozenSet[str],
        line_rules: Dict[int, FrozenSet[str]],
    ) -> None:
        self._file_rules = file_rules
        self._line_rules = line_rules

    @classmethod
    def from_source(cls, source: str) -> "PragmaIndex":
        """Scan ``source`` for pragmas (1-based line numbers)."""
        file_rules: Set[str] = set()
        line_rules: Dict[int, FrozenSet[str]] = {}
        for lineno, text in enumerate(source.splitlines(), start=1):
            match = _PRAGMA_RE.search(text)
            if match is None:
                continue
            rules = frozenset(
                r.strip().lower() if r.strip().lower() == ALL else r.strip()
                for r in match.group("rules").split(",")
            )
            kind = match.group("kind")
            if kind == "disable-file":
                file_rules |= rules
            else:
                # A next-line pragma indexes the following physical
                # line — same lookup path as a same-line pragma.
                target = lineno + 1 if kind == "disable-next-line" else lineno
                line_rules[target] = line_rules.get(target, frozenset()) | rules
        return cls(frozenset(file_rules), line_rules)

    def suppressed(self, rule: str, line: int) -> bool:
        """Whether ``rule`` is suppressed for a finding on ``line``."""
        if ALL in self._file_rules or rule in self._file_rules:
            return True
        on_line = self._line_rules.get(line)
        return on_line is not None and (ALL in on_line or rule in on_line)

    def __bool__(self) -> bool:
        return bool(self._file_rules or self._line_rules)
