"""The linted file set and its classification config.

Rules operate on a :class:`Project` — every parsed source file plus a
:class:`LintConfig` that classifies files into the zones the
determinism rules care about:

* **sim-critical** — packages whose code runs (or expands configs)
  inside the deterministic event path. Raw randomness and wall-clock
  reads here break digest stability.
* **wall-clock allowlist** — telemetry/driver packages where real time
  is the point (progress bars, wall-second reporting).
* **blessed RNG modules** — the one place allowed to construct
  generators: :mod:`repro.engine.rng`.

Classification is by path segment, not import, so the linter works on
fixture trees in tests exactly as on ``src/repro``.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.lint.pragmas import PragmaIndex


@dataclass(frozen=True)
class LintConfig:
    """Zone classification for the determinism rules."""

    #: Package names whose code is on (or feeds) the event path.
    sim_critical: FrozenSet[str] = frozenset(
        {"engine", "network", "core", "traffic", "faults", "transport",
         "trace", "topology", "cc"}
    )
    #: Packages allowed to read the wall clock (telemetry only).
    wallclock_allowed: FrozenSet[str] = frozenset(
        {"parallel", "experiments", "validation", "lint"}
    )
    #: Packages checked for float accumulation over unordered iterables.
    float_sum_packages: FrozenSet[str] = frozenset({"metrics", "core"})
    #: ``(package, module)`` files allowed to construct raw generators —
    #: the enforced randomness contract lives here.
    rng_blessed: FrozenSet[Tuple[str, str]] = frozenset({("engine", "rng")})
    #: Packages holding asyncio service code, where a dropped
    #: ``create_task`` handle means silent task loss (ERR002) and
    #: blocking calls inside ``async def`` stall the loop (CON001).
    async_packages: FrozenSet[str] = frozenset({"serve"})
    #: ``(class, method)`` seeds of the PERF hot set: per-event dispatch
    #: plus the scheduling entry points. Everything reachable from these
    #: through the call graph — including scheduled callbacks — is "hot".
    hot_roots: FrozenSet[Tuple[str, str]] = frozenset({
        ("Simulator", "run"),
        ("Simulator", "schedule"),
        ("Simulator", "schedule_at"),
        ("Simulator", "step"),
    })
    #: Known worker-process entry points by bare function name, in
    #: addition to refs auto-detected via ``Process(target=...)``
    #: (CON002 module-state discipline).
    worker_entry_names: FrozenSet[str] = frozenset({"worker_main"})
    #: Packages the planned mypyc/Cython compiled build would cover —
    #: the ``--mypyc-report`` readiness rules (MPC0xx) sweep these.
    mypyc_packages: FrozenSet[str] = frozenset({"engine", "network"})


DEFAULT_CONFIG = LintConfig()


@dataclass
class SourceFile:
    """One parsed file plus everything rules need to judge it."""

    path: str
    source: str
    tree: ast.Module
    pragmas: PragmaIndex
    #: Normalized path segments, e.g. ``("repro", "engine", "rng")``.
    parts: Tuple[str, ...]
    #: The walk root this file was discovered under — the call graph
    #: derives dotted module names relative to it.
    root: str = ""

    @property
    def module_name(self) -> str:
        return self.parts[-1] if self.parts else ""

    @property
    def is_init(self) -> bool:
        return self.module_name == "__init__"

    def in_package(self, names: FrozenSet[str]) -> bool:
        """Whether any path segment (above the module) names a package."""
        return any(part in names for part in self.parts[:-1])


def classify_parts(path: str) -> Tuple[str, ...]:
    """Path → normalized segments with the ``.py`` suffix stripped."""
    norm = path.replace("\\", "/").strip("/")
    parts = [p for p in norm.split("/") if p not in ("", ".", "..")]
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][:-3]
    return tuple(parts)


@dataclass
class Project:
    """Everything one lint run sees."""

    files: List[SourceFile]
    config: LintConfig = field(default_factory=LintConfig)
    #: Lazily built whole-program call graph (shared by every rule so
    #: the tree is analyzed once per run). Typed loosely to avoid a
    #: project → callgraph import cycle.
    _callgraph: Optional[object] = field(
        default=None, repr=False, compare=False
    )

    def callgraph(self) -> "object":
        """The whole-program :class:`repro.lint.callgraph.CallGraph`."""
        if self._callgraph is None:
            from repro.lint.callgraph import build_callgraph

            self._callgraph = build_callgraph(self)
        return self._callgraph

    def sim_critical(self, f: SourceFile) -> bool:
        return f.in_package(self.config.sim_critical)

    def wallclock_allowed(self, f: SourceFile) -> bool:
        return f.in_package(self.config.wallclock_allowed)

    def float_sum_scope(self, f: SourceFile) -> bool:
        return f.in_package(self.config.float_sum_packages)

    def async_scope(self, f: SourceFile) -> bool:
        return f.in_package(self.config.async_packages)

    def rng_blessed(self, f: SourceFile) -> bool:
        for pkg, mod in self.config.rng_blessed:
            if f.module_name == mod and pkg in f.parts[:-1]:
                return True
        return False

    def find_class(self, name: str) -> Optional[Tuple[SourceFile, ast.ClassDef]]:
        """The first top-level class definition named ``name``."""
        for f in self.files:
            for node in f.tree.body:
                if isinstance(node, ast.ClassDef) and node.name == name:
                    return f, node
        return None

    def find_function(
        self, name: str
    ) -> Optional[Tuple[SourceFile, ast.FunctionDef]]:
        """The first top-level function definition named ``name``."""
        for f in self.files:
            for node in f.tree.body:
                if isinstance(node, ast.FunctionDef) and node.name == name:
                    return f, node
        return None


def dataclass_fields(cls: ast.ClassDef) -> Dict[str, int]:
    """``field name -> lineno`` for a dataclass body (AnnAssign targets).

    ``ClassVar`` annotations and underscore-private names are not
    dataclass fields and are skipped.
    """
    out: Dict[str, int] = {}
    for node in cls.body:
        if not isinstance(node, ast.AnnAssign):
            continue
        target = node.target
        if not isinstance(target, ast.Name) or target.id.startswith("_"):
            continue
        ann = ast.dump(node.annotation)
        if "ClassVar" in ann:
            continue
        out[target.id] = node.lineno
    return out


def is_dataclass(cls: ast.ClassDef) -> bool:
    """Whether the class carries a ``@dataclass`` decorator."""
    for dec in cls.decorator_list:
        node = dec.func if isinstance(dec, ast.Call) else dec
        if isinstance(node, ast.Name) and node.id == "dataclass":
            return True
        if isinstance(node, ast.Attribute) and node.attr == "dataclass":
            return True
    return False
