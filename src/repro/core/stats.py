"""Congestion-control statistics snapshots.

Real InfiniBand exposes CC state through management datagrams
(CongestionInfo, CongestionLog, per-port counters); operators tune the
parameters against those counters. This module provides the simulated
equivalent: a structured snapshot of a network's CC state, per switch
port and per HCA, suitable for printing or for driving tuning loops
(see ``examples/parameter_tuning.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple


@dataclass
class SwitchPortCcStats:
    switch_id: int
    port: int
    victim_masked: bool
    marks: int  # per-switch granularity in the model; see note below


@dataclass
class HcaCcStats:
    node_id: int
    becns_applied: int
    cnps_sent: int
    throttled_flows: int
    deepest_ccti: int
    timer_fires: int


@dataclass
class CcSnapshot:
    """Network-wide CC state at one instant."""

    time_ns: float
    total_marks: int
    total_eligible: int
    total_becns: int
    total_cnps: int
    throttled_flows: int
    per_switch_marks: Dict[int, int] = field(default_factory=dict)
    hcas: List[HcaCcStats] = field(default_factory=list)

    @property
    def marking_ratio(self) -> float:
        """Marked / eligible packets (1.0 when Marking_Rate = 0)."""
        if self.total_eligible == 0:
            return 0.0
        return self.total_marks / self.total_eligible

    def hottest_hcas(self, k: int = 5) -> List[HcaCcStats]:
        """HCAs with the deepest current throttles."""
        return sorted(self.hcas, key=lambda h: -h.deepest_ccti)[:k]

    def format(self) -> str:
        """Human-readable multi-line summary."""
        lines = [
            f"CC snapshot @ {self.time_ns / 1e6:.3f} ms",
            f"  FECN marks      {self.total_marks} "
            f"({self.marking_ratio:.0%} of eligible)",
            f"  BECNs applied   {self.total_becns}",
            f"  CNPs sent       {self.total_cnps}",
            f"  throttled flows {self.throttled_flows}",
        ]
        hot = [h for h in self.hottest_hcas() if h.deepest_ccti > 0]
        if hot:
            lines.append("  deepest throttles:")
            for h in hot:
                lines.append(
                    f"    node {h.node_id:4d}: CCTI {h.deepest_ccti}, "
                    f"{h.throttled_flows} flows"
                )
        return "\n".join(lines)


def snapshot_cc(network, manager) -> CcSnapshot:
    """Collect a :class:`CcSnapshot` from a live network + CC manager."""
    hcas = []
    for hca, hcc in zip(network.hcas, manager.hca_cc):
        deepest = 0
        for state in hcc._states.values():
            if state.ccti > deepest:
                deepest = state.ccti
        hcas.append(
            HcaCcStats(
                node_id=hca.node_id,
                becns_applied=hcc.becns_applied,
                cnps_sent=hca.cnps_sent,
                throttled_flows=hcc.throttled_flows(),
                deepest_ccti=deepest,
                timer_fires=hcc.timer_fires,
            )
        )
    return CcSnapshot(
        time_ns=network.sim.now,
        total_marks=manager.total_marks(),
        total_eligible=sum(scc.eligible for scc in manager.switch_cc),
        total_becns=manager.total_becns(),
        total_cnps=sum(h.cnps_sent for h in network.hcas),
        throttled_flows=manager.throttled_flows(),
        per_switch_marks={
            scc.switch.node_id: scc.marks for scc in manager.switch_cc
        },
        hcas=hcas,
    )
