"""Congestion-control statistics snapshots.

Real InfiniBand exposes CC state through management datagrams
(CongestionInfo, CongestionLog, per-port counters); operators tune the
parameters against those counters. This module provides the simulated
equivalent: a structured snapshot of a network's CC state, per switch
port and per HCA, suitable for printing or for driving tuning loops
(see ``examples/parameter_tuning.py``).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional


@dataclass
class SwitchPortCcStats:
    switch_id: int
    port: int
    victim_masked: bool
    marks: int  # per-switch granularity in the model; see note below


@dataclass
class HcaCcStats:
    node_id: int
    becns_applied: int
    cnps_sent: int
    throttled_flows: int
    #: Severity of the deepest throttle on the mechanism's own integer
    #: scale: the CCT index for ``"ib"``, percent slowdown for the
    #: rate-based mechanisms (see ``CongestionControl.deepest_level``).
    deepest_ccti: int
    timer_fires: int


@dataclass
class CcSnapshot:
    """Network-wide CC state at one instant."""

    time_ns: float
    total_marks: int
    total_eligible: int
    total_becns: int
    total_cnps: int
    throttled_flows: int
    per_switch_marks: Dict[int, int] = field(default_factory=dict)
    hcas: List[HcaCcStats] = field(default_factory=list)

    @property
    def marking_ratio(self) -> float:
        """Marked / eligible packets (1.0 when Marking_Rate = 0)."""
        if self.total_eligible == 0:
            return 0.0
        return self.total_marks / self.total_eligible

    def hottest_hcas(self, k: int = 5) -> List[HcaCcStats]:
        """HCAs with the deepest current throttles."""
        return sorted(self.hcas, key=lambda h: -h.deepest_ccti)[:k]

    def format(self) -> str:
        """Human-readable multi-line summary."""
        lines = [
            f"CC snapshot @ {self.time_ns / 1e6:.3f} ms",
            f"  FECN marks      {self.total_marks} "
            f"({self.marking_ratio:.0%} of eligible)",
            f"  BECNs applied   {self.total_becns}",
            f"  CNPs sent       {self.total_cnps}",
            f"  throttled flows {self.throttled_flows}",
        ]
        hot = [h for h in self.hottest_hcas() if h.deepest_ccti > 0]
        if hot:
            lines.append("  deepest throttles:")
            for h in hot:
                lines.append(
                    f"    node {h.node_id:4d}: CCTI {h.deepest_ccti}, "
                    f"{h.throttled_flows} flows"
                )
        return "\n".join(lines)


@dataclass
class FlowHealth:
    """Per-flow reliable-transport health (sender-side view)."""

    src: int
    dst: int
    state: str  # "ok" | "recovering" | "failed"
    acked_psn: int
    next_psn: int
    pending_bytes: int
    retx_packets: int
    retx_bytes: int
    timeouts: int
    rto_ns: float
    recovery_ns: float
    failed_discards: int

    def to_dict(self) -> dict:
        return asdict(self)


@dataclass
class TransportSnapshot:
    """Network-wide reliable-transport state at one instant.

    ``degraded`` lists only the flows that needed the recovery path
    (retransmitted, timed out, discarded post-failure, or currently
    not OK) — at paper scale the healthy majority stays implicit.
    """

    time_ns: float
    flows_tracked: int
    retx_packets: int
    retx_bytes: int
    timeouts: int
    failed_flows: int
    recovering_flows: int
    acks_sent: int
    dup_discards: int
    ooo_discards: int
    recovery_ns_total: float
    degraded: List[FlowHealth] = field(default_factory=list)

    def format(self) -> str:
        """Human-readable multi-line summary."""
        lines = [
            f"transport snapshot @ {self.time_ns / 1e6:.3f} ms",
            f"  flows tracked   {self.flows_tracked} "
            f"({self.failed_flows} failed, {self.recovering_flows} recovering)",
            f"  retransmissions {self.retx_packets} pkts / {self.retx_bytes} B "
            f"({self.timeouts} timeouts)",
            f"  acks sent       {self.acks_sent} "
            f"(discards: {self.dup_discards} dup, {self.ooo_discards} ooo)",
            f"  recovery time   {self.recovery_ns_total / 1e6:.3f} ms total",
        ]
        for fh in self.degraded[:8]:
            lines.append(
                f"    flow {fh.src}->{fh.dst}: {fh.state}, "
                f"{fh.retx_packets} retx, {fh.timeouts} timeouts, "
                f"{fh.pending_bytes} B pending"
            )
        if len(self.degraded) > 8:
            lines.append(f"    ... and {len(self.degraded) - 8} more degraded flows")
        return "\n".join(lines)


def snapshot_transport(network) -> Optional[TransportSnapshot]:
    """Collect a :class:`TransportSnapshot`; None if transport is off."""
    from repro.transport.reliability import FLOW_FAILED, FLOW_OK, FLOW_RECOVERING

    hcas = network.hcas
    if not hcas or hcas[0].transport is None:
        return None
    now = network.sim.now
    snap = TransportSnapshot(
        time_ns=now,
        flows_tracked=0,
        retx_packets=0,
        retx_bytes=0,
        timeouts=0,
        failed_flows=0,
        recovering_flows=0,
        acks_sent=0,
        dup_discards=0,
        ooo_discards=0,
        recovery_ns_total=0.0,
    )
    for hca in hcas:
        tr = hca.transport
        if tr is None:
            continue
        for st in tr.rx_flows.values():
            snap.acks_sent += st.acks_sent
            snap.dup_discards += st.dup_discards
            snap.ooo_discards += st.ooo_discards
        for flow in tr.tx_flows.values():
            snap.flows_tracked += 1
            snap.retx_packets += flow.retx_packets
            snap.retx_bytes += flow.retx_bytes
            snap.timeouts += flow.timeouts
            recovery = flow.recovery_ns
            if flow.state == FLOW_RECOVERING:
                snap.recovering_flows += 1
                recovery += now - flow.recovery_start
            elif flow.state == FLOW_FAILED:
                snap.failed_flows += 1
            snap.recovery_ns_total += recovery
            if flow.state != FLOW_OK or flow.retx_packets or flow.timeouts:
                snap.degraded.append(
                    FlowHealth(
                        src=tr.node_id,
                        dst=flow.dst,
                        state=flow.state,
                        acked_psn=flow.acked_psn,
                        next_psn=flow.next_psn,
                        pending_bytes=flow.pending_bytes(),
                        retx_packets=flow.retx_packets,
                        retx_bytes=flow.retx_bytes,
                        timeouts=flow.timeouts,
                        rto_ns=flow.rto_ns,
                        recovery_ns=recovery,
                        failed_discards=flow.failed_discards,
                    )
                )
    return snap


def snapshot_cc(network, manager) -> CcSnapshot:
    """Collect a :class:`CcSnapshot` from a live network + CC manager."""
    hcas = []
    for hca, hcc in zip(network.hcas, manager.hca_cc):
        hcas.append(
            HcaCcStats(
                node_id=hca.node_id,
                becns_applied=hcc.becns_applied,
                cnps_sent=hca.cnps_sent,
                throttled_flows=hcc.throttled_flows(),
                deepest_ccti=hcc.deepest_level(),
                timer_fires=hcc.timer_fires,
            )
        )
    return CcSnapshot(
        time_ns=network.sim.now,
        total_marks=manager.total_marks(),
        total_eligible=sum(scc.eligible for scc in manager.switch_cc),
        total_becns=manager.total_becns(),
        total_cnps=sum(h.cnps_sent for h in network.hcas),
        throttled_flows=manager.throttled_flows(),
        per_switch_marks={
            scc.switch.node_id: scc.marks for scc in manager.switch_cc
        },
        hcas=hcas,
    )
