"""The InfiniBand Congestion Control mechanism (IB spec 1.2.1, annex A10).

This package is the paper's subject: the closed-loop FECN/BECN rate
throttling system.

* :class:`~repro.core.parameters.CCParams` — every parameter of the
  paper's Table I plus the CCT population knobs;
* :mod:`repro.core.cct` — Congestion Control Table construction and
  injection-rate-delay (IRD) semantics;
* :class:`~repro.core.switch_cc.SwitchCC` — switch-side congestion
  detection (threshold weight, root-vs-victim rule, ``Victim_Mask``)
  and FECN marking (``Packet_Size``, ``Marking_Rate``);
* :class:`~repro.core.hca_cc.HcaCC` — source-side reaction point:
  per-QP (or per-SL) CCT index, ``CCTI_Increase``/``Limit``/``Min``,
  ``CCTI_Timer`` recovery;
* :class:`~repro.core.manager.CCManager` — the Congestion Control
  Manager that configures a whole network.
"""

from repro.core.parameters import CCParams
from repro.core.cct import build_cct
from repro.core.switch_cc import SwitchCC
from repro.core.hca_cc import HcaCC
from repro.core.manager import CCManager
from repro.core.stats import CcSnapshot, snapshot_cc

__all__ = ["CCParams", "build_cct", "SwitchCC", "HcaCC", "CCManager", "CcSnapshot", "snapshot_cc"]
