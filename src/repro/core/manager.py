"""The Congestion Control Manager.

In InfiniBand, a subnet-wide Congestion Control Manager distributes CC
parameters to every switch and channel adapter. :class:`CCManager`
plays that role for a simulated :class:`~repro.network.network.Network`:
it instantiates :class:`~repro.core.switch_cc.SwitchCC` on every
switch, sets the ``Victim_Mask`` on HCA-facing switch ports (the spec's
recommended practice — see footnote 2 of the paper), and installs one
reaction point per HCA.

Which reaction point is pluggable (:mod:`repro.cc`): ``cc_config``
selects a registered mechanism; omitted, the paper's IB CCT mechanism
(:class:`~repro.core.hca_cc.HcaCC`) installs exactly as it always has —
``prepare`` builds the shared CCT with the same :func:`build_cct` call
and every HCA shares that one table, so default runs are byte-identical
to the pre-registry code (the golden digests pin this). Switch-side
marking is mechanism-independent: every mechanism consumes the same
FECN/BECN feedback the switches produce.

Running without CC (the paper's baselines) simply means never calling
``install`` — switches then never mark and HCAs never throttle.
"""

from __future__ import annotations

from typing import Any, List, Optional

from repro.cc.config import CCConfig
from repro.cc.registry import mechanism_spec
from repro.core.parameters import CCParams
from repro.core.switch_cc import SwitchCC


class CCManager:
    """Configure congestion control across a network."""

    __slots__ = ("params", "cc_config", "spec", "options", "shared", "switch_cc", "hca_cc")

    def __init__(
        self,
        params: Optional[CCParams] = None,
        cc_config: Optional[CCConfig] = None,
    ) -> None:
        self.params = params or CCParams.paper_table1()
        self.cc_config = (cc_config or CCConfig()).validate()
        self.spec = mechanism_spec(self.cc_config.mechanism)
        self.options = self.cc_config.resolved_options()
        # Per-network shared state (the IB mechanism's one CCT; None for
        # mechanisms that keep all state per HCA).
        self.shared = self.spec.prepare(self.params, self.options)
        self.switch_cc: List[SwitchCC] = []
        self.hca_cc: List[Any] = []

    @property
    def cct(self):
        """The shared CCT (``"ib"`` mechanism), else ``None``."""
        return self.shared if self.cc_config.mechanism == "ib" else None

    @property
    def mechanism(self) -> str:
        """Name of the installed congestion-control mechanism."""
        return self.cc_config.mechanism

    def install(self, network) -> "CCManager":
        """Activate CC on every switch and HCA of ``network``."""
        params = self.params
        self.switch_cc = []
        for switch in network.switches:
            scc = SwitchCC(switch, params)
            scc.attach()
            switch.cc = scc
            self.switch_cc.append(scc)
        if params.victim_mask_hca_ports:
            for hl in network.topology.host_links:
                self.switch_cc[hl.switch_id].set_victim_mask(hl.switch_port)
        self.hca_cc = []
        for hca in network.hcas:
            hcc = self.spec.factory(hca, params, self.options, self.shared)
            hca.cc = hcc
            self.hca_cc.append(hcc)
        return self

    def attach_trace(self, tracer) -> "CCManager":
        """Point every installed CC component at ``tracer`` (or None).

        :class:`repro.trace.TraceSession` uses this for the core layer;
        callers doing manual wiring can use it directly.
        """
        for scc in self.switch_cc:
            scc.trace = tracer
        for hcc in self.hca_cc:
            hcc.trace = tracer
        return self

    # -- aggregate statistics for reports/tests -------------------------
    def total_marks(self) -> int:
        """FECN marks applied across all switches."""
        return sum(scc.marks for scc in self.switch_cc)

    def total_becns(self) -> int:
        """BECNs applied across all HCAs."""
        return sum(hcc.becns_applied for hcc in self.hca_cc)

    def throttled_flows(self) -> int:
        """Flows currently throttled network-wide."""
        return sum(hcc.throttled_flows() for hcc in self.hca_cc)
