"""Congestion Control Table construction and IRD semantics.

The CCT maps a flow's current index (CCTI) to an *injection rate
delay* (IRD): the extra gap inserted between consecutive packets of
the flow, computed relative to the packet's own length (per the spec:
"the IRD calculation being relative to the packet length"). A flow at
index ``i`` whose packets take ``ser`` ns to serialize may inject at
most one packet every ``ser * (1 + CCT[i])`` ns — i.e. it runs at
``1 / (1 + CCT[i])`` of link rate.

The spec does not prescribe table contents. We provide:

* ``linear`` — ``CCT[i] = slope * i`` (default). The slope is the
  paper's "CCT values increased to reflect the larger number of
  possible contributors" knob: the deepest throttle is
  ``1 / (1 + slope * CCTI_Limit)`` of link rate, which must cover the
  per-hotspot fair share. The default 0.5 (deepest 1/64.5) suits the
  benchmark-scale fat-trees (<= ~30 contributors per hotspot); a full
  648-node run with ~65 contributors per hotspot should use slope 2-4;
* ``exponential`` — ``CCT[i] = 2^(i * slope / 16) - 1``, a
  doubling-style table some firmware uses.
"""

from __future__ import annotations

from typing import List


def build_cct(
    limit: int, *, shape: str = "linear", slope: float = 4.0
) -> List[float]:
    """Build a CCT with ``limit + 1`` entries (indices 0..limit).

    ``CCT[0]`` is always 0: a flow at index zero experiences no IRD.
    Entries are non-negative and non-decreasing.
    """
    if limit < 0:
        raise ValueError("limit must be >= 0")
    if slope < 0:
        raise ValueError("slope must be >= 0")
    if shape == "linear":
        table = [slope * i for i in range(limit + 1)]
    elif shape == "exponential":
        table = [2.0 ** (i * slope / 16.0) - 1.0 for i in range(limit + 1)]
    else:
        raise ValueError(f"unknown CCT shape: {shape!r}")
    return table


def ird_gap_ns(cct_value: float, wire_size: int, byte_time_ns: float) -> float:
    """Extra inter-packet delay for one packet under a CCT entry.

    The flow's next packet may start no earlier than
    ``start + serialization + ird_gap_ns(...)``.
    """
    return cct_value * wire_size * byte_time_ns
