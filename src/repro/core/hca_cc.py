"""HCA-side congestion control: the reaction point.

Each BECN received for a flow bumps the flow's index into the
Congestion Control Table by ``CCTI_Increase`` (saturating at
``CCTI_Limit``); the table entry then dictates the injection rate
delay between that flow's packets. A per-HCA recovery timer
(``CCTI_Timer``, maintained per SL in the spec) decrements every
flow's index each period, restoring the injection rate once congestion
notifications stop.

Operation modes (paper section II.2):

* ``"qp"`` — state is kept per flow (queue pair). Only the flow that
  contributed to congestion is throttled. This is what the paper uses.
* ``"sl"`` — state is kept per service level: one BECN throttles every
  flow of that SL at this HCA, including innocent ones. Implemented
  for the ablation benchmarks quantifying the paper's claim that SL
  mode hurts fairness and performance.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional

from repro.core.cct import build_cct
from repro.core.parameters import CCParams
from repro.network.packet import FlowKey, Packet


class _FlowState:
    __slots__ = ("ccti", "next_time")

    def __init__(self) -> None:
        self.ccti = 0
        self.next_time = 0.0


class HcaCC:
    """CC reaction-point state for one HCA."""

    __slots__ = (
        "hca",
        "params",
        "cct",
        "_states",
        "_timer_pending",
        "_byte_time",
        "becns_applied",
        "timer_fires",
        "frozen",
        "trace",
    )

    def __init__(self, hca, params: CCParams, cct: Optional[List[float]] = None) -> None:
        self.hca = hca
        self.params = params
        self.cct = cct if cct is not None else build_cct(
            params.ccti_limit, shape=params.cct_shape, slope=params.cct_slope
        )
        if len(self.cct) < params.ccti_limit + 1:
            raise ValueError("CCT shorter than CCTI_Limit + 1")
        self._states: Dict[Hashable, _FlowState] = {}
        self._timer_pending = False
        self._byte_time = hca.obuf.link.byte_time_ns
        self.becns_applied = 0
        self.timer_fires = 0
        self.frozen = False  # fault injection: recovery timer held
        self.trace = None  # tracer (repro.trace), or None

    # -- keying ----------------------------------------------------------
    def _key(self, flow: FlowKey, sl: int = 0) -> Hashable:
        return flow if self.params.cc_mode == "qp" else sl

    # -- queries used by traffic generators -----------------------------
    def next_allowed(self, flow: FlowKey, sl: int = 0) -> float:
        """Earliest virtual time the next packet of ``flow`` may inject."""
        state = self._states.get(self._key(flow, sl))
        if state is None or state.ccti <= 0:
            return 0.0
        return state.next_time

    def ccti_of(self, flow: FlowKey, sl: int = 0) -> int:
        """Current CCT index of ``flow`` (0 when unthrottled)."""
        state = self._states.get(self._key(flow, sl))
        return 0 if state is None else state.ccti

    def rate_of(self, flow: FlowKey, sl: int = 0) -> float:
        """Injection-rate fraction implied by the flow's CCT entry.

        ``1 / (1 + CCT[i])``: the IRD spaces packets ``ser * (1 + CCT[i])``
        apart, i.e. the flow runs at that fraction of link rate. This is
        the :class:`repro.cc.base.CongestionControl` view of the same
        state :meth:`ccti_of` exposes natively.
        """
        state = self._states.get(self._key(flow, sl))
        if state is None or state.ccti <= 0:
            return 1.0
        return 1.0 / (1.0 + self.cct[state.ccti])

    # -- event hooks -------------------------------------------------
    def on_inject(self, pkt: Packet) -> None:
        """Track the flow's IRD horizon as a packet enters the obuf."""
        state = self._states.get(self._key(pkt.flow, pkt.sl))
        if state is None or state.ccti <= 0:
            return
        ser = pkt.wire_size * self._byte_time
        state.next_time = self.hca.sim.now + ser * (1.0 + self.cct[state.ccti])

    def on_becn(self, flow: FlowKey, sl: int = 0) -> None:
        """A BECN arrived for ``flow``: deepen its throttle."""
        key = self._key(flow, sl)
        state = self._states.get(key)
        if state is None:
            state = _FlowState()
            self._states[key] = state
        old = state.ccti
        state.ccti = min(state.ccti + self.params.ccti_increase, self.params.ccti_limit)
        self.becns_applied += 1
        if self.trace is not None:
            now = self.hca.sim.now
            node = self.hca.node_id
            self.trace.becn(now, node, flow[0], flow[1], sl)
            ksrc, kdst = key if self.params.cc_mode == "qp" else (-1, sl)
            self.trace.ccti_change(now, node, ksrc, kdst, old, state.ccti)
        self._ensure_timer()

    # -- recovery timer ----------------------------------------------
    def _ensure_timer(self) -> None:
        if not self._timer_pending:
            self._timer_pending = True
            self.hca.sim.schedule(self.params.timer_period_ns, self._timer_fire)

    def _timer_fire(self) -> None:
        self._timer_pending = False
        if self.frozen:
            # Fault injection: a frozen timer neither decrements nor
            # rearms; thaw() restarts recovery.
            return
        self.timer_fires += 1
        floor = self.params.ccti_min
        any_active = False
        decremented = 0
        for state in self._states.values():
            if state.ccti > floor:
                state.ccti -= 1
                decremented += 1
                if state.ccti > floor:
                    any_active = True
        if self.trace is not None:
            self.trace.timer_fire(self.hca.sim.now, self.hca.node_id, decremented)
        if any_active:
            self._ensure_timer()
        # A flow may now be allowed earlier than the generator planned.
        self.hca.kick()

    # -- fault injection (repro.faults) --------------------------------
    def freeze(self) -> None:
        """Hold the recovery timer: CCT indices stop decaying."""
        self.frozen = True

    def thaw(self) -> None:
        """Resume recovery; rearms the timer if any flow is throttled."""
        if not self.frozen:
            return
        self.frozen = False
        floor = self.params.ccti_min
        if any(s.ccti > floor for s in self._states.values()):
            self._ensure_timer()

    # -- introspection -------------------------------------------------
    def throttled_flows(self) -> int:
        """Number of flows currently holding a non-zero CCTI."""
        return sum(1 for s in self._states.values() if s.ccti > 0)

    def deepest_level(self) -> int:
        """Deepest current CCT index (the mechanism's severity scale)."""
        deepest = 0
        for state in self._states.values():
            if state.ccti > deepest:
                deepest = state.ccti
        return deepest
