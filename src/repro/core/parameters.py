"""Congestion-control parameters (the paper's Table I).

The IB spec exposes a rich parameter set with little guidance; the
paper's contribution is showing that one fixed assignment (found in
their earlier hardware study, IPDPS'10) is robust across increasingly
dynamic traffic. :meth:`CCParams.paper_table1` reproduces that
assignment exactly.

Units and semantics:

* ``threshold`` — congestion threshold *weight*, 0–15. 0 disables
  marking; 1 is the highest (least sensitive) threshold, 15 the lowest
  (most sensitive), "uniformly decreasing". The byte-level threshold
  an output Port VL is compared against is
  ``ibuf_capacity * (16 - weight) / 16`` (implementation-defined by the
  spec; see DESIGN.md §3.5).
* ``marking_rate`` — mean number of FECN-eligible packets sent between
  two marked packets; 0 marks every eligible packet.
* ``packet_size`` — packets with smaller payload are never marked.
* ``ccti_increase`` — CCT-index bump per received BECN.
* ``ccti_limit`` — upper bound of the CCT index (table size - 1).
* ``ccti_min`` — floor the timer decrements down to.
* ``ccti_timer`` — recovery-timer period in units of 1.024 µs; every
  expiry decrements the CCTI of all flows by one.
* ``cct_shape`` / ``cct_slope`` — how the CCT is populated (the spec
  leaves contents to the operator; the paper notes the values were
  "increased to reflect the larger number of possible contributors").
* ``cc_mode`` — ``"qp"`` (paper default) or ``"sl"``: whether one BECN
  throttles only its flow or every flow of the service level.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


CCTI_TIMER_UNIT_NS = 1024.0  # one timer tick: 1.024 microseconds


@dataclass
class CCParams:
    threshold: int = 15
    marking_rate: int = 0
    packet_size: int = 0
    ccti_increase: int = 1
    ccti_limit: int = 127
    ccti_min: int = 0
    ccti_timer: int = 150
    cct_shape: str = "linear"
    cct_slope: float = 0.5
    cc_mode: str = "qp"
    victim_mask_hca_ports: bool = True

    def __post_init__(self) -> None:
        if not 0 <= self.threshold <= 15:
            raise ValueError("threshold weight must be in 0..15")
        if self.marking_rate < 0:
            raise ValueError("marking_rate must be >= 0")
        if self.packet_size < 0:
            raise ValueError("packet_size must be >= 0")
        if self.ccti_increase < 1:
            raise ValueError("ccti_increase must be >= 1")
        if not 0 <= self.ccti_min <= self.ccti_limit:
            raise ValueError("need 0 <= ccti_min <= ccti_limit")
        if self.ccti_timer <= 0:
            raise ValueError("ccti_timer must be positive")
        if self.cct_shape not in ("linear", "exponential"):
            raise ValueError("cct_shape must be 'linear' or 'exponential'")
        if self.cct_slope < 0:
            raise ValueError("cct_slope must be >= 0")
        if self.cc_mode not in ("qp", "sl"):
            raise ValueError("cc_mode must be 'qp' or 'sl'")

    @property
    def timer_period_ns(self) -> float:
        """Recovery timer period in nanoseconds."""
        return self.ccti_timer * CCTI_TIMER_UNIT_NS

    def threshold_bytes(self, ibuf_capacity: int) -> float:
        """Byte threshold for a given input-buffer capacity.

        Weight 0 returns +inf (marking disabled); weights 1..15 map
        uniformly from 15/16 of the capacity (weight 1, high threshold)
        down to 1/16 (weight 15, low threshold).
        """
        if self.threshold == 0:
            return float("inf")
        return ibuf_capacity * (16 - self.threshold) / 16.0

    @classmethod
    def paper_table1(cls) -> "CCParams":
        """The exact parameter values of the paper's Table I."""
        return cls(
            ccti_increase=1,
            ccti_limit=127,
            ccti_min=0,
            ccti_timer=150,
            threshold=15,
            marking_rate=0,
            packet_size=0,
        )

    def with_(self, **kwargs) -> "CCParams":
        """A modified copy (for parameter sweeps/ablations)."""
        return replace(self, **kwargs)
