"""Switch-side congestion control: detection and FECN marking.

A switch output Port VL is *in the congestion state* when the bytes
queued for it (summed over all input VoQs) exceed the configured
threshold **and** the Port VL is the root of the congestion — it still
holds credits to output data. A Port VL without credits is itself a
victim of downstream congestion and must not mark (footnote 2 of the
paper); the exception is ports with the ``Victim_Mask`` set, which is
standard practice for ports cabled to HCAs because an HCA never
detects congestion itself — without the mask, the true root of an
end-node congestion tree would go unmarked.

While in the congestion state, packets transiting the Port VL are
FECN-marked subject to ``Packet_Size`` (minimum payload) and
``Marking_Rate`` (eligible packets skipped between marks).
"""

from __future__ import annotations

from typing import List

from repro.core.parameters import CCParams
from repro.network.packet import FLAG_FECN, Packet


class SwitchCC:
    """Per-switch CC state; installed as each output port's ``cc`` hook."""

    __slots__ = (
        "switch",
        "params",
        "threshold_bytes",
        "victim_mask",
        "_skip",
        "marks",
        "eligible",
        "trace",
    )

    def __init__(self, switch, params: CCParams) -> None:
        self.switch = switch
        self.params = params
        # The threshold is defined against input-buffer capacity; all
        # input ports of one switch share a capacity setting.
        ibuf_cap = switch.input_ports[0].capacity if switch.input_ports else 0
        self.threshold_bytes = params.threshold_bytes(ibuf_cap)
        self.victim_mask: List[bool] = [False] * switch.n_ports
        # Remaining eligible packets to skip before the next mark,
        # per (port, vl).
        self._skip: List[List[int]] = [
            [0] * switch.n_vls for _ in range(switch.n_ports)
        ]
        self.marks = 0
        self.eligible = 0
        self.trace = None  # tracer (repro.trace), or None

    def attach(self) -> None:
        """Register as the marking hook on every output port."""
        for port in self.switch.output_ports:
            port.cc = self

    def set_victim_mask(self, port_index: int, value: bool = True) -> None:
        """Set/clear the Victim Mask bit of one port."""
        self.victim_mask[port_index] = value

    def in_congestion_state(
        self, port_index: int, vl: int, credits_after: float, wire_size: int
    ) -> bool:
        """The spec's Port VL congestion-state predicate.

        Root of congestion = "the Port VL has available credits to
        output data": after reserving the current packet there is still
        room to send another one (``credits_after >= wire_size``). A
        strictly-positive-bytes test would misclassify starved ports as
        roots whenever the downstream buffer size is not a multiple of
        the packet size, because the remainder never reaches zero.
        """
        if self.switch.arbiters[port_index].queued_bytes[vl] <= self.threshold_bytes:
            return False
        return self.victim_mask[port_index] or credits_after >= wire_size

    def on_transmit(self, port_index: int, pkt: Packet, credits_after: float) -> None:
        """Called by the output port as ``pkt`` begins transmission."""
        params = self.params
        if params.threshold == 0:
            return
        vl = pkt.vl
        if not self.in_congestion_state(port_index, vl, credits_after, pkt.wire_size):
            return
        if pkt.payload < params.packet_size:
            return
        self.eligible += 1
        skip = self._skip[port_index]
        if skip[vl] > 0:
            skip[vl] -= 1
            return
        pkt.flags |= FLAG_FECN
        self.marks += 1
        skip[vl] = params.marking_rate
        if self.trace is not None:
            self.trace.fecn_mark(
                self.switch.sim.now, self.switch.node_id, port_index, vl,
                pkt.src, pkt.dst,
                self.switch.arbiters[port_index].queued_bytes[vl],
            )
