"""``python -m repro`` — same interface as the ``ibcc-repro`` script."""

import sys

from repro.experiments.cli import main

sys.exit(main())
