"""Pluggable event schedulers for the simulation kernel.

The :class:`~repro.engine.simulator.Simulator` stores pending events in
a scheduler chosen at construction time. Two implementations ship:

* :class:`HeapScheduler` — the reference implementation, a binary heap
  of ``(time, seq, fn, arg)`` tuples (``heapq``). Simple, O(log n) per
  operation, and the historical behavior of the kernel.
* :class:`CalendarScheduler` — a bucketed calendar queue. Events are
  appended O(1) into fixed-width time buckets (a dict keyed by
  ``floor(time / width)``); a bucket is sorted once, when the clock
  enters it. Pop is then an index increment. Because the typical event
  horizon of the simulated fabric is a few microseconds of tightly
  clustered byte-times, most pushes land in a handful of live buckets
  and the per-event constant factor beats the heap's tuple
  comparisons.

Both produce the **identical pop order** — ascending ``(time, seq)``,
with the sequence number breaking timestamp ties in scheduling order —
so a run's trace digest is invariant under scheduler choice. That
equivalence is enforced by ``tests/test_scheduler_differential.py``
(hypothesis property suite over random schedule/cancel sequences) and
by the golden-digest suites, which pin byte-identical digests for both
schedulers.

Selection: pass ``scheduler=`` to :class:`Simulator`, or set the
``REPRO_SCHEDULER`` environment variable (``heapq`` | ``calendar``).
The scheduler is a *performance* knob, not a behavioral one: it never
participates in experiment store keys, and cache entries are shared
across scheduler choices because the results are bit-equal.
"""

from __future__ import annotations

import heapq
import os
from bisect import insort
from typing import Any, Callable, Dict, List, Optional, Tuple, Union

#: Environment variable selecting the default scheduler.
ENV_SCHEDULER = "REPRO_SCHEDULER"

#: One pending event: ``(time, seq, fn, arg)``. ``seq`` is unique, so
#: tuple comparison never reaches the (uncomparable) callable.
Entry = Tuple[float, int, Callable, Any]


class HeapScheduler:
    """The reference binary-heap event queue (``heapq``)."""

    name = "heapq"

    __slots__ = ("_heap",)

    def __init__(self) -> None:
        self._heap: List[Entry] = []

    def push(self, time: float, seq: int, fn: Callable, arg: Any) -> None:
        """Insert one event."""
        heapq.heappush(self._heap, (time, seq, fn, arg))

    def pop(self, until: Optional[float] = None) -> Optional[Entry]:
        """Remove and return the earliest event.

        Returns ``None`` when the queue is empty or the head fires
        after ``until`` (the head is left queued).
        """
        heap = self._heap
        if not heap:
            return None
        if until is not None and heap[0][0] > until:
            return None
        return heapq.heappop(heap)

    def peek(self) -> Optional[Entry]:
        """The earliest event without removing it (None when empty)."""
        heap = self._heap
        return heap[0] if heap else None

    def __len__(self) -> int:
        return len(self._heap)


class CalendarScheduler:
    """A bucketed calendar queue with sort-on-entry buckets.

    Events are binned into fixed-width time buckets. ``push`` appends
    to the bucket list (amortized O(1)); when the clock advances into a
    bucket it is sorted once (Timsort, C speed) and drained by an index
    pointer. A sparse heap of live bucket indices finds the next
    non-empty bucket without scanning empty ones, so far-future events
    (retransmission timers, hotspot moves) cost nothing until due.

    An event scheduled into the bucket currently being drained — the
    common ``schedule(0.0, ...)`` and sub-bucket-delay cases — is
    inserted into the sorted remainder with :func:`bisect.insort`,
    preserving exact ``(time, seq)`` order.

    ``width_ns`` trades bucket count against bucket size; the default
    suits the fabric's event horizon (packet byte-times ~0.8 µs,
    propagation 50 ns). Any width produces the identical pop order —
    it only moves work between ``sort`` and ``insort``.
    """

    name = "calendar"

    __slots__ = ("_buckets", "_bucket_heap", "_cur", "_pos", "_cur_idx",
                 "_inv_width", "_len")

    def __init__(self, width_ns: float = 256.0) -> None:
        if width_ns <= 0:
            raise ValueError("bucket width must be positive")
        self._buckets: Dict[int, List[Entry]] = {}
        self._bucket_heap: List[int] = []
        self._cur: List[Entry] = []
        self._pos = 0
        # Index of the bucket `_cur` was sliced from. Starts below any
        # real bucket so the first push never takes the insort path.
        self._cur_idx = -1
        self._inv_width = 1.0 / width_ns
        self._len = 0

    def push(self, time: float, seq: int, fn: Callable, arg: Any) -> None:
        """Insert one event."""
        idx = int(time * self._inv_width)
        self._len += 1
        if idx <= self._cur_idx and self._pos < len(self._cur):
            # Lands in (or, at a float boundary, just before) the
            # bucket being drained: keep the remainder sorted. `time`
            # is never below the clock, so lo=_pos is always valid.
            insort(self._cur, (time, seq, fn, arg), self._pos)
            return
        bucket = self._buckets.get(idx)
        if bucket is None:
            self._buckets[idx] = [(time, seq, fn, arg)]
            heapq.heappush(self._bucket_heap, idx)
        else:
            bucket.append((time, seq, fn, arg))

    def _advance(self) -> bool:
        """Move ``_cur`` to the next non-empty bucket; False when none."""
        bucket_heap = self._bucket_heap
        buckets = self._buckets
        while bucket_heap:
            idx = heapq.heappop(bucket_heap)
            bucket = buckets.pop(idx, None)
            if bucket:
                bucket.sort()
                self._cur = bucket
                self._pos = 0
                self._cur_idx = idx
                return True
        return False

    def pop(self, until: Optional[float] = None) -> Optional[Entry]:
        """Remove and return the earliest event (see HeapScheduler)."""
        pos = self._pos
        cur = self._cur
        if pos >= len(cur):
            if not self._advance():
                return None
            pos = self._pos
            cur = self._cur
        entry = cur[pos]
        if until is not None and entry[0] > until:
            return None
        self._pos = pos + 1
        self._len -= 1
        return entry

    def peek(self) -> Optional[Entry]:
        """The earliest event without removing it (None when empty)."""
        if self._pos < len(self._cur):
            return self._cur[self._pos]
        if not self._advance():
            return None
        return self._cur[self._pos]

    def __len__(self) -> int:
        return self._len


#: Registry of selectable schedulers. ``repro.lint`` rule SCH001
#: cross-references these keys against the CLI's ``--scheduler``
#: choices so the two can never drift apart.
SCHEDULERS: Dict[str, Callable[[], Union[HeapScheduler, CalendarScheduler]]] = {
    "heapq": HeapScheduler,
    "calendar": CalendarScheduler,
}

Scheduler = Union[HeapScheduler, CalendarScheduler]


def scheduler_from_env() -> str:
    """The scheduler name selected by ``REPRO_SCHEDULER`` (default heapq)."""
    # Read once at simulator construction, never on the event path; the
    # two backends are proven byte-identical, so the knob cannot alter
    # results (and is deliberately not part of the store key).
    # simlint: disable-next-line=DET103
    name = os.environ.get(ENV_SCHEDULER, "").strip().lower()
    return name if name else "heapq"


def make_scheduler(choice: Union[str, Scheduler, None] = None) -> Scheduler:
    """Resolve a scheduler selection into a fresh scheduler instance.

    ``choice`` may be a registry name, an already-built scheduler
    (returned as-is), or ``None`` — which consults ``REPRO_SCHEDULER``
    and falls back to the heap reference implementation.
    """
    if choice is None:
        choice = scheduler_from_env()
    if isinstance(choice, str):
        try:
            factory = SCHEDULERS[choice]
        except KeyError:
            raise ValueError(
                f"unknown scheduler {choice!r} (choose from "
                f"{', '.join(sorted(SCHEDULERS))})"
            ) from None
        return factory()
    if not (hasattr(choice, "push") and hasattr(choice, "pop")):
        raise TypeError(f"not a scheduler: {choice!r}")
    return choice
