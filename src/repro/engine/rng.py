"""Deterministic random-number stream management.

Every component that needs randomness gets its own independent
:class:`numpy.random.Generator`, derived from a single master seed via
``SeedSequence.spawn``-style keyed children. Streams are keyed by an
arbitrary hashable name (e.g. ``("gen", node_id)``), so adding a new
consumer never perturbs the draws seen by existing components — runs
stay reproducible across code evolution.

**This module is the enforced randomness contract.** simlint rule
DET001 (:mod:`repro.lint`) statically rejects any other source of
randomness in the sim-critical packages (``engine``, ``network``,
``core``, ``traffic``, ``faults``, ``transport``, ``trace``,
``topology``): no stdlib ``random.*`` calls, no ``numpy.random``
module-level draws, no locally constructed generators. Event-path code
must take a :class:`RngRegistry` (or a stream from one) as an
argument; the only sanctioned exception is a seeded, pure
config-expansion generator behind a justified
``# simlint: disable=DET001`` pragma (see
:func:`repro.faults.chaos.chaos_schedule`). ``repro lint src/``
enforces this in CI before the test matrix runs.
"""

from __future__ import annotations

from typing import Dict, Hashable, Tuple

import numpy as np


class RngRegistry:
    """Factory for named, independent random generators.

    Examples
    --------
    >>> reg = RngRegistry(1234)
    >>> a = reg.stream("gen", 0)
    >>> b = reg.stream("gen", 1)
    >>> a is reg.stream("gen", 0)   # streams are cached by key
    True
    >>> float(a.random()) != float(b.random())
    True
    """

    __slots__ = ("_master_seed", "_streams")

    def __init__(self, master_seed: int = 0) -> None:
        if not isinstance(master_seed, (int, np.integer)):
            raise TypeError("master_seed must be an integer")
        self._master_seed = int(master_seed)
        self._streams: Dict[Tuple[Hashable, ...], np.random.Generator] = {}

    @property
    def master_seed(self) -> int:
        return self._master_seed

    def stream(self, *key: Hashable) -> np.random.Generator:
        """Return the (cached) generator for ``key``.

        The key is folded into the seed material, so the same
        ``(master_seed, key)`` always yields the same stream and
        distinct keys yield statistically independent streams.
        """
        if not key:
            raise ValueError("stream key must be non-empty")
        cached = self._streams.get(key)
        if cached is not None:
            return cached
        # Fold the key deterministically into integer entropy. str() of
        # the key pieces is stable across runs for ints/strings, which
        # is all we use as keys.
        digest = 0
        for part in key:
            for ch in str(part):
                digest = (digest * 1000003 + ord(ch)) & 0xFFFFFFFFFFFFFFFF
        seq = np.random.SeedSequence([self._master_seed, digest])
        gen = np.random.Generator(np.random.PCG64(seq))
        self._streams[key] = gen
        return gen

    def __len__(self) -> int:
        return len(self._streams)
