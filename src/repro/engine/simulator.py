"""The discrete-event simulator core.

A :class:`Simulator` owns the virtual clock and the pending-event
queue. Components schedule callables at absolute or relative virtual
times; the event loop pops events in ``(time, sequence)`` order, so
simultaneous events run in their scheduling order, which keeps runs
deterministic for a fixed seed.

Design notes (hot path):

* events are plain tuples ``(time, seq, fn, arg)`` — no Event objects;
* the pending-event structure is pluggable (:mod:`repro.engine.scheduler`):
  the ``heapq`` reference implementation or the faster calendar queue,
  selected per instance or via ``REPRO_SCHEDULER``. Both pop in the
  identical ``(time, seq)`` order, so the choice never changes behavior
  (golden digests are byte-identical — see
  ``tests/test_scheduler_differential.py``);
* cancellation is handled with a tombstone set keyed by sequence number
  rather than queue surgery (O(1) cancel, lazily discarded on pop);
* the loop body avoids attribute lookups by binding locals.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Any, Callable, List, Optional, Set, Union

from repro.engine.scheduler import Entry, HeapScheduler, Scheduler, make_scheduler


class SimulationError(RuntimeError):
    """Raised for invalid scheduling requests or a corrupted event loop."""


class Simulator:
    """A minimal, fast discrete-event scheduler.

    Parameters
    ----------
    max_events:
        Optional safety valve — abort with :class:`SimulationError` if
        more than this many events are executed (guards against event
        storms caused by modelling bugs).
    scheduler:
        Pending-event structure: a registry name (``"heapq"`` |
        ``"calendar"``), a prebuilt scheduler, or None to consult the
        ``REPRO_SCHEDULER`` environment variable (default ``heapq``).

    Examples
    --------
    >>> sim = Simulator()
    >>> fired = []
    >>> sim.schedule(10.0, fired.append, "a")
    >>> sim.schedule(5.0, fired.append, "b")
    >>> sim.run()
    >>> fired
    ['b', 'a']
    >>> sim.now
    10.0
    """

    __slots__ = (
        "now",
        "trace",
        "_sched",
        "_push",
        "_heap",
        "_seq",
        "_cancelled",
        "_events_executed",
        "_max_events",
        "_running",
    )

    def __init__(
        self,
        max_events: Optional[int] = None,
        *,
        scheduler: Union[str, Scheduler, None] = None,
    ) -> None:
        self.now: float = 0.0
        # Tracing handle (repro.trace.Tracer) or None. Held here so any
        # component can reach the active tracer through its simulator;
        # the event loop itself never touches it. Typed Any to avoid an
        # engine -> trace import cycle.
        self.trace: Optional[Any] = None
        self._sched: Scheduler = make_scheduler(scheduler)
        # Bound once: scheduling is the second-hottest call in a run.
        self._push = self._sched.push
        # Heap fast path: when the reference scheduler backs the queue,
        # schedule()/run() use heappush/heappop on its list directly —
        # pluggability must not tax the default configuration with an
        # extra Python call per event (~1.5M per quick cell).
        self._heap: Optional[List[Entry]] = (
            self._sched._heap if type(self._sched) is HeapScheduler else None
        )
        self._seq: int = 0
        self._cancelled: Set[int] = set()
        self._events_executed: int = 0
        self._max_events: Optional[int] = max_events
        self._running: bool = False

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: float, fn: Callable, arg: Any = None) -> int:
        """Schedule ``fn(arg)`` (or ``fn()`` if ``arg is None``) after ``delay`` ns.

        Returns an event id usable with :meth:`cancel`.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        seq = self._seq
        self._seq = seq + 1
        heap = self._heap
        if heap is not None:
            heappush(heap, (self.now + delay, seq, fn, arg))
        else:
            self._push(self.now + delay, seq, fn, arg)
        return seq

    def schedule_at(self, time: float, fn: Callable, arg: Any = None) -> int:
        """Schedule ``fn(arg)`` at absolute virtual time ``time`` ns."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at t={time} before now={self.now}"
            )
        seq = self._seq
        self._seq = seq + 1
        heap = self._heap
        if heap is not None:
            heappush(heap, (time, seq, fn, arg))
        else:
            self._push(time, seq, fn, arg)
        return seq

    def cancel(self, event_id: int) -> None:
        """Cancel a pending event by id. Cancelling twice is a no-op."""
        self._cancelled.add(event_id)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run(self, until: Optional[float] = None) -> None:
        """Run until the queue empties, or the clock passes ``until`` ns.

        When ``until`` is given, the clock is left exactly at ``until``
        even if the last executed event fired earlier, so rate
        computations over ``[0, until]`` windows are exact.
        """
        if self._running:
            raise SimulationError("simulator is not reentrant")
        self._running = True
        cancelled = self._cancelled
        pop = self._sched.pop
        max_events = self._max_events
        executed = self._events_executed
        heap = self._heap
        try:
            if max_events is None and heap is not None and until is not None:
                # Hottest case: heap-backed queue, bounded horizon, no
                # event budget. The heap is popped inline — one C call
                # per event, no per-event None checks.
                while heap and heap[0][0] <= until:
                    time, seq, fn, arg = heappop(heap)
                    if cancelled and seq in cancelled:
                        cancelled.discard(seq)
                        continue
                    self.now = time
                    executed += 1
                    if arg is None:
                        fn()
                    else:
                        fn(arg)
            elif max_events is None:
                # No event budget — keep the loop minimal.
                while True:
                    entry = pop(until)
                    if entry is None:
                        break
                    time, seq, fn, arg = entry
                    if cancelled and seq in cancelled:
                        cancelled.discard(seq)
                        continue
                    self.now = time
                    executed += 1
                    if arg is None:
                        fn()
                    else:
                        fn(arg)
            else:
                while True:
                    entry = pop(until)
                    if entry is None:
                        break
                    time, seq, fn, arg = entry
                    if cancelled and seq in cancelled:
                        cancelled.discard(seq)
                        continue
                    self.now = time
                    executed += 1
                    if executed > max_events:
                        raise SimulationError(
                            f"event budget exceeded ({max_events} events)"
                        )
                    if arg is None:
                        fn()
                    else:
                        fn(arg)
        finally:
            self._events_executed = executed
            self._running = False
        if until is not None and self.now < until:
            self.now = until

    def step(self) -> bool:
        """Execute a single pending event. Returns False if none remain."""
        cancelled = self._cancelled
        pop = self._sched.pop
        while True:
            entry = pop(None)
            if entry is None:
                return False
            time, seq, fn, arg = entry
            if seq in cancelled:
                cancelled.discard(seq)
                continue
            self.now = time
            self._events_executed += 1
            if arg is None:
                fn()
            else:
                fn(arg)
            return True

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def scheduler_name(self) -> str:
        """Name of the active pending-event structure."""
        return self._sched.name

    @property
    def pending(self) -> int:
        """Number of events still queued (including cancelled tombstones)."""
        return len(self._sched)

    @property
    def events_executed(self) -> int:
        """Total events executed so far — cheap profiling counter."""
        return self._events_executed

    def peek(self) -> Optional[float]:
        """Virtual time of the next live event, or None if queue empty."""
        sched = self._sched
        cancelled = self._cancelled
        while True:
            entry = sched.peek()
            if entry is None:
                return None
            if cancelled and entry[1] in cancelled:
                cancelled.discard(entry[1])
                sched.pop(None)
                continue
            return entry[0]
