"""The discrete-event simulator core.

A :class:`Simulator` owns the virtual clock and the pending-event heap.
Components schedule callables at absolute or relative virtual times;
the event loop pops events in ``(time, sequence)`` order, so
simultaneous events run in their scheduling order, which keeps runs
deterministic for a fixed seed.

Design notes (hot path):

* events are plain tuples ``(time, seq, fn, arg)`` — no Event objects;
* cancellation is handled with a tombstone set keyed by sequence number
  rather than heap surgery (O(1) cancel, lazily discarded on pop);
* the loop body avoids attribute lookups by binding locals.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional, Set, Tuple


class SimulationError(RuntimeError):
    """Raised for invalid scheduling requests or a corrupted event loop."""


class Simulator:
    """A minimal, fast discrete-event scheduler.

    Parameters
    ----------
    max_events:
        Optional safety valve — abort with :class:`SimulationError` if
        more than this many events are executed (guards against event
        storms caused by modelling bugs).

    Examples
    --------
    >>> sim = Simulator()
    >>> fired = []
    >>> sim.schedule(10.0, fired.append, "a")
    >>> sim.schedule(5.0, fired.append, "b")
    >>> sim.run()
    >>> fired
    ['b', 'a']
    >>> sim.now
    10.0
    """

    __slots__ = (
        "now",
        "trace",
        "_heap",
        "_seq",
        "_cancelled",
        "_events_executed",
        "_max_events",
        "_running",
    )

    def __init__(self, max_events: Optional[int] = None) -> None:
        self.now: float = 0.0
        # Tracing handle (repro.trace.Tracer) or None. Held here so any
        # component can reach the active tracer through its simulator;
        # the event loop itself never touches it. Typed Any to avoid an
        # engine -> trace import cycle.
        self.trace: Optional[Any] = None
        self._heap: List[Tuple[float, int, Callable, Any]] = []
        self._seq: int = 0
        self._cancelled: Set[int] = set()
        self._events_executed: int = 0
        self._max_events: Optional[int] = max_events
        self._running: bool = False

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: float, fn: Callable, arg: Any = None) -> int:
        """Schedule ``fn(arg)`` (or ``fn()`` if ``arg is None``) after ``delay`` ns.

        Returns an event id usable with :meth:`cancel`.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        return self.schedule_at(self.now + delay, fn, arg)

    def schedule_at(self, time: float, fn: Callable, arg: Any = None) -> int:
        """Schedule ``fn(arg)`` at absolute virtual time ``time`` ns."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at t={time} before now={self.now}"
            )
        seq = self._seq
        self._seq = seq + 1
        heapq.heappush(self._heap, (time, seq, fn, arg))
        return seq

    def cancel(self, event_id: int) -> None:
        """Cancel a pending event by id. Cancelling twice is a no-op."""
        self._cancelled.add(event_id)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run(self, until: Optional[float] = None) -> None:
        """Run until the heap empties, or the clock passes ``until`` ns.

        When ``until`` is given, the clock is left exactly at ``until``
        even if the last executed event fired earlier, so rate
        computations over ``[0, until]`` windows are exact.
        """
        if self._running:
            raise SimulationError("simulator is not reentrant")
        self._running = True
        heap = self._heap
        cancelled = self._cancelled
        pop = heapq.heappop
        max_events = self._max_events
        executed = self._events_executed
        try:
            while heap:
                time, seq, fn, arg = heap[0]
                if until is not None and time > until:
                    break
                pop(heap)
                if cancelled:
                    if seq in cancelled:
                        cancelled.discard(seq)
                        continue
                self.now = time
                executed += 1
                if max_events is not None and executed > max_events:
                    raise SimulationError(
                        f"event budget exceeded ({max_events} events)"
                    )
                if arg is None:
                    fn()
                else:
                    fn(arg)
        finally:
            self._events_executed = executed
            self._running = False
        if until is not None and self.now < until:
            self.now = until

    def step(self) -> bool:
        """Execute a single pending event. Returns False if none remain."""
        heap = self._heap
        cancelled = self._cancelled
        while heap:
            time, seq, fn, arg = heapq.heappop(heap)
            if seq in cancelled:
                cancelled.discard(seq)
                continue
            self.now = time
            self._events_executed += 1
            if arg is None:
                fn()
            else:
                fn(arg)
            return True
        return False

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def pending(self) -> int:
        """Number of events still queued (including cancelled tombstones)."""
        return len(self._heap)

    @property
    def events_executed(self) -> int:
        """Total events executed so far — cheap profiling counter."""
        return self._events_executed

    def peek(self) -> Optional[float]:
        """Virtual time of the next live event, or None if queue empty."""
        heap = self._heap
        cancelled = self._cancelled
        while heap and heap[0][1] in cancelled:
            cancelled.discard(heap[0][1])
            heapq.heappop(heap)
        return heap[0][0] if heap else None
