"""Discrete-event simulation kernel.

The kernel is deliberately small and dependency-free: a binary-heap
event queue keyed by ``(time, sequence)`` with callable handlers, plus
deterministic random-number stream management built on
:class:`numpy.random.SeedSequence`.

Time is measured in **nanoseconds** (floats). All network components
convert rates (Gbit/s) into byte-times once at construction so the hot
path performs only additions and comparisons.
"""

from repro.engine.simulator import Simulator, SimulationError
from repro.engine.scheduler import (
    SCHEDULERS,
    CalendarScheduler,
    HeapScheduler,
    make_scheduler,
    scheduler_from_env,
)
from repro.engine.rng import RngRegistry

__all__ = [
    "Simulator",
    "SimulationError",
    "RngRegistry",
    "SCHEDULERS",
    "HeapScheduler",
    "CalendarScheduler",
    "make_scheduler",
    "scheduler_from_env",
]
