"""``python -m repro.validation`` — run the calibration battery."""

import sys

from repro.validation import run_calibration

report = run_calibration()
print(report.format())
sys.exit(0 if report.all_passed else 1)
