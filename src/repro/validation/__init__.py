"""Model calibration checks.

The paper's simulator was "carefully tuned against Mellanox MTS3600
InfiniBand switches" (their OMNeT++ 2011 companion paper). We have no
hardware, so this package provides the equivalent discipline for the
reproduction: a battery of first-principles checks that pin the model's
primitive behaviours to analytically known values — link serialization,
the 13.5/13.6 Gbit/s endpoint caps, credit-loop throughput bounds,
arbitration shares, and the CC feedback-loop latency. Run them with::

    python -m repro.validation

or programmatically via :func:`run_calibration`.
"""

from repro.validation.checks import CalibrationCheck, CalibrationReport, run_calibration

__all__ = ["CalibrationCheck", "CalibrationReport", "run_calibration"]
