"""The calibration battery (see package docstring)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List

from repro.core import CCManager, CCParams
from repro.engine import RngRegistry, Simulator
from repro.metrics import Collector, jain_fairness
from repro.network import HcaConfig, Network, NetworkConfig
from repro.topology import three_stage_fat_tree
from repro.traffic import BNodeSource, FixedRateSource, HotspotSchedule

MS = 1e6


@dataclass
class CalibrationCheck:
    """One measured-vs-expected comparison."""

    name: str
    expected: float
    measured: float
    tolerance: float  # relative
    detail: str = ""

    @property
    def passed(self) -> bool:
        if self.expected == 0.0:
            return abs(self.measured) <= self.tolerance
        return abs(self.measured - self.expected) <= self.tolerance * abs(self.expected)

    def format(self) -> str:
        """One-line pass/fail rendering of the comparison."""
        mark = "ok " if self.passed else "FAIL"
        return (
            f"[{mark}] {self.name:42s} expected {self.expected:10.3f} "
            f"measured {self.measured:10.3f} (tol {self.tolerance:.0%})"
        )


@dataclass
class CalibrationReport:
    checks: List[CalibrationCheck]

    @property
    def all_passed(self) -> bool:
        return all(c.passed for c in self.checks)

    def format(self) -> str:
        """Multi-line report with one line per check."""
        lines = ["Model calibration report", "=" * 24]
        lines += [c.format() for c in self.checks]
        lines.append("")
        n_ok = sum(1 for c in self.checks if c.passed)
        lines.append(f"{n_ok}/{len(self.checks)} checks passed")
        return "\n".join(lines)


def _fresh(radix=4, **net_kw):
    topo = three_stage_fat_tree(radix)
    sim = Simulator()
    col = Collector(topo.n_hosts, warmup_ns=0.5 * MS)
    net = Network(sim, topo, NetworkConfig(**net_kw), collector=col)
    return topo, sim, col, net


def check_injection_cap() -> CalibrationCheck:
    """A saturating source delivers exactly the 13.5 Gbit/s PCIe cap."""
    topo, sim, col, net = _fresh()
    gen = FixedRateSource(0, topo.n_hosts, 5, 13.5, RngRegistry(1).stream("g"))
    gen.bind(net.hcas[0])
    net.hcas[0].attach_generator(gen)
    net.run(until=3 * MS)
    return CalibrationCheck(
        "single-flow delivery at injection cap",
        13.5,
        col.rx_rate_gbps(5, 3 * MS),
        0.02,
        "paper section IV: injection limited by PCIe v1.1",
    )


def check_sink_cap() -> CalibrationCheck:
    """Fan-in beyond the sink rate is clipped at 13.6 Gbit/s."""
    topo, sim, col, net = _fresh()
    rng = RngRegistry(1)
    hs = HotspotSchedule([0])
    for node in range(1, topo.n_hosts):
        gen = BNodeSource(node, topo.n_hosts, 1.0, rng.stream("g", node),
                          hotspot=lambda: hs.target(0))
        gen.bind(net.hcas[node])
        net.hcas[node].attach_generator(gen)
    net.run(until=3 * MS)
    return CalibrationCheck(
        "hotspot receive at sink cap",
        13.6,
        col.rx_rate_gbps(0, 3 * MS),
        0.04,
        "paper: hardware receive ~0.1 Gbit/s above the injection rate",
    )


def check_link_serialization() -> CalibrationCheck:
    """Wire time for one packet at 20 Gbit/s (4x DDR)."""
    from repro.network.ports import LinkConfig

    link = LinkConfig(20.0)
    expected = (2048 + 30) * 8 / 20.0  # ns
    measured = (2048 + 30) * link.byte_time_ns
    return CalibrationCheck(
        "MTU serialization time at 20 Gbit/s (ns)", expected, measured, 0.001
    )


def check_credit_loop_bound() -> CalibrationCheck:
    """Throughput of a credit loop is min(link, window/RTT).

    With a small downstream buffer (window) and a long cable, a single
    link must self-throttle to window/RTT — the classic credit-based
    flow-control bound.
    """
    window = 4156.0  # two packets of buffer downstream
    prop = 5_000.0  # a long cable: 5 us each way
    topo, sim, col, net = _fresh(
        link=__import__("repro.network.ports", fromlist=["LinkConfig"]).LinkConfig(
            20.0, prop
        ),
        hca=HcaConfig(ibuf_capacity=int(window)),
    )
    gen = FixedRateSource(0, topo.n_hosts, 1, 13.5, RngRegistry(1).stream("g"))
    gen.bind(net.hcas[0])
    net.hcas[0].attach_generator(gen)
    net.run(until=8 * MS)
    # Host 0 and 1 share a leaf: one switch hop. The loop that matters
    # is the last hop into the HCA: serialization + prop + service +
    # credit return. Per window of 2 packets:
    ser = 2078 * 0.4
    service = 2078 * 8 / 13.6
    rtt = ser + prop + service + prop
    expected = min(13.5, (window * 8) / (ser + prop + 2 * service + prop))
    # Use a generous tolerance: the exact pipeline overlap is subtle;
    # what is being pinned is the order of magnitude of the stall.
    return CalibrationCheck(
        "credit-loop throughput bound (Gbit/s)",
        expected,
        col.rx_rate_gbps(1, 8 * MS),
        0.25,
        "window-limited link must run at ~window/RTT",
    )


def check_arbitration_shares() -> CalibrationCheck:
    """Equal-hop contributors share a saturated output equally."""
    topo, sim, col, net = _fresh(radix=4)
    col2 = Collector(topo.n_hosts, warmup_ns=1 * MS, track_pairs=True)
    net.collector = col2
    for h in net.hcas:
        h.metrics = col2
    rng = RngRegistry(1)
    hs = HotspotSchedule([0])
    # Contributors 2..7 are all remote to host 0's leaf: symmetric.
    for node in range(2, 8):
        gen = BNodeSource(node, topo.n_hosts, 1.0, rng.stream("g", node),
                          hotspot=lambda: hs.target(0))
        gen.bind(net.hcas[node])
        net.hcas[node].attach_generator(gen)
    net.run(until=5 * MS)
    per_flow = [col2.rx_by_src.get((s, 0), 0) for s in range(2, 8)]
    return CalibrationCheck(
        "remote-contributor fairness (Jain index)",
        1.0,
        jain_fairness(per_flow),
        0.05,
        "round-robin vlarb must share equally among symmetric inputs",
    )


def check_cc_loop_latency() -> CalibrationCheck:
    """Time from congestion onset to the first source throttle.

    Bounded by: queue build-up to threshold + FECN transit to the
    destination + CNP return. At 20 Gbit/s on an idle reverse path this
    is tens of microseconds — if it measures in milliseconds the
    feedback path is broken (e.g. CNPs blocked behind data).
    """
    topo, sim, col, net = _fresh(radix=4)
    mgr = CCManager(CCParams.paper_table1().with_(cct_slope=0.5)).install(net)
    rng = RngRegistry(1)
    hs = HotspotSchedule([0])
    for node in range(1, topo.n_hosts):
        gen = BNodeSource(node, topo.n_hosts, 1.0, rng.stream("g", node),
                          hotspot=lambda: hs.target(0))
        gen.bind(net.hcas[node])
        net.hcas[node].attach_generator(gen)
    first_becn = {}

    def probe():
        if mgr.total_becns() > 0 and "t" not in first_becn:
            first_becn["t"] = sim.now
        else:
            sim.schedule(1_000.0, probe)

    sim.schedule(1_000.0, probe)
    net.run(until=2 * MS)
    measured_us = first_becn.get("t", float("inf")) / 1_000.0
    return CalibrationCheck(
        "CC loop first-throttle latency (us)",
        30.0,
        measured_us,
        1.0,  # within [0, 60] us — order-of-magnitude pin
        "onset -> FECN -> CNP -> CCTI bump must be tens of microseconds",
    )


def check_cc_idle_overhead() -> CalibrationCheck:
    """CC must not perturb an uncongested network at all."""
    def run(cc: bool) -> float:
        topo, sim, col, net = _fresh(radix=4)
        if cc:
            CCManager(CCParams.paper_table1().with_(cct_slope=0.5)).install(net)
        gen = FixedRateSource(0, topo.n_hosts, 5, 8.0, RngRegistry(1).stream("g"))
        gen.bind(net.hcas[0])
        net.hcas[0].attach_generator(gen)
        net.run(until=3 * MS)
        return col.rx_rate_gbps(5, 3 * MS)

    return CalibrationCheck(
        "CC overhead on uncongested traffic (Gbit/s delta)",
        0.0,
        abs(run(True) - run(False)),
        0.01,  # absolute, since expected == 0
    )


ALL_CHECKS: List[Callable[[], CalibrationCheck]] = [
    check_link_serialization,
    check_injection_cap,
    check_sink_cap,
    check_credit_loop_bound,
    check_arbitration_shares,
    check_cc_loop_latency,
    check_cc_idle_overhead,
]


def run_calibration() -> CalibrationReport:
    """Run the full battery and return the report."""
    return CalibrationReport([check() for check in ALL_CHECKS])
