"""Table II: performance numbers for the silent forest of congestion trees.

Four phases, as in the paper (section V-A):

1. no hotspots, CC off — only uniform (victim-class) traffic;
2. no hotspots, CC on — shows CC does no harm when idle;
3. hotspots, CC off — the congestion-tree collapse;
4. hotspots, CC on — the recovery.

plus the total-network-throughput comparison of the hotspot phases.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.experiments.config import SCALES, ExperimentConfig, ScaleProfile
from repro.experiments.runner import ExperimentResult


@dataclass
class Table2Result:
    """All rows of the paper's Table II (Gbit/s)."""

    baseline_no_cc: ExperimentResult
    baseline_cc: ExperimentResult
    hotspots_no_cc: ExperimentResult
    hotspots_cc: ExperimentResult

    def rows(self) -> Dict[str, float]:
        """The table's rows keyed like the EXPERIMENTS.md report."""
        return {
            "no_hotspots_no_cc_avg": self.baseline_no_cc.all_nodes,
            "no_hotspots_cc_avg": self.baseline_cc.all_nodes,
            "hotspots_no_cc_hotspot_avg": self.hotspots_no_cc.hotspot,
            "hotspots_no_cc_non_hotspot_avg": self.hotspots_no_cc.non_hotspot,
            "hotspots_cc_hotspot_avg": self.hotspots_cc.hotspot,
            "hotspots_cc_non_hotspot_avg": self.hotspots_cc.non_hotspot,
            "total_throughput_no_cc": self.hotspots_no_cc.total,
            "total_throughput_cc": self.hotspots_cc.total,
        }

    @property
    def improvement(self) -> float:
        return self.hotspots_cc.total / self.hotspots_no_cc.total

    def format(self) -> str:
        """Plain-text rendering in the paper's row order."""
        r = self.rows()
        lines = [
            "Table II -- silent congestion trees (Gbit/s)",
            f"  No hotspots, no CC   avg receive rate   {r['no_hotspots_no_cc_avg']:8.3f}",
            f"  No hotspots, CC on   avg receive rate   {r['no_hotspots_cc_avg']:8.3f}",
            f"  Hotspots, no CC      hotspots avg rcv   {r['hotspots_no_cc_hotspot_avg']:8.3f}",
            f"                       non-hotspots avg   {r['hotspots_no_cc_non_hotspot_avg']:8.3f}",
            f"  Hotspots, CC on      hotspots avg rcv   {r['hotspots_cc_hotspot_avg']:8.3f}",
            f"                       non-hotspots avg   {r['hotspots_cc_non_hotspot_avg']:8.3f}",
            f"  Total throughput     without CC         {r['total_throughput_no_cc']:8.3f}",
            f"                       with CC            {r['total_throughput_cc']:8.3f}",
            f"  Improvement by enabling CC: {self.improvement:.2f}x",
        ]
        return "\n".join(lines)


def run_table2(
    scale: ScaleProfile | str = "default",
    *,
    seed: int = 7,
    jobs: int = 1,
    cache=None,
    retry=None,
    timeout_s: float | None = None,
    max_rss_mb: float | None = None,
    reporter=None,
    manifest_path: str | None = None,
    run_fn=None,
    faults=None,
    transport=None,
    cc_config=None,
    resume_from=None,
    retry_failed: bool = False,
) -> Table2Result:
    """Run the four phases of Table II at the given scale.

    The phases are independent cells, so they fan out through
    :func:`repro.parallel.run_campaign`: ``jobs`` sets the pool width
    (1 = in-process serial, byte-identical to the historical driver),
    ``cache`` enables read-through result caching, and ``retry``/
    ``timeout_s``/``reporter``/``manifest_path`` forward to the
    executor. ``run_fn`` overrides the per-cell runner — e.g.
    :class:`~repro.experiments.runner.TracedRun` to capture trace
    digests. A phase that fails after its retries raises
    :class:`~repro.parallel.pool.CampaignError` — Table II needs all
    four rows. ``faults`` applies one fault plan
    (:class:`~repro.faults.FaultSchedule` or
    :class:`~repro.faults.ChaosSpec`) to every phase; ``transport``
    enables the reliable transport (a
    :class:`~repro.transport.TransportConfig`) in every phase;
    ``cc_config`` (a :class:`~repro.cc.CCConfig`) selects the
    congestion-control mechanism of the CC-on phases — the CC-off
    phases stay mechanism-agnostic so every mechanism shares their
    cache entries; ``resume_from`` replays a checkpointed run manifest.
    """
    from repro.parallel import run_campaign

    if isinstance(scale, str):
        scale = SCALES[scale]
    base = ExperimentConfig(
        scale=scale, b_fraction=0.0, c_fraction_of_rest=0.8, seed=seed, name="table2",
        faults=faults, transport=transport,
    )
    configs = [
        base.with_(cc=False, contributors_active=False),
        base.with_(cc=True, cc_config=cc_config, contributors_active=False),
        base.with_(cc=False),
        base.with_(cc=True, cc_config=cc_config),
    ]
    campaign = run_campaign(
        configs,
        jobs=jobs,
        cache=cache,
        retry=retry,
        timeout_s=timeout_s,
        max_rss_mb=max_rss_mb,
        progress=reporter,
        manifest_path=manifest_path,
        run_fn=run_fn,
        resume_from=resume_from,
        retry_failed=retry_failed,
    ).raise_on_failure()
    baseline_no_cc, baseline_cc, hotspots_no_cc, hotspots_cc = campaign.results
    return Table2Result(
        baseline_no_cc=baseline_no_cc,
        baseline_cc=baseline_cc,
        hotspots_no_cc=hotspots_no_cc,
        hotspots_cc=hotspots_cc,
    )
