"""Fault scenarios: Table-II-style cells under injected fabric faults.

The paper's Table II isolates what congestion control does to a healthy
fabric. This driver asks the complementary robustness question — what
each *fault class* (:mod:`repro.faults`) does to the same hotspot
workload, with and without CC:

* ``link-flap`` — a leaf uplink dies mid-run and retrains later: does
  the fabric recover its throughput, and does CC mis-throttle flows
  that were victims of the outage?
* ``degrade`` — a slow fabric-internal link (the paper's
  frequency/voltage-scaling congestion cause), transient this time;
* ``cnp-drop`` — lossy control signaling: most CNPs are dropped, so
  CCT indices grow more slowly than the congestion they answer;
* ``timer-freeze`` — recovery stops: whatever throttle CC built stays
  for the window (the failure mode of a stuck CCTI timer);
* ``switch-pause`` — a whole spine crossbar blinks without loss,
  backpressuring every flow routed through it;
* ``chaos`` — a seeded random mix of all of the above.

Every scenario runs the Table II "hotspots" phases (CC off / CC on) at
the requested scale; the clean pair is included as the reference row.
Cells fan out through :func:`repro.parallel.run_campaign` like every
other driver (cache/retry/manifest/resume all apply).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.experiments.config import SCALES, ExperimentConfig, ScaleProfile
from repro.experiments.runner import ExperimentResult
from repro.faults.spec import ChaosSpec, FaultPlan, FaultSchedule, FaultSpec


@dataclass(frozen=True)
class FaultScenario:
    """One named fault plan applied to the Table II hotspot workload."""

    name: str
    description: str
    plan: Optional[FaultPlan]  # None = the clean reference


def builtin_scenarios(scale: ScaleProfile, *, seed: int = 7) -> List[FaultScenario]:
    """The standard scenario set, sized to ``scale``.

    Fault windows are fractions of the run so every profile (quick /
    default / paper) exercises the same phases: onset after warmup,
    recovery well before the end so the post-fault behaviour is
    measured too.
    """
    sim = scale.sim_time_ns
    hosts_per_leaf = scale.radix // 2
    uplink_port = hosts_per_leaf  # leaf 0's uplink to spine 0
    spine0 = scale.radix  # switch ids: leaves 0..radix-1, then spines
    return [
        FaultScenario("clean", "no faults (reference)", None),
        FaultScenario(
            "link-flap",
            "leaf-0 uplink down for 10% of the run",
            FaultSchedule([
                FaultSpec.link_flap(
                    0.45 * sim, 0.10 * sim, switch=0, port=uplink_port
                ),
            ]),
        ),
        FaultScenario(
            "degrade",
            "leaf-0 uplink at quarter rate for 40% of the run",
            FaultSchedule([
                FaultSpec(
                    "degrade", 0.40 * sim, 0.40 * sim,
                    switch=0, port=uplink_port, value=0.25,
                ),
            ]),
        ),
        FaultScenario(
            "cnp-drop",
            "70% of CNPs dropped at every HCA for half the run",
            FaultSchedule([
                FaultSpec("cnp_drop", 0.30 * sim, 0.50 * sim, value=0.7),
            ]),
        ),
        FaultScenario(
            "timer-freeze",
            "all CC recovery timers frozen for 40% of the run",
            FaultSchedule([
                FaultSpec("timer_freeze", 0.40 * sim, 0.40 * sim),
            ]),
        ),
        FaultScenario(
            "switch-pause",
            "spine-0 paused (lossless) for 5% of the run",
            FaultSchedule([
                FaultSpec("switch_pause", 0.50 * sim, 0.05 * sim, switch=spine0),
            ]),
        ),
        FaultScenario(
            "chaos",
            "seeded random mix of every fault class",
            ChaosSpec(
                seed=seed,
                link_flap=0.05,
                degrade=0.05,
                cnp_drop=0.05,
                timer_freeze=0.05,
                switch_pause=0.02,
            ),
        ),
    ]


@dataclass
class ScenarioRow:
    """Both CC settings of one scenario, plus its fault telemetry."""

    scenario: FaultScenario
    off: ExperimentResult
    on: ExperimentResult

    @property
    def improvement(self) -> float:
        return self.on.total / self.off.total if self.off.total else float("nan")


@dataclass
class FaultScenarioTable:
    """All scenario rows of one :func:`run_fault_scenarios` call."""

    rows: List[ScenarioRow]

    def row(self, name: str) -> ScenarioRow:
        for r in self.rows:
            if r.scenario.name == name:
                return r
        raise KeyError(name)

    def series(self) -> Dict[str, list]:
        return {
            "scenario": [r.scenario.name for r in self.rows],
            "total_off": [r.off.total for r in self.rows],
            "total_on": [r.on.total for r in self.rows],
            "improvement": [r.improvement for r in self.rows],
        }

    def format(self) -> str:
        """Plain-text table: throughput and fault telemetry per scenario.

        When any cell ran with the reliable transport enabled, two
        recovery columns are appended: retransmitted packets and
        permanently FAILED flows (CC-on cell of each row).
        """
        with_transport = any(
            r.on.config.transport is not None
            or r.off.config.transport is not None
            for r in self.rows
        )
        head = (
            f"Fault scenarios -- hotspot workload (Gbit/s)\n"
            f"{'scenario':<14} {'tot off':>8} {'tot on':>8} {'improv':>7} "
            f"{'nonhs off':>10} {'nonhs on':>9} {'faults':>7} {'drops':>7}"
        )
        if with_transport:
            head += f" {'retx':>7} {'failed':>7}"
        rows = []
        for r in self.rows:
            faults = r.on.fault_onsets
            drops = r.on.dropped_packets + r.on.cnps_dropped
            line = (
                f"{r.scenario.name:<14} {r.off.total:8.3f} {r.on.total:8.3f} "
                f"{r.improvement:6.2f}x {r.off.non_hotspot:10.3f} "
                f"{r.on.non_hotspot:9.3f} {faults:7d} {drops:7d}"
            )
            if with_transport:
                line += f" {r.on.retx_packets:7d} {r.on.failed_flows:7d}"
            rows.append(line)
        return "\n".join([head, *rows])


def run_fault_scenarios(
    scale: ScaleProfile | str = "default",
    *,
    scenarios: Optional[Sequence[FaultScenario]] = None,
    seed: int = 7,
    transport=None,
    cc_config=None,
    jobs: int = 1,
    cache=None,
    retry=None,
    timeout_s: float | None = None,
    max_rss_mb: float | None = None,
    reporter=None,
    manifest_path: str | None = None,
    run_fn=None,
    resume_from=None,
    retry_failed: bool = False,
) -> FaultScenarioTable:
    """Run every scenario's (CC off, CC on) hotspot pair at ``scale``.

    ``scenarios`` overrides :func:`builtin_scenarios`; ``transport``
    (a :class:`~repro.transport.TransportConfig`) runs every cell on
    the reliable-delivery layer so lossy fault classes recover by
    retransmission instead of silently losing bytes. The executor
    knobs (``jobs``/``cache``/``retry``/``timeout_s``/``reporter``/
    ``manifest_path``/``resume_from``) forward to
    :func:`repro.parallel.run_campaign`. A cell that fails after its
    retries raises :class:`~repro.parallel.pool.CampaignError`.
    """
    from repro.parallel import run_campaign

    if isinstance(scale, str):
        scale = SCALES[scale]
    if scenarios is None:
        scenarios = builtin_scenarios(scale, seed=seed)
    base = ExperimentConfig(
        scale=scale, b_fraction=0.0, c_fraction_of_rest=0.8, seed=seed,
        transport=transport,
    )
    configs = []
    for sc in scenarios:
        cfg = base.with_(name=f"fault-{sc.name}", faults=sc.plan)
        configs.append(cfg.with_(cc=False))
        configs.append(cfg.with_(cc=True, cc_config=cc_config))
    campaign = run_campaign(
        configs,
        jobs=jobs,
        cache=cache,
        retry=retry,
        timeout_s=timeout_s,
        max_rss_mb=max_rss_mb,
        progress=reporter,
        manifest_path=manifest_path,
        run_fn=run_fn,
        resume_from=resume_from,
        retry_failed=retry_failed,
    ).raise_on_failure()
    results = campaign.results
    rows = [
        ScenarioRow(scenario=sc, off=results[2 * i], on=results[2 * i + 1])
        for i, sc in enumerate(scenarios)
    ]
    return FaultScenarioTable(rows=rows)
