"""Experiment drivers: one per table/figure of the paper.

* :mod:`repro.experiments.config` — scenario + scale configuration;
* :mod:`repro.experiments.runner` — build a network from a config, run
  it, and collect an :class:`~repro.experiments.runner.ExperimentResult`;
* :mod:`repro.experiments.table2` — the silent-forest phases (Table II);
* :mod:`repro.experiments.windy` — the p-sweeps of figures 5–8;
* :mod:`repro.experiments.moving` — the hotspot-lifetime sweeps of
  figures 9–10;
* :mod:`repro.experiments.cli` — ``python -m repro`` / ``ibcc-repro``.

All drivers accept a *scale profile* (``quick``/``default``/``paper``)
that sets the fat-tree radix, hotspot count, simulated time and CCT
slope. ``paper`` is the full 648-node Sun DCS topology; see DESIGN.md
§3 for why the smaller profiles preserve the reported shapes.

Campaign drivers (``sweep``, ``run_table2``, the windy/moving figures)
also accept ``jobs=``/``cache=`` and execute their cells through
:mod:`repro.parallel` — a fault-tolerant process-pool executor with
read-through result caching, bounded retry, and a JSON run manifest.
``jobs=1`` (the default) reproduces the historical serial behavior
byte-for-byte.
"""

from repro.experiments.config import ExperimentConfig, ScaleProfile, SCALES
from repro.experiments.runner import ExperimentResult, run_experiment
from repro.experiments.table2 import run_table2
from repro.experiments.windy import run_windy_point, run_windy_figure
from repro.experiments.moving import run_moving_point, run_moving_figure
from repro.experiments.sweep import sweep, SweepResult
from repro.experiments.store import ResultStore
from repro.experiments.report import generate_report

__all__ = [
    "ExperimentConfig",
    "ScaleProfile",
    "SCALES",
    "ExperimentResult",
    "run_experiment",
    "run_table2",
    "run_windy_point",
    "run_windy_figure",
    "run_moving_point",
    "run_moving_figure",
    "sweep",
    "SweepResult",
    "ResultStore",
    "generate_report",
]
