"""Persist experiment results as JSON.

Experiment points are expensive (minutes at paper scale), so the store
lets drivers cache results keyed by their full configuration and reload
them across sessions — e.g. to assemble EXPERIMENTS.md incrementally or
to re-plot without re-simulating.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
from typing import Optional

from repro.core.parameters import CCParams
from repro.experiments.config import SCALES, ExperimentConfig, ScaleProfile
from repro.experiments.runner import ExperimentResult


def config_to_dict(cfg: ExperimentConfig) -> dict:
    """Serialize a config (including its scale profile) to plain data."""
    out = dataclasses.asdict(cfg)
    out["scale"] = dataclasses.asdict(cfg.scale)
    if cfg.cc_params is not None:
        out["cc_params"] = dataclasses.asdict(cfg.cc_params)
    return out


def config_key(cfg: ExperimentConfig) -> str:
    """A stable content hash of the full configuration."""
    blob = json.dumps(config_to_dict(cfg), sort_keys=True)
    return hashlib.sha256(blob.encode()).hexdigest()[:16]


def result_to_dict(res: ExperimentResult) -> dict:
    """Serialize a result to JSON-compatible data."""
    return {
        "config": config_to_dict(res.config),
        "rates_gbps": res.rates_gbps,
        "hotspots": res.hotspots,
        "groups": res.groups,
        "tmax": res.tmax,
        "n_b": res.n_b,
        "n_c": res.n_c,
        "n_v": res.n_v,
        "fecn_marks": res.fecn_marks,
        "becns": res.becns,
        "events": res.events,
        "wall_seconds": res.wall_seconds,
        "trace_digest": res.trace_digest,
        "trace_violations": res.trace_violations,
        "trace_records": res.trace_records,
    }


def result_from_dict(data: dict) -> ExperimentResult:
    """Rebuild an :class:`ExperimentResult` from :func:`result_to_dict` data."""
    cfg_data = dict(data["config"])
    scale = ScaleProfile(**{
        k: tuple(v) if k == "moving_lifetimes_ns" else v
        for k, v in cfg_data.pop("scale").items()
    })
    cc_params = cfg_data.pop("cc_params", None)
    cfg = ExperimentConfig(
        scale=scale,
        cc_params=CCParams(**cc_params) if cc_params else None,
        **cfg_data,
    )
    return ExperimentResult(
        config=cfg,
        rates_gbps=list(data["rates_gbps"]),
        hotspots=list(data["hotspots"]),
        groups=dict(data["groups"]),
        tmax=data["tmax"],
        n_b=data["n_b"],
        n_c=data["n_c"],
        n_v=data["n_v"],
        fecn_marks=data["fecn_marks"],
        becns=data["becns"],
        events=data["events"],
        wall_seconds=data["wall_seconds"],
        # Absent in results stored before the trace layer existed.
        trace_digest=data.get("trace_digest"),
        trace_violations=data.get("trace_violations", 0),
        trace_records=data.get("trace_records", 0),
    )


class ResultStore:
    """A directory of JSON result files keyed by configuration hash."""

    def __init__(self, directory: str) -> None:
        self.directory = directory
        os.makedirs(directory, exist_ok=True)

    def _path(self, cfg: ExperimentConfig) -> str:
        return os.path.join(self.directory, f"{config_key(cfg)}.json")

    def save(self, res: ExperimentResult) -> str:
        """Write the result's JSON file; returns its path."""
        path = self._path(res.config)
        with open(path, "w") as fh:
            json.dump(result_to_dict(res), fh)
        return path

    def load(self, cfg: ExperimentConfig) -> Optional[ExperimentResult]:
        """Load the cached result for ``cfg``, or None if absent."""
        path = self._path(cfg)
        if not os.path.exists(path):
            return None
        with open(path) as fh:
            return result_from_dict(json.load(fh))

    def __contains__(self, cfg: ExperimentConfig) -> bool:
        """Whether a result for ``cfg`` is already stored."""
        return os.path.exists(self._path(cfg))

    def get_or_run(self, cfg: ExperimentConfig) -> ExperimentResult:
        """Load a cached result or simulate and cache it."""
        cached = self.load(cfg)
        if cached is not None:
            return cached
        from repro.experiments.runner import run_experiment

        res = run_experiment(cfg)
        self.save(res)
        return res

    def __len__(self) -> int:
        return sum(1 for f in os.listdir(self.directory) if f.endswith(".json"))
