"""Persist experiment results as JSON.

Experiment points are expensive (minutes at paper scale), so the store
lets drivers cache results keyed by their full configuration and reload
them across sessions — e.g. to assemble EXPERIMENTS.md incrementally or
to re-plot without re-simulating.

Layout: entries fan out into two-hex-character shard subdirectories
(``ab/abcd….json``) so a store serving many concurrent campaigns (the
``repro serve`` daemon) never accumulates tens of thousands of entries
in one directory. Stores written before sharding existed used a flat
layout; reads fall through to the flat path transparently, while every
new write lands sharded.

Crash safety: every write goes to a temporary file in the same
directory and is moved into place with ``os.replace`` — a killed
process can never leave a truncated JSON file under a result key. If a
corrupt entry is found anyway (pre-hardening files, disk faults), the
load treats it as a cache miss: the bad file is moved aside to a
``.corrupt`` sidecar (preserved for inspection) and the cell re-runs.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import logging
import os
import threading
from typing import Optional

from repro.cc.config import cc_config_from_dict, cc_config_to_dict
from repro.core.parameters import CCParams
from repro.experiments.config import ExperimentConfig, ScaleProfile
from repro.experiments.runner import ExperimentResult
from repro.faults.spec import faults_from_dict, faults_to_dict
from repro.transport.config import transport_from_dict, transport_to_dict

_log = logging.getLogger(__name__)


def atomic_write_json(path: str, data) -> None:
    """Write JSON to ``path`` atomically (tmp file + ``os.replace``).

    The temporary file name is unique per writer (pid + thread id), so
    concurrent writers of the same path never clobber each other's
    in-progress bytes: each finishes its own complete temp file and the
    replaces serialize to last-writer-wins on the final path.
    """
    tmp = f"{path}.{os.getpid()}.{threading.get_ident()}.tmp"
    try:
        with open(tmp, "w") as fh:
            json.dump(data, fh)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    finally:
        if os.path.exists(tmp):  # pragma: no cover - only on write failure
            try:
                os.remove(tmp)
            except OSError:
                pass  # best-effort cleanup of an orphaned temp file


def quarantine(path: str) -> str:
    """Move a corrupt file aside; returns the sidecar path."""
    sidecar = path + ".corrupt"
    try:
        os.replace(path, sidecar)
    except OSError:  # pragma: no cover - racing cleanup is benign
        pass
    return sidecar


def load_json_or_quarantine(path: str) -> Optional[dict]:
    """Parse a JSON file; on corruption, quarantine it and return None."""
    try:
        with open(path) as fh:
            return json.load(fh)
    except FileNotFoundError:
        return None
    except (json.JSONDecodeError, UnicodeDecodeError, OSError) as exc:
        sidecar = quarantine(path)
        _log.warning(
            "corrupt store entry %s (%s); quarantined to %s, treating as miss",
            path, exc, sidecar,
        )
        return None


def config_to_dict(cfg: ExperimentConfig) -> dict:
    """Serialize a config (including its scale profile) to plain data."""
    out = dataclasses.asdict(cfg)
    out["scale"] = dataclasses.asdict(cfg.scale)
    if cfg.cc_params is not None:
        out["cc_params"] = dataclasses.asdict(cfg.cc_params)
    # Fault-free configs omit the key entirely so their content hashes
    # (and any results stored before the fault layer existed) are
    # unchanged. Same for transport-free configs.
    out.pop("faults", None)
    if cfg.faults is not None:
        out["faults"] = faults_to_dict(cfg.faults)
    out.pop("transport", None)
    if cfg.transport is not None:
        out["transport"] = transport_to_dict(cfg.transport)
    # Default-mechanism configs (None, or an explicit untuned "ib")
    # omit the key: their content hashes — and every result stored
    # before the mechanism became selectable — are unchanged, and
    # ``--cc ib`` reuses the pre-arena cache entries.
    out.pop("cc_config", None)
    cc_config = cfg.cc_config
    if cc_config is not None and (cc_config.mechanism != "ib" or cc_config.params):
        out["cc_config"] = cc_config_to_dict(cc_config)
    return out


def config_key(cfg: ExperimentConfig) -> str:
    """A stable content hash of the full configuration."""
    blob = json.dumps(config_to_dict(cfg), sort_keys=True)
    return hashlib.sha256(blob.encode()).hexdigest()[:16]


def result_to_dict(res: ExperimentResult) -> dict:
    """Serialize a result to JSON-compatible data."""
    return {
        "config": config_to_dict(res.config),
        "rates_gbps": res.rates_gbps,
        "hotspots": res.hotspots,
        "groups": res.groups,
        "tmax": res.tmax,
        "n_b": res.n_b,
        "n_c": res.n_c,
        "n_v": res.n_v,
        "fecn_marks": res.fecn_marks,
        "becns": res.becns,
        "events": res.events,
        "wall_seconds": res.wall_seconds,
        "trace_digest": res.trace_digest,
        "trace_violations": res.trace_violations,
        "trace_records": res.trace_records,
        "fault_onsets": res.fault_onsets,
        "fault_recoveries": res.fault_recoveries,
        "dropped_packets": res.dropped_packets,
        "cnps_dropped": res.cnps_dropped,
        "retx_packets": res.retx_packets,
        "retx_bytes": res.retx_bytes,
        "transport_timeouts": res.transport_timeouts,
        "failed_flows": res.failed_flows,
        "recovery_ns_total": res.recovery_ns_total,
        "flow_health": res.flow_health,
    }


def config_from_dict(data: dict) -> ExperimentConfig:
    """Rebuild an :class:`ExperimentConfig` from :func:`config_to_dict` data.

    The inverse of :func:`config_to_dict`; also the wire codec the
    ``repro serve`` daemon uses to parse submitted campaign cells.
    Raises ``KeyError``/``TypeError``/``ValueError`` on malformed input
    (missing scale, unknown fields, wrong types) — callers that accept
    untrusted payloads turn those into structured errors.
    """
    cfg_data = dict(data)
    scale = ScaleProfile(**{
        k: tuple(v) if k == "moving_lifetimes_ns" else v
        for k, v in cfg_data.pop("scale").items()
    })
    cc_params = cfg_data.pop("cc_params", None)
    faults = faults_from_dict(cfg_data.pop("faults", None))
    transport = transport_from_dict(cfg_data.pop("transport", None))
    cc_config = cc_config_from_dict(cfg_data.pop("cc_config", None))
    return ExperimentConfig(
        scale=scale,
        cc_params=CCParams(**cc_params) if cc_params else None,
        faults=faults,
        transport=transport,
        cc_config=cc_config,
        **cfg_data,
    )


def result_from_dict(data: dict) -> ExperimentResult:
    """Rebuild an :class:`ExperimentResult` from :func:`result_to_dict` data."""
    cfg = config_from_dict(data["config"])
    return ExperimentResult(
        config=cfg,
        rates_gbps=list(data["rates_gbps"]),
        hotspots=list(data["hotspots"]),
        groups=dict(data["groups"]),
        tmax=data["tmax"],
        n_b=data["n_b"],
        n_c=data["n_c"],
        n_v=data["n_v"],
        fecn_marks=data["fecn_marks"],
        becns=data["becns"],
        events=data["events"],
        wall_seconds=data["wall_seconds"],
        # Absent in results stored before the trace layer existed.
        trace_digest=data.get("trace_digest"),
        trace_violations=data.get("trace_violations", 0),
        trace_records=data.get("trace_records", 0),
        # Absent in results stored before the fault layer existed.
        fault_onsets=data.get("fault_onsets", 0),
        fault_recoveries=data.get("fault_recoveries", 0),
        dropped_packets=data.get("dropped_packets", 0),
        cnps_dropped=data.get("cnps_dropped", 0),
        # Absent in results stored before the transport layer existed.
        retx_packets=data.get("retx_packets", 0),
        retx_bytes=data.get("retx_bytes", 0),
        transport_timeouts=data.get("transport_timeouts", 0),
        failed_flows=data.get("failed_flows", 0),
        recovery_ns_total=data.get("recovery_ns_total", 0.0),
        flow_health=data.get("flow_health"),
    )


class ResultStore:
    """A sharded directory of JSON result files keyed by config hash.

    Entries live at ``<directory>/<key[:2]>/<key>.json`` — 256 fan-out
    shards keep per-directory entry counts civilized under multi-tenant
    serving load. Stores written before sharding existed kept every
    entry flat in ``<directory>``; :meth:`load` and ``in`` fall back to
    that legacy path transparently, so old caches keep hitting without
    a migration step. New writes always land sharded.

    Concurrent writers are safe. :meth:`save` goes through a unique
    temporary file and a single atomic ``os.replace``, so two processes
    saving the *same* key race to last-writer-wins: whichever
    ``os.replace`` lands second determines the final bytes, and readers
    observe one complete version or the other — never a torn mix. Since
    results are pure functions of their config (the key hashes the full
    config), both writers carry equivalent payloads and the race is
    benign by construction.
    """

    def __init__(self, directory: str) -> None:
        self.directory = directory
        os.makedirs(directory, exist_ok=True)

    def _path(self, cfg: ExperimentConfig) -> str:
        """The sharded path every new write lands at."""
        return self.path_for_key(config_key(cfg))

    def path_for_key(self, key: str) -> str:
        """Sharded entry path for an already-computed config key."""
        return os.path.join(self.directory, key[:2], f"{key}.json")

    def _legacy_path(self, key: str) -> str:
        """Where a pre-sharding (flat-layout) store kept this key."""
        return os.path.join(self.directory, f"{key}.json")

    def _existing_path(self, key: str) -> Optional[str]:
        """The on-disk path holding ``key`` (sharded wins), or None."""
        for path in (self.path_for_key(key), self._legacy_path(key)):
            if os.path.exists(path):
                return path
        return None

    def save(self, res: ExperimentResult) -> str:
        """Write the result's JSON file atomically; returns its path.

        Same-key concurrency is last-writer-wins (see the class
        docstring); the write itself can never be observed truncated.
        """
        path = self._path(res.config)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        atomic_write_json(path, result_to_dict(res))
        return path

    def load(self, cfg: ExperimentConfig) -> Optional[ExperimentResult]:
        """Load the cached result for ``cfg``, or None if absent.

        Reads through the sharded layout first, then the legacy flat
        layout. A corrupt entry is quarantined and treated as a miss
        rather than poisoning the whole campaign.
        """
        path = self._existing_path(config_key(cfg))
        if path is None:
            return None
        data = load_json_or_quarantine(path)
        if data is None:
            return None
        try:
            return result_from_dict(data)
        except (KeyError, TypeError, ValueError) as exc:
            sidecar = quarantine(path)
            _log.warning(
                "malformed store entry %s (%s); quarantined to %s",
                path, exc, sidecar,
            )
            return None

    def __contains__(self, cfg: ExperimentConfig) -> bool:
        """Whether a result for ``cfg`` is already stored."""
        return self._existing_path(config_key(cfg)) is not None

    def contains_key(self, key: str) -> bool:
        """Whether an entry for an already-computed key is stored."""
        return self._existing_path(key) is not None

    def get_or_run(self, cfg: ExperimentConfig) -> ExperimentResult:
        """Load a cached result or simulate and cache it."""
        cached = self.load(cfg)
        if cached is not None:
            return cached
        from repro.experiments.runner import run_experiment

        res = run_experiment(cfg)
        self.save(res)
        return res

    def keys(self) -> list:
        """Every stored config key (sharded and legacy), sorted."""
        out = set()
        for _root, name in _walk_suffix(self.directory, ".json"):
            out.add(name[:-len(".json")])
        return sorted(out)

    def __len__(self) -> int:
        """Entry count across shard subdirectories and the flat legacy
        layout (a key present in both counts once)."""
        return len(self.keys())


def _walk_suffix(directory: str, suffix: str):
    """Yield ``(dirpath, filename)`` for matching files at any depth.

    The recursive scan behind :meth:`ResultStore.__len__`,
    :func:`find_quarantined` and :func:`purge_quarantined` — entries
    (and their ``.corrupt`` sidecars) may sit in shard subdirectories
    or flat at the top level.
    """
    for root, dirs, names in os.walk(directory):
        dirs.sort()
        for name in sorted(names):
            if name.endswith(suffix):
                yield root, name


def find_quarantined(directory: str) -> list:
    """``.corrupt`` quarantine sidecars under ``directory``, sorted.

    These are corrupt cache entries moved aside by
    :func:`load_json_or_quarantine` / :meth:`ResultStore.load` and
    preserved for inspection; ``repro store gc`` lists and purges them.
    Recurses into the sharded subdirectories as well as the top level.
    """
    return sorted(
        os.path.join(root, name)
        for root, name in _walk_suffix(directory, ".corrupt")
    )


def purge_quarantined(directory: str) -> list:
    """Delete every quarantine sidecar; returns the removed paths."""
    removed = []
    for path in find_quarantined(directory):
        try:
            os.remove(path)
        except FileNotFoundError:  # pragma: no cover - racing cleanup
            continue
        removed.append(path)
    return removed
