"""Command-line entry point: regenerate any paper artifact.

Examples::

    ibcc-repro table2 --scale quick
    ibcc-repro fig5 --scale default
    ibcc-repro fig9a --scale quick
    ibcc-repro fig10 --p 60
    ibcc-repro fig5 --jobs 4 --cache-dir .ibcc-cache   # parallel + cached
    ibcc-repro table2 --jobs 4 --timeout-s 600 --max-rss-mb 2048  # budgets
    ibcc-repro fig5 --resume run.json --retry-failed   # re-run failures
    ibcc-repro faults --scale quick             # fault-scenario table
    ibcc-repro table2 --chaos 7                 # seeded random faults
    ibcc-repro table2 --faults flap.json        # explicit fault schedule
    ibcc-repro faults --transport --trace       # reliable-delivery runs
    ibcc-repro table2 --cc dctcp                # swap the CC mechanism
    ibcc-repro arena --quick                    # cross-mechanism matrix
    ibcc-repro store gc .ibcc-cache --purge     # drop quarantine sidecars
    ibcc-repro lint src/                        # simlint static analysis
    ibcc-repro serve --store .ibcc-cache --jobs 4   # campaign daemon
    python -m repro table2 --scale paper        # full 648-node run
"""

from __future__ import annotations

import argparse
import os
import sys

from repro.experiments.config import SCALES, ConfigError
from repro.experiments.fault_scenarios import run_fault_scenarios
from repro.experiments.moving import run_moving_figure
from repro.experiments.table2 import run_table2
from repro.experiments.windy import run_windy_figure

_WINDY_X = {"fig5": 0.25, "fig6": 0.50, "fig7": 0.75, "fig8": 1.00}

_CHAOS_RATES = ("link_flap", "degrade", "cnp_drop", "timer_freeze", "switch_pause")
_CHAOS_DEFAULT_RATE = 0.05


def parse_chaos(text: str):
    """Parse ``--chaos SEED[:kind=rate,...]`` into a :class:`ChaosSpec`.

    Rates are expected faults per simulated millisecond. With no rates
    given, every fault class runs at 0.05 per ms::

        --chaos 7
        --chaos 7:link_flap=0.1,cnp_drop=0.2

    Raises ``ValueError`` on malformed input.
    """
    from repro.faults import ChaosSpec

    seed_part, _, rates_part = text.partition(":")
    seed = int(seed_part)
    if not rates_part:
        return ChaosSpec(seed=seed, **{k: _CHAOS_DEFAULT_RATE for k in _CHAOS_RATES})
    rates = {}
    for item in rates_part.split(","):
        key, eq, val = item.partition("=")
        if not eq or key not in _CHAOS_RATES:
            raise ValueError(
                f"bad chaos rate {item!r}; expected kind=rate with kind in "
                f"{', '.join(_CHAOS_RATES)}"
            )
        rates[key] = float(val)
    return ChaosSpec(seed=seed, **rates)


def parse_cc(text: str):
    """Parse ``--cc MECH[:key=value,...]`` into a :class:`CCConfig`.

    Values parse as int, then float, then stay strings::

        --cc reno
        --cc dctcp:gain=0.125,ai=0.1

    Raises ``ValueError`` on malformed input, unknown mechanisms, and
    unknown option names (via :meth:`CCConfig.validate`).
    """
    from repro.cc import CCConfig

    mech, _, params_part = text.partition(":")
    params = {}
    if params_part:
        for item in params_part.split(","):
            key, eq, val = item.partition("=")
            if not eq or not key:
                raise ValueError(
                    f"bad CC parameter {item!r}; expected key=value"
                )
            for cast in (int, float):
                try:
                    val = cast(val)
                    break
                except ValueError:
                    continue
            params[key] = val
    return CCConfig.make(mech, **params).validate()


def build_parser() -> argparse.ArgumentParser:
    """Build the argparse parser for the ``ibcc-repro`` CLI."""
    parser = argparse.ArgumentParser(
        prog="ibcc-repro",
        description=(
            "Reproduce tables/figures of 'Exploring the Scope of the "
            "InfiniBand Congestion Control Mechanism' (IPDPS 2012)"
        ),
    )
    parser.add_argument(
        "artifact",
        choices=["table2", "fig5", "fig6", "fig7", "fig8", "fig9a", "fig9b",
                 "fig10", "faults", "arena"],
        help=(
            "which artifact to regenerate (faults = the fault-scenario "
            "robustness table; arena = the cross-mechanism CC matrix)"
        ),
    )
    parser.add_argument(
        "--scale",
        choices=sorted(SCALES),
        default="default",
        help="scale profile (paper = full 648-node Sun DCS topology)",
    )
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--p",
        type=float,
        default=60,
        help="fig10 only: hotspot share in percent (30/60/90 in the paper)",
    )
    parser.add_argument(
        "--p-step",
        type=float,
        default=10,
        help="windy figures: p sweep step in percent",
    )
    parser.add_argument(
        "--chart",
        action="store_true",
        help="render the figure panels as ASCII charts",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help=(
            "worker processes for the experiment cells "
            "(1 = serial, byte-identical to historical runs)"
        ),
    )
    parser.add_argument(
        "--timeout-s",
        type=float,
        default=None,
        metavar="SECONDS",
        help=(
            "with --jobs>1: per-cell wall-clock budget; the supervisor "
            "preempts the worker of a cell that exceeds it and records "
            "the cell failed with error_kind=timeout"
        ),
    )
    parser.add_argument(
        "--max-rss-mb",
        type=float,
        default=None,
        metavar="MB",
        help=(
            "with --jobs>1: per-worker address-space budget "
            "(RLIMIT_AS); a cell that allocates past it fails in place "
            "with error_kind=oom instead of inviting the kernel OOM "
            "killer"
        ),
    )
    parser.add_argument(
        "--retry-failed",
        action="store_true",
        help=(
            "with --resume: re-run the cells the prior manifest "
            "recorded as failed (by default their quarantine records — "
            "poisoned cells, timeouts — are replayed without burning "
            "workers on them again)"
        ),
    )
    parser.add_argument(
        "--scheduler",
        choices=["heapq", "calendar"],
        default=None,
        help=(
            "event-queue implementation for the simulation kernel "
            "(default: the REPRO_SCHEDULER environment variable, else "
            "heapq). A pure performance knob: both choices produce "
            "byte-identical event streams and share cache entries"
        ),
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help=(
            "cache completed cells as JSON under DIR; re-runs and resumed "
            "campaigns skip cells already present"
        ),
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable result caching even if --cache-dir is given",
    )
    parser.add_argument(
        "--manifest",
        default=None,
        metavar="PATH",
        help="write the JSON run manifest (per-cell status/retries/timing)",
    )
    parser.add_argument(
        "--faults",
        default=None,
        metavar="SPEC.json",
        help=(
            "inject a fault schedule (FaultSchedule JSON, see "
            "repro.faults) into every cell of the artifact"
        ),
    )
    parser.add_argument(
        "--chaos",
        default=None,
        metavar="SEED[:kind=rate,...]",
        help=(
            "inject seeded random faults into every cell; rates are "
            "faults per simulated ms (default 0.05 for every class: "
            "link_flap, degrade, cnp_drop, timer_freeze, switch_pause)"
        ),
    )
    parser.add_argument(
        "--resume",
        default=None,
        metavar="MANIFEST",
        help=(
            "resume an interrupted campaign from its checkpointed run "
            "manifest; completed cells are replayed from --cache-dir"
        ),
    )
    parser.add_argument(
        "--trace",
        action="store_true",
        help=(
            "trace every cell (repro.trace): compute per-cell digests "
            "(recorded in the --manifest file and printed to stderr) and "
            "audit CC/flow-control invariants online"
        ),
    )
    parser.add_argument(
        "--trace-dir",
        default=None,
        metavar="DIR",
        help="with --trace: also write each cell's replayable JSONL trace under DIR",
    )
    parser.add_argument(
        "--transport",
        action=argparse.BooleanOptionalAction,
        default=False,
        help=(
            "run every cell on the reliable-delivery transport "
            "(repro.transport): PSN sequencing, acks, timeout/retransmit "
            "with backoff; faulted runs recover lost bytes or report "
            "explicitly FAILED flows instead of silently losing data "
            "(default: off, keeping the raw lossless fabric)"
        ),
    )
    parser.add_argument(
        "--cc",
        default=None,
        metavar="MECH[:key=value,...]",
        help=(
            "congestion-control mechanism for the CC-on cells "
            "(registered repro.cc name — ib, dctcp, reno, dcqcn — with "
            "optional option overrides, e.g. dctcp:gain=0.125); for the "
            "arena artifact this restricts the matrix to one mechanism. "
            "Default: ib, the paper's mechanism, byte-identical to "
            "omitting the flag"
        ),
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help=(
            "arena only: shrink simulated time to a seconds-scale "
            "smoke matrix"
        ),
    )
    parser.add_argument(
        "--out-dir",
        default=None,
        metavar="DIR",
        help=(
            "arena only: also write the matrix as arena.csv and "
            "arena.json under DIR"
        ),
    )
    parser.add_argument(
        "--recovery-stats",
        default=None,
        metavar="PATH",
        help=(
            "with --transport: write per-cell recovery statistics "
            "(retransmissions, timeouts, failed flows, degraded flow "
            "health) as JSON to PATH"
        ),
    )
    return parser


def store_main(argv) -> int:
    """The ``store`` maintenance subcommands (``ibcc-repro store ...``).

    ``store gc DIR`` lists the ``.corrupt`` quarantine sidecars that
    corrupt-cache recovery left behind; ``--purge`` deletes them.
    """
    parser = argparse.ArgumentParser(
        prog="ibcc-repro store",
        description="maintain a --cache-dir result store",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    gc = sub.add_parser(
        "gc",
        help="list (and with --purge, delete) quarantined .corrupt sidecars",
    )
    gc.add_argument("directory", help="the result-store directory")
    gc.add_argument(
        "--purge",
        action="store_true",
        help="delete the sidecars instead of only listing them",
    )
    args = parser.parse_args(argv)
    from repro.experiments.store import find_quarantined, purge_quarantined

    if not os.path.isdir(args.directory):
        print(f"store gc: {args.directory!r} is not a directory",
              file=sys.stderr)
        return 2
    if args.purge:
        removed = purge_quarantined(args.directory)
        for path in removed:
            print(f"removed {path}")
        print(f"purged {len(removed)} quarantined sidecar(s)")
    else:
        sidecars = find_quarantined(args.directory)
        for path in sidecars:
            print(path)
        print(
            f"{len(sidecars)} quarantined sidecar(s)"
            + (" (use --purge to delete)" if sidecars else "")
        )
    return 0


def _write_recovery_stats(path: str, results) -> None:
    """Dump per-cell transport recovery statistics as JSON to ``path``."""
    from repro.experiments.runner import config_slug
    from repro.experiments.store import atomic_write_json

    cells = {}
    for res in results:
        cells[config_slug(res.config)] = {
            "retx_packets": res.retx_packets,
            "retx_bytes": res.retx_bytes,
            "transport_timeouts": res.transport_timeouts,
            "failed_flows": res.failed_flows,
            "recovery_ns_total": res.recovery_ns_total,
            "flow_health": res.flow_health or [],
        }
    atomic_write_json(path, {
        "total_retx_packets": sum(c["retx_packets"] for c in cells.values()),
        "total_timeouts": sum(c["transport_timeouts"] for c in cells.values()),
        "total_failed_flows": sum(c["failed_flows"] for c in cells.values()),
        "cells": cells,
    })


def _trace_report(results, stream) -> int:
    """Print per-cell digests; returns the total violation count."""
    from repro.experiments.runner import config_slug

    violations = 0
    for res in results:
        print(
            f"trace {config_slug(res.config)}: digest {res.trace_digest} "
            f"({res.trace_records} records, "
            f"{res.trace_violations} violations)",
            file=stream,
        )
        violations += res.trace_violations
    return violations


def main(argv=None) -> int:
    """CLI entry point; returns a process exit code."""
    from repro.parallel import ProgressReporter

    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "store":
        return store_main(argv[1:])
    if argv and argv[0] == "lint":
        from repro.lint.cli import lint_main

        return lint_main(argv[1:])
    if argv and argv[0] == "serve":
        from repro.serve.cli import serve_main

        return serve_main(argv[1:])
    args = build_parser().parse_args(argv)
    scale = SCALES[args.scale]
    if args.scheduler is not None:
        # Exported rather than threaded through every driver: worker
        # processes inherit the environment, so --jobs>1 cells pick the
        # same kernel.
        from repro.engine.scheduler import ENV_SCHEDULER

        os.environ[ENV_SCHEDULER] = args.scheduler
    if args.jobs < 1:
        print("--jobs must be >= 1", file=sys.stderr)
        return 2
    if args.retry_failed and args.resume is None:
        print("--retry-failed requires --resume", file=sys.stderr)
        return 2
    if args.timeout_s is not None and args.timeout_s <= 0:
        print("--timeout-s must be > 0", file=sys.stderr)
        return 2
    if args.max_rss_mb is not None and args.max_rss_mb <= 0:
        print("--max-rss-mb must be > 0", file=sys.stderr)
        return 2
    if args.trace_dir is not None and not args.trace:
        print("--trace-dir requires --trace", file=sys.stderr)
        return 2
    if args.recovery_stats is not None and not args.transport:
        print("--recovery-stats requires --transport", file=sys.stderr)
        return 2
    if args.quick and args.artifact != "arena":
        print("--quick applies only to the arena artifact", file=sys.stderr)
        return 2
    if args.transport and args.artifact == "arena":
        print("the arena compares mechanisms on the raw lossless fabric; "
              "--transport applies to the other artifacts", file=sys.stderr)
        return 2
    if args.out_dir is not None and args.artifact != "arena":
        print("--out-dir applies only to the arena artifact", file=sys.stderr)
        return 2
    cc_config = None
    if args.cc is not None:
        try:
            cc_config = parse_cc(args.cc)
        except ValueError as exc:
            print(f"--cc {args.cc!r}: {exc}", file=sys.stderr)
            return 2
    transport = None
    if args.transport:
        from repro.transport import TransportConfig

        transport = TransportConfig()
    cache = None if args.no_cache else args.cache_dir
    if cache is not None and os.path.exists(cache) and not os.path.isdir(cache):
        print(f"--cache-dir {cache!r} exists and is not a directory", file=sys.stderr)
        return 2
    if args.faults is not None and args.chaos is not None:
        print("--faults and --chaos are mutually exclusive", file=sys.stderr)
        return 2
    faults = None
    if args.faults is not None:
        from repro.faults import FaultSchedule

        try:
            faults = FaultSchedule.load(args.faults)
        except (OSError, ValueError) as exc:
            print(f"--faults {args.faults!r}: {exc}", file=sys.stderr)
            return 2
    elif args.chaos is not None:
        try:
            faults = parse_chaos(args.chaos)
        except ValueError as exc:
            print(f"--chaos {args.chaos!r}: {exc}", file=sys.stderr)
            return 2
    if args.artifact == "faults" and faults is not None:
        print("the faults artifact has built-in scenarios; "
              "--faults/--chaos apply to the other artifacts", file=sys.stderr)
        return 2
    if args.artifact == "arena" and faults is not None:
        print("the arena compares mechanisms on a clean fabric; "
              "--faults/--chaos apply to the other artifacts", file=sys.stderr)
        return 2
    run_fn = None
    if args.trace:
        from repro.experiments.runner import TracedRun
        from repro.trace import TraceSpec

        run_fn = TracedRun(TraceSpec(jsonl_dir=args.trace_dir))
    # Live progress goes to stderr so stdout stays a clean table/figure.
    reporter = ProgressReporter(stream=sys.stderr) if args.jobs > 1 else None
    campaign_kw = dict(
        jobs=args.jobs,
        cache=cache,
        timeout_s=args.timeout_s,
        max_rss_mb=args.max_rss_mb,
        reporter=reporter,
        manifest_path=args.manifest,
        run_fn=run_fn,
        resume_from=args.resume,
        retry_failed=args.retry_failed,
        transport=transport,
    )
    if args.artifact not in ("faults", "arena"):
        campaign_kw["faults"] = faults
    if args.artifact == "arena":
        # The arena sweeps mechanisms itself; --cc restricts its matrix.
        campaign_kw.pop("transport")
        campaign_kw["quick"] = args.quick
        if cc_config is not None:
            campaign_kw["mechanisms"] = [cc_config]
    else:
        campaign_kw["cc_config"] = cc_config

    try:
        traced_results = _run_artifact(args, scale, campaign_kw)
    except ConfigError as exc:
        print(f"invalid configuration: {exc}", file=sys.stderr)
        return 2
    if args.recovery_stats is not None:
        _write_recovery_stats(args.recovery_stats, traced_results)
        print(f"recovery stats written to {args.recovery_stats}",
              file=sys.stderr)
    if args.trace and traced_results:
        if _trace_report(traced_results, sys.stderr):
            print("trace audit FAILED: invariant violations detected",
                  file=sys.stderr)
            return 1
    return 0


def _run_artifact(args, scale, campaign_kw) -> list:
    """Run the selected artifact, print it, return its cell results."""
    traced_results = []
    if args.artifact == "table2":
        table = run_table2(scale, seed=args.seed, **campaign_kw)
        traced_results = [
            table.baseline_no_cc, table.baseline_cc,
            table.hotspots_no_cc, table.hotspots_cc,
        ]
        print(table.format())
    elif args.artifact in _WINDY_X:
        step = args.p_step / 100.0
        p_values = []
        p = 0.0
        while p < 1.0 + 1e-9:
            p_values.append(round(p, 6))
            p += step
        fig = run_windy_figure(
            _WINDY_X[args.artifact], scale, p_values=p_values, seed=args.seed,
            **campaign_kw,
        )
        traced_results = [r for pt in fig.points for r in (pt.off, pt.on)]
        print(fig.format())
        peak = fig.peak_improvement()
        print(f"peak improvement {peak.improvement:.1f}x at p={peak.p * 100:.0f}%")
        if args.chart:
            from repro.metrics import line_chart

            series = fig.series()
            print()
            print(line_chart(
                {"CC off": series["non_hotspot_off"],
                 "CC on": series["non_hotspot_on"],
                 "tmax": series["tmax"]},
                series["p"], x_label="p (%)", y_label="non-hotspot rcv (Gbit/s)",
            ))
            print()
            print(line_chart(
                {"improvement": series["improvement"]},
                series["p"], x_label="p (%)", y_label="CC throughput gain (x)",
            ))
    elif args.artifact in ("fig9a", "fig9b", "fig10"):
        if args.artifact == "fig9a":
            fig = run_moving_figure(scale, c_fraction_of_rest=0.8,
                                    label="20% V / 80% C", seed=args.seed,
                                    **campaign_kw)
        elif args.artifact == "fig9b":
            fig = run_moving_figure(scale, c_fraction_of_rest=0.4,
                                    label="60% V / 40% C", seed=args.seed,
                                    **campaign_kw)
        else:
            fig = run_moving_figure(scale, b_fraction=1.0, p=args.p / 100.0,
                                    label=f"100% B, p={args.p:.0f}", seed=args.seed,
                                    **campaign_kw)
        traced_results = [r for pt in fig.points for r in (pt.off, pt.on)]
        print(fig.format())
        if args.chart:
            from repro.metrics import line_chart

            series = fig.series()
            print()
            print(line_chart(
                {"CC off": series["all_off"], "CC on": series["all_on"]},
                series["lifetime_ms"],
                x_label="hotspot lifetime (ms)",
                y_label="all-node rcv (Gbit/s)",
            ))
    elif args.artifact == "faults":
        table = run_fault_scenarios(scale, seed=args.seed, **campaign_kw)
        traced_results = [r for row in table.rows for r in (row.off, row.on)]
        print(table.format())
    elif args.artifact == "arena":
        from repro.experiments.arena import run_arena

        arena = run_arena(scale, seed=args.seed, **campaign_kw)
        traced_results = [c.result for c in arena.cells]
        print(arena.format())
        if args.out_dir is not None:
            os.makedirs(args.out_dir, exist_ok=True)
            csv_path = os.path.join(args.out_dir, "arena.csv")
            json_path = os.path.join(args.out_dir, "arena.json")
            with open(csv_path, "w") as fh:
                fh.write(arena.to_csv())
            with open(json_path, "w") as fh:
                fh.write(arena.to_json())
                fh.write("\n")
            print(f"matrix written to {csv_path} and {json_path}",
                  file=sys.stderr)
    return traced_results


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
