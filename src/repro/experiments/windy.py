"""Figures 5-8: the windy forest of congestion trees.

Each figure fixes the fraction ``x`` of B nodes (25/50/75/100 %) and
sweeps the hotspot share ``p`` from 0 to 100 %, comparing CC on vs off
on three panels: (a) average non-hotspot receive rate with the
theoretical ``tmax``, (b) average hotspot receive rate, (c) total
network throughput improvement factor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.experiments.config import SCALES, ExperimentConfig, ScaleProfile
from repro.experiments.runner import ExperimentResult, run_experiment

DEFAULT_P_VALUES = (0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0)


@dataclass
class WindyPoint:
    """One p value of one windy figure: CC off vs CC on."""

    p: float
    off: ExperimentResult
    on: ExperimentResult

    @property
    def tmax(self) -> float:
        return self.on.tmax

    @property
    def improvement(self) -> float:
        return self.on.total / self.off.total


@dataclass
class WindyFigure:
    """A full panel set (a, b, c) for one B-node fraction."""

    b_fraction: float
    points: List[WindyPoint]

    def series(self) -> Dict[str, List[float]]:
        """Column-oriented data matching the paper's three panels."""
        return {
            "p": [pt.p * 100 for pt in self.points],
            "non_hotspot_off": [pt.off.non_hotspot for pt in self.points],
            "non_hotspot_on": [pt.on.non_hotspot for pt in self.points],
            "tmax": [pt.tmax for pt in self.points],
            "hotspot_off": [pt.off.hotspot for pt in self.points],
            "hotspot_on": [pt.on.hotspot for pt in self.points],
            "improvement": [pt.improvement for pt in self.points],
        }

    def peak_improvement(self) -> WindyPoint:
        """The sweep point with the largest CC throughput gain."""
        return max(self.points, key=lambda pt: pt.improvement)

    def format(self) -> str:
        """Plain-text table of all three panels."""
        head = (
            f"Windy forest, {self.b_fraction * 100:.0f}% B nodes\n"
            f"{'p%':>4} {'nonhs off':>10} {'nonhs on':>10} {'tmax':>8} "
            f"{'hs off':>8} {'hs on':>8} {'improv':>8}"
        )
        rows = [
            f"{pt.p * 100:4.0f} {pt.off.non_hotspot:10.3f} {pt.on.non_hotspot:10.3f} "
            f"{pt.tmax:8.3f} {pt.off.hotspot:8.2f} {pt.on.hotspot:8.2f} "
            f"{pt.improvement:8.2f}"
            for pt in self.points
        ]
        return "\n".join([head, *rows])


def run_windy_point(
    b_fraction: float,
    p: float,
    scale: ScaleProfile | str = "default",
    *,
    seed: int = 7,
) -> WindyPoint:
    """One (x, p) cell of figures 5-8 (both CC settings)."""
    if isinstance(scale, str):
        scale = SCALES[scale]
    cfg = ExperimentConfig(
        scale=scale,
        b_fraction=b_fraction,
        p=p,
        c_fraction_of_rest=0.8,
        seed=seed,
        name=f"windy-x{b_fraction:.2f}-p{p:.2f}",
    )
    return WindyPoint(
        p=p,
        off=run_experiment(cfg.with_(cc=False)),
        on=run_experiment(cfg.with_(cc=True)),
    )


def run_windy_figure(
    b_fraction: float,
    scale: ScaleProfile | str = "default",
    *,
    p_values: Sequence[float] = DEFAULT_P_VALUES,
    seed: int = 7,
    jobs: int = 1,
    cache=None,
    retry=None,
    timeout_s: float | None = None,
    max_rss_mb: float | None = None,
    reporter=None,
    manifest_path: str | None = None,
    run_fn=None,
    faults=None,
    transport=None,
    cc_config=None,
    resume_from=None,
    retry_failed: bool = False,
) -> WindyFigure:
    """A whole figure's sweep: figures 5 (x=.25) through 8 (x=1.0).

    The 2·len(p_values) cells (CC off and on per p) fan out through
    :func:`repro.parallel.run_campaign`; ``jobs=1`` preserves the
    historical serial order (off then on for each p). A cell that fails
    after its retries raises
    :class:`~repro.parallel.pool.CampaignError` — every point feeds the
    figure's panels.
    """
    from repro.parallel import run_campaign

    if isinstance(scale, str):
        scale = SCALES[scale]
    configs = []
    for p in p_values:
        cfg = ExperimentConfig(
            scale=scale,
            b_fraction=b_fraction,
            p=p,
            c_fraction_of_rest=0.8,
            seed=seed,
            name=f"windy-x{b_fraction:.2f}-p{p:.2f}",
            faults=faults,
            transport=transport,
        )
        configs.append(cfg.with_(cc=False))
        configs.append(cfg.with_(cc=True, cc_config=cc_config))
    campaign = run_campaign(
        configs,
        jobs=jobs,
        cache=cache,
        retry=retry,
        timeout_s=timeout_s,
        max_rss_mb=max_rss_mb,
        progress=reporter,
        manifest_path=manifest_path,
        run_fn=run_fn,
        resume_from=resume_from,
        retry_failed=retry_failed,
    ).raise_on_failure()
    results = campaign.results
    points = [
        WindyPoint(p=p, off=results[2 * i], on=results[2 * i + 1])
        for i, p in enumerate(p_values)
    ]
    return WindyFigure(b_fraction=b_fraction, points=points)
