"""Figures 9-10: the stormy forest of moving congestion trees.

Hotspots relocate every *lifetime* (10 ms down to 1 ms); the reported
metric is the average receive rate over **all** nodes, CC on vs off.
Figure 9 moves silent trees with two C/V mixes; figure 10 moves windy
trees (100 % B nodes) at p = 30/60/90 %.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.experiments.config import SCALES, ExperimentConfig, ScaleProfile
from repro.experiments.runner import ExperimentResult, run_experiment


@dataclass
class MovingPoint:
    """One hotspot lifetime, CC off vs on."""

    lifetime_ns: float
    off: ExperimentResult
    on: ExperimentResult

    @property
    def improvement(self) -> float:
        return self.on.all_nodes / self.off.all_nodes


@dataclass
class MovingFigure:
    """One panel of figure 9 or 10: a lifetime sweep."""

    label: str
    points: List[MovingPoint]

    def series(self) -> Dict[str, List[float]]:
        """Column-oriented data for the lifetime sweep panels."""
        return {
            "lifetime_ms": [pt.lifetime_ns / 1e6 for pt in self.points],
            "all_off": [pt.off.all_nodes for pt in self.points],
            "all_on": [pt.on.all_nodes for pt in self.points],
            "improvement": [pt.improvement for pt in self.points],
        }

    def format(self) -> str:
        """Plain-text table matching the paper panel."""
        head = (
            f"Moving hotspots: {self.label}\n"
            f"{'life ms':>8} {'all off':>9} {'all on':>9} {'improv':>8}"
        )
        rows = [
            f"{pt.lifetime_ns / 1e6:8.1f} {pt.off.all_nodes:9.3f} "
            f"{pt.on.all_nodes:9.3f} {pt.improvement:8.2f}"
            for pt in self.points
        ]
        return "\n".join([head, *rows])


def run_moving_point(
    lifetime_ns: float,
    scale: ScaleProfile | str = "default",
    *,
    b_fraction: float = 0.0,
    p: float = 0.5,
    c_fraction_of_rest: float = 0.8,
    seed: int = 7,
) -> MovingPoint:
    """One lifetime cell (both CC settings)."""
    if isinstance(scale, str):
        scale = SCALES[scale]
    cfg = ExperimentConfig(
        scale=scale,
        b_fraction=b_fraction,
        p=p,
        c_fraction_of_rest=c_fraction_of_rest,
        hotspot_lifetime_ns=lifetime_ns,
        seed=seed,
        name=f"moving-life{lifetime_ns / 1e6:.0f}ms",
    )
    return MovingPoint(
        lifetime_ns=lifetime_ns,
        off=run_experiment(cfg.with_(cc=False)),
        on=run_experiment(cfg.with_(cc=True)),
    )


def run_moving_figure(
    scale: ScaleProfile | str = "default",
    *,
    b_fraction: float = 0.0,
    p: float = 0.5,
    c_fraction_of_rest: float = 0.8,
    lifetimes_ns: Sequence[float] | None = None,
    label: str = "",
    seed: int = 7,
    jobs: int = 1,
    cache=None,
    retry=None,
    timeout_s: float | None = None,
    max_rss_mb: float | None = None,
    reporter=None,
    manifest_path: str | None = None,
    run_fn=None,
    faults=None,
    transport=None,
    cc_config=None,
    resume_from=None,
    retry_failed: bool = False,
) -> MovingFigure:
    """A lifetime sweep.

    * figure 9(a): ``c_fraction_of_rest=0.8`` (80 % C / 20 % V);
    * figure 9(b): ``c_fraction_of_rest=0.4`` (40 % C / 60 % V);
    * figure 10(a-c): ``b_fraction=1.0`` and ``p`` in {0.3, 0.6, 0.9}.

    Cells fan out through :func:`repro.parallel.run_campaign`:
    ``jobs=1`` preserves the historical serial order (off then on per
    lifetime); ``cache``/``retry``/``timeout_s``/``reporter``/
    ``manifest_path`` forward to the executor, and any cell that fails
    after its retries raises
    :class:`~repro.parallel.pool.CampaignError`.
    """
    from repro.parallel import run_campaign

    if isinstance(scale, str):
        scale = SCALES[scale]
    if lifetimes_ns is None:
        lifetimes_ns = scale.moving_lifetimes_ns
    configs = []
    for lt in lifetimes_ns:
        cfg = ExperimentConfig(
            scale=scale,
            b_fraction=b_fraction,
            p=p,
            c_fraction_of_rest=c_fraction_of_rest,
            hotspot_lifetime_ns=lt,
            seed=seed,
            name=f"moving-life{lt / 1e6:.0f}ms",
            faults=faults,
            transport=transport,
        )
        configs.append(cfg.with_(cc=False))
        configs.append(cfg.with_(cc=True, cc_config=cc_config))
    campaign = run_campaign(
        configs,
        jobs=jobs,
        cache=cache,
        retry=retry,
        timeout_s=timeout_s,
        max_rss_mb=max_rss_mb,
        progress=reporter,
        manifest_path=manifest_path,
        run_fn=run_fn,
        resume_from=resume_from,
        retry_failed=retry_failed,
    ).raise_on_failure()
    results = campaign.results
    points = [
        MovingPoint(lifetime_ns=lt, off=results[2 * i], on=results[2 * i + 1])
        for i, lt in enumerate(lifetimes_ns)
    ]
    return MovingFigure(label=label or f"b={b_fraction:.0%}, p={p:.0%}", points=points)
