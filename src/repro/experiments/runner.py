"""Build, run and measure one experiment."""

from __future__ import annotations

import gc
import os
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Union

from repro.core.manager import CCManager
from repro.core.stats import snapshot_transport
from repro.engine.rng import RngRegistry
from repro.engine.simulator import Simulator
from repro.experiments.config import ExperimentConfig
from repro.faults.chaos import chaos_schedule
from repro.faults.injector import FaultInjector
from repro.faults.spec import ChaosSpec
from repro.metrics.analysis import group_rates, jain_fairness, tmax_gbps
from repro.metrics.collector import Collector
from repro.network.hca import HcaConfig
from repro.network.network import Network, NetworkConfig
from repro.network.packet import sync_pool_env
from repro.topology.fattree import three_stage_fat_tree
from repro.trace.session import TraceSession, TraceSpec
from repro.traffic.generators import BNodeSource
from repro.transport import TransportLayer
from repro.traffic.hotspots import HotspotSchedule
from repro.traffic.mixes import assign_roles


@dataclass
class ExperimentResult:
    """Everything a table/figure driver needs from one run."""

    config: ExperimentConfig
    rates_gbps: List[float]
    hotspots: List[int]
    groups: Dict[str, float]
    tmax: float
    n_b: int
    n_c: int
    n_v: int
    fecn_marks: int
    becns: int
    events: int
    wall_seconds: float
    # Filled only for traced runs (run_experiment(..., trace=...)).
    trace_digest: Optional[str] = None
    trace_violations: int = 0
    trace_records: int = 0
    # Filled only for faulted runs (cfg.faults, repro.faults).
    fault_onsets: int = 0
    fault_recoveries: int = 0
    dropped_packets: int = 0
    cnps_dropped: int = 0
    # Filled only for reliable-transport runs (cfg.transport,
    # repro.transport). ``flow_health`` lists only degraded flows (one
    # dict per flow, see repro.core.stats.FlowHealth) — a run with
    # failed flows is degraded-but-valid, not an error.
    retx_packets: int = 0
    retx_bytes: int = 0
    transport_timeouts: int = 0
    failed_flows: int = 0
    recovery_ns_total: float = 0.0
    flow_health: Optional[List[dict]] = None

    @property
    def non_hotspot(self) -> float:
        return self.groups.get("non_hotspot", float("nan"))

    @property
    def hotspot(self) -> float:
        return self.groups.get("hotspot", float("nan"))

    @property
    def all_nodes(self) -> float:
        return self.groups["all"]

    @property
    def total(self) -> float:
        return self.groups["total"]

    def fairness(self) -> float:
        """Jain fairness index over the non-hotspot receive rates."""
        others = [r for i, r in enumerate(self.rates_gbps) if i not in set(self.hotspots)]
        return jain_fairness(others)


def build_generators(cfg: ExperimentConfig, n_hosts: int, rng: RngRegistry, schedule: HotspotSchedule):
    """Create one generator per node following the config's node mix.

    Returns ``(generators, mix)`` where ``generators[node]`` may be None
    (silenced contributor in the Table II "no hotspots" phases).
    """
    mix = assign_roles(
        n_hosts,
        b_fraction=cfg.b_fraction,
        n_subsets=schedule.n_subsets,
        hotspots=schedule.current_targets,
        rng=rng.stream("mix"),
        c_fraction_of_rest=cfg.c_fraction_of_rest,
    )
    generators: List[Optional[BNodeSource]] = []
    for node in range(n_hosts):
        role = mix.roles[node]
        if role == "B":
            p = cfg.p
        elif role == "C":
            p = 1.0
        else:
            p = 0.0
        if role != "V" and not cfg.contributors_active:
            if p >= 1.0:
                generators.append(None)  # silenced pure contributor
                continue
            p = 0.0  # a silenced B node still sends its uniform share
        hotspot_fn = None
        if p > 0.0:
            subset = mix.subset_of[node]
            hotspot_fn = lambda s=schedule, k=subset: s.target(k)
        generators.append(
            BNodeSource(
                node,
                n_hosts,
                p,
                rng.stream("gen", node),
                inj_rate_gbps=cfg.inj_rate_gbps,
                hotspot=hotspot_fn,
            )
        )
    return generators, mix


def config_slug(cfg: ExperimentConfig) -> str:
    """A short human-readable per-cell identifier (trace file names).

    Unique within every shipped campaign: the drivers bake the sweep
    coordinates (p, lifetime, x) into ``cfg.name`` and the remaining
    axes (seed, CC on/off, silenced contributors) are appended here.
    """
    parts = [
        cfg.name or "cell",
        f"seed{cfg.seed}",
        "cc" if cfg.cc else "nocc",
    ]
    mechanism = cfg.resolved_cc_config().mechanism
    if cfg.cc and mechanism != "ib":
        # The paper's mechanism stays unsuffixed so every pre-arena
        # slug (and the golden-digest keys) is unchanged.
        parts.append(mechanism)
    if not cfg.contributors_active:
        parts.append("silent")
    if cfg.transport is not None:
        parts.append("rc")  # Reliable Connection transport enabled
    plan = cfg.faults
    if plan is not None and not plan.empty:
        if isinstance(plan, ChaosSpec):
            parts.append(f"chaos{plan.seed}")
        else:
            parts.append(f"faults{len(plan)}")
    return "-".join(parts)


def run_experiment(
    cfg: ExperimentConfig,
    *,
    trace: Union[TraceSpec, bool, None] = None,
) -> ExperimentResult:
    """Simulate one configuration and aggregate the paper's metrics.

    ``trace`` enables the :mod:`repro.trace` layer for this run:
    ``True`` computes the trace digest and runs the online auditor; a
    :class:`~repro.trace.TraceSpec` additionally selects a JSONL
    output directory, ring buffer, or strict (raise-on-violation)
    auditing. The result then carries ``trace_digest``,
    ``trace_violations`` and ``trace_records``. Tracing only observes:
    traced and untraced runs of the same config produce identical
    metrics.
    """
    cfg.validate()
    sync_pool_env()  # honor REPRO_PACKET_POOL, like REPRO_SCHEDULER below
    topo = three_stage_fat_tree(cfg.scale.radix)
    n_hosts = topo.n_hosts
    sim_time = cfg.resolved_sim_time()
    warmup = cfg.resolved_warmup()

    sim = Simulator()
    rng = RngRegistry(cfg.seed)
    collector = Collector(n_hosts, warmup_ns=warmup)
    net_cfg = NetworkConfig(hca=HcaConfig(
        inj_rate_gbps=cfg.inj_rate_gbps,
        sink_rate_gbps=cfg.sink_rate_gbps,
    ))
    network = Network(sim, topo, net_cfg, collector=collector)

    manager = None
    if cfg.cc:
        manager = CCManager(
            cfg.resolved_cc_params(), cc_config=cfg.resolved_cc_config()
        ).install(network)

    session = None
    if trace:
        spec = trace if isinstance(trace, TraceSpec) else TraceSpec()
        jsonl_path = None
        if spec.jsonl_dir:
            os.makedirs(spec.jsonl_dir, exist_ok=True)
            jsonl_path = os.path.join(spec.jsonl_dir, config_slug(cfg) + ".jsonl")
        session = TraceSession(
            jsonl_path=jsonl_path,
            ring=spec.ring,
            audit=spec.audit,
            strict=spec.strict,
            ccti_limit=cfg.resolved_cc_params().ccti_limit,
            min_retx_gap_ns=(
                cfg.transport.min_retx_gap_ns if cfg.transport else None
            ),
        ).install(sim, network, manager)

    transport_layer = None
    if cfg.transport is not None:
        transport_layer = TransportLayer(network, cfg.transport, rng).install()

    injector = None
    plan = cfg.faults
    if plan is not None:
        if isinstance(plan, ChaosSpec):
            fault_schedule = chaos_schedule(
                plan, topology=topo, sim_time_ns=sim_time
            )
        else:
            fault_schedule = plan
        if not fault_schedule.empty:
            # An empty schedule installs nothing, keeping the event
            # stream byte-identical to a fault-free run.
            injector = FaultInjector(network, fault_schedule, rng=rng).install()

    schedule = HotspotSchedule.choose_initial(
        cfg.scale.n_hotspots,
        n_hosts,
        rng.stream("hotspots"),
        lifetime_ns=cfg.hotspot_lifetime_ns,
    )
    generators, mix = build_generators(cfg, n_hosts, rng, schedule)
    for node, gen in enumerate(generators):
        if gen is None:
            continue
        gen.bind(network.hcas[node])
        network.hcas[node].attach_generator(gen)
    schedule.install(sim, network.hcas)

    started = time.perf_counter()
    # The event loop churns short-lived tuples and packets whose
    # reference graphs are acyclic — refcounting alone reclaims them.
    # Suppressing the cyclic collector for the run avoids its periodic
    # full-heap scans on the hot path; one collection afterwards cleans
    # up whatever cycles construction left behind.
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        network.run(until=sim_time)
    finally:
        if gc_was_enabled:
            gc.enable()
            gc.collect()
        # Seal transport flow summaries into the trace (the strict
        # conservation check closes over them) before the session does.
        if transport_layer is not None:
            transport_layer.finalize()
        if session is not None:
            session.close()
    wall = time.perf_counter() - started
    tsnap = snapshot_transport(network) if transport_layer is not None else None

    rates = collector.all_rx_rates_gbps(sim_time)
    hotspots = list(schedule.current_targets)
    groups = group_rates(rates, hotspots)
    n_b, n_c, n_v = len(mix.b_nodes), len(mix.c_nodes), len(mix.v_nodes)
    effective_b, effective_v = n_b, n_v
    if not cfg.contributors_active:
        # Silenced contributors: uniform load comes from V and B(p=0).
        effective_b, effective_v = 0, n_v + n_b
    tmax = tmax_gbps(
        n_nodes=n_hosts,
        n_b=effective_b,
        n_v=effective_v,
        p=cfg.p,
        inj_rate_gbps=cfg.inj_rate_gbps,
        sink_rate_gbps=cfg.sink_rate_gbps,
    )
    return ExperimentResult(
        config=cfg,
        rates_gbps=rates,
        hotspots=hotspots,
        groups=groups,
        tmax=tmax,
        n_b=n_b,
        n_c=n_c,
        n_v=n_v,
        fecn_marks=manager.total_marks() if manager else 0,
        becns=manager.total_becns() if manager else 0,
        events=sim.events_executed,
        wall_seconds=wall,
        trace_digest=session.digest if session else None,
        trace_violations=session.violation_count if session else 0,
        trace_records=session.records_emitted if session else 0,
        fault_onsets=injector.onsets_applied if injector else 0,
        fault_recoveries=injector.recoveries_applied if injector else 0,
        dropped_packets=injector.dropped_packets() if injector else 0,
        cnps_dropped=injector.cnps_dropped() if injector else 0,
        retx_packets=tsnap.retx_packets if tsnap else 0,
        retx_bytes=tsnap.retx_bytes if tsnap else 0,
        transport_timeouts=tsnap.timeouts if tsnap else 0,
        failed_flows=tsnap.failed_flows if tsnap else 0,
        recovery_ns_total=tsnap.recovery_ns_total if tsnap else 0.0,
        flow_health=(
            [fh.to_dict() for fh in tsnap.degraded] if tsnap else None
        ),
    )


class TracedRun:
    """A picklable ``run_experiment`` wrapper with tracing enabled.

    Campaign executors need a module-level callable to ship to pool
    workers; ``TracedRun(spec)`` carries the :class:`TraceSpec` along::

        run_campaign(configs, jobs=4, run_fn=TracedRun())

    Every cell's result then has a ``trace_digest``, which
    :class:`~repro.parallel.manifest.RunManifest` records per cell —
    the proof that ``jobs=1`` and ``jobs=N`` runs are event-equivalent.
    """

    def __init__(self, spec: Optional[TraceSpec] = None) -> None:
        self.spec = spec if spec is not None else TraceSpec()

    def __call__(self, cfg: ExperimentConfig) -> ExperimentResult:
        return run_experiment(cfg, trace=self.spec)
