"""The congestion-control arena: every mechanism against every scenario.

The paper's Table II measures one mechanism (IB CCT throttling) against
the *silent* congestion-tree scenario; its figures extend that to the
*windy* (partial hotspot share) and *moving* (finite-lifetime hotspot)
members of the taxonomy. The arena crosses the whole taxonomy with
every registered :mod:`repro.cc` mechanism: per scenario it runs one
shared no-CC baseline plus one CC-on cell per mechanism, and reports a
Table-II-style matrix — hotspot / non-hotspot / total receive rates,
fairness, and total-throughput improvement over the no-CC baseline.

Scenarios (section V's taxonomy):

* ``silent`` — static full-share hotspots from pure contributors
  (the Table II mix: 80 % C, 20 % V);
* ``windy``  — B nodes sending share ``p`` into the hotspot and the
  rest uniformly (x = 0.5, p = 0.6: mid-grid of figures 5–8);
* ``moving`` — hotspots relocate with a finite lifetime (figure 9(a)
  mix), the scenario where the paper finds CC reacts too slowly.

Run it as ``ibcc-repro arena`` (``--quick`` for a seconds-scale smoke
matrix) or through :func:`run_arena`; both emit the matrix as text,
CSV and JSON.
"""

from __future__ import annotations

import io
import csv
import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.cc import CCConfig, available_mechanisms
from repro.experiments.config import SCALES, ExperimentConfig, ScaleProfile
from repro.experiments.runner import ExperimentResult


@dataclass(frozen=True)
class ArenaScenario:
    """One taxonomy member: a config shaper plus its display name."""

    name: str
    b_fraction: float = 0.0
    p: float = 0.5
    c_fraction_of_rest: float = 0.8
    moving: bool = False  # hotspots relocate (finite lifetime)

    def base_config(
        self, scale: ScaleProfile, *, seed: int, quick: bool
    ) -> ExperimentConfig:
        lifetime = None
        if self.moving:
            # The shortest of the scale's lifetimes: the regime where
            # the paper finds the CCT mechanism reacting too slowly.
            lifetime = min(scale.moving_lifetimes_ns)
        cfg = ExperimentConfig(
            scale=scale,
            b_fraction=self.b_fraction,
            p=self.p,
            c_fraction_of_rest=self.c_fraction_of_rest,
            hotspot_lifetime_ns=lifetime,
            seed=seed,
            name=f"arena-{self.name}",
        )
        if quick:
            # Seconds-scale smoke matrix: enough simulated time for
            # feedback loops to bite, not enough for paper numbers.
            sim = 4e6 if self.moving else 2e6
            cfg = cfg.with_(sim_time_ns=sim, warmup_ns=0.5e6)
            if self.moving:
                cfg = cfg.with_(hotspot_lifetime_ns=1e6)
        return cfg


#: The paper's scenario taxonomy, in presentation order.
SCENARIOS = (
    ArenaScenario(name="silent"),
    ArenaScenario(name="windy", b_fraction=0.5, p=0.6),
    ArenaScenario(name="moving", moving=True),
)


@dataclass
class ArenaCell:
    """One (scenario, mechanism) matrix entry."""

    scenario: str
    mechanism: str  # registered repro.cc name, or "off" for the baseline
    result: ExperimentResult
    baseline: Optional[ExperimentResult] = None  # the scenario's no-CC run

    @property
    def improvement(self) -> float:
        """Total-throughput gain over the scenario's no-CC baseline."""
        if self.baseline is None or self.baseline.total == 0:
            return 1.0
        return self.result.total / self.baseline.total

    def row(self) -> Dict[str, object]:
        res = self.result
        return {
            "scenario": self.scenario,
            "cc_mechanism": self.mechanism,
            "hotspot": res.hotspot,
            "non_hotspot": res.non_hotspot,
            "all_nodes": res.all_nodes,
            "total": res.total,
            "fairness": res.fairness(),
            "fecn_marks": res.fecn_marks,
            "becns": res.becns,
            "improvement": self.improvement,
        }


@dataclass
class ArenaResult:
    """The full cross-mechanism matrix plus per-scenario baselines."""

    scale: str
    seed: int
    mechanisms: List[str]
    cells: List[ArenaCell] = field(default_factory=list)

    def rows(self) -> List[Dict[str, object]]:
        """Every matrix row (baselines first per scenario) as dicts."""
        return [c.row() for c in self.cells]

    def cell(self, scenario: str, mechanism: str) -> ArenaCell:
        for c in self.cells:
            if c.scenario == scenario and c.mechanism == mechanism:
                return c
        raise KeyError(f"no arena cell ({scenario!r}, {mechanism!r})")

    def to_csv(self) -> str:
        rows = self.rows()
        out = io.StringIO()
        writer = csv.DictWriter(out, fieldnames=list(rows[0]))
        writer.writeheader()
        writer.writerows(rows)
        return out.getvalue()

    def to_json(self, *, indent: int = 2) -> str:
        return json.dumps(
            {
                "scale": self.scale,
                "seed": self.seed,
                "mechanisms": self.mechanisms,
                "scenarios": sorted({c.scenario for c in self.cells}),
                "rows": self.rows(),
            },
            indent=indent,
        )

    def format(self) -> str:
        """Table-II-style text matrix, one block per scenario."""
        lines = [
            f"Congestion-control arena (scale={self.scale}, seed={self.seed})",
            "  receive rates in Gbit/s; improvement = total vs no-CC baseline",
        ]
        header = (
            f"  {'mechanism':<10} {'hotspot':>9} {'non-hot':>9} "
            f"{'total':>9} {'fairness':>9} {'improve':>8}"
        )
        for scenario in sorted({c.scenario for c in self.cells}):
            lines.append(f"{scenario} scenario:")
            lines.append(header)
            for cell in self.cells:
                if cell.scenario != scenario:
                    continue
                r = cell.row()
                lines.append(
                    f"  {r['cc_mechanism']:<10} {r['hotspot']:>9.3f} "
                    f"{r['non_hotspot']:>9.3f} {r['total']:>9.3f} "
                    f"{r['fairness']:>9.3f} {r['improvement']:>7.2f}x"
                )
        return "\n".join(lines)


def run_arena(
    scale: ScaleProfile | str = "default",
    *,
    mechanisms: Optional[Sequence[str]] = None,
    scenarios: Sequence[ArenaScenario] = SCENARIOS,
    seed: int = 7,
    quick: bool = False,
    jobs: int = 1,
    cache=None,
    retry=None,
    timeout_s: float | None = None,
    max_rss_mb: float | None = None,
    reporter=None,
    manifest_path: str | None = None,
    run_fn=None,
    resume_from=None,
    retry_failed: bool = False,
) -> ArenaResult:
    """Run the cross-mechanism matrix.

    ``mechanisms`` defaults to every registered :mod:`repro.cc`
    mechanism (importing the package registers the shipped four); an
    entry may be a name or a tuned :class:`~repro.cc.CCConfig`.
    Each scenario runs one no-CC baseline (shared across mechanisms —
    it carries no ``cc_config``, so its cache entry is reused by any
    later per-mechanism campaign) plus one CC-on cell per mechanism.
    ``quick=True`` shrinks simulated time to a smoke-test matrix.
    All executor knobs forward to :func:`repro.parallel.run_campaign`;
    any cell failing after its retries raises
    :class:`~repro.parallel.pool.CampaignError`.
    """
    from repro.parallel import run_campaign

    if isinstance(scale, str):
        scale = SCALES[scale]
    entries = list(mechanisms) if mechanisms is not None else list(available_mechanisms())
    cc_configs = [
        (m if isinstance(m, CCConfig) else CCConfig.make(m)).validate()
        for m in entries
    ]
    names = [cc.mechanism for cc in cc_configs]
    configs: List[ExperimentConfig] = []
    for scenario in scenarios:
        base = scenario.base_config(scale, seed=seed, quick=quick)
        configs.append(base.with_(cc=False))
        for cc in cc_configs:
            configs.append(base.with_(cc=True, cc_config=cc))
    campaign = run_campaign(
        configs,
        jobs=jobs,
        cache=cache,
        retry=retry,
        timeout_s=timeout_s,
        max_rss_mb=max_rss_mb,
        progress=reporter,
        manifest_path=manifest_path,
        run_fn=run_fn,
        resume_from=resume_from,
        retry_failed=retry_failed,
    ).raise_on_failure()
    results = campaign.results
    arena = ArenaResult(scale=scale.name, seed=seed, mechanisms=names)
    stride = 1 + len(names)
    for i, scenario in enumerate(scenarios):
        baseline = results[i * stride]
        arena.cells.append(
            ArenaCell(scenario=scenario.name, mechanism="off", result=baseline)
        )
        for j, name in enumerate(names):
            arena.cells.append(
                ArenaCell(
                    scenario=scenario.name,
                    mechanism=name,
                    result=results[i * stride + 1 + j],
                    baseline=baseline,
                )
            )
    return arena
