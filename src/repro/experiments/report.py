"""Generate EXPERIMENTS.md: paper-vs-measured for every table/figure.

Run via ``python -m repro.experiments.report --scale default`` (writes
EXPERIMENTS.md in the current directory) or import
:func:`generate_report` for programmatic use. Paper reference values
are transcribed from the published tables/figures; measured values come
from live simulation at the chosen scale profile.
"""

from __future__ import annotations

import argparse
import datetime
import io
import time

from repro.experiments.config import SCALES, ScaleProfile
from repro.experiments.moving import run_moving_figure
from repro.experiments.table2 import run_table2
from repro.experiments.windy import run_windy_figure

# Transcribed from the paper (648 nodes, 0.1 s per point).
PAPER_TABLE2 = {
    "no_hotspots_no_cc_avg": 2.699,
    "no_hotspots_cc_avg": 2.701,
    "hotspots_no_cc_hotspot_avg": 13.602,
    "hotspots_no_cc_non_hotspot_avg": 0.168,
    "hotspots_cc_hotspot_avg": 13.279,
    "hotspots_cc_non_hotspot_avg": 2.246,
    "total_throughput_no_cc": 216.073,
    "total_throughput_cc": 1543.793,
}

PAPER_WINDY_NOTES = {
    0.25: "improvement 8.6x at p=0 rising to 8.7x peak at p=60, 6.0x at p=100; "
    "CC non-hotspot tracks 60-88% of tmax; hotspots 13.6 -> 13.3 (-2.2%)",
    0.50: "same trends as x=25%; improvement curve more ∩-shaped",
    0.75: "same trends; peak improvement grows, endpoint improvements shrink",
    1.00: "3% CC penalty at p=0; ~neutral at p=100; seventeen-fold peak at p=60",
}

PAPER_MOVING_NOTES = {
    "fig9a": "723 vs 467 Mbit/s at 10 ms (+55%), +10% at 2 ms, +4% at 1 ms",
    "fig9b": "2.6x at 10 ms, down to +10% at 1 ms",
    "fig10": "CC wins at every lifetime; advantage shrinks as lifetime shrinks",
}


def _table2_section(out, scale: ScaleProfile, seed: int) -> None:
    t2 = run_table2(scale, seed=seed)
    rows = t2.rows()
    out.write("## Table II — silent forest of congestion trees (Gbit/s)\n\n")
    out.write(f"Scale: `{scale.name}` ({scale.n_hosts} hosts, "
              f"{scale.n_hotspots} hotspots, 80% C / 20% V).\n\n")
    out.write("| Row | Paper (648 nodes) | Measured |\n|---|---|---|\n")
    labels = {
        "no_hotspots_no_cc_avg": "No hotspots, no CC — avg rcv",
        "no_hotspots_cc_avg": "No hotspots, CC on — avg rcv",
        "hotspots_no_cc_hotspot_avg": "Hotspots, no CC — hotspot avg",
        "hotspots_no_cc_non_hotspot_avg": "Hotspots, no CC — non-hotspot avg",
        "hotspots_cc_hotspot_avg": "Hotspots, CC on — hotspot avg",
        "hotspots_cc_non_hotspot_avg": "Hotspots, CC on — non-hotspot avg",
        "total_throughput_no_cc": "Total throughput, no CC",
        "total_throughput_cc": "Total throughput, CC on",
    }
    for key, label in labels.items():
        out.write(f"| {label} | {PAPER_TABLE2[key]:.3f} | {rows[key]:.3f} |\n")
    paper_imp = PAPER_TABLE2["total_throughput_cc"] / PAPER_TABLE2["total_throughput_no_cc"]
    out.write(f"| **Improvement by enabling CC** | **{paper_imp:.1f}x** "
              f"| **{t2.improvement:.2f}x** |\n\n")


def _windy_section(out, scale: ScaleProfile, seed: int, b_fraction: float,
                   fig_no: int, p_values) -> None:
    fig = run_windy_figure(b_fraction, scale, p_values=p_values, seed=seed)
    out.write(f"## Figure {fig_no} — windy forest, {b_fraction:.0%} B nodes\n\n")
    out.write(f"Paper: {PAPER_WINDY_NOTES[b_fraction]}.\n\n")
    out.write("| p% | non-hs off | non-hs on | tmax | hs off | hs on | improvement |\n")
    out.write("|---|---|---|---|---|---|---|\n")
    for pt in fig.points:
        out.write(
            f"| {pt.p * 100:.0f} | {pt.off.non_hotspot:.3f} | {pt.on.non_hotspot:.3f} "
            f"| {pt.tmax:.3f} | {pt.off.hotspot:.2f} | {pt.on.hotspot:.2f} "
            f"| {pt.improvement:.2f}x |\n"
        )
    peak = fig.peak_improvement()
    out.write(f"\nPeak improvement {peak.improvement:.2f}x at p={peak.p * 100:.0f}%.\n\n")


def _moving_section(out, scale: ScaleProfile, seed: int) -> None:
    out.write("## Figure 9 — moving silent congestion trees\n\n")
    for label, c_rest, key in (
        ("9(a) 20% V / 80% C", 0.8, "fig9a"),
        ("9(b) 60% V / 40% C", 0.4, "fig9b"),
    ):
        fig = run_moving_figure(scale, c_fraction_of_rest=c_rest, label=label, seed=seed)
        out.write(f"### {label}\n\nPaper: {PAPER_MOVING_NOTES[key]}.\n\n")
        out.write("| lifetime (ms) | all-node rcv, no CC | all-node rcv, CC | improvement |\n")
        out.write("|---|---|---|---|\n")
        for pt in fig.points:
            out.write(
                f"| {pt.lifetime_ns / 1e6:.0f} | {pt.off.all_nodes:.3f} "
                f"| {pt.on.all_nodes:.3f} | {pt.improvement:.2f}x |\n"
            )
        out.write("\n")

    out.write("## Figure 10 — moving windy congestion trees (100% B nodes)\n\n")
    out.write(f"Paper: {PAPER_MOVING_NOTES['fig10']}.\n\n")
    for p in (0.3, 0.6, 0.9):
        fig = run_moving_figure(scale, b_fraction=1.0, p=p,
                                label=f"p={p:.0%}", seed=seed)
        out.write(f"### 10 at p = {p:.0%}\n\n")
        out.write("| lifetime (ms) | all-node rcv, no CC | all-node rcv, CC | improvement |\n")
        out.write("|---|---|---|---|\n")
        for pt in fig.points:
            out.write(
                f"| {pt.lifetime_ns / 1e6:.0f} | {pt.off.all_nodes:.3f} "
                f"| {pt.on.all_nodes:.3f} | {pt.improvement:.2f}x |\n"
            )
        out.write("\n")


def generate_report(scale: ScaleProfile | str = "default", *, seed: int = 7,
                    p_values=(0.0, 0.2, 0.4, 0.6, 0.8, 1.0)) -> str:
    """Run every experiment at ``scale`` and return the markdown report."""
    if isinstance(scale, str):
        scale = SCALES[scale]
    out = io.StringIO()
    started = time.perf_counter()
    out.write("# EXPERIMENTS — paper vs. measured\n\n")
    out.write(
        "Reproduction of every evaluation artifact of *Exploring the Scope "
        "of the InfiniBand Congestion Control Mechanism* (IPDPS 2012). "
        "Paper numbers come from the 648-node Sun DCS 648 topology at "
        "0.1 s per point; measured numbers from this repository at the "
        f"`{scale.name}` scale profile ({scale.n_hosts} hosts, "
        f"{scale.n_hotspots} hotspot subsets, "
        f"{scale.sim_time_ns / 1e6:.0f} ms per static point, CCT slope "
        f"{scale.cct_slope}, Marking_Rate {scale.marking_rate}). "
        "Absolute aggregates scale with node count; the comparison "
        "targets are the *shapes and ratios* (see DESIGN.md §3).\n\n"
    )
    out.write("## Table I — CC parameters\n\n")
    out.write(
        "Reproduced exactly in `CCParams.paper_table1()`: CCTI_Increase 1, "
        "CCTI_Limit 127, CCTI_Min 0, CCTI_Timer 150, Threshold 15, "
        "Marking_Rate 0, Packet_Size 0. Scaled-down profiles override "
        "Marking_Rate (damping) and the CCT slope (contributor count); "
        "the `paper` profile keeps Table I verbatim.\n\n"
    )
    out.write("## Model calibration\n\n")
    out.write(
        "The paper's simulator was validated against Mellanox MTS3600 "
        "hardware; this reproduction is validated against analytic "
        "expectations instead (`python -m repro.validation`):\n\n```\n"
    )
    from repro.validation import run_calibration

    out.write(run_calibration().format())
    out.write("\n```\n\n")
    _table2_section(out, scale, seed)
    for fig_no, x in ((5, 0.25), (6, 0.50), (7, 0.75), (8, 1.00)):
        _windy_section(out, scale, seed, x, fig_no, p_values)
    _moving_section(out, scale, seed)
    out.write("## Beyond the paper\n\n")
    out.write(
        "Extension measurements (not paper artifacts) live in the "
        "benchmark suite: adaptive routing vs CC "
        "(`benchmarks/test_bench_adaptive_routing.py` — AR alone *hurts* "
        "victims of end-node congestion, as section I predicts), CC on a "
        "4x4 mesh (`benchmarks/test_bench_mesh.py` — the mechanism "
        "transfers), and the parameter ablations "
        "(`benchmarks/test_bench_ablations.py`).\n\n"
    )
    elapsed = time.perf_counter() - started
    out.write("---\n\n")
    out.write(
        f"Generated by `python -m repro.experiments.report --scale "
        f"{scale.name} --seed {seed}` in {elapsed / 60:.1f} minutes on "
        f"{datetime.date.today().isoformat()}.\n"
    )
    return out.getvalue()


def main(argv=None) -> int:
    """CLI entry point: write the report to ``--output``."""
    parser = argparse.ArgumentParser(description="Generate EXPERIMENTS.md")
    parser.add_argument("--scale", choices=sorted(SCALES), default="default")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--output", default="EXPERIMENTS.md")
    args = parser.parse_args(argv)
    text = generate_report(args.scale, seed=args.seed)
    with open(args.output, "w") as fh:
        fh.write(text)
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
