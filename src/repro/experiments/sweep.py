"""Generic parameter sweeps over experiment configurations.

The paper stresses that CC parameter tuning "remains a highly
specialized task"; this module makes the tuning loop a first-class
operation: declare a grid over :class:`~repro.core.parameters.CCParams`
fields (and/or :class:`ExperimentConfig` fields), run every cell, and
collect a tidy result table that can be printed, charted (ASCII) or
saved as CSV.
"""

from __future__ import annotations

import csv
import io
import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Mapping, Sequence

from repro.core.parameters import CCParams
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import ExperimentResult, run_experiment


@dataclass
class SweepCell:
    """One grid point: the parameter assignment and its result."""

    assignment: Dict[str, Any]
    result: ExperimentResult

    def row(self) -> Dict[str, Any]:
        """The assignment merged with the cell's headline metrics."""
        out = dict(self.assignment)
        out.update(
            non_hotspot=self.result.non_hotspot,
            hotspot=self.result.hotspot,
            all_nodes=self.result.all_nodes,
            total=self.result.total,
            fecn_marks=self.result.fecn_marks,
            becns=self.result.becns,
            fairness=self.result.fairness(),
        )
        return out


@dataclass
class SweepResult:
    cells: List[SweepCell] = field(default_factory=list)

    def best_by(self, metric: str, *, maximize: bool = True) -> SweepCell:
        """The cell with the best value of a result metric."""
        key = lambda c: c.row()[metric]
        return max(self.cells, key=key) if maximize else min(self.cells, key=key)

    def to_csv(self) -> str:
        """The sweep as CSV text (one row per cell)."""
        if not self.cells:
            raise ValueError("empty sweep")
        rows = [c.row() for c in self.cells]
        out = io.StringIO()
        writer = csv.DictWriter(out, fieldnames=list(rows[0]))
        writer.writeheader()
        writer.writerows(rows)
        return out.getvalue()

    def format(self, metrics: Sequence[str] = ("non_hotspot", "hotspot", "total")) -> str:
        """Aligned plain-text table of the sweep."""
        if not self.cells:
            return "(empty sweep)"
        param_names = list(self.cells[0].assignment)
        header = " ".join(f"{n:>12}" for n in param_names + list(metrics))
        lines = [header]
        for cell in self.cells:
            row = cell.row()
            lines.append(
                " ".join(
                    f"{row[n]:>12.4g}" if isinstance(row[n], float) else f"{row[n]:>12}"
                    for n in param_names + list(metrics)
                )
            )
        return "\n".join(lines)


_CC_FIELDS = set(CCParams.__dataclass_fields__)
_CFG_FIELDS = set(ExperimentConfig.__dataclass_fields__)


def sweep(
    base: ExperimentConfig,
    grid: Mapping[str, Iterable[Any]],
    *,
    progress=None,
) -> SweepResult:
    """Run the cartesian product of ``grid`` over ``base``.

    Grid keys may name either :class:`CCParams` fields (applied to the
    config's resolved CC parameters) or :class:`ExperimentConfig`
    fields. ``progress`` is an optional callable receiving
    ``(index, total, assignment)`` before each run.
    """
    for key in grid:
        if key not in _CC_FIELDS and key not in _CFG_FIELDS:
            raise ValueError(f"unknown sweep parameter: {key!r}")
    names = list(grid)
    values = [list(v) for v in grid.values()]
    if any(not v for v in values):
        raise ValueError("every grid axis needs at least one value")
    combos = list(itertools.product(*values))
    result = SweepResult()
    for i, combo in enumerate(combos):
        assignment = dict(zip(names, combo))
        cc_kw = {k: v for k, v in assignment.items() if k in _CC_FIELDS}
        cfg_kw = {k: v for k, v in assignment.items() if k in _CFG_FIELDS}
        cfg = base
        if cc_kw:
            cfg = cfg.with_(cc_params=base.resolved_cc_params().with_(**cc_kw))
        if cfg_kw:
            cfg = cfg.with_(**cfg_kw)
        if progress is not None:
            progress(i, len(combos), assignment)
        result.cells.append(SweepCell(assignment, run_experiment(cfg)))
    return result
