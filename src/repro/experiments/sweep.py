"""Generic parameter sweeps over experiment configurations.

The paper stresses that CC parameter tuning "remains a highly
specialized task"; this module makes the tuning loop a first-class
operation: declare a grid over :class:`~repro.core.parameters.CCParams`
fields (and/or :class:`ExperimentConfig` fields), run every cell, and
collect a tidy result table that can be printed, charted (ASCII) or
saved as CSV.
"""

from __future__ import annotations

import csv
import io
import itertools
import math
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence

from repro.core.parameters import CCParams
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import ExperimentResult


@dataclass
class SweepCell:
    """One grid point: the parameter assignment and its result."""

    assignment: Dict[str, Any]
    result: ExperimentResult

    def row(self) -> Dict[str, Any]:
        """The assignment merged with the cell's headline metrics."""
        out = dict(self.assignment)
        out.update(
            non_hotspot=self.result.non_hotspot,
            hotspot=self.result.hotspot,
            all_nodes=self.result.all_nodes,
            total=self.result.total,
            fecn_marks=self.result.fecn_marks,
            becns=self.result.becns,
            fairness=self.result.fairness(),
            # Transport recovery telemetry: zero when transport is off.
            retx_packets=getattr(self.result, "retx_packets", 0),
            failed_flows=getattr(self.result, "failed_flows", 0),
            # Which repro.cc mechanism throttled ("off" when cc=False).
            cc_mechanism=getattr(
                getattr(self.result, "config", None), "cc_mechanism", "off"
            ),
        )
        return out


#: Result metrics every cell row carries, in :meth:`SweepCell.row` order.
METRIC_FIELDS = (
    "non_hotspot",
    "hotspot",
    "all_nodes",
    "total",
    "fecn_marks",
    "becns",
    "fairness",
    "retx_packets",
    "failed_flows",
    "cc_mechanism",
)


def _is_nan(value: Any) -> bool:
    return isinstance(value, float) and math.isnan(value)


@dataclass
class SweepResult:
    cells: List[SweepCell] = field(default_factory=list)
    #: Grid axis names, kept even when every cell failed/was filtered so
    #: an empty sweep can still derive its CSV header.
    param_names: Optional[List[str]] = None

    def best_by(self, metric: str, *, maximize: bool = True) -> SweepCell:
        """The cell with the best non-NaN value of a result metric.

        NaN cells (e.g. ``fairness`` of an all-hotspot mix) are ignored:
        ``max()`` over a NaN key is order-dependent and could crown a
        meaningless cell. If *every* cell is NaN the metric is unusable
        and a :class:`ValueError` explains that.
        """
        if not self.cells:
            raise ValueError("empty sweep: no cells to pick a best from")
        scored = [(c.row()[metric], c) for c in self.cells]
        valid = [(v, c) for v, c in scored if not _is_nan(v)]
        if not valid:
            raise ValueError(
                f"metric {metric!r} is NaN in all {len(scored)} sweep cells"
            )
        pick = max if maximize else min
        return pick(valid, key=lambda vc: vc[0])[1]

    def to_csv(self) -> str:
        """The sweep as CSV text (one row per cell).

        An empty sweep still yields a header-only CSV when the grid's
        parameter names are known (they are, for every sweep built by
        :func:`sweep`); otherwise the header is underivable and a
        :class:`ValueError` says so.
        """
        if self.cells:
            rows = [c.row() for c in self.cells]
            fieldnames = list(rows[0])
        elif self.param_names is not None:
            rows = []
            fieldnames = list(self.param_names) + list(METRIC_FIELDS)
        else:
            raise ValueError(
                "empty sweep: no cells were run and the grid's parameter "
                "names are unknown, so not even a CSV header can be derived"
            )
        out = io.StringIO()
        writer = csv.DictWriter(out, fieldnames=fieldnames)
        writer.writeheader()
        writer.writerows(rows)
        return out.getvalue()

    def format(self, metrics: Sequence[str] = ("non_hotspot", "hotspot", "total")) -> str:
        """Aligned plain-text table of the sweep."""
        if not self.cells:
            return "(empty sweep)"
        param_names = list(self.cells[0].assignment)
        header = " ".join(f"{n:>12}" for n in param_names + list(metrics))
        lines = [header]
        for cell in self.cells:
            row = cell.row()
            lines.append(
                " ".join(
                    f"{row[n]:>12.4g}" if isinstance(row[n], float) else f"{row[n]:>12}"
                    for n in param_names + list(metrics)
                )
            )
        return "\n".join(lines)


_CC_FIELDS = set(CCParams.__dataclass_fields__)
_CFG_FIELDS = set(ExperimentConfig.__dataclass_fields__)


def sweep(
    base: ExperimentConfig,
    grid: Mapping[str, Iterable[Any]],
    *,
    progress=None,
    jobs: int = 1,
    cache=None,
    retry=None,
    timeout_s: Optional[float] = None,
    max_rss_mb: Optional[float] = None,
    reporter=None,
    manifest_path: Optional[str] = None,
    strict: bool = True,
    run_fn=None,
) -> SweepResult:
    """Run the cartesian product of ``grid`` over ``base``.

    Grid keys may name either :class:`CCParams` fields (applied to the
    config's resolved CC parameters) or :class:`ExperimentConfig`
    fields. ``progress`` is an optional callable receiving
    ``(index, total, assignment)`` before each run (legacy serial-style
    callback; fired in submission order at any ``jobs`` value).

    The grid executes through :func:`repro.parallel.run_campaign`:
    ``jobs`` sets the worker-pool width (1 = in-process, byte-identical
    to the historical serial sweep), ``cache`` is a result-store
    directory/instance for read-through cell caching, ``retry``/
    ``timeout_s`` bound worker failures, ``reporter`` receives live
    :class:`~repro.parallel.progress.ProgressReporter` telemetry, and
    ``manifest_path`` writes the JSON run manifest. With
    ``strict=True`` (default) a cell that still fails after its retries
    raises :class:`~repro.parallel.pool.CampaignError`; with
    ``strict=False`` failed cells are dropped from the result instead.
    """
    from repro.parallel import CampaignError, run_campaign

    for key in grid:
        if key not in _CC_FIELDS and key not in _CFG_FIELDS:
            raise ValueError(f"unknown sweep parameter: {key!r}")
    names = list(grid)
    values = [list(v) for v in grid.values()]
    if any(not v for v in values):
        raise ValueError("every grid axis needs at least one value")
    combos = list(itertools.product(*values))
    assignments = []
    configs = []
    for i, combo in enumerate(combos):
        assignment = dict(zip(names, combo))
        cc_kw = {k: v for k, v in assignment.items() if k in _CC_FIELDS}
        cfg_kw = {k: v for k, v in assignment.items() if k in _CFG_FIELDS}
        cfg = base
        if cc_kw:
            cfg = cfg.with_(cc_params=base.resolved_cc_params().with_(**cc_kw))
        if cfg_kw:
            cfg = cfg.with_(**cfg_kw)
        if progress is not None:
            progress(i, len(combos), assignment)
        assignments.append(assignment)
        configs.append(cfg)
    campaign = run_campaign(
        configs,
        jobs=jobs,
        cache=cache,
        retry=retry,
        timeout_s=timeout_s,
        max_rss_mb=max_rss_mb,
        progress=reporter,
        manifest_path=manifest_path,
        run_fn=run_fn,
    )
    if strict and campaign.failed:
        raise CampaignError(campaign.failed)
    result = SweepResult(param_names=names)
    for assignment, outcome in zip(assignments, campaign.outcomes):
        if outcome.ok:
            result.cells.append(SweepCell(assignment, outcome.result))
    return result
