"""Experiment configuration: scenario knobs + scale profiles.

A :class:`ScaleProfile` fixes everything that trades fidelity against
run time (topology size, simulated time, CCT slope); an
:class:`ExperimentConfig` adds the scenario (node mix, p, hotspot
lifetime, CC on/off). The paper's quantities are fractions of the
hardware rate caps and CC-on/off ratios, which the scale profiles
preserve (DESIGN.md §3.3).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from repro.cc.config import CCConfig
from repro.core.parameters import CCParams
from repro.faults.spec import ChaosSpec, FaultPlan, FaultSchedule
from repro.transport.config import TransportConfig


class ConfigError(ValueError):
    """An :class:`ExperimentConfig` failed pre-flight validation.

    Raised by :meth:`ExperimentConfig.validate` with every problem
    collected into one actionable message, so a bad campaign is
    rejected before any worker process spawns.
    """


@dataclass(frozen=True)
class ScaleProfile:
    """Everything that scales an experiment up or down.

    ``cct_slope`` grows with the fat-tree because the deepest CCT
    throttle must cover the per-hotspot contributor count (the paper:
    "the CCT values have been increased to reflect the larger number of
    possible contributors in our fat-tree topology").
    """

    name: str
    radix: int
    n_hotspots: int
    sim_time_ns: float
    warmup_ns: float
    cct_slope: float
    moving_sim_time_ns: float
    moving_lifetimes_ns: tuple
    # Scaled-down profiles damp the marking rate: at small contributor
    # counts the per-flow BECN rate is ~18x the CCTI_Timer decay rate
    # (vs ~2x at 648 nodes), and undamped feedback over-throttles in a
    # sawtooth. The paper profile keeps Table I's Marking_Rate = 0.
    marking_rate: int = 0

    @property
    def n_hosts(self) -> int:
        return self.radix * (self.radix // 2)


_PAPER_LIFETIMES = tuple(float(ms) * 1e6 for ms in (10, 8, 6, 4, 2, 1))

SCALES = {
    # Fast enough for CI-style benchmark runs; every shape check holds.
    "quick": ScaleProfile(
        name="quick",
        radix=8,
        n_hotspots=4,
        sim_time_ns=8e6,
        warmup_ns=3e6,
        cct_slope=0.5,
        moving_sim_time_ns=16e6,
        moving_lifetimes_ns=tuple(float(ms) * 1e6 for ms in (4, 2, 1)),
        marking_rate=3,
    ),
    # The default for EXPERIMENTS.md numbers at reduced topology scale.
    "default": ScaleProfile(
        name="default",
        radix=8,
        n_hotspots=4,
        sim_time_ns=20e6,
        warmup_ns=8e6,
        cct_slope=0.5,
        moving_sim_time_ns=40e6,
        moving_lifetimes_ns=_PAPER_LIFETIMES,
        marking_rate=3,
    ),
    # The paper's Sun DCS 648 (648 hosts, 54 switches, 8 hotspots).
    # Expensive: minutes per CC-enabled point.
    "paper": ScaleProfile(
        name="paper",
        radix=36,
        n_hotspots=8,
        sim_time_ns=25e6,
        warmup_ns=10e6,
        cct_slope=2.0,
        moving_sim_time_ns=50e6,
        moving_lifetimes_ns=_PAPER_LIFETIMES,
    ),
}


@dataclass(frozen=True)
class ExperimentConfig:
    """One simulation run.

    The node mix follows section V of the paper: ``b_fraction`` of the
    nodes are B nodes with hotspot share ``p``; of the remaining nodes,
    ``c_fraction_of_rest`` are C nodes (p = 1) and the rest V nodes
    (p = 0). ``contributors_active=False`` silences B and C nodes (the
    "no hotspots" phases of Table II).
    """

    scale: ScaleProfile = SCALES["default"]
    cc: bool = True
    b_fraction: float = 0.0
    p: float = 0.5
    c_fraction_of_rest: float = 0.8
    contributors_active: bool = True
    hotspot_lifetime_ns: Optional[float] = None
    seed: int = 7
    inj_rate_gbps: float = 13.5
    sink_rate_gbps: float = 13.6
    cc_params: Optional[CCParams] = None
    sim_time_ns: Optional[float] = None
    warmup_ns: Optional[float] = None
    name: str = ""
    # Fault plan (repro.faults): a FaultSchedule or ChaosSpec, or None
    # for a clean run. Part of the config, so it participates in the
    # result-store content key — a faulted run never aliases a clean
    # cache entry.
    faults: Optional[FaultPlan] = None
    # Reliable transport (repro.transport): a TransportConfig enables
    # PSN sequencing, acks and retransmission; None (the default) keeps
    # the raw lossless fabric and its golden digests byte-identical.
    # Like faults, part of the result-store content key.
    transport: Optional[TransportConfig] = None
    # Congestion-control mechanism selection (repro.cc): which
    # registered mechanism throttles when ``cc=True``, plus its option
    # overrides. None (the default) means the paper's "ib" mechanism —
    # byte-identical to the pre-arena code, and hashed identically in
    # the result store. Ignored when ``cc=False``.
    cc_config: Optional[CCConfig] = None

    def resolved_cc_config(self) -> CCConfig:
        """The effective mechanism selection (default: the paper's IB)."""
        return self.cc_config if self.cc_config is not None else CCConfig()

    @property
    def cc_mechanism(self) -> str:
        """The active mechanism name; ``"off"`` when CC is disabled.

        This is the value the sweep CSV and run-manifest
        ``cc_mechanism`` columns carry.
        """
        return self.resolved_cc_config().mechanism if self.cc else "off"

    def resolved_cc_params(self) -> CCParams:
        """The effective CC parameters (explicit override or scale defaults)."""
        if self.cc_params is not None:
            return self.cc_params
        return CCParams.paper_table1().with_(
            cct_slope=self.scale.cct_slope,
            marking_rate=self.scale.marking_rate,
        )

    def resolved_sim_time(self) -> float:
        """The effective simulated duration in ns."""
        if self.sim_time_ns is not None:
            return self.sim_time_ns
        if self.hotspot_lifetime_ns is not None:
            return self.scale.moving_sim_time_ns
        return self.scale.sim_time_ns

    def resolved_warmup(self) -> float:
        """The effective warmup in ns, capped to 40% of the run."""
        if self.warmup_ns is not None:
            return self.warmup_ns
        sim = self.resolved_sim_time()
        default = self.scale.warmup_ns
        # Keep at least half of a moving-hotspot run as measurement.
        return min(default, sim * 0.4)

    def with_(self, **kwargs) -> "ExperimentConfig":
        """A modified copy of this config."""
        return replace(self, **kwargs)

    def validate(self) -> "ExperimentConfig":
        """Pre-flight sanity check; raises :class:`ConfigError`.

        Collects *every* problem into one exception so a bad campaign
        is fixed in a single iteration. Called by ``run_experiment``
        and by the campaign executor before any pool worker spawns.
        Returns ``self`` so it chains: ``cfg.validate()``.
        """
        problems = []
        if self.inj_rate_gbps <= 0:
            problems.append(
                f"inj_rate_gbps must be positive (got {self.inj_rate_gbps}; "
                "the paper's PCIe injection ceiling is 13.5)"
            )
        if self.sink_rate_gbps <= 0:
            problems.append(
                f"sink_rate_gbps must be positive (got {self.sink_rate_gbps})"
            )
        for attr in ("b_fraction", "p", "c_fraction_of_rest"):
            val = getattr(self, attr)
            if not 0.0 <= val <= 1.0:
                problems.append(f"{attr} must be in [0, 1] (got {val})")
        if self.scale.radix < 2 or self.scale.radix % 2:
            problems.append(
                f"scale.radix must be a positive even number (got "
                f"{self.scale.radix})"
            )
        sim = self.resolved_sim_time()
        if sim <= 0:
            problems.append(
                f"resolved sim time must be positive (got {sim} ns) — "
                "a zero-length run measures nothing"
            )
        warmup = self.resolved_warmup()
        if warmup < 0:
            problems.append(f"warmup must be non-negative (got {warmup} ns)")
        elif sim > 0 and warmup >= sim:
            problems.append(
                f"warmup ({warmup} ns) consumes the whole run ({sim} ns), "
                "leaving an empty measurement window"
            )
        if self.hotspot_lifetime_ns is not None and self.hotspot_lifetime_ns <= 0:
            problems.append(
                f"hotspot_lifetime_ns must be positive (got "
                f"{self.hotspot_lifetime_ns})"
            )
        try:
            self.resolved_cc_params()
        except ValueError as exc:
            problems.append(f"cc_params: {exc}")
        if self.cc_config is not None:
            if not isinstance(self.cc_config, CCConfig):
                problems.append(
                    f"cc_config must be a CCConfig (got "
                    f"{type(self.cc_config).__name__})"
                )
            else:
                try:
                    self.cc_config.validate()
                except ValueError as exc:
                    problems.append(f"cc_config: {exc}")
        if self.faults is not None and not isinstance(
            self.faults, (FaultSchedule, ChaosSpec)
        ):
            problems.append(
                f"faults must be a FaultSchedule or ChaosSpec (got "
                f"{type(self.faults).__name__})"
            )
        if self.transport is not None:
            if not isinstance(self.transport, TransportConfig):
                problems.append(
                    f"transport must be a TransportConfig (got "
                    f"{type(self.transport).__name__})"
                )
            elif self.transport.max_retries < 1:
                problems.append(
                    "transport retry budget (max_retries) must be >= 1 — "
                    "a flow needs at least one retransmission attempt "
                    "before it may be declared FAILED"
                )
        if problems:
            label = f" {self.name!r}" if self.name else ""
            raise ConfigError(
                f"invalid experiment config{label}:\n  - "
                + "\n  - ".join(problems)
            )
        return self
