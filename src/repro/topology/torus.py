"""Torus/mesh topologies with dimension-order routing.

The paper's conclusion leaves CC behaviour on tori and meshes as an
open question ("Regarding Tori or Meshes, the picture is more unclear,
thus this question should form the basis for further research"). This
module provides the substrate to explore it: k-ary n-dimensional tori
(or meshes, without the wraparound) with one host per switch and
deterministic dimension-order routing expressed as LFTs.

Port layout per switch: ``0`` is the host port; then two ports per
dimension (``1 + 2d`` toward +d, ``2 + 2d`` toward −d).

Note: dimension-order routing on a torus is deadlock-free only with the
usual dateline/VL trick; this model gives each data VL its own buffers
and credits, so runs that use a single data VL on a *ring* dimension
can deadlock under saturation, exactly as real hardware would without
dateline VLs. Meshes (``wrap=False``) are deadlock-free under DOR. The
provided experiments use meshes or light torus load; pushing further is
precisely the open research question the paper points at.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.topology.spec import HostLink, SwitchLink, SwitchSpec, Topology


def _coords(index: int, dims: Sequence[int]) -> Tuple[int, ...]:
    out = []
    for k in reversed(dims):
        out.append(index % k)
        index //= k
    return tuple(reversed(out))


def _index(coords: Sequence[int], dims: Sequence[int]) -> int:
    idx = 0
    for c, k in zip(coords, dims):
        idx = idx * k + c
    return idx


def torus(dims: Sequence[int], *, wrap: bool = True, name: str | None = None) -> Topology:
    """Build a k-ary n-dimensional torus (``wrap=True``) or mesh.

    One host per switch; dimension-order routing (lowest dimension
    first), taking the shorter way around on wrapped dimensions (ties
    toward +).
    """
    dims = list(dims)
    if not dims or any(k < 2 for k in dims):
        raise ValueError("every torus dimension must be >= 2")
    n_dims = len(dims)
    n_hosts = 1
    for k in dims:
        n_hosts *= k
    n_ports = 1 + 2 * n_dims

    switches = [SwitchSpec(i, n_ports) for i in range(n_hosts)]
    host_links = [HostLink(i, i, 0) for i in range(n_hosts)]

    switch_links: List[SwitchLink] = []
    for idx in range(n_hosts):
        c = _coords(idx, dims)
        for d in range(n_dims):
            if c[d] + 1 < dims[d]:
                nxt = list(c)
                nxt[d] += 1
                switch_links.append(
                    SwitchLink(idx, 1 + 2 * d, _index(nxt, dims), 2 + 2 * d)
                )
            elif wrap and dims[d] > 2:
                nxt = list(c)
                nxt[d] = 0
                switch_links.append(
                    SwitchLink(idx, 1 + 2 * d, _index(nxt, dims), 2 + 2 * d)
                )

    lfts = []
    for idx in range(n_hosts):
        here = _coords(idx, dims)
        lft = []
        for dst in range(n_hosts):
            if dst == idx:
                lft.append(0)
                continue
            there = _coords(dst, dims)
            port = -1
            for d in range(n_dims):
                if here[d] == there[d]:
                    continue
                k = dims[d]
                fwd = (there[d] - here[d]) % k
                bwd = (here[d] - there[d]) % k
                if wrap and k > 2:
                    go_plus = fwd <= bwd
                else:
                    go_plus = there[d] > here[d]
                port = (1 + 2 * d) if go_plus else (2 + 2 * d)
                break
            lft.append(port)
        lfts.append(lft)

    topo = Topology(
        n_hosts=n_hosts,
        switches=switches,
        host_links=host_links,
        switch_links=switch_links,
        lfts=lfts,
        name=name or (f"torus-{'x'.join(map(str, dims))}" if wrap
                      else f"mesh-{'x'.join(map(str, dims))}"),
        meta={"dims": dims, "wrap": wrap},
    )
    topo.validate()
    return topo


def mesh(dims: Sequence[int], *, name: str | None = None) -> Topology:
    """A mesh: a torus without the wraparound links (deadlock-free DOR)."""
    return torus(dims, wrap=False, name=name)
