"""Static topology/routing analysis helpers.

These operate purely on the :class:`~repro.topology.spec.Topology`
blueprint — no simulation — and are used by tests (routing
correctness), by experiment configs (predicting which links a
congestion tree will occupy) and by the congestion-tree analysis in
:mod:`repro.metrics`.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Iterable, List, Tuple

from repro.topology.spec import Topology


def _neighbour_maps(topo: Topology):
    """Map (switch, port) -> neighbour as ("host", id) or ("switch", id)."""
    out: Dict[Tuple[int, int], Tuple[str, int]] = {}
    for hl in topo.host_links:
        out[(hl.switch_id, hl.switch_port)] = ("host", hl.host_id)
    for sl in topo.switch_links:
        out[(sl.switch_a, sl.port_a)] = ("switch", sl.switch_b)
        out[(sl.switch_b, sl.port_b)] = ("switch", sl.switch_a)
    return out


def host_path(topo: Topology, src: int, dst: int) -> List[Tuple[str, int]]:
    """The routed node sequence from ``src`` host to ``dst`` host.

    Returns ``[("host", src), ("switch", s1), ..., ("host", dst)]``.
    Raises RuntimeError on forwarding loops or dead ends.
    """
    if src == dst:
        return [("host", src)]
    nbr = _neighbour_maps(topo)
    path: List[Tuple[str, int]] = [("host", src)]
    attach = topo.host_attachment(src)
    node = ("switch", attach.switch_id)
    for _hop in range(2 * topo.n_switches + 2):
        path.append(node)
        sw = node[1]
        port = topo.lfts[sw][dst]
        if port == -1:
            raise RuntimeError(f"switch {sw} has no route to host {dst}")
        nxt = nbr.get((sw, port))
        if nxt is None:
            raise RuntimeError(f"switch {sw} port {port} is not cabled")
        if nxt == ("host", dst):
            path.append(nxt)
            return path
        if nxt[0] == "host":
            raise RuntimeError(
                f"route to {dst} delivered to wrong host {nxt[1]} at switch {sw}"
            )
        node = nxt
    raise RuntimeError(f"forwarding loop routing {src}->{dst}")


def path_ports(topo: Topology, src: int, dst: int) -> List[Tuple[int, int]]:
    """The (switch, output-port) hops a ``src``->``dst`` packet takes."""
    hops = []
    for node in host_path(topo, src, dst)[1:-1]:
        sw = node[1]
        hops.append((sw, topo.lfts[sw][dst]))
    return hops


def validate_lfts(topo: Topology) -> None:
    """Check that every host pair is routed without loops or dead ends."""
    for src in range(topo.n_hosts):
        for dst in range(topo.n_hosts):
            if src != dst:
                host_path(topo, src, dst)


def link_load_for_pattern(
    topo: Topology, flows: Iterable[Tuple[int, int]]
) -> Counter:
    """Count how many flows cross each (switch, out-port) directed link.

    Useful to predict contention points: the paper's hotspots are hosts
    whose final link accumulates all contributor flows.
    """
    load: Counter = Counter()
    for src, dst in flows:
        for hop in path_ports(topo, src, dst):
            load[hop] += 1
    return load
