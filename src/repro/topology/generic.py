"""Build topologies and LFTs from arbitrary networkx graphs.

This lets the simulator run on topologies other than fat-trees (the
paper's conclusion explicitly flags tori/meshes as open questions).
Graph conventions:

* host nodes: ``("h", i)`` with ``i`` in ``0..n_hosts-1``;
* switch nodes: ``("s", j)``;
* every host has exactly one edge, to a switch.

Ports are assigned per switch in sorted-neighbour order; routing uses
deterministic shortest paths (ties broken by neighbour order), encoded
into linear forwarding tables.
"""

from __future__ import annotations

from typing import Dict, Tuple

import networkx as nx

from repro.topology.spec import HostLink, SwitchLink, SwitchSpec, Topology


def topology_from_graph(graph: nx.Graph, *, name: str = "graph") -> Topology:
    """Convert a host/switch graph into a :class:`Topology` with LFTs."""
    hosts = sorted(n for n in graph.nodes if n[0] == "h")
    switches = sorted(n for n in graph.nodes if n[0] == "s")
    if not hosts or not switches:
        raise ValueError("graph needs at least one host and one switch")
    n_hosts = len(hosts)
    if [h[1] for h in hosts] != list(range(n_hosts)):
        raise ValueError("host ids must be contiguous from 0")

    # Port assignment: neighbours of each switch in sorted order.
    ports: Dict[Tuple, Dict[Tuple, int]] = {}
    for s in switches:
        nbrs = sorted(graph.neighbors(s))
        ports[s] = {nbr: i for i, nbr in enumerate(nbrs)}

    switch_specs = [SwitchSpec(i, len(ports[s])) for i, s in enumerate(switches)]
    sw_index = {s: i for i, s in enumerate(switches)}

    host_links = []
    for h in hosts:
        nbrs = list(graph.neighbors(h))
        if len(nbrs) != 1 or nbrs[0][0] != "s":
            raise ValueError(f"host {h} must connect to exactly one switch")
        s = nbrs[0]
        host_links.append(HostLink(h[1], sw_index[s], ports[s][h]))

    switch_links = []
    seen = set()
    for s in switches:
        for nbr in graph.neighbors(s):
            if nbr[0] != "s":
                continue
            key = tuple(sorted((s, nbr)))
            if key in seen:
                continue
            seen.add(key)
            switch_links.append(
                SwitchLink(sw_index[s], ports[s][nbr], sw_index[nbr], ports[nbr][s])
            )

    # Deterministic shortest-path next hops from every switch to every host.
    lfts = []
    for s in switches:
        lft = []
        for h in hosts:
            try:
                path = nx.shortest_path(graph, s, h)
            except nx.NetworkXNoPath:
                lft.append(-1)
                continue
            lft.append(ports[s][path[1]])
        lfts.append(lft)

    topo = Topology(
        n_hosts=n_hosts,
        switches=switch_specs,
        host_links=host_links,
        switch_links=switch_links,
        lfts=lfts,
        name=name,
    )
    topo.validate()
    return topo
