"""Topologies, linear forwarding tables and routing.

The paper's testbed topology is the three-stage fat-tree of the Sun
Datacenter InfiniBand Switch 648: 648 end nodes on 54 36-port
crossbars (36 leaves with 18 hosts + 18 uplinks each, 18 spines with
one link to every leaf). :func:`three_stage_fat_tree` builds the same
family at any even radix; :func:`sun_dcs_648` is the radix-36 paper
instance.

Routing is deterministic destination-mod-k ("d-mod-k") up-routing with
single-path down-routing, expressed as per-switch linear forwarding
tables — the routing the paper uses ("routing using linear forwarding
tables"). :mod:`repro.topology.generic` builds LFTs for arbitrary
networkx graphs for experimentation beyond fat-trees.
"""

from repro.topology.spec import Topology, SwitchSpec, HostLink, SwitchLink
from repro.topology.fattree import folded_clos, three_stage_fat_tree, sun_dcs_648
from repro.topology.generic import topology_from_graph
from repro.topology.torus import torus, mesh
from repro.topology.analysis import (
    path_ports,
    host_path,
    validate_lfts,
    link_load_for_pattern,
)

__all__ = [
    "Topology",
    "SwitchSpec",
    "HostLink",
    "SwitchLink",
    "folded_clos",
    "three_stage_fat_tree",
    "sun_dcs_648",
    "topology_from_graph",
    "torus",
    "mesh",
    "path_ports",
    "host_path",
    "validate_lfts",
    "link_load_for_pattern",
]
