"""Fat-tree builders (folded Clos) with d-mod-k routing.

``three_stage_fat_tree(radix)`` builds the topology family of the Sun
Datacenter InfiniBand Switch 648: ``radix`` leaf crossbars each hosting
``radix/2`` end nodes and uplinking once to each of ``radix/2`` spine
crossbars. Every host-to-host path crosses at most three switch stages
(leaf, spine, leaf), the network is non-blocking (uplink capacity
equals host capacity at every leaf), and the d-mod-k up-routing spreads
destinations uniformly over spines while keeping routes deterministic
— the combination the paper's congestion trees grow on.
"""

from __future__ import annotations

from repro.topology.spec import HostLink, SwitchLink, SwitchSpec, Topology


def folded_clos(
    n_leaves: int,
    n_spines: int,
    hosts_per_leaf: int,
    *,
    name: str = "folded-clos",
) -> Topology:
    """Build a two-level folded Clos (three switch stages end-to-end).

    Leaf ``l`` uses ports ``0..hosts_per_leaf-1`` for hosts and ports
    ``hosts_per_leaf..hosts_per_leaf+n_spines-1`` for its uplinks; spine
    ``s`` uses port ``l`` for leaf ``l``. Routing is d-mod-k: leaf
    up-routes destination ``d`` through spine ``d mod n_spines``.
    """
    if n_leaves <= 0 or n_spines <= 0 or hosts_per_leaf <= 0:
        raise ValueError("all dimensions must be positive")
    n_hosts = n_leaves * hosts_per_leaf
    leaf_ports = hosts_per_leaf + n_spines
    spine_ports = n_leaves

    switches = [SwitchSpec(l, leaf_ports) for l in range(n_leaves)]
    switches += [SwitchSpec(n_leaves + s, spine_ports) for s in range(n_spines)]

    host_links = [
        HostLink(host_id=l * hosts_per_leaf + i, switch_id=l, switch_port=i)
        for l in range(n_leaves)
        for i in range(hosts_per_leaf)
    ]
    switch_links = [
        SwitchLink(
            switch_a=l,
            port_a=hosts_per_leaf + s,
            switch_b=n_leaves + s,
            port_b=l,
        )
        for l in range(n_leaves)
        for s in range(n_spines)
    ]

    lfts = []
    for l in range(n_leaves):
        lft = []
        for d in range(n_hosts):
            if d // hosts_per_leaf == l:
                lft.append(d % hosts_per_leaf)  # local delivery
            else:
                lft.append(hosts_per_leaf + (d % n_spines))  # d-mod-k up
        lfts.append(lft)
    for _s in range(n_spines):
        # Spine port l faces leaf l; deliver toward the destination leaf.
        lfts.append([d // hosts_per_leaf for d in range(n_hosts)])

    topo = Topology(
        n_hosts=n_hosts,
        switches=switches,
        host_links=host_links,
        switch_links=switch_links,
        lfts=lfts,
        name=name,
        meta={
            "n_leaves": n_leaves,
            "n_spines": n_spines,
            "hosts_per_leaf": hosts_per_leaf,
        },
    )
    topo.validate()
    return topo


def three_stage_fat_tree(radix: int, *, name: str | None = None) -> Topology:
    """The paper's topology family at an arbitrary even crossbar radix.

    ``radix`` leaves x ``radix/2`` hosts each, ``radix/2`` spines; all
    crossbars have exactly ``radix`` ports. ``radix=36`` reproduces the
    Sun DCS 648 (648 hosts, 54 switches).
    """
    if radix < 2 or radix % 2:
        raise ValueError("radix must be a positive even number")
    return folded_clos(
        n_leaves=radix,
        n_spines=radix // 2,
        hosts_per_leaf=radix // 2,
        name=name or f"fat-tree-radix{radix}",
    )


def sun_dcs_648() -> Topology:
    """The exact paper topology: 648 hosts, 54 x 36-port crossbars."""
    return three_stage_fat_tree(36, name="sun-dcs-648")
