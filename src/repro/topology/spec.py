"""Declarative topology description, independent of simulation objects.

A :class:`Topology` is a pure-data blueprint: hosts are integers
``0..n_hosts-1``, switches are :class:`SwitchSpec` entries, and links
say which ports face which neighbours. The network builder
(:class:`repro.network.network.Network`) instantiates live components
from it; the experiment layer treats it as an immutable value.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence


@dataclass(frozen=True)
class SwitchSpec:
    """One crossbar: its id and port count."""

    switch_id: int
    n_ports: int


@dataclass(frozen=True)
class HostLink:
    """Host ``host_id`` attaches to ``switch_id`` at ``switch_port``."""

    host_id: int
    switch_id: int
    switch_port: int


@dataclass(frozen=True)
class SwitchLink:
    """Bidirectional switch-to-switch cable between two named ports."""

    switch_a: int
    port_a: int
    switch_b: int
    port_b: int


@dataclass
class Topology:
    """A complete network blueprint.

    Attributes
    ----------
    n_hosts:
        Number of end nodes.
    switches:
        Switch inventory.
    host_links / switch_links:
        The cabling.
    lfts:
        ``lfts[switch_id][dst_host] -> output port`` (-1 = unreachable).
    name:
        Human-readable label used in experiment reports.
    """

    n_hosts: int
    switches: List[SwitchSpec]
    host_links: List[HostLink]
    switch_links: List[SwitchLink]
    lfts: List[Sequence[int]]
    name: str = "topology"
    meta: dict = field(default_factory=dict)

    @property
    def n_switches(self) -> int:
        return len(self.switches)

    def host_attachment(self, host_id: int) -> HostLink:
        """The (switch, port) a host hangs off. O(1) via a lazy index."""
        index = self.meta.get("_host_index")
        if index is None:
            index = {hl.host_id: hl for hl in self.host_links}
            self.meta["_host_index"] = index
        return index[host_id]

    def validate(self) -> None:
        """Sanity-check structural invariants; raises ValueError on issues."""
        if self.n_hosts <= 0:
            raise ValueError("topology must have at least one host")
        if len(self.lfts) != len(self.switches):
            raise ValueError("one LFT required per switch")
        seen_hosts = set()
        used_ports = set()
        for hl in self.host_links:
            if hl.host_id in seen_hosts:
                raise ValueError(f"host {hl.host_id} attached twice")
            seen_hosts.add(hl.host_id)
            key = (hl.switch_id, hl.switch_port)
            if key in used_ports:
                raise ValueError(f"switch port used twice: {key}")
            used_ports.add(key)
        if seen_hosts != set(range(self.n_hosts)):
            raise ValueError("host ids must be exactly 0..n_hosts-1")
        for sl in self.switch_links:
            for key in ((sl.switch_a, sl.port_a), (sl.switch_b, sl.port_b)):
                if key in used_ports:
                    raise ValueError(f"switch port used twice: {key}")
                used_ports.add(key)
        n_ports = {s.switch_id: s.n_ports for s in self.switches}
        for sw_id, port in sorted(used_ports):
            if sw_id not in n_ports:
                raise ValueError(f"unknown switch {sw_id}")
            if not (0 <= port < n_ports[sw_id]):
                raise ValueError(f"port {port} out of range on switch {sw_id}")
        for sw, lft in zip(self.switches, self.lfts):
            if len(lft) != self.n_hosts:
                raise ValueError(f"LFT of switch {sw.switch_id} has wrong length")
            for dst, port in enumerate(lft):
                if port != -1 and not (0 <= port < sw.n_ports):
                    raise ValueError(
                        f"LFT of switch {sw.switch_id} routes {dst} to bad port {port}"
                    )
