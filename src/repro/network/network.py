"""Instantiate and wire a live network from a topology blueprint.

:class:`Network` is the composition root: it builds one
:class:`~repro.network.switch.Switch` per :class:`SwitchSpec`, one
:class:`~repro.network.hca.Hca` per host, cables them per the
topology's links (initializing flow-control credits to the downstream
input-buffer capacity), and installs the linear forwarding tables.
Traffic sources, CC state and metric collectors attach afterwards.
"""

from __future__ import annotations

from typing import List, Optional

from repro.engine.simulator import Simulator
from repro.network.hca import Hca, HcaConfig
from repro.network.ports import LinkConfig, OutputPort
from repro.network.switch import Switch
from repro.topology.spec import Topology


class NetworkConfig:
    """Knobs shared by all components of one network instance."""

    __slots__ = (
        "link",
        "hca",
        "switch_ibuf_capacity",
        "switch_obuf_capacity",
        "n_vls",
    )

    def __init__(
        self,
        *,
        link: Optional[LinkConfig] = None,
        hca: Optional[HcaConfig] = None,
        switch_ibuf_capacity: int = 16384,
        switch_obuf_capacity: int = 8192,
        n_vls: int = 2,
    ) -> None:
        self.link = link or LinkConfig()
        self.hca = hca or HcaConfig(n_vls=n_vls)
        if self.hca.n_vls != n_vls:
            raise ValueError("HcaConfig.n_vls must match NetworkConfig.n_vls")
        self.switch_ibuf_capacity = switch_ibuf_capacity
        self.switch_obuf_capacity = switch_obuf_capacity
        self.n_vls = n_vls


def _connect(out_port: OutputPort, in_port, prop_delay_ns: float, n_vls: int) -> None:
    """Cable one direction of a link and hand out initial credits."""
    out_port.peer = in_port
    in_port.upstream = out_port
    in_port.credit_delay_ns = prop_delay_ns
    out_port.credits = [float(in_port.capacity)] * n_vls


class Network:
    """A live, wired network ready for traffic.

    Parameters
    ----------
    sim:
        The simulation kernel all components schedule on.
    topology:
        Blueprint (validated on construction).
    config:
        Shared component parameters.
    collector:
        Optional metrics collector given to every HCA.
    """

    __slots__ = ("sim", "topology", "config", "switches", "hcas", "collector")

    def __init__(
        self,
        sim: Simulator,
        topology: Topology,
        config: Optional[NetworkConfig] = None,
        *,
        collector=None,
    ) -> None:
        topology.validate()
        config = config or NetworkConfig()
        self.sim = sim
        self.topology = topology
        self.config = config
        self.collector = collector

        self.switches: List[Switch] = [
            Switch(
                sim,
                spec.switch_id,
                spec.n_ports,
                link=config.link,
                ibuf_capacity=config.switch_ibuf_capacity,
                obuf_capacity=config.switch_obuf_capacity,
                n_vls=config.n_vls,
            )
            for spec in topology.switches
        ]
        self.hcas: List[Hca] = [
            Hca(sim, host_id, link=config.link, config=config.hca)
            for host_id in range(topology.n_hosts)
        ]
        for hca in self.hcas:
            hca.metrics = collector

        prop = config.link.prop_delay_ns
        for hl in topology.host_links:
            sw = self.switches[hl.switch_id]
            hca = self.hcas[hl.host_id]
            _connect(hca.obuf, sw.input_ports[hl.switch_port], prop, config.n_vls)
            _connect(sw.output_ports[hl.switch_port], hca.input_port, prop, config.n_vls)
        for sl in topology.switch_links:
            a = self.switches[sl.switch_a]
            b = self.switches[sl.switch_b]
            _connect(a.output_ports[sl.port_a], b.input_ports[sl.port_b], prop, config.n_vls)
            _connect(b.output_ports[sl.port_b], a.input_ports[sl.port_a], prop, config.n_vls)

        for sw, lft in zip(self.switches, topology.lfts):
            sw.set_lft(lft)

    # -- convenience -----------------------------------------------------
    def run(self, until: float) -> None:
        """Advance the simulation to virtual time ``until`` (ns)."""
        self.sim.run(until=until)

    def total_buffered_bytes(self) -> int:
        """Bytes sitting in all switch input buffers right now."""
        return sum(sw.total_buffered() for sw in self.switches)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Network({self.topology.name}: {len(self.hcas)} hosts, "
            f"{len(self.switches)} switches)"
        )
