"""Deadlock detection.

A lossless, credit-based network can deadlock when buffer dependencies
form a cycle — e.g. dimension-order routing on a torus ring without
dateline VLs. In the event-driven model a deadlock has a crisp
signature: the event queue runs dry (or only periodic bookkeeping
events remain) while packets still sit in buffers that will never
drain.

An *injected fault* produces the same no-progress signature for a very
different reason: a downed link or paused switch (:mod:`repro.faults`)
legitimately strands bytes until the fault recovers. Reports therefore
carry a ``stall_reason`` — ``"deadlock"`` only when no fault-halted
port can explain the stall, ``"fault_stall"`` otherwise — and the
watchdog never raises a fault stall as a topology deadlock.

:func:`detect_deadlock` inspects a network after ``sim.run`` returns;
:class:`DeadlockWatchdog` samples progress during a run and fires a
callback the first time no packet moved for a full interval while data
is buffered.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

#: ``stall_reason`` values carried by :class:`DeadlockReport`.
STALL_NONE = "none"
STALL_DEADLOCK = "deadlock"
STALL_FAULT = "fault_stall"


@dataclass
class DeadlockReport:
    deadlocked: bool
    buffered_bytes: int
    stuck_ports: List[Tuple[int, int]] = field(default_factory=list)
    # Why nothing is moving: "none" (no stall), "deadlock" (a genuine
    # buffer-dependency cycle), or "fault_stall" (bytes wedged behind a
    # fault-downed/paused port — expected to drain on recovery).
    stall_reason: str = STALL_NONE

    def format(self) -> str:
        """One-line human-readable verdict."""
        if self.stall_reason == STALL_FAULT:
            ports = ", ".join(
                f"switch {s} port {p}" for s, p in self.stuck_ports[:8]
            )
            more = (
                "" if len(self.stuck_ports) <= 8
                else f" (+{len(self.stuck_ports) - 8} more)"
            )
            return (
                f"fault stall: {self.buffered_bytes} bytes held behind "
                f"fault-halted ports ({ports}{more}) — not a topology deadlock"
            )
        if not self.deadlocked:
            return "no deadlock: all buffers drained"
        ports = ", ".join(f"switch {s} port {p}" for s, p in self.stuck_ports[:8])
        more = "" if len(self.stuck_ports) <= 8 else f" (+{len(self.stuck_ports) - 8} more)"
        return (
            f"DEADLOCK: {self.buffered_bytes} bytes wedged in "
            f"{len(self.stuck_ports)} VoQs: {ports}{more}"
        )


def _fault_halted(network) -> bool:
    """Whether any output port is currently halted by an injected fault."""
    for sw in network.switches:
        for out in sw.output_ports:
            if out.halted:
                return True
    for hca in network.hcas:
        if hca.obuf.halted:
            return True
    return False


def _stuck_ports(network) -> List[Tuple[int, int]]:
    stuck = []
    for sw in network.switches:
        for out in range(sw.n_ports):
            if any(
                sw.arbiters[out].queued_bytes[vl] > 0
                for vl in range(sw.n_vls)
            ):
                stuck.append((sw.node_id, out))
    return stuck


def detect_deadlock(network) -> DeadlockReport:
    """Post-mortem check: data buffered but nothing left to happen.

    Call after ``sim.run()`` returned with no ``until`` bound (so the
    event queue is genuinely empty) — any bytes still buffered then can
    never move. A stall explainable by a fault-halted port is reported
    as ``stall_reason="fault_stall"`` with ``deadlocked=False``: the
    bytes are wedged, but by an injected fault, not the topology.
    """
    buffered = network.total_buffered_bytes()
    if network.sim.peek() is not None or buffered == 0:
        return DeadlockReport(False, buffered)
    stuck = _stuck_ports(network)
    if _fault_halted(network):
        return DeadlockReport(False, buffered, stuck, stall_reason=STALL_FAULT)
    return DeadlockReport(True, buffered, stuck, stall_reason=STALL_DEADLOCK)


class DeadlockWatchdog:
    """Online progress monitor.

    Every ``interval_ns`` it compares total packets delivered network
    wide against the previous sample; if no packet moved while bytes
    are buffered, ``on_deadlock`` fires (once) with a
    :class:`DeadlockReport` — unless the stall is explained by a
    fault-halted port, in which case ``fault_stalls`` is incremented
    (and ``on_stall``, if given, is called) but the watchdog does not
    report a deadlock: pause/flap stalls clear when the fault recovers.

    Like every self-rescheduling monitor, run the simulation with a
    time bound (``sim.run(until=...)``) while a watchdog is armed, or
    call :meth:`stop` first - otherwise the periodic tick keeps the
    event loop alive forever.
    """

    __slots__ = (
        "network",
        "interval_ns",
        "on_deadlock",
        "on_stall",
        "_last_count",
        "fired",
        "fault_stalls",
        "last_report",
        "_running",
    )

    def __init__(
        self,
        network,
        interval_ns: float,
        *,
        on_deadlock: Optional[Callable[[DeadlockReport], None]] = None,
        on_stall: Optional[Callable[[DeadlockReport], None]] = None,
    ) -> None:
        if interval_ns <= 0:
            raise ValueError("interval must be positive")
        self.network = network
        self.interval_ns = interval_ns
        self.on_deadlock = on_deadlock
        self.on_stall = on_stall
        self._last_count = -1
        self.fired = False
        self.fault_stalls = 0
        self.last_report: Optional[DeadlockReport] = None
        self._running = False

    def _delivered(self) -> int:
        return sum(ip.packets_received for sw in self.network.switches
                   for ip in sw.input_ports)

    def start(self) -> "DeadlockWatchdog":
        """Arm the watchdog (idempotent); returns self."""
        if not self._running:
            self._running = True
            self.network.sim.schedule(self.interval_ns, self._tick)
        return self

    def stop(self) -> None:
        """Disarm; the pending tick becomes a no-op."""
        self._running = False

    def _tick(self) -> None:
        if not self._running:
            return
        count = self._delivered()
        buffered = self.network.total_buffered_bytes()
        if count == self._last_count and buffered > 0:
            if _fault_halted(self.network):
                # A downed/paused port explains the stall: count it,
                # but don't misreport the fault as a topology deadlock.
                self.fault_stalls += 1
                report = DeadlockReport(
                    False, buffered, _stuck_ports(self.network),
                    stall_reason=STALL_FAULT,
                )
                self.last_report = report
                if self.on_stall is not None:
                    self.on_stall(report)
            elif not self.fired:
                self.fired = True
                report = DeadlockReport(
                    True, buffered, _stuck_ports(self.network),
                    stall_reason=STALL_DEADLOCK,
                )
                self.last_report = report
                if self.on_deadlock is not None:
                    self.on_deadlock(report)
        self._last_count = count
        self.network.sim.schedule(self.interval_ns, self._tick)
