"""Deadlock detection.

A lossless, credit-based network can deadlock when buffer dependencies
form a cycle — e.g. dimension-order routing on a torus ring without
dateline VLs. In the event-driven model a deadlock has a crisp
signature: the event queue runs dry (or only periodic bookkeeping
events remain) while packets still sit in buffers that will never
drain.

:func:`detect_deadlock` inspects a network after ``sim.run`` returns;
:class:`DeadlockWatchdog` samples progress during a run and fires a
callback the first time no packet moved for a full interval while data
is buffered.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple


@dataclass
class DeadlockReport:
    deadlocked: bool
    buffered_bytes: int
    stuck_ports: List[Tuple[int, int]] = field(default_factory=list)

    def format(self) -> str:
        """One-line human-readable verdict."""
        if not self.deadlocked:
            return "no deadlock: all buffers drained"
        ports = ", ".join(f"switch {s} port {p}" for s, p in self.stuck_ports[:8])
        more = "" if len(self.stuck_ports) <= 8 else f" (+{len(self.stuck_ports) - 8} more)"
        return (
            f"DEADLOCK: {self.buffered_bytes} bytes wedged in "
            f"{len(self.stuck_ports)} VoQs: {ports}{more}"
        )


def detect_deadlock(network) -> DeadlockReport:
    """Post-mortem check: data buffered but nothing left to happen.

    Call after ``sim.run()`` returned with no ``until`` bound (so the
    event queue is genuinely empty) — any bytes still buffered then can
    never move.
    """
    buffered = network.total_buffered_bytes()
    if network.sim.peek() is not None or buffered == 0:
        return DeadlockReport(False, buffered)
    stuck = []
    for sw in network.switches:
        for out in range(sw.n_ports):
            for vl in range(sw.n_vls):
                if sw.arbiters[out].queued_bytes[vl] > 0:
                    stuck.append((sw.node_id, out))
                    break
    return DeadlockReport(True, buffered, stuck)


class DeadlockWatchdog:
    """Online progress monitor.

    Every ``interval_ns`` it compares total packets delivered network
    wide against the previous sample; if no packet moved while bytes
    are buffered, ``on_deadlock`` fires (once) with a
    :class:`DeadlockReport`.

    Like every self-rescheduling monitor, run the simulation with a
    time bound (``sim.run(until=...)``) while a watchdog is armed, or
    call :meth:`stop` first - otherwise the periodic tick keeps the
    event loop alive forever.
    """

    __slots__ = (
        "network",
        "interval_ns",
        "on_deadlock",
        "_last_count",
        "fired",
        "_running",
    )

    def __init__(
        self,
        network,
        interval_ns: float,
        *,
        on_deadlock: Optional[Callable[[DeadlockReport], None]] = None,
    ) -> None:
        if interval_ns <= 0:
            raise ValueError("interval must be positive")
        self.network = network
        self.interval_ns = interval_ns
        self.on_deadlock = on_deadlock
        self._last_count = -1
        self.fired = False
        self._running = False

    def _delivered(self) -> int:
        return sum(ip.packets_received for sw in self.network.switches
                   for ip in sw.input_ports)

    def start(self) -> "DeadlockWatchdog":
        """Arm the watchdog (idempotent); returns self."""
        if not self._running:
            self._running = True
            self.network.sim.schedule(self.interval_ns, self._tick)
        return self

    def stop(self) -> None:
        """Disarm; the pending tick becomes a no-op."""
        self._running = False

    def _tick(self) -> None:
        if not self._running:
            return
        count = self._delivered()
        buffered = self.network.total_buffered_bytes()
        if (
            not self.fired
            and count == self._last_count
            and buffered > 0
        ):
            self.fired = True
            if self.on_deadlock is not None:
                stuck = [
                    (sw.node_id, out)
                    for sw in self.network.switches
                    for out in range(sw.n_ports)
                    if any(
                        sw.arbiters[out].queued_bytes[vl] > 0
                        for vl in range(sw.n_vls)
                    )
                ]
                self.on_deadlock(DeadlockReport(True, buffered, stuck))
        self._last_count = count
        self.network.sim.schedule(self.interval_ns, self._tick)
