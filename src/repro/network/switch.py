"""The Switch compound module: ports around a crossbar, routed by LFT.

Mirrors the paper's OMNeT++ switch: each SwitchPort is an
(input buffer, output buffer) pair; the input buffers do the routing
decision and sort packets into virtual output queues; per-output
:class:`~repro.network.arbiter.VLArbiter` instances drain the VoQs into
the output buffers. Routing uses a linear forwarding table (LFT):
``lft[dst] -> output port``.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.engine.simulator import Simulator
from repro.network.arbiter import VLArbiter
from repro.network.packet import Packet
from repro.network.ports import LinkConfig, OutputPort, SwitchInputPort


class Switch:
    """A crossbar switch with ``n_ports`` bidirectional ports.

    Parameters
    ----------
    sim:
        The simulation kernel.
    node_id:
        Switch identifier (unique among switches).
    n_ports:
        Number of bidirectional ports (36 for the paper's crossbars).
    link:
        Link parameters used by all output ports.
    ibuf_capacity / obuf_capacity:
        Buffer sizes in bytes per VL (input) and total (output).
    """

    __slots__ = (
        "sim",
        "node_id",
        "n_ports",
        "n_vls",
        "input_ports",
        "output_ports",
        "arbiters",
        "lft",
        "cc",
        "_router",
    )

    def __init__(
        self,
        sim: Simulator,
        node_id: int,
        n_ports: int,
        *,
        link: Optional[LinkConfig] = None,
        ibuf_capacity: int = 16384,
        obuf_capacity: int = 8192,
        n_vls: int = 1,
    ) -> None:
        link = link or LinkConfig()
        self.sim = sim
        self.node_id = node_id
        self.n_ports = n_ports
        self.n_vls = n_vls
        self.output_ports: List[OutputPort] = [
            OutputPort(sim, link, capacity=obuf_capacity, n_vls=n_vls, port_index=i)
            for i in range(n_ports)
        ]
        self.input_ports: List[SwitchInputPort] = [
            SwitchInputPort(sim, self, i, capacity=ibuf_capacity, n_vls=n_vls)
            for i in range(n_ports)
        ]
        self.arbiters: List[VLArbiter] = [
            VLArbiter(self, i, n_vls) for i in range(n_ports)
        ]
        for i, out in enumerate(self.output_ports):
            out.on_space = self.arbiters[i].kick
        self.lft: Optional[Sequence[int]] = None
        self.cc = None  # SwitchCC, installed by the CC manager
        self._router = None  # optional routing strategy (e.g. adaptive)

    def set_lft(self, lft: Sequence[int]) -> None:
        """Install the linear forwarding table (``lft[dst] -> port``)."""
        self.lft = lft
        self._sync_route_cache()

    @property
    def router(self):
        """Optional routing strategy (e.g. adaptive); None means LFT."""
        return self._router

    @router.setter
    def router(self, router) -> None:
        self._router = router
        self._sync_route_cache()

    def _sync_route_cache(self) -> None:
        # Input ports bypass route() entirely when plain-LFT routing is
        # in effect: deliver() indexes the shared table directly. Any
        # change to the table or the strategy refreshes the caches.
        fast = self.lft if self._router is None else None
        for ip in self.input_ports:
            ip.fast_lft = fast

    def route(self, pkt: Packet) -> int:
        """Output port for ``pkt`` (router strategy or LFT lookup)."""
        if self._router is not None:
            return self._router.route(pkt)
        out = self.lft[pkt.dst]
        if out < 0:
            raise RuntimeError(
                f"switch {self.node_id} has no route to node {pkt.dst}"
            )
        return out

    # -- introspection ---------------------------------------------------
    def queued_bytes(self, out_port: int, vl: int = 0) -> int:
        """Bytes queued in input VoQs for an output Port VL (CC quantity)."""
        return self.arbiters[out_port].queued_bytes[vl]

    def total_buffered(self) -> int:
        """Total bytes currently buffered in all input buffers."""
        return sum(sum(ip.occupancy) for ip in self.input_ports)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Switch(id={self.node_id}, ports={self.n_ports})"
