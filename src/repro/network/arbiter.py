"""The *vlarb*: per-output-port round-robin arbitration.

One :class:`VLArbiter` exists per switch output port. It round-robins
over virtual lanes and, within a VL, over the input ports whose VoQ for
this output is non-empty. Round-robin over inputs is what produces the
per-port fair sharing of a saturated output that the paper's Table II
numbers rely on (see also the authors' companion work on switch
arbitration and fairness, CCGRID'11).

The arbiter also maintains ``queued_bytes[vl]`` — the total bytes
queued across all input VoQs destined to this output Port VL — which is
the quantity the switch-side CC threshold (section II.1 of the paper)
is evaluated against.
"""

from __future__ import annotations

from collections import deque
from typing import List

from repro.network.packet import Packet


class VLArbiter:
    """Round-robin arbiter for one switch output port (see module doc)."""

    __slots__ = (
        "switch",
        "out_index",
        "n_vls",
        "queued_bytes",
        "_active",
        "_is_active",
        "_rr_vl",
        "_kicking",
        "grants",
    )

    def __init__(self, switch, out_index: int, n_vls: int = 1) -> None:
        self.switch = switch
        self.out_index = out_index
        self.n_vls = n_vls
        self.queued_bytes: List[int] = [0] * n_vls
        # Per VL: rotation order of input ports with a non-empty VoQ.
        self._active: List[deque] = [deque() for _ in range(n_vls)]
        # Membership flags to keep the active list duplicate-free.
        self._is_active: List[List[bool]] = [
            [False] * switch.n_ports for _ in range(n_vls)
        ]
        self._rr_vl = 0
        self._kicking = False
        self.grants = 0

    def on_packet_queued(self, in_port: int, vl: int, pkt: Packet) -> None:
        """Register a newly queued packet and try to grant."""
        self.queued_bytes[vl] += pkt.wire_size
        if not self._is_active[vl][in_port]:
            self._is_active[vl][in_port] = True
            self._active[vl].append(in_port)
        self.kick()

    def kick(self) -> None:
        """Grant as many packets as output-buffer space allows.

        Re-entrant calls (the output port's ``on_space`` firing while a
        grant is in progress) are coalesced into the running loop.
        """
        if self._kicking:
            return
        self._kicking = True
        try:
            out_index = self.out_index
            out = self.switch.output_ports[out_index]
            inputs = self.switch.input_ports
            n_vls = self.n_vls
            active = self._active
            is_active = self._is_active
            queued_bytes = self.queued_bytes
            capacity = out.capacity
            while True:
                granted = False
                for _ in range(n_vls):
                    vl = self._rr_vl
                    self._rr_vl = vl + 1 if vl + 1 < n_vls else 0
                    act = active[vl]
                    if not act:
                        continue
                    inp = inputs[act[0]]
                    voq = inp.voqs[out_index][vl]
                    wire = voq[0].wire_size
                    if out.queue_bytes + wire > capacity:
                        continue
                    pkt = inp.grant(out_index, vl)
                    queued_bytes[vl] -= wire
                    self.grants += 1
                    ip = act.popleft()
                    if voq:
                        act.append(ip)  # rotate: fair round robin
                    else:
                        is_active[vl][ip] = False
                    out.enqueue(pkt)
                    granted = True
                    break
                if not granted:
                    return
        finally:
            self._kicking = False

    def total_queued(self, vl: int) -> int:
        """Bytes waiting in input VoQs for this output Port VL."""
        return self.queued_bytes[vl]
