"""Packets and flow identification.

A :class:`Packet` models one InfiniBand packet: up to one MTU of
payload plus a fixed header/CRC overhead. The congestion-control
machinery uses two header bits, exactly as in the IB spec:

* ``fecn`` — Forward Explicit Congestion Notification, set by a switch
  whose output Port VL is in the congestion state as the packet passes
  through it;
* ``becn`` — Backward Explicit Congestion Notification, set on the
  notification packet (CNP) the destination returns to the source.

Flows are identified by ``(source, destination)`` node-id pairs — the
paper runs CC at the Queue Pair level with one active QP per
communicating pair, so a flow key *is* the QP identity for our
purposes.
"""

from __future__ import annotations

from typing import Tuple

FlowKey = Tuple[int, int]

# IB local route header + base transport header + ICRC/VCRC, rounded.
DEFAULT_HEADER_BYTES = 30
# Size of a congestion notification packet (CNP) on the wire.
CNP_WIRE_BYTES = 64
# Size of a transport acknowledgement packet on the wire.
ACK_WIRE_BYTES = 64


class Packet:
    """One InfiniBand packet.

    Attributes
    ----------
    src, dst:
        End-node ids (HCA indices in the topology).
    payload:
        Payload bytes (what throughput is measured in).
    wire_size:
        Bytes occupying links and buffers (payload + header overhead).
    vl, sl:
        Virtual lane / service level. Experiments in the paper use a
        single data VL; CNPs may be configured onto a separate VL.
    flow:
        ``(src, dst)`` — QP-level flow identity for CC state.
    msg_id:
        Id of the message this packet belongs to (messages are two
        packets in the paper's setup).
    fecn, becn:
        Congestion notification bits (see module docstring).
    is_control:
        True for CNPs and transport acks: exempt from FECN marking, CC
        throttling and generator budget accounting.
    t_inject:
        Virtual time the packet entered the source HCA output buffer.
    psn:
        Packet sequence number within its flow when the reliable
        transport (:mod:`repro.transport`) is active; -1 otherwise.
        On an ack, the highest PSN cumulatively acknowledged.
    is_ack:
        True for transport acknowledgement packets.
    """

    __slots__ = (
        "src",
        "dst",
        "payload",
        "wire_size",
        "vl",
        "sl",
        "flow",
        "msg_id",
        "fecn",
        "becn",
        "is_control",
        "t_inject",
        "psn",
        "is_ack",
    )

    def __init__(
        self,
        src: int,
        dst: int,
        payload: int,
        *,
        header: int = DEFAULT_HEADER_BYTES,
        vl: int = 0,
        sl: int = 0,
        msg_id: int = -1,
    ) -> None:
        if src == dst:
            raise ValueError("a packet cannot be addressed to its own source")
        if payload < 0:
            raise ValueError("payload must be non-negative")
        self.src = src
        self.dst = dst
        self.payload = payload
        self.wire_size = payload + header
        self.vl = vl
        self.sl = sl
        self.flow: FlowKey = (src, dst)
        self.msg_id = msg_id
        self.fecn = False
        self.becn = False
        self.is_control = False
        self.t_inject = -1.0
        self.psn = -1
        self.is_ack = False

    @classmethod
    def cnp(cls, src: int, dst: int, *, vl: int = 0, sl: int = 0) -> "Packet":
        """Build a Congestion Notification Packet.

        ``src`` is the node *returning* the notification (the original
        destination); ``dst`` is the original source being told to
        throttle. The CNP's ``flow`` is rewritten to the original
        data-flow key ``(dst, src)`` so the receiver can index its CCT
        state directly.
        """
        pkt = cls(src, dst, 0, header=CNP_WIRE_BYTES, vl=vl, sl=sl)
        pkt.becn = True
        pkt.is_control = True
        pkt.flow = (dst, src)
        return pkt

    @classmethod
    def ack(cls, src: int, dst: int, psn: int, *, vl: int = 0, sl: int = 0) -> "Packet":
        """Build a transport acknowledgement packet.

        ``src`` is the data receiver returning the ack; ``dst`` the
        data sender; ``psn`` the highest PSN cumulatively acknowledged.
        Like a CNP, the ack is a control packet riding the return path
        and its ``flow`` is rewritten to the data-flow key.
        """
        pkt = cls(src, dst, 0, header=ACK_WIRE_BYTES, vl=vl, sl=sl)
        pkt.is_control = True
        pkt.is_ack = True
        pkt.psn = psn
        pkt.flow = (dst, src)
        return pkt

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        bits = "".join(
            b for b, on in (("F", self.fecn), ("B", self.becn), ("C", self.is_control)) if on
        )
        return (
            f"Packet({self.src}->{self.dst}, {self.payload}B, vl={self.vl}"
            + (f", {bits}" if bits else "")
            + ")"
        )
