"""Packets and flow identification.

A :class:`Packet` models one InfiniBand packet: up to one MTU of
payload plus a fixed header/CRC overhead. The congestion-control
machinery uses two header bits, exactly as in the IB spec:

* ``fecn`` — Forward Explicit Congestion Notification, set by a switch
  whose output Port VL is in the congestion state as the packet passes
  through it;
* ``becn`` — Backward Explicit Congestion Notification, set on the
  notification packet (CNP) the destination returns to the source.

Flows are identified by ``(source, destination)`` node-id pairs — the
paper runs CC at the Queue Pair level with one active QP per
communicating pair, so a flow key *is* the QP identity for our
purposes.

Hot-path design (ROADMAP item 1): packets are flyweights — ``__slots__``
only, the four header bits packed into one ``flags`` int, and a
process-local free list so the per-packet lifecycle on the simulation
fast path is a field reset instead of an allocation. Components on the
hot path create packets with :meth:`Packet.acquire` and hand them back
with :func:`release` at end of life (the destination sink, a fault
drop, a transport discard). Pooling is behavior-neutral — every field
is reset on reuse, which the golden-digest suites pin by running
pool-on and pool-off to byte-identical digests. Disable with
``REPRO_PACKET_POOL=0`` (see :func:`sync_pool_env`).
"""

from __future__ import annotations

import os
from typing import List, Tuple

FlowKey = Tuple[int, int]

# IB local route header + base transport header + ICRC/VCRC, rounded.
DEFAULT_HEADER_BYTES = 30
# Size of a congestion notification packet (CNP) on the wire.
CNP_WIRE_BYTES = 64
# Size of a transport acknowledgement packet on the wire.
ACK_WIRE_BYTES = 64

# Bit layout of Packet.flags (int-packed header/control bits).
FLAG_FECN = 1
FLAG_BECN = 2
FLAG_CONTROL = 4
FLAG_ACK = 8

#: Environment variable gating the packet free list (default on).
ENV_PACKET_POOL = "REPRO_PACKET_POOL"

# Free list of released packets awaiting reuse. Bounded so a pathological
# burst cannot pin memory; process-local, so pool state never crosses
# the campaign executor's worker boundary.
_POOL_LIMIT = 8192
_pool: List["Packet"] = []
_pool_enabled = True


def packet_pool_enabled() -> bool:
    """Whether released packets are recycled through the free list."""
    return _pool_enabled


def set_packet_pool(enabled: bool) -> None:
    """Enable or disable the free list (disabling drops pooled packets)."""
    global _pool_enabled
    _pool_enabled = bool(enabled)
    if not _pool_enabled:
        _pool.clear()


def sync_pool_env() -> bool:
    """Refresh the pool gate from ``REPRO_PACKET_POOL`` (default on).

    Called once per :func:`repro.experiments.runner.run_experiment` so
    the knob behaves like ``REPRO_SCHEDULER``: set in the environment,
    inherited by campaign workers, never part of a store key.
    """
    # Read once per run_experiment, never on the event path; pooling is
    # proven digest-neutral, so the knob cannot alter results (and is
    # deliberately not part of the store key).
    # simlint: disable-next-line=DET103
    raw = os.environ.get(ENV_PACKET_POOL, "").strip().lower()
    set_packet_pool(raw not in ("0", "false", "off"))
    return _pool_enabled


class Packet:
    """One InfiniBand packet.

    Attributes
    ----------
    src, dst:
        End-node ids (HCA indices in the topology).
    payload:
        Payload bytes (what throughput is measured in).
    wire_size:
        Bytes occupying links and buffers (payload + header overhead).
    vl, sl:
        Virtual lane / service level. Experiments in the paper use a
        single data VL; CNPs may be configured onto a separate VL.
    flow:
        ``(src, dst)`` — QP-level flow identity for CC state.
    msg_id:
        Id of the message this packet belongs to (messages are two
        packets in the paper's setup).
    flags:
        Int-packed header/control bits (``FLAG_*``); read and written
        through the ``fecn``/``becn``/``is_control``/``is_ack``
        properties below.
    fecn, becn:
        Congestion notification bits (see module docstring).
    is_control:
        True for CNPs and transport acks: exempt from FECN marking, CC
        throttling and generator budget accounting.
    t_inject:
        Virtual time the packet entered the source HCA output buffer.
    psn:
        Packet sequence number within its flow when the reliable
        transport (:mod:`repro.transport`) is active; -1 otherwise.
        On an ack, the highest PSN cumulatively acknowledged.
    is_ack:
        True for transport acknowledgement packets.
    """

    __slots__ = (
        "src",
        "dst",
        "payload",
        "wire_size",
        "vl",
        "sl",
        "flow",
        "msg_id",
        "flags",
        "t_inject",
        "psn",
    )

    def __init__(
        self,
        src: int,
        dst: int,
        payload: int,
        *,
        header: int = DEFAULT_HEADER_BYTES,
        vl: int = 0,
        sl: int = 0,
        msg_id: int = -1,
    ) -> None:
        if src == dst:
            raise ValueError("a packet cannot be addressed to its own source")
        if payload < 0:
            raise ValueError("payload must be non-negative")
        self.src = src
        self.dst = dst
        self.payload = payload
        self.wire_size = payload + header
        self.vl = vl
        self.sl = sl
        self.flow: FlowKey = (src, dst)
        self.msg_id = msg_id
        self.flags = 0
        self.t_inject = -1.0
        self.psn = -1

    @classmethod
    def acquire(
        cls,
        src: int,
        dst: int,
        payload: int,
        *,
        header: int = DEFAULT_HEADER_BYTES,
        vl: int = 0,
        sl: int = 0,
        msg_id: int = -1,
    ) -> "Packet":
        """A packet from the free list (or a fresh one), fully reset.

        Semantically identical to the constructor; use on the hot path
        and pair with :func:`release` at the packet's end of life.
        """
        if not _pool:
            return cls(src, dst, payload, header=header, vl=vl, sl=sl, msg_id=msg_id)
        if src == dst:
            raise ValueError("a packet cannot be addressed to its own source")
        if payload < 0:
            raise ValueError("payload must be non-negative")
        pkt = _pool.pop()
        pkt.src = src
        pkt.dst = dst
        pkt.payload = payload
        pkt.wire_size = payload + header
        pkt.vl = vl
        pkt.sl = sl
        pkt.flow = (src, dst)
        pkt.msg_id = msg_id
        pkt.flags = 0
        pkt.t_inject = -1.0
        pkt.psn = -1
        return pkt

    # -- int-packed header bits ----------------------------------------
    @property
    def fecn(self) -> bool:
        return bool(self.flags & FLAG_FECN)

    @fecn.setter
    def fecn(self, on: bool) -> None:
        if on:
            self.flags |= FLAG_FECN
        else:
            self.flags &= ~FLAG_FECN

    @property
    def becn(self) -> bool:
        return bool(self.flags & FLAG_BECN)

    @becn.setter
    def becn(self, on: bool) -> None:
        if on:
            self.flags |= FLAG_BECN
        else:
            self.flags &= ~FLAG_BECN

    @property
    def is_control(self) -> bool:
        return bool(self.flags & FLAG_CONTROL)

    @is_control.setter
    def is_control(self, on: bool) -> None:
        if on:
            self.flags |= FLAG_CONTROL
        else:
            self.flags &= ~FLAG_CONTROL

    @property
    def is_ack(self) -> bool:
        return bool(self.flags & FLAG_ACK)

    @is_ack.setter
    def is_ack(self, on: bool) -> None:
        if on:
            self.flags |= FLAG_ACK
        else:
            self.flags &= ~FLAG_ACK

    @classmethod
    def cnp(cls, src: int, dst: int, *, vl: int = 0, sl: int = 0) -> "Packet":
        """Build a Congestion Notification Packet.

        ``src`` is the node *returning* the notification (the original
        destination); ``dst`` is the original source being told to
        throttle. The CNP's ``flow`` is rewritten to the original
        data-flow key ``(dst, src)`` so the receiver can index its CCT
        state directly.
        """
        pkt = cls.acquire(src, dst, 0, header=CNP_WIRE_BYTES, vl=vl, sl=sl)
        pkt.flags = FLAG_BECN | FLAG_CONTROL
        pkt.flow = (dst, src)
        return pkt

    @classmethod
    def ack(cls, src: int, dst: int, psn: int, *, vl: int = 0, sl: int = 0) -> "Packet":
        """Build a transport acknowledgement packet.

        ``src`` is the data receiver returning the ack; ``dst`` the
        data sender; ``psn`` the highest PSN cumulatively acknowledged.
        Like a CNP, the ack is a control packet riding the return path
        and its ``flow`` is rewritten to the data-flow key.
        """
        pkt = cls.acquire(src, dst, 0, header=ACK_WIRE_BYTES, vl=vl, sl=sl)
        pkt.flags = FLAG_CONTROL | FLAG_ACK
        pkt.psn = psn
        pkt.flow = (dst, src)
        return pkt

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        bits = "".join(
            b for b, on in (("F", self.fecn), ("B", self.becn), ("C", self.is_control)) if on
        )
        return (
            f"Packet({self.src}->{self.dst}, {self.payload}B, vl={self.vl}"
            + (f", {bits}" if bits else "")
            + ")"
        )


def release(pkt: Packet) -> None:
    """Return a packet to the free list at the end of its lifecycle.

    Callers must drop every reference afterwards — the object may be
    handed out again by the next :meth:`Packet.acquire`. Releasing is
    optional (an un-released packet is simply garbage-collected), so
    cold paths and tests can ignore pooling entirely.
    """
    if _pool_enabled and len(_pool) < _POOL_LIMIT:
        _pool.append(pkt)
