"""Weighted / prioritized virtual-lane arbitration.

InfiniBand's VL arbitration is configured through high- and
low-priority tables of (VL, weight) entries; the egress scheduler
serves high-priority VLs first and splits bandwidth within a priority
level proportionally to the weights. The default model (plain round
robin over VLs, as the paper's single-data-VL experiments need) lives
in :class:`~repro.network.ports.OutputPort`; this module provides the
spec's richer behaviour as an opt-in egress scheduler:

* strict priority between levels (e.g. expedite the CNP VL);
* deficit-weighted round robin within a level.

Install on every output port of a network with
:func:`install_vl_arbitration`.
"""

from __future__ import annotations

from typing import List, Optional, Sequence


_QUANTUM = 2048  # bytes of deficit added per weight unit per round


class VlArbitrationTable:
    """Egress VL scheduler: strict priority levels + weighted shares.

    Parameters
    ----------
    priority:
        One integer per VL; higher values are served strictly first.
    weight:
        One positive integer per VL; within a priority level,
        bandwidth is shared proportionally to these (deficit round
        robin with a 2 KiB quantum).
    """

    __slots__ = ("priority", "weight", "_deficit", "n_vls")

    def __init__(self, priority: Sequence[int], weight: Sequence[int]) -> None:
        if len(priority) != len(weight):
            raise ValueError("priority and weight must have one entry per VL")
        if not priority:
            raise ValueError("need at least one VL")
        if any(w < 1 for w in weight):
            raise ValueError("weights must be >= 1")
        self.priority = list(priority)
        self.weight = list(weight)
        self._deficit: List[float] = [0.0] * len(priority)
        self.n_vls = len(priority)

    def select(self, queues, credits) -> Optional[int]:
        """Pick the next VL to transmit from, or None if all blocked.

        ``queues[vl]`` are the per-VL FIFOs; ``credits[vl]`` the
        available downstream credits. Only VLs whose head packet is
        credit-covered compete.
        """
        candidates = [
            vl
            for vl in range(self.n_vls)
            if queues[vl] and credits[vl] >= queues[vl][0].wire_size
        ]
        if not candidates:
            return None
        top = max(self.priority[vl] for vl in candidates)
        level = [vl for vl in candidates if self.priority[vl] == top]
        if len(level) == 1:
            return level[0]
        deficit = self._deficit
        while True:
            for vl in level:
                if deficit[vl] >= queues[vl][0].wire_size:
                    deficit[vl] -= queues[vl][0].wire_size
                    return vl
            for vl in level:
                deficit[vl] += self.weight[vl] * _QUANTUM

    def clone(self) -> "VlArbitrationTable":
        """A fresh table with the same configuration (deficits reset)."""
        return VlArbitrationTable(self.priority, self.weight)


def install_vl_arbitration(
    network, priority: Sequence[int], weight: Sequence[int]
) -> int:
    """Install a (priority, weight) VL arbitration on every output port.

    Each port receives its own deficit state. Returns the number of
    ports configured.
    """
    if len(priority) != network.config.n_vls:
        raise ValueError("need one priority entry per configured VL")
    template = VlArbitrationTable(priority, weight)
    count = 0
    for sw in network.switches:
        for out in sw.output_ports:
            out.vlarb = template.clone()
            count += 1
    for hca in network.hcas:
        hca.obuf.vlarb = template.clone()
        count += 1
    return count
