"""Output ports (obuf) and switch input ports (ibuf).

The credit-based link-level flow control of InfiniBand lives here:

* an :class:`OutputPort` may start transmitting a packet only when it
  holds enough credits (bytes of downstream buffer space on the
  packet's VL);
* a :class:`SwitchInputPort` returns credits to its upstream output
  port when a packet leaves the input buffer through the crossbar.

Because credits can never go negative and the downstream buffer is
sized exactly to the credits handed out, packets are **never dropped**
— blocking propagates upstream instead (backpressure), which is what
grows congestion trees.

Virtual lanes are kept separate end to end: the output buffer holds one
FIFO per VL and round-robins over the VLs whose head packet is covered
by credits, so a congested data VL can never head-of-line block the
(e.g.) CNP VL — matching real IB egress behaviour where the VL
arbitration happens at the transmit stage.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, List, Optional, Sequence

from repro.engine.simulator import Simulator
from repro.network.packet import FLAG_CONTROL, FLAG_FECN, Packet, release


class LinkConfig:
    """Physical link parameters.

    Parameters
    ----------
    rate_gbps:
        Raw signalling rate in Gbit/s. The paper uses 20 Gbit/s
        (4x DDR).
    prop_delay_ns:
        One-way propagation delay; also used as the latency of credit
        (flow-control) updates travelling on the reverse channel.
    """

    __slots__ = ("rate_gbps", "prop_delay_ns", "byte_time_ns")

    def __init__(self, rate_gbps: float = 20.0, prop_delay_ns: float = 50.0) -> None:
        if rate_gbps <= 0:
            raise ValueError("link rate must be positive")
        if prop_delay_ns < 0:
            raise ValueError("propagation delay must be non-negative")
        self.rate_gbps = rate_gbps
        self.prop_delay_ns = prop_delay_ns
        # Gbit/s -> bytes/ns is rate/8; byte time is its reciprocal.
        self.byte_time_ns = 8.0 / rate_gbps


class OutputPort:
    """An *obuf*: per-VL transmit queues driving one link.

    The port serializes one packet at a time at the link rate. Among
    the VLs whose head packet is covered by downstream credits, VLs are
    served round-robin. CC marking is invoked through the ``cc`` hook
    when a packet begins transmission (i.e. when it passes through the
    Port VL), matching where the IB spec performs FECN marking.
    """

    __slots__ = (
        "sim",
        "_link",
        "capacity",
        "queues",
        "queue_bytes",
        "credits",
        "busy",
        "_peer",
        "_peer_deliver",
        "_on_tx_done",
        "cc",
        "port_index",
        "on_space",
        "bytes_sent",
        "packets_sent",
        "vlarb",
        "trace",
        "trace_kind",
        "trace_node",
        "halted",
        "lossy",
        "dropped_packets",
        "dropped_bytes",
        "_lost_credits",
        "_rr_vl",
        "_n_vls",
        "_byte_time",
        "_prop_delay",
        "_schedule",
    )

    def __init__(
        self,
        sim: Simulator,
        link: LinkConfig,
        *,
        capacity: int = 8192,
        n_vls: int = 1,
        port_index: int = 0,
    ) -> None:
        self.sim = sim
        self._link = link
        self.capacity = capacity
        self.queues: List[deque] = [deque() for _ in range(n_vls)]
        self.queue_bytes = 0
        # Filled in when the downstream input buffer is attached.
        self.credits: List[float] = [0.0] * n_vls
        self.busy = False
        self._peer = None  # downstream object exposing .deliver(pkt)
        self._peer_deliver = None
        self._on_tx_done = self._tx_done  # avoids rebinding per packet
        self.cc = None  # SwitchCC hook or None
        self.port_index = port_index
        self.on_space: Optional[Callable[[], None]] = None
        self.bytes_sent = 0
        self.packets_sent = 0
        # Optional richer egress scheduler (repro.network.vlarb); None
        # means plain round robin over credit-covered VLs.
        self.vlarb = None
        # Tracing hook (repro.trace), set by TraceSession.install along
        # with the owning node's identity; None costs one branch per tx.
        self.trace = None
        self.trace_kind = ""
        self.trace_node = -1
        # Fault state (repro.faults): ``halted`` blocks new
        # transmissions (link down or switch pause); ``lossy``
        # additionally loses the packet on the wire when its
        # serialization completes (link down only).
        self.halted = False
        self.lossy = False
        self.dropped_packets = 0
        self.dropped_bytes = 0
        # Credits consumed by packets lost while the link was down;
        # refunded on recovery, modelling the retrain's credit re-sync.
        self._lost_credits: List[float] = [0.0] * n_vls
        self._rr_vl = 0
        self._n_vls = n_vls
        # Hot-path caches: the transmit loop runs once per packet per
        # hop, so the link timings are flattened to port attributes and
        # refreshed by the ``link`` setter (runtime degradation).
        self._byte_time = link.byte_time_ns
        self._prop_delay = link.prop_delay_ns
        self._schedule = sim.schedule

    @property
    def peer(self):
        """Downstream object exposing ``deliver(pkt)``."""
        return self._peer

    @peer.setter
    def peer(self, peer) -> None:
        self._peer = peer
        self._peer_deliver = None if peer is None else peer.deliver

    @property
    def link(self) -> LinkConfig:
        """Physical link parameters driving this port."""
        return self._link

    @link.setter
    def link(self, link: LinkConfig) -> None:
        # repro.network.degrade swaps the LinkConfig mid-run to model
        # frequency/voltage scaling; keep the hot-path caches in step.
        self._link = link
        self._byte_time = link.byte_time_ns
        self._prop_delay = link.prop_delay_ns

    # -- capacity -------------------------------------------------------
    def has_space(self, wire_size: int) -> bool:
        """Whether ``wire_size`` more bytes fit in the transmit queue."""
        return self.queue_bytes + wire_size <= self.capacity

    @property
    def free_space(self) -> int:
        return self.capacity - self.queue_bytes

    def queued_packets(self) -> int:
        """Packets currently waiting across all VL queues."""
        return sum(len(q) for q in self.queues)

    # -- enqueue/dequeue --------------------------------------------------
    def enqueue(self, pkt: Packet, *, front: bool = False) -> None:
        """Add a packet to its VL's transmit queue.

        ``front=True`` gives head-of-queue priority within the VL (used
        only for CNPs at the source HCA, mirroring hardware that
        expedites notifications).
        """
        q = self.queues[pkt.vl]
        if front:
            q.appendleft(pkt)
        else:
            q.append(pkt)
        self.queue_bytes += pkt.wire_size
        if not self.busy:
            self.try_send()

    def on_credit(self, arg) -> None:
        """Credit return from downstream: ``arg = (vl, nbytes)``."""
        vl, nbytes = arg
        self.credits[vl] += nbytes
        if not self.busy:
            self.try_send()

    def try_send(self) -> None:
        """Start transmitting an eligible head packet, if any.

        Picks the next VL (round robin from the last served VL) whose
        head packet fits its credits; a credit-starved VL never blocks
        the others.
        """
        if self.busy or self.halted:
            return
        queues = self.queues
        credits = self.credits
        pkt = None
        if self.vlarb is not None:
            vl = self.vlarb.select(queues, credits)
            if vl is not None:
                pkt = queues[vl].popleft()
        else:
            n_vls = self._n_vls
            rr = self._rr_vl
            for i in range(n_vls):
                vl = rr + i
                if vl >= n_vls:
                    vl -= n_vls
                q = queues[vl]
                if q and credits[vl] >= q[0].wire_size:
                    pkt = q.popleft()
                    self._rr_vl = vl + 1 if vl + 1 < n_vls else 0
                    break
        if pkt is None:
            return
        wire = pkt.wire_size
        vl = pkt.vl
        self.queue_bytes -= wire
        cr = credits[vl] - wire
        credits[vl] = cr
        self.busy = True
        if self.cc is not None and not (pkt.flags & FLAG_CONTROL):
            self.cc.on_transmit(self.port_index, pkt, cr)
        self.bytes_sent += wire
        self.packets_sent += 1
        trace = self.trace
        if trace is not None:
            # After the CC hook so the record sees the FECN decision.
            trace.tx(
                self.sim.now, self.trace_kind, self.trace_node,
                self.port_index, vl, pkt.src, pkt.dst, wire,
                1 if pkt.flags & FLAG_FECN else 0, credits[vl],
            )
        self._schedule(wire * self._byte_time, self._on_tx_done, pkt)
        if self.on_space is not None:
            self.on_space()

    def _tx_done(self, pkt: Packet) -> None:
        self.busy = False
        if self.lossy:
            self._drop(pkt)
        else:
            self._schedule(self._prop_delay, self._peer_deliver, pkt)
        self.try_send()

    # -- fault injection (repro.faults) ---------------------------------
    def _drop(self, pkt: Packet) -> None:
        """Lose ``pkt`` on the wire (its credits refund on recovery)."""
        wire = pkt.wire_size
        self.dropped_packets += 1
        self.dropped_bytes += wire
        self._lost_credits[pkt.vl] += wire
        trace = self.trace
        if trace is not None:
            trace.drop(
                self.sim.now, self.trace_kind, self.trace_node,
                self.port_index, pkt.vl, pkt.src, pkt.dst, pkt.payload,
                1 if pkt.is_control else 0, "link",
            )
        release(pkt)

    def fail(self) -> None:
        """Take the link down: no new transmissions, in-flight tx lost."""
        self.halted = True
        self.lossy = True

    def pause(self) -> None:
        """Stop transmitting without loss (in-flight packets deliver)."""
        self.halted = True

    def recover(self) -> None:
        """Bring the link back: refund lost credits, resume transmit.

        A real link retrain re-initializes link-level flow control; we
        model that exactly by refunding the credits consumed by packets
        that were lost while the link was down — never more, so the
        downstream buffer can never be over-committed.
        """
        self.halted = False
        self.lossy = False
        lost = self._lost_credits
        credits = self.credits
        for vl, nbytes in enumerate(lost):
            if nbytes:
                credits[vl] += nbytes
                lost[vl] = 0.0
        self.try_send()


class SwitchInputPort:
    """An *ibuf*: per-VL shared buffer with virtual output queues.

    The buffer space on each VL is shared by all virtual output queues
    — that sharing is precisely what lets a saturated hot-spot output
    exhaust the credits of the upstream link and HOL-block flows headed
    elsewhere (congestion spreading). Packets are sorted into a VoQ per
    (output port, VL) on arrival; the per-output :class:`VLArbiter`
    drains them.
    """

    __slots__ = (
        "sim",
        "switch",
        "port_id",
        "capacity",
        "occupancy",
        "voqs",
        "_upstream",
        "_upstream_credit",
        "credit_delay_ns",
        "packets_received",
        "fast_lft",
        "_schedule",
    )

    def __init__(
        self,
        sim: Simulator,
        switch,
        port_id: int,
        *,
        capacity: int = 16384,
        n_vls: int = 1,
    ) -> None:
        self.sim = sim
        self.switch = switch
        self.port_id = port_id
        self.capacity = capacity
        self.occupancy: List[int] = [0] * n_vls
        # voqs[out_port][vl] -> deque of packets
        self.voqs: List[List[deque]] = [
            [deque() for _ in range(n_vls)] for _ in range(switch.n_ports)
        ]
        self._upstream: Optional[OutputPort] = None
        self._upstream_credit = None
        self.credit_delay_ns = 0.0
        self.packets_received = 0
        # Per-destination routing fast path: a direct reference to the
        # switch's LFT when plain table routing is active (kept in sync
        # by Switch._sync_route_cache), else None -> full route() call.
        self.fast_lft: Optional[Sequence[int]] = None
        self._schedule = sim.schedule

    @property
    def upstream(self) -> Optional["OutputPort"]:
        """The output port feeding this buffer (credit-return target)."""
        return self._upstream

    @upstream.setter
    def upstream(self, port: Optional["OutputPort"]) -> None:
        self._upstream = port
        self._upstream_credit = None if port is None else port.on_credit

    def deliver(self, pkt: Packet) -> None:
        """Accept a packet from the wire: route it and queue in its VoQ."""
        vl = pkt.vl
        occ = self.occupancy[vl] + pkt.wire_size
        if occ > self.capacity:
            raise RuntimeError(
                f"flow-control violation: ibuf overflow at switch "
                f"{self.switch.node_id} port {self.port_id} vl {vl} "
                f"({occ} > {self.capacity})"
            )
        self.occupancy[vl] = occ
        self.packets_received += 1
        lft = self.fast_lft
        if lft is not None:
            out = lft[pkt.dst]
            if out < 0:
                raise RuntimeError(
                    f"switch {self.switch.node_id} has no route to node {pkt.dst}"
                )
        else:
            out = self.switch.route(pkt)
        if out == self.port_id:
            raise RuntimeError(
                f"routing loop: packet for node {pkt.dst} routed back out "
                f"port {out} of switch {self.switch.node_id}"
            )
        self.voqs[out][vl].append(pkt)
        self.switch.arbiters[out].on_packet_queued(self.port_id, vl, pkt)

    def grant(self, out_port: int, vl: int) -> Packet:
        """Arbiter callback: move the VoQ head into the crossbar.

        Frees the buffer space and schedules the credit return to the
        upstream output port after the reverse-channel delay.
        """
        pkt = self.voqs[out_port][vl].popleft()
        wire = pkt.wire_size
        self.occupancy[vl] -= wire
        if self._upstream_credit is not None:
            self._schedule(self.credit_delay_ns, self._upstream_credit, (vl, wire))
        return pkt

    def voq_head(self, out_port: int, vl: int) -> Optional[Packet]:
        """Peek the head packet of one VoQ (None when empty)."""
        q = self.voqs[out_port][vl]
        return q[0] if q else None
