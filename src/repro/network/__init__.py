"""InfiniBand network substrate.

Packet-level models of the components the paper's OMNeT++ simulator is
built from (section IV of the paper):

* :class:`~repro.network.packet.Packet` — the unit of transfer, with
  FECN/BECN congestion-notification bits;
* :class:`~repro.network.ports.OutputPort` — an *obuf*: link
  serialization plus credit-based link-level flow control;
* :class:`~repro.network.ports.SwitchInputPort` — an *ibuf*: per-VL
  shared buffer space with virtual output queues (VoQ);
* :class:`~repro.network.arbiter.VLArbiter` — the *vlarb*: round-robin
  arbitration over (input port, VL) pairs per output port;
* :class:`~repro.network.switch.Switch` — a crossbar of SwitchPorts
  routing by linear forwarding table;
* :class:`~repro.network.hca.Hca` — Host Channel Adapter: traffic
  generator (*gen*), sink, and the CC reaction point;
* :class:`~repro.network.network.Network` — wiring, configuration and
  simulation entry point.
"""

from repro.network.packet import Packet, FlowKey
from repro.network.ports import OutputPort, SwitchInputPort, LinkConfig
from repro.network.arbiter import VLArbiter
from repro.network.switch import Switch
from repro.network.hca import Hca, HcaConfig
from repro.network.network import Network, NetworkConfig
from repro.network.adaptive import AdaptiveUpRouter, install_adaptive_routing
from repro.network.vlarb import VlArbitrationTable, install_vl_arbitration
from repro.network.deadlock import DeadlockWatchdog, DeadlockReport, detect_deadlock
from repro.network.degrade import degrade_link, degrade_uplink_between, degraded_ports

__all__ = [
    "Packet",
    "FlowKey",
    "OutputPort",
    "SwitchInputPort",
    "LinkConfig",
    "VLArbiter",
    "Switch",
    "Hca",
    "HcaConfig",
    "Network",
    "NetworkConfig",
    "AdaptiveUpRouter",
    "install_adaptive_routing",
    "VlArbitrationTable",
    "install_vl_arbitration",
    "DeadlockWatchdog",
    "DeadlockReport",
    "detect_deadlock",
    "degrade_link",
    "degrade_uplink_between",
    "degraded_ports",
]
