"""The Host Channel Adapter: traffic generator, sink, and CC reaction point.

An :class:`Hca` injects packets produced by a pluggable traffic source
(*gen*, see :mod:`repro.traffic`) into its output buffer and consumes
arriving packets in its sink at the hardware receive rate. Two rate
caps from the paper's testbed are modelled explicitly:

* injection is limited to 13.5 Gbit/s (PCIe v1.1 ceiling) — enforced by
  the traffic source's token budgets;
* the sink drains at 13.6 Gbit/s — enforced here by serial service of
  arriving packets, so a hotspot that is offered more than 13.6 Gbit/s
  backs up into the fabric and roots a congestion tree.

CC hooks: on receiving a FECN-marked packet the sink immediately
returns a CNP (BECN) to the source; on receiving a BECN the HCA-side
reaction point (``self.cc``, any :class:`repro.cc.CongestionControl` —
the paper's :class:`repro.core.hca_cc.HcaCC` CCT table by default,
installed per the experiment's :class:`repro.cc.CCConfig`) deepens the
flow's throttle so subsequent injections of that flow are spaced
further apart (the CCT's IRD for ``"ib"``, ``ser / rate`` for the
rate-based mechanisms). The dispatch here is mechanism-agnostic: the
HCA only ever calls ``on_inject`` / ``on_becn`` / ``next_allowed``.
"""

from __future__ import annotations

from collections import deque
from typing import List, Optional

from repro.engine.simulator import Simulator
from repro.network.packet import (
    FLAG_ACK,
    FLAG_BECN,
    FLAG_CONTROL,
    FLAG_FECN,
    Packet,
    release,
)
from repro.network.ports import LinkConfig, OutputPort


class HcaConfig:
    """Per-HCA configuration (paper section IV defaults)."""

    __slots__ = (
        "inj_rate_gbps",
        "sink_rate_gbps",
        "mtu",
        "msg_packets",
        "header_bytes",
        "obuf_capacity",
        "ibuf_capacity",
        "n_vls",
        "cnp_vl",
        "cnp_coalesce_ns",
    )

    def __init__(
        self,
        *,
        inj_rate_gbps: float = 13.5,
        sink_rate_gbps: float = 13.6,
        mtu: int = 2048,
        msg_packets: int = 2,
        header_bytes: int = 30,
        obuf_capacity: int = 8192,
        ibuf_capacity: int = 16384,
        n_vls: int = 2,
        cnp_vl: int = 1,
        cnp_coalesce_ns: float = 1_000.0,
    ) -> None:
        if inj_rate_gbps <= 0 or sink_rate_gbps <= 0:
            raise ValueError("rates must be positive")
        if mtu <= 0 or msg_packets <= 0:
            raise ValueError("mtu and msg_packets must be positive")
        self.inj_rate_gbps = inj_rate_gbps
        self.sink_rate_gbps = sink_rate_gbps
        self.mtu = mtu
        self.msg_packets = msg_packets
        self.header_bytes = header_bytes
        self.obuf_capacity = obuf_capacity
        self.ibuf_capacity = ibuf_capacity
        self.n_vls = n_vls
        if not 0 <= cnp_vl < n_vls:
            raise ValueError("cnp_vl must be a valid VL index")
        self.cnp_vl = cnp_vl
        if cnp_coalesce_ns < 0:
            raise ValueError("cnp_coalesce_ns must be >= 0")
        self.cnp_coalesce_ns = cnp_coalesce_ns


class HcaInputPort:
    """HCA receive side: input buffer + serial sink service."""

    __slots__ = (
        "sim",
        "hca",
        "capacity",
        "occupancy",
        "queue",
        "busy",
        "sink_byte_time",
        "_upstream",
        "_upstream_credit",
        "credit_delay_ns",
        "_schedule",
        "_on_service_done",
    )

    def __init__(self, sim: Simulator, hca: "Hca", capacity: int, sink_rate_gbps: float, n_vls: int) -> None:
        self.sim = sim
        self.hca = hca
        self.capacity = capacity
        self.occupancy: List[int] = [0] * n_vls
        self.queue: deque = deque()
        self.busy = False
        self.sink_byte_time = 8.0 / sink_rate_gbps
        self._upstream: Optional[OutputPort] = None
        self._upstream_credit = None
        self.credit_delay_ns = 0.0
        self._schedule = sim.schedule
        self._on_service_done = self._service_done

    @property
    def upstream(self) -> Optional[OutputPort]:
        """The output port feeding this sink (credit-return target)."""
        return self._upstream

    @upstream.setter
    def upstream(self, port: Optional[OutputPort]) -> None:
        self._upstream = port
        self._upstream_credit = None if port is None else port.on_credit

    def deliver(self, pkt: Packet) -> None:
        """Accept a packet from the wire into the receive buffer."""
        occ = self.occupancy[pkt.vl] + pkt.wire_size
        if occ > self.capacity:
            raise RuntimeError(
                f"flow-control violation: HCA {self.hca.node_id} ibuf overflow"
            )
        self.occupancy[pkt.vl] = occ
        self.queue.append(pkt)
        if not self.busy:
            self._start_service()

    def _start_service(self) -> None:
        pkt = self.queue[0]
        self.busy = True
        self._schedule(pkt.wire_size * self.sink_byte_time, self._on_service_done)

    def _service_done(self) -> None:
        pkt = self.queue.popleft()
        wire = pkt.wire_size
        vl = pkt.vl
        self.occupancy[vl] -= wire
        if self._upstream_credit is not None:
            self._schedule(self.credit_delay_ns, self._upstream_credit, (vl, wire))
        self.hca.on_packet_received(pkt)
        if self.queue:
            self._start_service()
        else:
            self.busy = False


class Hca:
    """Host Channel Adapter compound module (gen + sink + CC hooks)."""

    __slots__ = (
        "sim",
        "node_id",
        "config",
        "obuf",
        "input_port",
        "gen",
        "cc",
        "metrics",
        "trace",
        "cnp_fault",
        "transport",
        "_wake_id",
        "_on_wake",
        "_pulling",
        "_max_wire",
        "_last_cnp",
        "cnps_sent",
        "becns_received",
    )

    def __init__(
        self,
        sim: Simulator,
        node_id: int,
        *,
        link: Optional[LinkConfig] = None,
        config: Optional[HcaConfig] = None,
    ) -> None:
        link = link or LinkConfig()
        config = config or HcaConfig()
        self.sim = sim
        self.node_id = node_id
        self.config = config
        self.obuf = OutputPort(
            sim, link, capacity=config.obuf_capacity, n_vls=config.n_vls, port_index=0
        )
        self.obuf.on_space = self.pull
        self.input_port = HcaInputPort(
            sim, self, config.ibuf_capacity, config.sink_rate_gbps, config.n_vls
        )
        self.gen = None  # pluggable traffic source (repro.traffic)
        self.cc = None  # CongestionControl (repro.cc), installed by CCManager
        self.metrics = None  # collector (repro.metrics), or None
        self.trace = None  # tracer (repro.trace), or None
        self.cnp_fault = None  # CnpFaultFilter (repro.faults), or None
        self.transport = None  # HcaTransport (repro.transport), or None
        self._wake_id: Optional[int] = None
        self._on_wake = self._wake
        self._pulling = False
        self._max_wire = config.mtu + config.header_bytes
        self._last_cnp: dict = {}
        self.cnps_sent = 0
        self.becns_received = 0

    # -- injection side ---------------------------------------------------
    def attach_generator(self, gen) -> None:
        """Install a traffic source and prime the injection loop."""
        self.gen = gen
        self.sim.schedule(0.0, self.pull)

    def pull(self) -> None:
        """Fill the output buffer from the generator while work is ready.

        The generator either returns a packet eligible *now* or the
        earliest time one may become eligible, in which case a single
        wake-up is scheduled. Re-entrant calls (obuf space freeing while
        we are already pulling) are coalesced. With the reliable
        transport installed, pending retransmissions drain ahead of
        fresh generator traffic, and fresh packets are PSN-sequenced
        (or discarded, for a FAILED flow) before they cost anything.
        """
        if self._pulling or self.gen is None:
            tr = self.transport
            if self._pulling or tr is None or not tr.retx_queue:
                return
        self._pulling = True
        try:
            if self._wake_id is not None:
                self.sim.cancel(self._wake_id)
                self._wake_id = None
            sim = self.sim
            obuf = self.obuf
            gen = self.gen
            tr = self.transport
            while obuf.has_space(self._max_wire):
                if tr is not None and tr.retx_queue:
                    pkt = tr.next_retx()
                    if pkt is not None:
                        # Retransmissions re-occupy the wire but are not
                        # new injections: no CC charge, no goodput tx,
                        # no inject record (the retx record covers them).
                        obuf.enqueue(pkt)
                        continue
                if gen is None:
                    return
                pkt, t_next = gen.next_packet(sim.now)
                if pkt is None:
                    if t_next is not None:
                        self._wake_id = sim.schedule_at(t_next, self._on_wake)
                    return
                if tr is not None and not tr.register(pkt):
                    release(pkt)
                    continue  # FAILED flow: discarded at the source
                pkt.t_inject = sim.now
                if self.cc is not None and not (pkt.flags & FLAG_CONTROL):
                    self.cc.on_inject(pkt)
                if self.metrics is not None:
                    self.metrics.record_tx(self.node_id, pkt, sim.now)
                if self.trace is not None:
                    self.trace.inject(sim.now, self.node_id, pkt.dst, pkt.vl, pkt.payload)
                obuf.enqueue(pkt)
        finally:
            self._pulling = False

    def _wake(self) -> None:
        self._wake_id = None
        self.pull()

    def kick(self) -> None:
        """Force the generator to re-evaluate (e.g. after a hotspot move)."""
        if self._wake_id is not None:
            self.sim.cancel(self._wake_id)
            self._wake_id = None
        self.pull()

    # -- receive side -------------------------------------------------
    def on_packet_received(self, pkt: Packet) -> None:
        """Sink completion: transport, metrics, BECN handling, FECN -> CNP."""
        flags = pkt.flags
        tr = self.transport
        if tr is not None and not (flags & FLAG_CONTROL) and not tr.on_data(pkt):
            # Duplicate/out-of-order under the reliable transport:
            # discarded before the sink counts it as goodput.
            release(pkt)
            return
        if self.metrics is not None:
            self.metrics.record_rx(self.node_id, pkt, self.sim.now)
        if self.trace is not None:
            self.trace.rx(
                self.sim.now, self.node_id, pkt.src, pkt.dst, pkt.vl,
                pkt.payload, 1 if flags & FLAG_FECN else 0,
                1 if flags & FLAG_BECN else 0,
                1 if flags & FLAG_CONTROL else 0,
            )
        if tr is not None and flags & FLAG_ACK:
            tr.on_ack(pkt)
            release(pkt)
            return
        # The sink is the end of the packet's life. Capture what the CC
        # reactions below need, then return the object to the pool —
        # kick()/send_cnp() may acquire fresh packets and must never see
        # this one half-dead.
        flow = pkt.flow
        sl = pkt.sl
        src = pkt.src
        becn = flags & FLAG_BECN
        fecn = (flags & FLAG_FECN) and not (flags & FLAG_CONTROL)
        release(pkt)
        if becn:
            self.becns_received += 1
            if self.cc is not None:
                self.cc.on_becn(flow, sl)
                # Throttled flows may now be schedulable at a new time.
                self.kick()
        if fecn and self.cc is not None:
            # BECNs ride acknowledgements in hardware, and ACKs are
            # coalesced: a burst of FECN-marked packets of one flow
            # yields far fewer notifications than marks. We model this
            # by rate-limiting CNPs per source to one per coalescing
            # window, which also damps the CCTI overshoot the raw
            # mark-per-packet feedback would cause (see DESIGN.md §3.7).
            last = self._last_cnp.get(src)
            if last is None or self.sim.now - last >= self.config.cnp_coalesce_ns:
                self._last_cnp[src] = self.sim.now
                self.send_cnp(src)

    def send_cnp(self, dst: int) -> None:
        """Return a BECN-carrying notification packet to ``dst``.

        CNPs bypass generator budgets and CC throttling and jump the
        output queue, per the spec's requirement that notifications be
        returned "as quickly as possible". An installed fault filter
        (:mod:`repro.faults`) may drop, delay, or duplicate the
        notification instead.
        """
        if self.cnp_fault is not None:
            self.cnp_fault.on_cnp(self, dst)
            return
        self._emit_cnp(dst)

    def _emit_cnp(self, dst: int) -> None:
        """Build and expedite the CNP itself (past any fault filter)."""
        pkt = Packet.cnp(self.node_id, dst, vl=self.config.cnp_vl)
        pkt.t_inject = self.sim.now
        self.cnps_sent += 1
        if self.trace is not None:
            self.trace.cnp(self.sim.now, self.node_id, dst)
        self.obuf.enqueue(pkt, front=True)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Hca(id={self.node_id})"
