"""Link degradation (frequency/voltage scaling, faulty cables).

The paper's introduction lists "conducting link frequency/voltage
scaling (lowering the link speed in order to save power)" among the
causes of congestion. A degraded link creates a congestion root *inside
the fabric* — at a switch-to-switch port rather than an HCA-facing one
— which exercises the credit-based root-detection rule without the
Victim Mask: the slow port keeps receiving credits from its healthy
downstream neighbour, so it correctly classifies as a root and marks,
while the ports feeding it starve and stay victims.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.network.ports import LinkConfig


def degrade_link(network, switch_id: int, port: int, factor: float) -> float:
    """Scale one directed link's rate by ``factor`` (0 < factor <= 1).

    Affects the serialization time of everything transmitted by
    ``switch_id``'s output ``port`` from now on (in-flight packets keep
    their old timing). Returns the new rate in Gbit/s.
    """
    if not 0.0 < factor <= 1.0:
        raise ValueError("factor must be in (0, 1]")
    out = network.switches[switch_id].output_ports[port]
    old = out.link
    new_rate = old.rate_gbps * factor
    out.link = LinkConfig(new_rate, old.prop_delay_ns)
    return new_rate


def restore_link(network, switch_id: int, port: int) -> float:
    """Undo :func:`degrade_link`: reset the port to the configured rate.

    Returns the restored rate in Gbit/s. Restoring a never-degraded
    port is a no-op (the configured rate is re-applied). In-flight
    packets keep the timing they started with, mirroring
    :func:`degrade_link`.
    """
    out = network.switches[switch_id].output_ports[port]
    base = network.config.link
    out.link = LinkConfig(base.rate_gbps, out.link.prop_delay_ns)
    return base.rate_gbps


def degrade_uplink_between(network, leaf: int, spine: int, factor: float) -> Tuple[int, int]:
    """Degrade the leaf->spine direction of a folded-Clos uplink.

    Returns the (switch, port) whose link was degraded.
    """
    meta = network.topology.meta
    for key in ("hosts_per_leaf", "n_leaves"):
        if key not in meta:
            raise ValueError("requires a folded-Clos topology")
    hpl = meta["hosts_per_leaf"]
    if not 0 <= leaf < meta["n_leaves"]:
        raise ValueError("leaf out of range")
    port = hpl + spine
    degrade_link(network, leaf, port, factor)
    return (leaf, port)


def degraded_ports(network) -> List[Tuple[int, int, float]]:
    """(switch, port, rate_gbps) of every port slower than the config."""
    base = network.config.link.rate_gbps
    out = []
    for sw in network.switches:
        for idx, port in enumerate(sw.output_ports):
            if port.link.rate_gbps < base:
                out.append((sw.node_id, idx, port.link.rate_gbps))
    return out
