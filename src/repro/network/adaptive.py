"""Adaptive routing baseline.

The paper's introduction discusses adaptive routing (AR) as an
alternative congestion countermeasure and argues it cannot substitute
for CC: "When there is no possible route around an area of congestion
(e.g. end node congestion), trying to reroute around the problem will
only make the branches of the congestion tree spread out and cause more
HOL blocking" — and notes the IB spec does not support AR at all. This
module implements that baseline so the claim can be measured (see
``benchmarks/test_bench_adaptive_routing.py``).

On a folded-Clos fat-tree, any spine reaches any leaf, so the *only*
routing freedom is the leaf's choice of up-port. The
:class:`AdaptiveUpRouter` replaces a leaf switch's d-mod-k up-port
selection with least-loaded selection over live queue state (output
queue bytes + VoQ backlog − available credits). Down-routing and local
delivery stay deterministic, which preserves up*/down* deadlock
freedom.

Note: selection is per packet, so a flow's packets may interleave
across spines. Real IB transports would need per-flow path consistency;
for the throughput questions studied here reordering is irrelevant, and
the paper's argument is about load placement, not ordering.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.network.packet import Packet


class AdaptiveUpRouter:
    """Least-loaded up-port selection for one leaf switch."""

    __slots__ = ("switch", "lft", "up_ports", "_up_set", "adaptive_decisions")

    def __init__(self, switch, lft: Sequence[int], up_ports: Sequence[int]) -> None:
        if not up_ports:
            raise ValueError("need at least one up port")
        self.switch = switch
        self.lft = lft
        self.up_ports = list(up_ports)
        self._up_set = frozenset(up_ports)
        self.adaptive_decisions = 0

    def _load(self, port: int, vl: int) -> float:
        out = self.switch.output_ports[port]
        backlog = out.queue_bytes + self.switch.arbiters[port].queued_bytes[vl]
        # Missing credits indicate downstream pressure on this VL.
        credit_deficit = max(0.0, out.capacity - out.credits[vl])
        return backlog + credit_deficit

    def route(self, pkt: Packet) -> int:
        """Routing decision for ``pkt`` (adaptive on the up stage)."""
        deterministic = self.lft[pkt.dst]
        if deterministic not in self._up_set:
            return deterministic  # local delivery (or a down port)
        vl = pkt.vl
        best = deterministic
        best_load = self._load(deterministic, vl)
        for port in self.up_ports:
            load = self._load(port, vl)
            if load < best_load:
                best, best_load = port, load
        self.adaptive_decisions += 1
        return best


def install_adaptive_routing(network) -> List[AdaptiveUpRouter]:
    """Enable adaptive up-routing on every leaf of a folded-Clos network.

    Requires the topology to carry folded-Clos metadata (built by
    :func:`repro.topology.fattree.folded_clos`). Returns the installed
    routers (one per leaf).
    """
    meta = network.topology.meta
    for key in ("n_leaves", "n_spines", "hosts_per_leaf"):
        if key not in meta:
            raise ValueError(
                "adaptive routing requires a folded-Clos topology "
                f"(missing {key!r} in topology metadata)"
            )
    hpl = meta["hosts_per_leaf"]
    n_spines = meta["n_spines"]
    up_ports = list(range(hpl, hpl + n_spines))
    routers = []
    for leaf in range(meta["n_leaves"]):
        switch = network.switches[leaf]
        router = AdaptiveUpRouter(switch, switch.lft, up_ports)
        switch.router = router
        routers.append(router)
    return routers
