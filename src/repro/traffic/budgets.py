"""Rate-limiting token buckets for generator streams.

Frame I of the paper is precise about generator semantics: after time
``t``, *at most* ``p%`` of ``t x link capacity`` may have gone to the
hotspot and *at most* ``(1-p)%`` to other destinations — the two shares
are budgeted against elapsed time, **not against each other**, and a
stream whose peer is blocked leaves the link idle rather than lending
its share away.

A :class:`TokenBudget` is a classic leaky bucket: tokens accrue at the
stream's rate up to a small burst depth (one message by default).
The *bucket* (rather than an unbounded fluid envelope) matters: the
13.5 Gbit/s injection limit models a PCIe bottleneck, i.e. a physical
instantaneous cap — a node that was backpressured for milliseconds must
not "catch up" at link rate afterwards, it has simply lost that
capacity (its requested share was "t times link capacity", per the
paper, and unsent requests expire with t).
"""

from __future__ import annotations


class TokenBudget:
    """Leaky-bucket rate limiter.

    Parameters
    ----------
    rate_gbps:
        Long-run ceiling of the stream.
    burst_bytes:
        Bucket depth; must cover the largest single charge. Defaults to
        one paper message (4096 B).
    start_ns:
        Virtual time at which the bucket starts full.
    """

    __slots__ = ("rate", "burst", "tokens", "last", "spent")

    def __init__(self, rate_gbps: float, burst_bytes: int = 4096, start_ns: float = 0.0) -> None:
        if rate_gbps < 0:
            raise ValueError("rate must be >= 0")
        if burst_bytes <= 0:
            raise ValueError("burst must be positive")
        self.rate = rate_gbps / 8.0  # bytes per ns
        self.burst = float(burst_bytes)
        self.tokens = float(burst_bytes)
        self.last = start_ns
        self.spent = 0

    @property
    def enabled(self) -> bool:
        return self.rate > 0.0

    def _advance(self, now: float) -> None:
        if now > self.last:
            tokens = self.tokens + self.rate * (now - self.last)
            self.tokens = tokens if tokens < self.burst else self.burst
            self.last = now

    def eligible_time(self, now: float, nbytes: int) -> float:
        """Earliest time a charge of ``nbytes`` is within the budget."""
        if self.rate <= 0.0:
            return float("inf")
        if nbytes > self.burst:
            raise ValueError(
                f"charge of {nbytes} B exceeds bucket depth {self.burst} B"
            )
        self._advance(now)
        if self.tokens >= nbytes:
            return now
        return now + (nbytes - self.tokens) / self.rate

    def charge(self, now: float, nbytes: int) -> None:
        """Consume ``nbytes`` of budget (caller checked eligibility)."""
        self._advance(now)
        self.tokens -= nbytes
        self.spent += nbytes

    def utilization(self, now: float, start_ns: float = 0.0) -> float:
        """Fraction of the stream's long-run ceiling actually used."""
        window = now - start_ns
        if window <= 0 or self.rate <= 0:
            return 0.0
        return self.spent / (self.rate * window)
