"""Traffic sources implementing the paper's Frame I generator.

A :class:`BNodeSource` produces messages of ``msg_packets`` MTU packets
(4096 B total in the paper) from two independently budgeted streams:

* the *hotspot stream* at ``p x inj_rate`` toward the node's current
  hotspot;
* the *uniform stream* at ``(1-p) x inj_rate`` toward uniformly random
  destinations (all nodes except self — including hotspots, per the
  paper).

Eligibility of the next packet of a stream is the later of its fluid
budget time and the CC throttle horizon of its destination flow
(``HcaCC.next_allowed``), so a throttled hotspot stream never blocks
the uniform stream — Frame I's key requirement — while the uniform
stream still cannot exceed its ``(1-p)`` share when the hotspot stream
is held back. When both streams are eligible the choice is random with
probability ``p`` for the hotspot stream, which produces the random
trains of consecutive hotspot messages illustrated in Frame I.

C nodes are ``p = 1``; V nodes are ``p = 0``.
"""

from __future__ import annotations

from typing import Callable, Optional, Tuple

import numpy as np

from repro.network.packet import Packet
from repro.traffic.budgets import TokenBudget

_HS = 0
_UNI = 1


class BNodeSource:
    """Frame-I traffic generator (covers B, C and V node roles)."""

    __slots__ = (
        "node_id",
        "n_nodes",
        "p",
        "rng",
        "mtu",
        "header",
        "msg_packets",
        "sl",
        "hotspot",
        "hca",
        "budgets",
        "_pending_dst",
        "_msg_dst",
        "_msg_remaining",
        "_msg_seq",
        "messages_started",
        "packets_emitted",
    )

    def __init__(
        self,
        node_id: int,
        n_nodes: int,
        p: float,
        rng: np.random.Generator,
        *,
        inj_rate_gbps: float = 13.5,
        mtu: int = 2048,
        header: int = 30,
        msg_packets: int = 2,
        hotspot: Optional[Callable[[], int]] = None,
        sl: int = 0,
        start_ns: float = 0.0,
    ) -> None:
        if not 0.0 <= p <= 1.0:
            raise ValueError("p must be in [0, 1]")
        if n_nodes < 2:
            raise ValueError("need at least two nodes to generate traffic")
        if p > 0.0 and hotspot is None:
            raise ValueError("p > 0 requires a hotspot provider")
        self.node_id = node_id
        self.n_nodes = n_nodes
        self.p = p
        self.rng = rng
        self.mtu = mtu
        self.header = header
        self.msg_packets = msg_packets
        self.sl = sl
        self.hotspot = hotspot
        self.hca = None
        burst = mtu * msg_packets
        self.budgets = (
            TokenBudget(p * inj_rate_gbps, burst, start_ns),
            TokenBudget((1.0 - p) * inj_rate_gbps, burst, start_ns),
        )
        self._pending_dst: list = [None, None]
        self._msg_dst = [0, 0]
        self._msg_remaining = [0, 0]
        self._msg_seq = 0
        self.messages_started = 0
        self.packets_emitted = 0

    def bind(self, hca) -> None:
        """Associate with the HCA whose CC state gates injections."""
        self.hca = hca

    # -- destination selection --------------------------------------------
    def _draw_uniform_dst(self) -> int:
        # Uniform over all nodes except self (paper Frame I).
        d = int(self.rng.integers(self.n_nodes - 1))
        return d if d < self.node_id else d + 1

    def _resolve_dst(self, stream: int) -> Optional[int]:
        """Destination of the stream's next packet, None if unavailable."""
        if self._msg_remaining[stream]:
            return self._msg_dst[stream]
        if stream == _HS:
            hs = self.hotspot()
            # Stale pre-draws after a hotspot move are replaced; a node
            # that momentarily is its own hotspot pauses the stream.
            if hs == self.node_id:
                return None
            self._pending_dst[_HS] = hs
            return hs
        if self._pending_dst[_UNI] is None:
            self._pending_dst[_UNI] = self._draw_uniform_dst()
        return self._pending_dst[_UNI]

    # -- the generator protocol ----------------------------------------
    def next_packet(self, now: float) -> Tuple[Optional[Packet], Optional[float]]:
        """Return (packet eligible now, None) or (None, earliest retry).

        ``(None, None)`` means nothing will become eligible without an
        external kick (e.g. both streams disabled or hotspot == self).
        """
        cc = self.hca.cc if self.hca is not None else None
        tr = self.hca.transport if self.hca is not None else None
        best_t = float("inf")
        ready_hs = ready_uni = False
        t = 0.0
        for stream in (_HS, _UNI):
            budget = self.budgets[stream]
            if not budget.enabled:
                continue
            dst = self._resolve_dst(stream)
            if dst is None:
                continue
            if tr is not None and not tr.can_send(dst):
                # In-flight window full: the stream resumes on the kick
                # the next cumulative ack (or flow failure) delivers.
                continue
            t = budget.eligible_time(now, self.mtu)
            if cc is not None:
                t_cc = cc.next_allowed((self.node_id, dst), self.sl)
                if t_cc > t:
                    t = t_cc
            if t <= now:
                if stream == _HS:
                    ready_hs = True
                else:
                    ready_uni = True
            elif t < best_t:
                best_t = t

        if ready_hs and ready_uni:
            stream = _HS if self.rng.random() < self.p else _UNI
        elif ready_hs:
            stream = _HS
        elif ready_uni:
            stream = _UNI
        else:
            return (None, best_t if best_t != float("inf") else None)
        return (self._emit(stream, now), None)

    def _emit(self, stream: int, now: float) -> Packet:
        if self._msg_remaining[stream] == 0:
            self._msg_dst[stream] = self._pending_dst[stream]
            self._pending_dst[stream] = None
            self._msg_remaining[stream] = self.msg_packets
            self._msg_seq += 1
            self.messages_started += 1
        pkt = Packet.acquire(
            self.node_id,
            self._msg_dst[stream],
            self.mtu,
            header=self.header,
            sl=self.sl,
            msg_id=self._msg_seq,
        )
        self._msg_remaining[stream] -= 1
        self.budgets[stream].charge(now, pkt.payload)
        self.packets_emitted += 1
        return pkt


class FixedRateSource(BNodeSource):
    """A single-destination constant-rate stream (tests and validation).

    Equivalent to a C node whose hotspot never moves.
    """

    def __init__(
        self,
        node_id: int,
        n_nodes: int,
        dst: int,
        rate_gbps: float,
        rng: np.random.Generator,
        **kwargs,
    ) -> None:
        if dst == node_id:
            raise ValueError("destination must differ from source")
        super().__init__(
            node_id,
            n_nodes,
            1.0,
            rng,
            inj_rate_gbps=rate_gbps,
            hotspot=lambda: dst,
            **kwargs,
        )
