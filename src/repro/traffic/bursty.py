"""Bursty (on/off) traffic.

"Network burstiness" is one of the congestion causes the paper's
introduction lists. :class:`BurstySource` wraps the Frame-I generator
with an on/off modulation: exponentially distributed burst and idle
periods, with the configured rates applying *within* a burst. Long-run
offered load is ``duty x inj_rate``; the instantaneous load during a
burst is the full injection rate — exactly the short-lived congestion
trees the paper's "diverse and stormy forest" discussion mentions.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.network.packet import Packet
from repro.traffic.generators import BNodeSource


class BurstySource(BNodeSource):
    """A B-node generator gated by an on/off (burst/idle) process.

    Parameters
    ----------
    burst_ns / idle_ns:
        Mean burst and idle durations (exponentially distributed).
    Everything else as :class:`BNodeSource`.
    """

    __slots__ = ("burst_ns", "idle_ns", "_phase_end", "_in_burst", "bursts")

    def __init__(
        self,
        node_id: int,
        n_nodes: int,
        p: float,
        rng: np.random.Generator,
        *,
        burst_ns: float = 100_000.0,
        idle_ns: float = 100_000.0,
        **kwargs,
    ) -> None:
        if burst_ns <= 0 or idle_ns <= 0:
            raise ValueError("burst and idle means must be positive")
        super().__init__(node_id, n_nodes, p, rng, **kwargs)
        self.burst_ns = burst_ns
        self.idle_ns = idle_ns
        self._in_burst = True
        self._phase_end = float(rng.exponential(burst_ns))
        self.bursts = 1

    def _advance_phase(self, now: float) -> None:
        while now >= self._phase_end:
            if self._in_burst:
                self._in_burst = False
                self._phase_end += float(self.rng.exponential(self.idle_ns))
            else:
                self._in_burst = True
                self.bursts += 1
                self._phase_end += float(self.rng.exponential(self.burst_ns))

    def next_packet(self, now: float) -> Tuple[Optional[Packet], Optional[float]]:
        self._advance_phase(now)
        if not self._in_burst:
            return (None, self._phase_end)
        pkt, t_next = super().next_packet(now)
        if pkt is not None:
            return (pkt, None)
        if t_next is None:
            return (None, None)
        # Clamp the retry inside the current burst; if the budget frees
        # only after the burst ends, the next opportunity is the next
        # burst (handled by _advance_phase on the retry).
        return (None, t_next)
