"""Hotspot targets, static and moving.

Contributors are divided into subsets; each subset sends to its own
hotspot (section III of the paper: "If C is divided into subsets
C1..Cn where each subset sends to a different hotspot, the
corresponding network will grow a forest of ... congestion trees").

For section V-C, hotspots *move*: every ``lifetime_ns`` each subset's
hotspot is redrawn, and every attached generator is kicked so pending
wake-ups are re-evaluated immediately ("the B node changes the address
of the hotspot at each new timeslot").
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np


class HotspotSchedule:
    """Current hotspot per subset, with optional periodic relocation.

    Parameters
    ----------
    initial:
        One hotspot node id per subset.
    lifetime_ns:
        None for permanent hotspots; otherwise the hotspot lifetime
        (10 ms ... 1 ms in the paper's figure 9/10 sweeps).
    candidates:
        Node ids hotspots may move to (defaults to all nodes seen).
    rng:
        Generator used for redraws (required when moving).
    """

    __slots__ = (
        "current_targets",
        "lifetime_ns",
        "candidates",
        "rng",
        "moves",
        "_sim",
        "_hcas",
    )

    def __init__(
        self,
        initial: Sequence[int],
        *,
        lifetime_ns: Optional[float] = None,
        candidates: Optional[Sequence[int]] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        if not initial:
            raise ValueError("need at least one hotspot subset")
        if lifetime_ns is not None:
            if lifetime_ns <= 0:
                raise ValueError("lifetime must be positive")
            if rng is None:
                raise ValueError("moving hotspots need an rng")
        self.current_targets: List[int] = list(initial)
        self.lifetime_ns = lifetime_ns
        self.candidates = list(candidates) if candidates is not None else None
        self.rng = rng
        self.moves = 0
        self._sim = None
        self._hcas = None

    @property
    def n_subsets(self) -> int:
        return len(self.current_targets)

    def target(self, subset: int) -> int:
        """The subset's current hotspot node."""
        return self.current_targets[subset]

    # -- moving ----------------------------------------------------------
    def install(self, sim, hcas) -> None:
        """Arm the relocation timer on ``sim``; kick ``hcas`` per move."""
        self._sim = sim
        self._hcas = hcas
        if self.lifetime_ns is not None:
            sim.schedule(self.lifetime_ns, self._move)

    def _move(self) -> None:
        pool = self.candidates
        if pool is None:
            raise RuntimeError("moving schedule installed without candidates")
        rng = self.rng
        taken = set()
        for subset in range(len(self.current_targets)):
            # Redraw, avoiding collisions between subsets so the forest
            # keeps one distinct root per subset (as in the paper).
            for _ in range(64):
                new = int(pool[int(rng.integers(len(pool)))])
                if new not in taken and new != self.current_targets[subset]:
                    break
            taken.add(new)
            self.current_targets[subset] = new
        self.moves += 1
        for hca in self._hcas:
            hca.kick()
        self._sim.schedule(self.lifetime_ns, self._move)

    @classmethod
    def choose_initial(
        cls,
        n_subsets: int,
        n_nodes: int,
        rng: np.random.Generator,
        *,
        lifetime_ns: Optional[float] = None,
    ) -> "HotspotSchedule":
        """Random distinct initial hotspots over all nodes."""
        if n_subsets > n_nodes:
            raise ValueError("more hotspot subsets than nodes")
        initial = rng.choice(n_nodes, size=n_subsets, replace=False)
        return cls(
            [int(h) for h in initial],
            lifetime_ns=lifetime_ns,
            candidates=list(range(n_nodes)),
            rng=rng,
        )
