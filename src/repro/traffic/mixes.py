"""Node-role assignment for the paper's scenarios.

The windy-forest experiments (section V-B) use a mix parameterized by
``x`` — the fraction of B nodes — with the remaining ``1 - x`` of the
nodes split 80 % C / 20 % V ("as before"). Contributors (B and C) are
evenly divided over the hotspot subsets. A contributor is never
assigned the subset whose hotspot is itself (it cannot send to
itself); such collisions are rotated to the next subset.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np


@dataclass
class NodeMix:
    """Roles and subset assignment for every node."""

    n_nodes: int
    roles: Dict[int, str]  # node -> "B" | "C" | "V"
    subset_of: Dict[int, int] = field(default_factory=dict)  # contributors only
    n_subsets: int = 0

    def nodes_with_role(self, role: str) -> List[int]:
        """All node ids holding the given role."""
        return [n for n in range(self.n_nodes) if self.roles[n] == role]

    @property
    def b_nodes(self) -> List[int]:
        return self.nodes_with_role("B")

    @property
    def c_nodes(self) -> List[int]:
        return self.nodes_with_role("C")

    @property
    def v_nodes(self) -> List[int]:
        return self.nodes_with_role("V")

    def validate_against(self, hotspots: List[int]) -> None:
        """No contributor may target itself."""
        for node, subset in self.subset_of.items():
            if hotspots[subset] == node:
                raise ValueError(f"node {node} is its own hotspot (subset {subset})")


def assign_roles(
    n_nodes: int,
    *,
    b_fraction: float,
    n_subsets: int,
    hotspots: List[int],
    rng: np.random.Generator,
    c_fraction_of_rest: float = 0.8,
) -> NodeMix:
    """Build the paper's node mix.

    ``b_fraction`` of nodes become B nodes; of the rest,
    ``c_fraction_of_rest`` become C and the remainder V. All roles are
    assigned to randomly permuted node ids (the paper randomly
    distributes the V nodes in the topology). Contributors are dealt
    round-robin over subsets, skipping a subset whose hotspot is the
    node itself.
    """
    if not 0.0 <= b_fraction <= 1.0:
        raise ValueError("b_fraction must be in [0, 1]")
    if not 0.0 <= c_fraction_of_rest <= 1.0:
        raise ValueError("c_fraction_of_rest must be in [0, 1]")
    if len(hotspots) != n_subsets:
        raise ValueError("need exactly one hotspot per subset")
    if n_subsets <= 0:
        raise ValueError("need at least one subset")

    perm = [int(v) for v in rng.permutation(n_nodes)]
    n_b = round(b_fraction * n_nodes)
    n_c = round(c_fraction_of_rest * (n_nodes - n_b))
    roles: Dict[int, str] = {}
    for i, node in enumerate(perm):
        if i < n_b:
            roles[node] = "B"
        elif i < n_b + n_c:
            roles[node] = "C"
        else:
            roles[node] = "V"

    subset_of: Dict[int, int] = {}
    next_subset = 0
    for node in perm:
        if roles[node] == "V":
            continue
        subset = next_subset
        if hotspots[subset] == node:
            subset = (subset + 1) % n_subsets
            if hotspots[subset] == node:  # single-subset degenerate case
                raise ValueError(
                    f"cannot assign node {node}: it is the only hotspot"
                )
        subset_of[node] = subset
        next_subset = (next_subset + 1) % n_subsets

    mix = NodeMix(n_nodes=n_nodes, roles=roles, subset_of=subset_of, n_subsets=n_subsets)
    mix.validate_against(hotspots)
    return mix
