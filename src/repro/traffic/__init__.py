"""Traffic generation: the paper's C, V and B nodes.

Section III of the paper defines three node roles:

* **C nodes** — pure contributors: all traffic to a designated hotspot;
* **V nodes** — potential victims: uniform destinations only;
* **B nodes** — send fraction *p* of their traffic to their hotspot and
  *1 − p* uniformly, with the two shares accounted against simulation
  time *independently* (Frame I) so neither stream can starve or
  HOL-block the other inside the generator.

All three are one generator class, :class:`BNodeSource`, at p = 1,
p = 0 and 0 < p < 1 respectively. Hotspot targets come from a
:class:`HotspotSchedule`, which also implements the moving hotspots of
section V-C.
"""

from repro.traffic.budgets import TokenBudget
from repro.traffic.generators import BNodeSource, FixedRateSource
from repro.traffic.bursty import BurstySource
from repro.traffic.hotspots import HotspotSchedule
from repro.traffic.mixes import NodeMix, assign_roles

__all__ = [
    "TokenBudget",
    "BNodeSource",
    "FixedRateSource",
    "BurstySource",
    "HotspotSchedule",
    "NodeMix",
    "assign_roles",
]
