"""Live progress and telemetry for a campaign run.

The reporter accumulates per-cell telemetry (done counts, cache hits,
retries, failures, simulated worker wall-time) as the executor feeds it
events, estimates time-to-completion from the observed per-cell cost
and the pool width, and renders a one-line status suitable for a
terminal. It is deliberately stream-agnostic: pass ``stream=sys.stderr``
for live text, leave it None to collect telemetry silently (the JSON
run manifest is built from the same counters).
"""

from __future__ import annotations

import time
from typing import Callable, Dict, Optional, TextIO


class ProgressReporter:
    """Counts campaign events and renders/streams a status line."""

    def __init__(
        self,
        stream: Optional[TextIO] = None,
        *,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.stream = stream
        self._clock = clock
        self.total = 0
        self.jobs = 1
        self.done = 0
        self.ok = 0
        self.cached = 0
        self.failed = 0
        self.failed_kinds: Dict[str, int] = {}
        self.interrupted = 0
        self.retries = 0
        self.worker_restarts = 0
        self.worker_seconds = 0.0
        self._started: Optional[float] = None
        self._finished: Optional[float] = None

    # -- events fed by the executor ------------------------------------

    def start(self, total: int, jobs: int = 1) -> None:
        """Begin a campaign of ``total`` cells on a pool of ``jobs``."""
        self.total = total
        self.jobs = max(1, jobs)
        self._started = self._clock()

    def on_retry(self, index: int, attempt: int, error: str) -> None:
        """A cell attempt failed and will be retried."""
        self.retries += 1
        self._emit(f"cell {index} attempt {attempt} failed ({error}); retrying")

    def on_worker_restart(self, worker_id: int, line: str) -> None:
        """The supervisor killed or lost a worker and is replacing it."""
        self.worker_restarts += 1
        self._emit(line)

    def on_outcome(self, outcome) -> None:
        """A cell reached a terminal state (ok / cached / failed / interrupted)."""
        self.done += 1
        status = outcome.status
        if status == "cached":
            self.cached += 1
        elif status == "failed":
            self.failed += 1
            kind = getattr(outcome, "error_kind", None) or "unknown"
            self.failed_kinds[kind] = self.failed_kinds.get(kind, 0) + 1
        elif status == "interrupted":
            self.interrupted += 1
        else:
            self.ok += 1
        self.worker_seconds += outcome.wall_seconds
        self._emit(self.render())

    def note(self, line: str) -> None:
        """Emit a free-form status line (interrupt drain, resume info)."""
        self._emit(line)

    def finish(self) -> None:
        self._finished = self._clock()
        self._emit(self.render())

    # -- derived telemetry ---------------------------------------------

    def elapsed_seconds(self) -> float:
        """Wall time since :meth:`start` (frozen once finished)."""
        if self._started is None:
            return 0.0
        end = self._finished if self._finished is not None else self._clock()
        return end - self._started

    def eta_seconds(self) -> Optional[float]:
        """Estimated seconds to completion, from observed cell cost.

        Cached cells are ~free, so the estimate uses the average wall
        time of *simulated* cells divided by the pool width. None until
        at least one cell has been simulated.
        """
        simulated = self.ok + self.failed
        remaining = self.total - self.done
        if simulated == 0 or remaining <= 0:
            return 0.0 if remaining <= 0 else None
        per_cell = self.worker_seconds / simulated
        return per_cell * remaining / self.jobs

    def render(self) -> str:
        """One status line: counts, hit/retry telemetry, and the ETA."""
        parts = [f"cells {self.done}/{self.total}"]
        if self.cached:
            parts.append(f"{self.cached} cached")
        if self.retries:
            parts.append(f"{self.retries} retries")
        if self.failed:
            kinds = ",".join(
                f"{kind}:{count}"
                for kind, count in sorted(
                    self.failed_kinds.items(), key=lambda kv: (-kv[1], kv[0])
                )
            )
            parts.append(
                f"{self.failed} failed ({kinds})" if kinds else f"{self.failed} failed"
            )
        if self.worker_restarts:
            parts.append(f"{self.worker_restarts} worker restarts")
        if self.interrupted:
            parts.append(f"{self.interrupted} interrupted")
        parts.append(f"worker {self.worker_seconds:.1f}s")
        eta = self.eta_seconds()
        if self.done >= self.total:
            parts.append(f"done in {self.elapsed_seconds():.1f}s")
        elif eta is not None:
            parts.append(f"ETA {eta:.0f}s")
        return " · ".join(parts)

    def _emit(self, line: str) -> None:
        if self.stream is not None:
            print(line, file=self.stream, flush=True)
