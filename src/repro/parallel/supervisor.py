"""Supervised persistent-worker runtime for campaign fan-out.

The executor in :mod:`repro.parallel.pool` used to rent a
``ProcessPoolExecutor`` per campaign; this module replaces it with a
runtime the campaign *owns*:

* **persistent workers** — each worker process executes many cells over
  a ``multiprocessing`` pipe, so a campaign pays process start-up once
  per worker instead of once per pool recycle, and ``jobs=N`` can
  actually approach ``N``-fold speedup on a wide matrix;
* **heartbeats + liveness deadlines** — every worker runs a heartbeat
  thread; a worker that stops beating while its process is still alive
  (wedged in a C extension, livelocked) is killed and replaced instead
  of hanging the campaign;
* **crash isolation** — a worker that dies hard (SIGKILL, segfault,
  kernel OOM-kill) loses only its own in-flight cell; the supervisor
  restarts *that one worker* and retries *that one cell* while every
  other worker keeps executing;
* **poisoned-cell circuit breaker** — a cell that kills
  ``poison_threshold`` workers is quarantined as a structured
  ``failed`` record with ``error_kind="poisoned"`` instead of looping
  through restarts or aborting the campaign;
* **resource budgets** — per-cell wall clock is enforced by the
  supervisor (``error_kind="timeout"``); RSS is enforced inside the
  worker via ``resource.setrlimit(RLIMIT_AS)`` so a runaway allocation
  fails with ``MemoryError`` (``error_kind="oom"``) while the worker
  survives;
* **graceful drain** — on ``KeyboardInterrupt`` (the executor maps
  SIGTERM onto it too) queued cells are cancelled and executing cells
  drain to completion, exactly like the historical Ctrl-C path.

The wire protocol is deliberately tiny. Supervisor → worker::

    ("run", seq, config)     execute one cell
    ("stop",)                exit the worker loop

Worker → supervisor::

    ("ready",)                        the worker loop is up
    ("hb",)                           heartbeat (every ``heartbeat_s``)
    ("done", seq, "ok", result, wall) cell finished
    ("done", seq, kind, error, wall)  cell raised; *kind* is a taxonomy
                                      error kind (oom/config/sim)

Everything else — crash, stall, timeout, poison — is inferred by the
supervisor from process sentinels and deadlines, because a dead or
wedged worker by definition cannot report its own failure.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import threading
import time
from multiprocessing import connection as mp_connection
from typing import Any, Callable, Deque, Dict, List, Optional

from repro.parallel.errors import (
    ERR_CRASH,
    ERR_POISONED,
    ERR_TIMEOUT,
    NO_RETRY_KINDS,
    classify_exception,
    format_error,
)
from repro.parallel.retry import RetryPolicy

#: Default seconds between worker heartbeats.
DEFAULT_HEARTBEAT_S = 0.25

#: Default worker kills a single cell may cause before quarantine.
DEFAULT_POISON_THRESHOLD = 2


def _mp_context():
    """``fork`` where available (cheap start, no re-import), else spawn."""
    if "fork" in multiprocessing.get_all_start_methods():
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context("spawn")


def _apply_rss_budget(max_rss_mb: Optional[float]) -> None:
    """Cap the worker's address space; a breach raises ``MemoryError``.

    ``RLIMIT_AS`` is the only portable way to make Python allocations
    fail softly instead of inviting the kernel OOM killer. On platforms
    without ``resource`` (or where the limit cannot be lowered) the
    budget silently degrades to wall-clock-only enforcement — the
    supervisor still bounds the cell, just less precisely.
    """
    if max_rss_mb is None:
        return
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX
        return
    limit = int(max_rss_mb * 1024 * 1024)
    try:
        soft, hard = resource.getrlimit(resource.RLIMIT_AS)
        if hard != resource.RLIM_INFINITY:
            limit = min(limit, hard)
        resource.setrlimit(resource.RLIMIT_AS, (limit, limit))
    except (ValueError, OSError):  # pragma: no cover - exotic rlimit state
        return


def worker_main(
    conn,
    fn: Callable[[Any], Any],
    heartbeat_s: float,
    max_rss_mb: Optional[float],
) -> None:
    """The persistent worker loop (runs in the child process).

    Public so spawn-method platforms can pickle it by qualified name.
    SIGINT is ignored (a terminal Ctrl-C hits the whole process group;
    draining is the supervisor's decision), SIGTERM is reset to the
    default so supervisor shutdown terminates promptly.
    """
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    signal.signal(signal.SIGTERM, signal.SIG_DFL)
    _apply_rss_budget(max_rss_mb)

    send_lock = threading.Lock()
    stop_beating = threading.Event()

    def send(msg) -> bool:
        try:
            with send_lock:
                conn.send(msg)
            return True
        except (OSError, ValueError):
            # The supervisor went away (or the payload cannot cross the
            # pipe); the caller decides whether that is fatal.
            return False

    def beat() -> None:
        while not stop_beating.wait(heartbeat_s):
            if not send(("hb",)):
                return

    heartbeat = threading.Thread(target=beat, name="heartbeat", daemon=True)
    heartbeat.start()
    send(("ready",))

    try:
        while True:
            try:
                msg = conn.recv()
            except (EOFError, OSError):
                break  # supervisor died; no point outliving it
            if msg[0] == "stop":
                break
            _, seq, cfg = msg
            started = time.perf_counter()
            try:
                result = fn(cfg)
            except KeyboardInterrupt:  # SIG_IGN should prevent this
                break
            except BaseException as exc:
                wall = time.perf_counter() - started
                reply = ("done", seq, classify_exception(exc),
                         format_error(exc), wall)
            else:
                wall = time.perf_counter() - started
                reply = ("done", seq, "ok", result, wall)
            if not send(reply):
                if reply[2] == "ok":
                    # The result itself may be unpicklable/oversized —
                    # degrade to a structured sim error rather than
                    # dying with an opaque pipe failure.
                    if not send(("done", seq, "sim",
                                 "result could not be sent to the "
                                 "supervisor (unpicklable or pipe closed)",
                                 reply[4])):
                        break
                else:
                    break
    finally:
        stop_beating.set()


class _WorkerHandle:
    """Supervisor-side state of one worker process."""

    __slots__ = (
        "id", "proc", "conn", "job", "dispatched_at", "last_seen",
        "expected_death", "cells_done",
    )

    def __init__(self, worker_id: int, proc, conn) -> None:
        self.id = worker_id
        self.proc = proc
        self.conn = conn
        self.job = None
        self.dispatched_at = 0.0
        self.last_seen = time.monotonic()
        #: True when the supervisor itself killed this worker (timeout /
        #: stall / abort) and has already accounted for its in-flight
        #: cell — the sentinel firing later must not double-count.
        self.expected_death = False
        self.cells_done = 0


class Supervisor:
    """Owns the worker fleet and runs one campaign's pending cells.

    The four ``record_*``/``reporter`` callables are the same closures
    :func:`repro.parallel.pool.run_campaign` hands its serial path, so
    outcomes, manifest checkpoints and progress telemetry are identical
    regardless of the execution backend.
    """

    def __init__(
        self,
        fn: Callable[[Any], Any],
        *,
        workers: int,
        retry: RetryPolicy,
        reporter,
        record_ok,
        record_failed,
        record_interrupted,
        timeout_s: Optional[float] = None,
        max_rss_mb: Optional[float] = None,
        heartbeat_s: float = DEFAULT_HEARTBEAT_S,
        poison_threshold: int = DEFAULT_POISON_THRESHOLD,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if poison_threshold < 1:
            raise ValueError("poison_threshold must be >= 1")
        self.fn = fn
        self.n_workers = workers
        self.retry = retry
        self.reporter = reporter
        self.record_ok = record_ok
        self.record_failed = record_failed
        self.record_interrupted = record_interrupted
        self.timeout_s = timeout_s
        self.max_rss_mb = max_rss_mb
        self.heartbeat_s = heartbeat_s
        #: No heartbeat for this long while the process is alive ⇒ the
        #: worker is wedged and gets killed. Generous: heartbeats come
        #: from a daemon thread that only needs an occasional GIL slice.
        self.liveness_s = max(5.0, heartbeat_s * 40)
        self.poison_threshold = poison_threshold

        self._ctx = _mp_context()
        self._workers: List[_WorkerHandle] = []
        self._queue: Deque = None  # type: ignore[assignment]
        self._kills: Dict[str, int] = {}  # cell key -> workers it killed
        self._next_worker_id = 0
        self._next_seq = 0
        self._draining = False
        self.worker_restarts = 0  # campaign-total replacement spawns

    # -- fleet management ----------------------------------------------

    def _spawn(self) -> _WorkerHandle:
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        worker_id = self._next_worker_id
        self._next_worker_id += 1
        proc = self._ctx.Process(
            target=worker_main,
            args=(child_conn, self.fn, self.heartbeat_s, self.max_rss_mb),
            name=f"repro-worker-{worker_id}",
            daemon=True,
        )
        proc.start()
        child_conn.close()
        handle = _WorkerHandle(worker_id, proc, parent_conn)
        self._workers.append(handle)
        return handle

    def _kill(self, worker: _WorkerHandle) -> None:
        """Hard-stop a worker the supervisor has given up on."""
        worker.expected_death = True
        try:
            worker.proc.kill()
        except (OSError, ValueError):
            return  # already gone

    def _discard(self, worker: _WorkerHandle) -> None:
        if worker in self._workers:
            self._workers.remove(worker)
        try:
            worker.conn.close()
        except OSError:
            return

    def _want_respawn(self) -> bool:
        if self._draining:
            return False
        live = len(self._workers)
        outstanding = len(self._queue) + self._busy()
        return live < self.n_workers and outstanding > live

    def _busy(self) -> int:
        return sum(1 for w in self._workers if w.job is not None)

    # -- failure accounting --------------------------------------------

    def _attempt_failed(self, job, kind: str, error: str, wall: float) -> None:
        job.attempts += 1
        if (
            self._draining
            or kind in NO_RETRY_KINDS
            or not self.retry.should_retry(job.attempts)
        ):
            self.record_failed(job, error, wall, error_kind=kind)
        else:
            self.reporter.on_retry(job.index, job.attempts, error)
            job.not_before = time.monotonic() + self.retry.delay_s(job.attempts)
            self._queue.append(job)

    def _cell_killed_worker(self, job, why: str, wall: float) -> None:
        """A worker died (or stalled) with ``job`` in flight."""
        kills = self._kills.get(job.key, 0) + 1
        self._kills[job.key] = kills
        job.worker_restarts += 1
        if kills >= self.poison_threshold:
            job.attempts += 1
            self.reporter.note(
                f"supervisor: cell {job.index} ({job.key}) killed "
                f"{kills} worker(s); quarantining as poisoned"
            )
            self.record_failed(
                job,
                f"poisoned: cell killed {kills} worker(s); last: {why}",
                wall,
                error_kind=ERR_POISONED,
            )
        else:
            self._attempt_failed(job, ERR_CRASH, why, wall)

    def _handle_death(self, worker: _WorkerHandle) -> None:
        self._discard(worker)
        worker.proc.join(timeout=0.2)
        exitcode = worker.proc.exitcode
        job, worker.job = worker.job, None
        if not worker.expected_death:
            self.worker_restarts += 1
            self.reporter.on_worker_restart(
                worker.id,
                f"worker {worker.id} died (exit {exitcode}) "
                + (f"executing cell {job.index}" if job is not None else "idle"),
            )
            if job is not None:
                wall = time.monotonic() - worker.dispatched_at
                self._cell_killed_worker(
                    job, f"worker died abruptly (exit {exitcode})", wall
                )
        if self._want_respawn():
            self._spawn()

    # -- dispatch / polling --------------------------------------------

    def _dispatch(self, now: float) -> None:
        if self._draining:
            return
        idle = [w for w in self._workers if w.job is None]
        for worker in idle:
            job = self._next_eligible(now)
            if job is None:
                return
            self._next_seq += 1
            job.seq = self._next_seq
            try:
                worker.conn.send(("run", job.seq, job.config))
            except (OSError, ValueError):
                # Dying worker: put the cell back; the sentinel path
                # will account for the corpse and respawn.
                self._queue.appendleft(job)
                continue
            worker.job = job
            worker.dispatched_at = now
            job.started = now

    def _next_eligible(self, now: float):
        """Next queued job not still backing off (rotates the rest)."""
        for _ in range(len(self._queue)):
            job = self._queue.popleft()
            if job.not_before > now:
                self._queue.append(job)
                continue
            return job
        return None

    def _poll_timeout(self, now: float) -> float:
        deadline = now + 0.25
        if self.timeout_s is not None:
            for w in self._workers:
                if w.job is not None:
                    deadline = min(deadline, w.dispatched_at + self.timeout_s)
        if self._queue and not self._busy():
            backoff_wake = min(j.not_before for j in self._queue)
            deadline = min(deadline, backoff_wake)
        return max(0.01, deadline - now)

    def _poll(self, timeout: float) -> None:
        """Wait for worker messages or deaths and handle them."""
        by_obj = {}
        for w in self._workers:
            by_obj[w.conn] = w
            by_obj[w.proc.sentinel] = w
        if not by_obj:
            time.sleep(min(timeout, 0.05))
            return
        ready = mp_connection.wait(list(by_obj), timeout=timeout)
        dead: List[_WorkerHandle] = []
        for obj in ready:
            worker = by_obj[obj]
            if obj is worker.conn:
                if not self._drain_messages(worker) and worker not in dead:
                    dead.append(worker)
            elif worker not in dead:
                # Sentinel fired: pull any final messages first so a
                # completed result is never misread as a crash.
                self._drain_messages(worker)
                dead.append(worker)
        for worker in dead:
            if worker in self._workers:
                self._handle_death(worker)

    def _drain_messages(self, worker: _WorkerHandle) -> bool:
        """Handle every buffered message; False when the pipe hit EOF."""
        while True:
            try:
                if not worker.conn.poll():
                    return True
                msg = worker.conn.recv()
            except (EOFError, OSError):
                return False
            tag = msg[0]
            worker.last_seen = time.monotonic()
            if tag in ("hb", "ready"):
                continue
            if tag != "done":
                continue
            _, seq, kind, payload, wall = msg
            job = worker.job
            if job is None or job.seq != seq:
                continue  # stale reply from a cell already accounted for
            worker.job = None
            worker.cells_done += 1
            if kind == "ok":
                self.record_ok(job, payload, wall)
            else:
                self._attempt_failed(job, kind, payload, wall)

    def _enforce_deadlines(self) -> None:
        now = time.monotonic()
        for worker in list(self._workers):
            job = worker.job
            if job is not None and self.timeout_s is not None:
                running_for = now - worker.dispatched_at
                if running_for > self.timeout_s:
                    worker.job = None
                    job.worker_restarts += 1
                    self.worker_restarts += 1
                    self.reporter.on_worker_restart(
                        worker.id,
                        f"worker {worker.id} preempted: cell {job.index} "
                        f"exceeded its {self.timeout_s}s budget",
                    )
                    self._kill(worker)
                    self._discard(worker)
                    self._attempt_failed(
                        job, ERR_TIMEOUT,
                        f"TimeoutError: cell exceeded {self.timeout_s}s",
                        running_for,
                    )
                    if self._want_respawn():
                        self._spawn()
                    continue
            if now - worker.last_seen > self.liveness_s and worker.proc.is_alive():
                worker.job = None
                self.worker_restarts += 1
                self.reporter.on_worker_restart(
                    worker.id,
                    f"worker {worker.id} stalled: no heartbeat for "
                    f"{now - worker.last_seen:.1f}s",
                )
                self._kill(worker)
                self._discard(worker)
                if job is not None:
                    wall = now - worker.dispatched_at
                    self._cell_killed_worker(
                        job,
                        f"worker stalled (no heartbeat for "
                        f"{now - worker.last_seen:.1f}s)",
                        wall,
                    )
                if self._want_respawn():
                    self._spawn()

    # -- the run -------------------------------------------------------

    def run(self, pending: Deque) -> None:
        """Execute every pending cell; returns when all are terminal.

        Raises ``KeyboardInterrupt`` after a graceful drain when the
        campaign is interrupted, mirroring the serial path's contract.
        """
        self._queue = pending
        for _ in range(min(self.n_workers, len(pending))):
            self._spawn()
        try:
            try:
                self._loop()
            except KeyboardInterrupt:
                self._drain_interrupted()
                raise
        finally:
            self._shutdown()

    def _loop(self) -> None:
        while self._queue or self._busy():
            now = time.monotonic()
            if not self._workers and (self._queue or self._busy()):
                self._spawn()
            self._dispatch(now)
            self._poll(self._poll_timeout(now))
            self._enforce_deadlines()

    def _drain_interrupted(self) -> None:
        """First Ctrl-C/SIGTERM: cancel the queue, drain executing cells."""
        self._draining = True
        self.reporter.note(
            f"interrupt: cancelling {len(self._queue)} queued cell(s), "
            f"draining {self._busy()} executing cell(s) — "
            "Ctrl-C again to abort"
        )
        try:
            while self._busy():
                self._poll(0.2)
                self._enforce_deadlines()
        except KeyboardInterrupt:
            now = time.monotonic()
            for worker in list(self._workers):
                job, worker.job = worker.job, None
                if job is not None:
                    self.record_interrupted(
                        job, "interrupted while executing",
                        now - worker.dispatched_at,
                    )
                    self._kill(worker)
        for job in self._queue:
            self.record_interrupted(job, "interrupted before start")
        self._queue.clear()

    def _shutdown(self) -> None:
        for worker in self._workers:
            try:
                worker.conn.send(("stop",))
            except (OSError, ValueError):
                continue
        deadline = time.monotonic() + 2.0
        for worker in self._workers:
            worker.proc.join(timeout=max(0.0, deadline - time.monotonic()))
            if worker.proc.is_alive():
                self._kill(worker)
                worker.proc.join(timeout=1.0)
            try:
                worker.conn.close()
            except OSError:
                continue
        self._workers.clear()


def run_supervised(
    pending: Deque,
    fn: Callable[[Any], Any],
    retry: RetryPolicy,
    workers: int,
    timeout_s: Optional[float],
    max_rss_mb: Optional[float],
    reporter,
    record_ok,
    record_failed,
    record_interrupted,
    *,
    heartbeat_s: float = DEFAULT_HEARTBEAT_S,
    poison_threshold: int = DEFAULT_POISON_THRESHOLD,
) -> Supervisor:
    """Run ``pending`` cells on a supervised worker fleet.

    Returns the supervisor (its ``worker_restarts`` feeds the manifest).
    """
    supervisor = Supervisor(
        fn,
        workers=workers,
        retry=retry,
        reporter=reporter,
        record_ok=record_ok,
        record_failed=record_failed,
        record_interrupted=record_interrupted,
        timeout_s=timeout_s,
        max_rss_mb=max_rss_mb,
        heartbeat_s=heartbeat_s,
        poison_threshold=poison_threshold,
    )
    supervisor.run(pending)
    return supervisor


# ``os`` is used by workers forked from us only through the signal
# module; keep the import explicit for spawn-method pickling contexts.
_ = os
