"""JSON run manifest: the durable record of one campaign execution.

Where :mod:`repro.parallel.progress` is the live view, the manifest is
what survives the run: one record per cell (config key, terminal
status, attempts, wall time, error text for failures) plus campaign
totals. A resumed campaign can diff its grid against a manifest, and a
failed cell surfaces here as data instead of crashing the whole run.

The executor flushes the manifest incrementally (atomically, via a
temp file + ``os.replace``) as cells complete, so a killed campaign
leaves a valid, resumable manifest: ``complete`` is False, interrupted
cells carry status ``"interrupted"``, and
``run_campaign(resume_from=path)`` picks up where the run stopped.
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional, Set


@dataclass
class CellRecord:
    """Terminal state of one cell, as written to the manifest."""

    index: int
    key: str
    name: str
    status: str  # "ok" | "cached" | "failed" | "interrupted"
    attempts: int
    wall_seconds: float
    error: Optional[str] = None
    # Structured failure taxonomy (repro.parallel.errors) — set for
    # status == "failed". Manifests written before the taxonomy existed
    # load as "unknown".
    error_kind: Optional[str] = None
    # Worker processes this cell killed or had preempted while it was
    # in flight (crash / stall / timeout kills attributed to the cell).
    worker_restarts: int = 0
    # Trace digest of the cell's run, when it was executed with tracing
    # (repro.trace) — the event-level equivalence token across jobs=1
    # and jobs=N executions of the same campaign.
    digest: Optional[str] = None
    # Permanently FAILED transport flows, when the cell ran on the
    # reliable transport (repro.transport); None when transport was off.
    failed_flows: Optional[int] = None
    # Which congestion-control mechanism the cell ran ("off" when
    # cc=False); None only for manifests written before repro.cc.
    cc_mechanism: Optional[str] = None


@dataclass
class RunManifest:
    """Campaign totals plus the per-cell records."""

    jobs: int = 1
    total_cells: int = 0
    ok: int = 0
    cache_hits: int = 0
    failures: int = 0
    interrupted: int = 0
    retries: int = 0
    # Total worker processes the supervisor restarted during the
    # campaign (crashes, stalls, timeout preemptions).
    worker_restarts: int = 0
    worker_seconds: float = 0.0
    elapsed_seconds: float = 0.0
    # False while the campaign is still running (checkpoint flushes)
    # or when it was interrupted; True only for a finished campaign.
    complete: bool = True
    cells: List[CellRecord] = field(default_factory=list)

    @classmethod
    def from_outcomes(
        cls,
        outcomes,
        *,
        jobs: int = 1,
        retries: int = 0,
        worker_restarts: int = 0,
        elapsed_seconds: float = 0.0,
    ) -> "RunManifest":
        """Build the manifest from a campaign's cell outcomes.

        ``None`` entries (cells with no terminal state yet, as during a
        checkpoint flush) are skipped.
        """
        manifest = cls(
            jobs=jobs, retries=retries, worker_restarts=worker_restarts,
            elapsed_seconds=elapsed_seconds,
        )
        for out in outcomes:
            if out is not None:
                manifest.add(out)
        return manifest

    def add(self, outcome) -> None:
        """Fold one :class:`~repro.parallel.pool.CellOutcome` in."""
        self.total_cells += 1
        if outcome.status == "cached":
            self.cache_hits += 1
        elif outcome.status == "failed":
            self.failures += 1
        elif outcome.status == "interrupted":
            self.interrupted += 1
        else:
            self.ok += 1
        self.worker_seconds += outcome.wall_seconds
        self.cells.append(
            CellRecord(
                index=outcome.index,
                key=outcome.key,
                name=getattr(outcome.config, "name", "") or "",
                status=outcome.status,
                attempts=outcome.attempts,
                wall_seconds=outcome.wall_seconds,
                error=outcome.error,
                error_kind=getattr(outcome, "error_kind", None),
                worker_restarts=getattr(outcome, "worker_restarts", 0),
                digest=getattr(outcome.result, "trace_digest", None),
                failed_flows=(
                    getattr(outcome.result, "failed_flows", None)
                    if getattr(outcome.result, "config", None) is not None
                    and getattr(outcome.result.config, "transport", None)
                    is not None
                    else None
                ),
                cc_mechanism=getattr(outcome.config, "cc_mechanism", None),
            )
        )

    def failed_cells(self) -> List[CellRecord]:
        return [c for c in self.cells if c.status == "failed"]

    def failed_kinds(self) -> Dict[str, int]:
        """Failure counts per taxonomy ``error_kind``."""
        kinds: Dict[str, int] = {}
        for c in self.failed_cells():
            kind = c.error_kind or "unknown"
            kinds[kind] = kinds.get(kind, 0) + 1
        return kinds

    def completed_keys(self) -> Set[str]:
        """Config keys of every cell that finished with a result."""
        return {c.key for c in self.cells if c.status in ("ok", "cached")}

    def digests(self) -> Dict[str, Optional[str]]:
        """Per-cell trace digests keyed by config key (None untraced)."""
        return {c.key: c.digest for c in self.cells}

    def to_dict(self) -> Dict:
        return asdict(self)

    def to_json(self, *, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    def save(self, path: str) -> str:
        """Write the manifest JSON file atomically; returns its path.

        Atomicity matters because the executor checkpoints the manifest
        after every cell: a kill mid-flush must leave the previous
        (valid) checkpoint in place, never a truncated file.
        """
        tmp = path + ".tmp"
        with open(tmp, "w") as fh:
            fh.write(self.to_json())
            fh.write("\n")
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
        return path

    @classmethod
    def load(cls, path: str) -> "RunManifest":
        with open(path) as fh:
            data = json.load(fh)
        cells = [CellRecord(**c) for c in data.pop("cells", [])]
        # Manifests written before the error taxonomy existed carry
        # failed records with no kind; backfill "unknown" so resume and
        # reporting can branch on the field unconditionally.
        for cell in cells:
            if cell.status == "failed" and cell.error_kind is None:
                cell.error_kind = "unknown"
        return cls(cells=cells, **data)
