"""The structured campaign error taxonomy.

A failed cell is data, not a stack trace: every ``failed`` record in a
:class:`~repro.parallel.manifest.RunManifest` carries an ``error_kind``
from the closed set below, so downstream tooling (resume, the CLI
summary line, CI triage) can branch on *why* a cell failed without
parsing error strings.

========   ============================================================
crash      the worker process executing the cell died unexpectedly
           (SIGKILL, segfault, hard OOM kill) or stopped heartbeating
oom        the cell exceeded its RSS budget — ``resource.setrlimit``
           (``RLIMIT_AS``) made an allocation fail with ``MemoryError``
timeout    the cell exceeded its wall-clock budget and the supervisor
           preempted the worker
config     the cell's :class:`~repro.experiments.config.ExperimentConfig`
           failed validation (deterministic — never retried)
sim        the simulation itself raised (any other in-cell exception)
poisoned   the circuit breaker tripped: the cell killed
           ``poison_threshold`` workers and was quarantined instead of
           being retried again or aborting the campaign
unknown    a record from a manifest written before the taxonomy existed
========   ============================================================
"""

from __future__ import annotations

ERR_CRASH = "crash"
ERR_OOM = "oom"
ERR_TIMEOUT = "timeout"
ERR_CONFIG = "config"
ERR_SIM = "sim"
ERR_POISONED = "poisoned"
ERR_UNKNOWN = "unknown"

#: Every valid ``error_kind`` value, in severity-of-surprise order.
ERROR_KINDS = (
    ERR_CRASH,
    ERR_OOM,
    ERR_TIMEOUT,
    ERR_CONFIG,
    ERR_SIM,
    ERR_POISONED,
    ERR_UNKNOWN,
)

#: Kinds that are deterministic for a given config: retrying burns a
#: worker slot to reproduce the same failure, so the executor records
#: them immediately instead of consulting the retry policy.
NO_RETRY_KINDS = frozenset({ERR_CONFIG, ERR_POISONED})


def classify_exception(exc: BaseException) -> str:
    """Map an in-cell exception to its taxonomy kind.

    ``MemoryError`` means the RSS budget (or the host) refused an
    allocation; a :class:`~repro.experiments.config.ConfigError` is a
    deterministic bad config; everything else raised by the simulation
    is ``sim``.
    """
    from repro.experiments.config import ConfigError

    if isinstance(exc, MemoryError):
        return ERR_OOM
    if isinstance(exc, ConfigError):
        return ERR_CONFIG
    return ERR_SIM


def format_error(exc: BaseException) -> str:
    """The one-line error text recorded alongside the kind."""
    return f"{type(exc).__name__}: {exc}"
