"""Bounded retry with exponential backoff for failed experiment cells.

A campaign over hundreds of cells must survive the occasional crashed
or hung worker: one lost cell should cost one retried simulation, not
the whole run. :class:`RetryPolicy` decides *whether* an attempt may be
retried and *how long* to wait before the next attempt; the executor in
:mod:`repro.parallel.pool` applies it per cell.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class RetryPolicy:
    """How many times to try a cell and how to back off in between.

    ``max_attempts`` counts every try, including the first — the default
    of 1 means "never retry" and makes failures immediate, matching the
    historical serial behavior. Backoff is exponential:
    ``backoff_s * backoff_factor ** (attempt - 1)`` capped at
    ``max_backoff_s``; attempts are numbered from 1.
    """

    max_attempts: int = 1
    backoff_s: float = 0.0
    backoff_factor: float = 2.0
    max_backoff_s: float = 30.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.backoff_s < 0:
            raise ValueError("backoff_s must be >= 0")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1")

    def should_retry(self, attempts_made: int) -> bool:
        """Whether another attempt is allowed after ``attempts_made`` tries."""
        return attempts_made < self.max_attempts

    def delay_s(self, attempts_made: int) -> float:
        """Seconds to wait before the attempt following ``attempts_made``."""
        if self.backoff_s <= 0 or attempts_made < 1:
            return 0.0
        delay = self.backoff_s * self.backoff_factor ** (attempts_made - 1)
        return min(delay, self.max_backoff_s)


#: Retry policy for campaigns: three attempts with a short growing pause.
DEFAULT_CAMPAIGN_POLICY = RetryPolicy(max_attempts=3, backoff_s=0.5)

#: Policy preserving the historical fail-fast behavior.
NO_RETRY = RetryPolicy(max_attempts=1)
