"""Fault-tolerant fan-out of experiment cells over a process pool.

A campaign is a list of :class:`ExperimentConfig` cells, each a pure
function of its config (the RNG registry is seeded from ``config.seed``
— see :mod:`repro.engine.rng`), so cells can run in any order on any
worker and still produce exactly the serial results. This module turns
such a list into a job run:

* ``jobs=1`` executes in-process, in submission order — byte-identical
  to the historical serial drivers;
* ``jobs>1`` fans out over a :class:`ProcessPoolExecutor` (``fork``
  start method where available) with per-job timeouts, bounded retry
  with backoff (:mod:`repro.parallel.retry`), and pool recycling when
  a worker dies hard; the worker count is capped to the visible core
  count (oversubscribing CPU-bound cells only adds overhead), and when
  the cap leaves a single worker the run degrades to the in-process
  path — unless a ``timeout_s`` must be enforced, which needs a
  preemptable worker process;
* a cache (:mod:`repro.parallel.cache`) is consulted read-through
  before any cell is simulated and populated write-through as results
  arrive, so resumed campaigns skip completed cells;
* every cell ends in a terminal :class:`CellOutcome` — a crashed or
  hung cell becomes a ``failed`` record in the run manifest
  (:mod:`repro.parallel.manifest`) instead of killing the campaign;
* Ctrl-C is graceful: queued cells are cancelled, executing cells are
  *drained* (their results land in the cache and manifest; a second
  Ctrl-C abandons them as ``interrupted``), the manifest checkpoint is
  flushed, and :class:`CampaignInterrupted` is raised with a clean
  summary and the partial :class:`CampaignResult` attached;
* the manifest (``manifest_path=``) is checkpointed atomically after
  every terminal cell, and ``resume_from=`` replays a prior manifest —
  completed cells come back through the cache, everything else re-runs.
"""

from __future__ import annotations

import hashlib
import multiprocessing
import os
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.experiments.config import ConfigError, ExperimentConfig
from repro.experiments.runner import run_experiment
from repro.experiments.store import config_key
from repro.parallel.cache import as_cache
from repro.parallel.manifest import RunManifest
from repro.parallel.progress import ProgressReporter
from repro.parallel.retry import NO_RETRY, RetryPolicy


def _effective_workers(jobs: int, n_pending: int) -> int:
    """Worker processes that can actually run concurrently.

    Asking for more workers than cores makes campaigns *slower*, not
    faster: the cells are CPU-bound, so extra workers only add fork and
    IPC overhead plus scheduler thrash. The executor therefore caps the
    requested ``jobs`` to the visible core count and to the number of
    pending cells.
    """
    cores = os.cpu_count() or 1
    return max(1, min(jobs, cores, n_pending))


def _make_executor(workers: int) -> ProcessPoolExecutor:
    """A pool using ``fork`` where available (cheap start, no re-import)."""
    if "fork" in multiprocessing.get_all_start_methods():
        ctx = multiprocessing.get_context("fork")
        return ProcessPoolExecutor(max_workers=workers, mp_context=ctx)
    return ProcessPoolExecutor(max_workers=workers)


def derive_seed(base_seed: int, index: int) -> int:
    """A deterministic, well-mixed per-cell seed.

    Hash-derived so that campaign replicas get independent streams while
    remaining reproducible for any (base_seed, cell index) pair at any
    ``jobs`` value.
    """
    blob = f"{base_seed}:{index}".encode()
    return int.from_bytes(hashlib.sha256(blob).digest()[:8], "big")


@dataclass
class CellOutcome:
    """Terminal state of one campaign cell."""

    index: int
    config: Any
    key: str
    status: str  # "ok" | "cached" | "failed" | "interrupted"
    attempts: int
    wall_seconds: float
    result: Any = None
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.status in ("ok", "cached")


@dataclass
class CampaignResult:
    """Everything one :func:`run_campaign` call produced."""

    outcomes: List[CellOutcome]
    manifest: RunManifest

    @property
    def results(self) -> List[Any]:
        """Per-cell results in submission order (None for failed cells)."""
        return [o.result for o in self.outcomes]

    @property
    def failed(self) -> List[CellOutcome]:
        return [o for o in self.outcomes if not o.ok]

    def raise_on_failure(self) -> "CampaignResult":
        """Raise :class:`CampaignError` if any cell ended failed."""
        if self.failed:
            raise CampaignError(self.failed)
        return self


class CampaignError(RuntimeError):
    """One or more cells failed after exhausting their retries."""

    def __init__(self, failed: List[CellOutcome]) -> None:
        self.failed = failed
        detail = "; ".join(
            f"cell {o.index} ({o.key}): {o.error}" for o in failed[:5]
        )
        more = f" (+{len(failed) - 5} more)" if len(failed) > 5 else ""
        super().__init__(f"{len(failed)} campaign cell(s) failed: {detail}{more}")


class CampaignInterrupted(KeyboardInterrupt):
    """The campaign was interrupted (Ctrl-C) after a graceful drain.

    Subclasses :class:`KeyboardInterrupt` so un-aware callers still
    terminate, but carries the partial :class:`CampaignResult` (every
    cell that finished before or during the drain) and the checkpointed
    manifest path for ``run_campaign(resume_from=...)``.
    """

    def __init__(self, result: "CampaignResult", manifest_path: Optional[str] = None) -> None:
        self.result = result
        self.manifest_path = manifest_path
        m = result.manifest
        msg = (
            f"campaign interrupted: {m.ok} ok, {m.cache_hits} cached, "
            f"{m.failures} failed, {m.interrupted} interrupted "
            f"of {m.total_cells} cells"
        )
        if manifest_path is not None:
            msg += f"; resume with resume_from={manifest_path!r}"
        super().__init__(msg)


@dataclass
class _CellJob:
    """Executor-internal mutable state of one in-flight cell."""

    index: int
    config: Any
    key: str
    attempts: int = 0
    started: float = 0.0
    not_before: float = 0.0


def _timed_call(fn: Callable[[Any], Any], cfg: Any):
    """Worker entry point: run one cell and measure its wall time."""
    started = time.perf_counter()
    result = fn(cfg)
    return result, time.perf_counter() - started


def run_campaign(
    configs: Sequence[Any],
    *,
    jobs: int = 1,
    cache=None,
    retry: Optional[RetryPolicy] = None,
    timeout_s: Optional[float] = None,
    progress: Optional[ProgressReporter] = None,
    run_fn: Optional[Callable[[Any], Any]] = None,
    reseed_from: Optional[int] = None,
    manifest_path: Optional[str] = None,
    resume_from: Optional[Any] = None,
) -> CampaignResult:
    """Run every cell of a campaign; never raises for cell failures.

    ``configs`` are usually :class:`ExperimentConfig` instances and
    ``run_fn`` defaults to :func:`run_experiment`; any picklable
    config/callable pair works. ``cache`` is a directory path, a
    :class:`~repro.experiments.store.ResultStore`, or a
    :class:`~repro.parallel.cache.CellCache` (None disables caching).
    ``reseed_from`` rewrites each cell's seed with
    :func:`derive_seed(reseed_from, index) <derive_seed>` — the same
    seeds at any ``jobs`` value. ``timeout_s`` bounds one attempt and is
    enforced only for ``jobs > 1`` (a serial run cannot preempt itself).

    ``manifest_path`` additionally checkpoints the manifest after every
    terminal cell (atomic replace), so a killed campaign leaves a valid
    partial manifest. ``resume_from`` (a manifest path or
    :class:`RunManifest`) replays such a checkpoint: cells it recorded
    as completed are expected back from the cache (a cache miss re-runs
    them with a note), everything else re-runs.

    Ctrl-C does not lose finished work: queued cells are cancelled,
    executing cells drain (a second Ctrl-C abandons them), and
    :class:`CampaignInterrupted` is raised carrying the partial result.
    """
    if jobs < 1:
        raise ValueError("jobs must be >= 1")
    retry = retry if retry is not None else NO_RETRY
    cache = as_cache(cache)
    fn = run_fn if run_fn is not None else run_experiment
    reporter = progress if progress is not None else ProgressReporter()

    resume_keys = set()
    if resume_from is not None:
        prior = (
            resume_from
            if isinstance(resume_from, RunManifest)
            else RunManifest.load(resume_from)
        )
        resume_keys = prior.completed_keys()

    cells: List[Any] = list(configs)
    if reseed_from is not None:
        cells = [cfg.with_(seed=derive_seed(reseed_from, i)) for i, cfg in enumerate(cells)]

    # Pre-flight: reject a bad grid before any worker process spawns —
    # one clear ConfigError now instead of N identical cell failures.
    for i, cfg in enumerate(cells):
        if isinstance(cfg, ExperimentConfig):
            try:
                cfg.validate()
            except ConfigError as exc:
                raise ConfigError(f"campaign cell {i}: {exc}") from None

    outcomes: List[Optional[CellOutcome]] = [None] * len(cells)
    pending: List[_CellJob] = []
    reporter.start(len(cells), jobs)

    def build_manifest(*, complete: bool) -> RunManifest:
        manifest = RunManifest.from_outcomes(
            outcomes, jobs=jobs, retries=reporter.retries,
            elapsed_seconds=reporter.elapsed_seconds(),
        )
        manifest.complete = complete
        return manifest

    def checkpoint() -> None:
        if manifest_path is not None:
            build_manifest(complete=False).save(manifest_path)

    # Read-through: completed cells are served from the cache.
    for i, cfg in enumerate(cells):
        key = config_key(cfg) if isinstance(cfg, ExperimentConfig) else _fallback_key(cfg)
        cached = cache.load(cfg) if isinstance(cfg, ExperimentConfig) else None
        if cached is not None:
            outcomes[i] = CellOutcome(
                index=i, config=cfg, key=key, status="cached",
                attempts=0, wall_seconds=0.0, result=cached,
            )
            reporter.on_outcome(outcomes[i])
        else:
            if key in resume_keys:
                reporter.note(
                    f"resume: cell {i} ({key}) completed in the prior run "
                    "but is missing from the cache; re-running"
                )
            pending.append(_CellJob(index=i, config=cfg, key=key))
    checkpoint()

    def record_ok(job: _CellJob, result: Any, wall: float) -> None:
        outcomes[job.index] = CellOutcome(
            index=job.index, config=job.config, key=job.key, status="ok",
            attempts=job.attempts + 1, wall_seconds=wall, result=result,
        )
        cache.save(result)  # write-through
        reporter.on_outcome(outcomes[job.index])
        checkpoint()

    def record_failed(job: _CellJob, error: str, wall: float) -> None:
        outcomes[job.index] = CellOutcome(
            index=job.index, config=job.config, key=job.key, status="failed",
            attempts=job.attempts, wall_seconds=wall, error=error,
        )
        reporter.on_outcome(outcomes[job.index])
        checkpoint()

    def record_interrupted(job: _CellJob, error: str, wall: float = 0.0) -> None:
        outcomes[job.index] = CellOutcome(
            index=job.index, config=job.config, key=job.key,
            status="interrupted", attempts=job.attempts,
            wall_seconds=wall, error=error,
        )
        reporter.on_outcome(outcomes[job.index])
        checkpoint()

    was_interrupted = False
    if pending:
        # A pool only helps while multiple workers can actually run; on
        # a starved host (workers capped to 1) the in-process path is
        # strictly faster — unless a timeout must be enforced, which
        # requires a preemptable worker process.
        workers = _effective_workers(jobs, len(pending))
        use_pool = jobs > 1 and (workers > 1 or timeout_s is not None)
        if jobs > 1 and workers < jobs and use_pool:
            reporter.note(
                f"jobs={jobs} capped to {workers} worker(s) "
                f"({os.cpu_count() or 1} core(s), {len(pending)} pending cell(s))"
            )
        elif jobs > 1 and not use_pool:
            reporter.note(
                f"jobs={jobs} on {os.cpu_count() or 1} core(s): "
                "running in-process (a pool would only add overhead)"
            )
        try:
            if not use_pool:
                _run_serial(
                    pending, fn, retry, reporter,
                    record_ok, record_failed, record_interrupted,
                )
            else:
                _run_pool(
                    pending, fn, retry, workers, timeout_s, reporter,
                    record_ok, record_failed, record_interrupted,
                )
        except KeyboardInterrupt:
            was_interrupted = True

    reporter.finish()
    manifest = build_manifest(complete=not was_interrupted)
    if manifest_path is not None:
        manifest.save(manifest_path)
    result = CampaignResult(outcomes=outcomes, manifest=manifest)
    if was_interrupted:
        raise CampaignInterrupted(result, manifest_path)
    return result


def run_cells(configs: Sequence[Any], **kwargs) -> List[CellOutcome]:
    """:func:`run_campaign`, returning just the per-cell outcomes."""
    return run_campaign(configs, **kwargs).outcomes


def _fallback_key(cfg: Any) -> str:
    """Content key for non-ExperimentConfig payloads (uncached)."""
    return hashlib.sha256(repr(cfg).encode()).hexdigest()[:16]


def _run_serial(
    pending, fn, retry, reporter, record_ok, record_failed, record_interrupted
) -> None:
    """The ``jobs=1`` path: in-process, submission order, byte-identical."""
    for pos, job in enumerate(pending):
        while True:
            started = time.perf_counter()
            try:
                result = fn(job.config)
            except KeyboardInterrupt:
                # Ctrl-C mid-cell: the in-flight cell and everything
                # not yet started become ``interrupted`` records, then
                # the interrupt propagates for run_campaign to wrap.
                record_interrupted(
                    job, "interrupted while executing",
                    time.perf_counter() - started,
                )
                for later in pending[pos + 1:]:
                    record_interrupted(later, "interrupted before start")
                raise
            except Exception as exc:
                wall = time.perf_counter() - started
                job.attempts += 1
                error = f"{type(exc).__name__}: {exc}"
                if retry.should_retry(job.attempts):
                    reporter.on_retry(job.index, job.attempts, error)
                    delay = retry.delay_s(job.attempts)
                    if delay > 0:
                        time.sleep(delay)
                    continue
                record_failed(job, error, wall)
            else:
                record_ok(job, result, time.perf_counter() - started)
            break


def _run_pool(
    pending, fn, retry, jobs, timeout_s, reporter,
    record_ok, record_failed, record_interrupted,
) -> None:
    """The ``jobs>1`` path: process pool + timeouts + retry + recycling."""
    queue = deque(pending)
    running: Dict[Future, _CellJob] = {}
    # Futures whose deadline passed while already executing: the worker
    # cannot be preempted, so the future is abandoned and its slot
    # counted busy until the worker actually finishes.
    abandoned: List[Future] = []
    executor = _make_executor(jobs)

    def attempt_failed(job: _CellJob, error: str, wall: float) -> None:
        job.attempts += 1
        if retry.should_retry(job.attempts):
            reporter.on_retry(job.index, job.attempts, error)
            job.not_before = time.monotonic() + retry.delay_s(job.attempts)
            queue.append(job)
        else:
            record_failed(job, error, wall)

    def drain_interrupted() -> None:
        """First Ctrl-C: stop submitting, let executing cells finish.

        A second Ctrl-C during the drain abandons whatever is still
        running (recorded ``interrupted``); queued cells are always
        cancelled as ``interrupted before start``.
        """
        reporter.note(
            f"interrupt: cancelling {len(queue)} queued cell(s), draining "
            f"{len(running)} executing cell(s) — Ctrl-C again to abort"
        )
        try:
            while running:
                done, _ = wait(set(running), return_when=FIRST_COMPLETED)
                now = time.monotonic()
                for future in done:
                    job = running.pop(future)
                    try:
                        result, worker_wall = future.result()
                    except Exception as exc:
                        record_failed(
                            job, f"{type(exc).__name__}: {exc}", now - job.started
                        )
                    else:
                        record_ok(job, result, worker_wall)
        except KeyboardInterrupt:
            now = time.monotonic()
            for future, job in list(running.items()):
                if not future.cancel():
                    abandoned.append(future)
                record_interrupted(
                    job, "interrupted while executing", now - job.started
                )
            running.clear()
        for job in queue:
            record_interrupted(job, "interrupted before start")
        queue.clear()

    def recycle_executor() -> None:
        """Replace a broken pool; every in-flight job failed with it."""
        nonlocal executor
        executor.shutdown(wait=False, cancel_futures=True)
        abandoned.clear()
        executor = _make_executor(jobs)

    def main_loop() -> None:
        while queue or running:
            now = time.monotonic()
            abandoned[:] = [f for f in abandoned if not f.done()]
            capacity = jobs - len(running) - len(abandoned)

            for _ in range(len(queue)):
                if capacity <= 0:
                    break
                job = queue.popleft()
                if job.not_before > now:
                    queue.append(job)  # still backing off
                    continue
                future = executor.submit(_timed_call, fn, job.config)
                job.started = now
                running[future] = job
                capacity -= 1

            if not running:
                # Everything left is backing off; sleep to the nearest.
                wake = min(job.not_before for job in queue)
                time.sleep(max(0.01, min(wake - now, 0.2)))
                continue

            wait_timeout = None if (not queue and timeout_s is None) else 0.05
            if timeout_s is not None:
                next_deadline = min(j.started + timeout_s for j in running.values())
                wait_timeout = max(0.01, min(next_deadline - now, 0.2))
            done, _ = wait(set(running), timeout=wait_timeout, return_when=FIRST_COMPLETED)

            now = time.monotonic()
            broken = False
            for future in done:
                job = running.pop(future)
                wall = now - job.started
                try:
                    result, worker_wall = future.result()
                except BrokenProcessPool:
                    broken = True
                    attempt_failed(job, "BrokenProcessPool: worker died abruptly", wall)
                except Exception as exc:
                    attempt_failed(job, f"{type(exc).__name__}: {exc}", wall)
                else:
                    record_ok(job, result, worker_wall)

            if broken:
                # The pool is unusable: every other in-flight future is
                # doomed too. Fail their attempts and start fresh.
                for future, job in list(running.items()):
                    attempt_failed(job, "BrokenProcessPool: worker died abruptly",
                                   now - job.started)
                running.clear()
                recycle_executor()
                continue

            if timeout_s is not None:
                for future, job in list(running.items()):
                    if now - job.started > timeout_s:
                        del running[future]
                        if not future.cancel():
                            abandoned.append(future)
                        attempt_failed(
                            job,
                            f"TimeoutError: cell exceeded {timeout_s}s",
                            now - job.started,
                        )

    try:
        try:
            main_loop()
        except KeyboardInterrupt:
            drain_interrupted()
            raise
    finally:
        if any(not f.done() for f in abandoned):
            # Hung workers: don't block shutdown on them.
            procs = list((getattr(executor, "_processes", None) or {}).values())
            executor.shutdown(wait=False, cancel_futures=True)
            for proc in procs:
                try:
                    proc.terminate()
                except Exception:
                    pass
        else:
            executor.shutdown()
