"""Fault-tolerant fan-out of experiment cells over supervised workers.

A campaign is a list of :class:`ExperimentConfig` cells, each a pure
function of its config (the RNG registry is seeded from ``config.seed``
— see :mod:`repro.engine.rng`), so cells can run in any order on any
worker and still produce exactly the serial results. This module turns
such a list into a job run:

* ``jobs=1`` executes in-process, in submission order — byte-identical
  to the historical serial drivers;
* ``jobs>1`` fans out over the supervised persistent-worker runtime
  (:mod:`repro.parallel.supervisor`): long-lived worker processes that
  execute many cells each, per-worker heartbeats with liveness
  deadlines, individual worker restart on crash (only the dead worker's
  in-flight cell is retried), a poisoned-cell circuit breaker, and
  per-cell resource budgets (``timeout_s`` wall clock enforced by the
  supervisor, ``max_rss_mb`` via ``RLIMIT_AS`` inside the worker). The
  worker count is capped to the visible core count (oversubscribing
  CPU-bound cells only adds overhead — pass ``oversubscribe=True`` to
  lift the cap, e.g. for chaos testing), and when the cap leaves a
  single worker with no budgets to enforce the run degrades to the
  in-process path;
* a cache (:mod:`repro.parallel.cache`) is consulted read-through
  before any cell is simulated and populated write-through as results
  arrive, so resumed campaigns skip completed cells;
* every cell ends in a terminal :class:`CellOutcome` — a crashed or
  hung cell becomes a ``failed`` record in the run manifest
  (:mod:`repro.parallel.manifest`) with a structured ``error_kind``
  from :mod:`repro.parallel.errors` instead of killing the campaign;
* SIGINT (Ctrl-C) and SIGTERM are graceful: queued cells are
  cancelled, executing cells are *drained* (their results land in the
  cache and manifest; a second signal abandons them as
  ``interrupted``), the manifest checkpoint is flushed, and
  :class:`CampaignInterrupted` is raised with a clean summary and the
  partial :class:`CampaignResult` attached;
* the manifest (``manifest_path=``) is checkpointed atomically after
  every terminal cell, and ``resume_from=`` replays a prior manifest —
  completed cells come back through the cache, quarantined failures
  (poisoned cells, timeouts, …) are replayed as ``failed`` records
  without burning workers on them again unless ``retry_failed=True``,
  and everything else re-runs.
"""

from __future__ import annotations

import hashlib
import os
import signal
import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, List, Optional, Sequence

from repro.experiments.config import ConfigError, ExperimentConfig
from repro.experiments.runner import run_experiment
from repro.experiments.store import config_key
from repro.parallel.cache import as_cache
from repro.parallel.errors import (
    ERR_SIM,
    ERR_UNKNOWN,
    NO_RETRY_KINDS,
    classify_exception,
    format_error,
)
from repro.parallel.manifest import RunManifest
from repro.parallel.progress import ProgressReporter
from repro.parallel.retry import NO_RETRY, RetryPolicy
from repro.parallel.supervisor import (
    DEFAULT_HEARTBEAT_S,
    DEFAULT_POISON_THRESHOLD,
    run_supervised,
)


def _effective_workers(
    jobs: int, n_pending: int, *, oversubscribe: bool = False
) -> int:
    """Worker processes that can actually run concurrently.

    Asking for more workers than cores makes campaigns *slower*, not
    faster: the cells are CPU-bound, so extra workers only add fork and
    IPC overhead plus scheduler thrash. The executor therefore caps the
    requested ``jobs`` to the visible core count and to the number of
    pending cells. ``oversubscribe=True`` lifts the core cap — useful
    when the point is exercising real multi-worker supervision (chaos
    tests) rather than throughput.
    """
    cores = os.cpu_count() or 1
    cap = jobs if oversubscribe else min(jobs, cores)
    return max(1, min(cap, n_pending))


def derive_seed(base_seed: int, index: int) -> int:
    """A deterministic, well-mixed per-cell seed.

    Hash-derived so that campaign replicas get independent streams while
    remaining reproducible for any (base_seed, cell index) pair at any
    ``jobs`` value.
    """
    blob = f"{base_seed}:{index}".encode()
    return int.from_bytes(hashlib.sha256(blob).digest()[:8], "big")


@dataclass
class CellOutcome:
    """Terminal state of one campaign cell."""

    index: int
    config: Any
    key: str
    status: str  # "ok" | "cached" | "failed" | "interrupted"
    attempts: int
    wall_seconds: float
    result: Any = None
    error: Optional[str] = None
    # Structured failure taxonomy (repro.parallel.errors); set only for
    # status == "failed".
    error_kind: Optional[str] = None
    # Worker processes this cell killed or had preempted while it was
    # in flight (crash / stall / timeout kills attributed to the cell).
    worker_restarts: int = 0

    @property
    def ok(self) -> bool:
        return self.status in ("ok", "cached")


@dataclass
class CampaignResult:
    """Everything one :func:`run_campaign` call produced."""

    outcomes: List[CellOutcome]
    manifest: RunManifest

    @property
    def results(self) -> List[Any]:
        """Per-cell results in submission order (None for failed cells)."""
        return [o.result for o in self.outcomes]

    @property
    def failed(self) -> List[CellOutcome]:
        return [o for o in self.outcomes if not o.ok]

    def raise_on_failure(self) -> "CampaignResult":
        """Raise :class:`CampaignError` if any cell ended failed."""
        if self.failed:
            raise CampaignError(self.failed)
        return self


class CampaignError(RuntimeError):
    """One or more cells failed after exhausting their retries."""

    def __init__(self, failed: List[CellOutcome]) -> None:
        self.failed = failed
        detail = "; ".join(
            f"cell {o.index} ({o.key}): {o.error}" for o in failed[:5]
        )
        more = f" (+{len(failed) - 5} more)" if len(failed) > 5 else ""
        super().__init__(f"{len(failed)} campaign cell(s) failed: {detail}{more}")


class CampaignInterrupted(KeyboardInterrupt):
    """The campaign was interrupted (SIGINT/SIGTERM) after a drain.

    Subclasses :class:`KeyboardInterrupt` so un-aware callers still
    terminate, but carries the partial :class:`CampaignResult` (every
    cell that finished before or during the drain) and the checkpointed
    manifest path for ``run_campaign(resume_from=...)``.
    """

    def __init__(self, result: "CampaignResult", manifest_path: Optional[str] = None) -> None:
        self.result = result
        self.manifest_path = manifest_path
        m = result.manifest
        msg = (
            f"campaign interrupted: {m.ok} ok, {m.cache_hits} cached, "
            f"{m.failures} failed, {m.interrupted} interrupted "
            f"of {m.total_cells} cells"
        )
        if manifest_path is not None:
            msg += f"; resume with resume_from={manifest_path!r}"
        super().__init__(msg)


@dataclass
class _CellJob:
    """Executor-internal mutable state of one in-flight cell."""

    index: int
    config: Any
    key: str
    attempts: int = 0
    started: float = 0.0
    not_before: float = 0.0
    # Sequence number of the dispatch currently executing this cell on
    # a supervised worker (stale replies are matched against it).
    seq: int = -1
    worker_restarts: int = 0


def _install_sigterm_handler() -> Callable[[], None]:
    """Map SIGTERM onto KeyboardInterrupt so it drains like Ctrl-C.

    Returns a restore callable. A no-op off the main thread (the signal
    module refuses handlers there) and on platforms without SIGTERM.
    """
    if threading.current_thread() is not threading.main_thread():
        return lambda: None

    def raise_interrupt(signum, frame) -> None:
        raise KeyboardInterrupt

    try:
        previous = signal.signal(signal.SIGTERM, raise_interrupt)
    except (ValueError, OSError, AttributeError):
        return lambda: None

    def restore() -> None:
        try:
            signal.signal(signal.SIGTERM, previous)
        except (ValueError, OSError):
            return

    return restore


def run_campaign(
    configs: Sequence[Any],
    *,
    jobs: int = 1,
    cache=None,
    retry: Optional[RetryPolicy] = None,
    timeout_s: Optional[float] = None,
    max_rss_mb: Optional[float] = None,
    progress: Optional[ProgressReporter] = None,
    run_fn: Optional[Callable[[Any], Any]] = None,
    reseed_from: Optional[int] = None,
    manifest_path: Optional[str] = None,
    resume_from: Optional[Any] = None,
    retry_failed: bool = False,
    poison_threshold: int = DEFAULT_POISON_THRESHOLD,
    heartbeat_s: float = DEFAULT_HEARTBEAT_S,
    oversubscribe: bool = False,
) -> CampaignResult:
    """Run every cell of a campaign; never raises for cell failures.

    ``configs`` are usually :class:`ExperimentConfig` instances and
    ``run_fn`` defaults to :func:`run_experiment`; any picklable
    config/callable pair works. ``cache`` is a directory path, a
    :class:`~repro.experiments.store.ResultStore`, or a
    :class:`~repro.parallel.cache.CellCache` (None disables caching).
    ``reseed_from`` rewrites each cell's seed with
    :func:`derive_seed(reseed_from, index) <derive_seed>` — the same
    seeds at any ``jobs`` value.

    Per-cell budgets apply to ``jobs > 1`` (a serial run cannot preempt
    itself): ``timeout_s`` bounds one attempt's wall clock — the
    supervisor kills and replaces the worker (``error_kind="timeout"``);
    ``max_rss_mb`` caps worker address space via ``RLIMIT_AS`` so a
    runaway allocation fails in-place with ``MemoryError``
    (``error_kind="oom"``). A cell whose crashes kill
    ``poison_threshold`` workers is quarantined as ``failed`` with
    ``error_kind="poisoned"`` instead of looping.

    ``manifest_path`` additionally checkpoints the manifest after every
    terminal cell (atomic replace), so a killed campaign leaves a valid
    partial manifest. ``resume_from`` (a manifest path or
    :class:`RunManifest`) replays such a checkpoint: cells it recorded
    as completed are expected back from the cache (a cache miss re-runs
    them with a note), cells it recorded as ``failed`` are replayed as
    failed outcomes without re-running — pass ``retry_failed=True`` to
    re-run exactly that set — and everything else re-runs.

    SIGINT/SIGTERM do not lose finished work: queued cells are
    cancelled, executing cells drain (a second signal abandons them),
    and :class:`CampaignInterrupted` is raised carrying the partial
    result.
    """
    if jobs < 1:
        raise ValueError("jobs must be >= 1")
    retry = retry if retry is not None else NO_RETRY
    cache = as_cache(cache)
    fn = run_fn if run_fn is not None else run_experiment
    reporter = progress if progress is not None else ProgressReporter()

    resume_keys = set()
    prior_failed = {}
    if resume_from is not None:
        prior = (
            resume_from
            if isinstance(resume_from, RunManifest)
            else RunManifest.load(resume_from)
        )
        resume_keys = prior.completed_keys()
        if not retry_failed:
            prior_failed = {c.key: c for c in prior.failed_cells()}

    cells: List[Any] = list(configs)
    if reseed_from is not None:
        cells = [cfg.with_(seed=derive_seed(reseed_from, i)) for i, cfg in enumerate(cells)]

    # Pre-flight: reject a bad grid before any worker process spawns —
    # one clear ConfigError now instead of N identical cell failures.
    for i, cfg in enumerate(cells):
        if isinstance(cfg, ExperimentConfig):
            try:
                cfg.validate()
            except ConfigError as exc:
                raise ConfigError(f"campaign cell {i}: {exc}") from None

    outcomes: List[Optional[CellOutcome]] = [None] * len(cells)
    pending: List[_CellJob] = []
    reporter.start(len(cells), jobs)

    def build_manifest(*, complete: bool) -> RunManifest:
        manifest = RunManifest.from_outcomes(
            outcomes, jobs=jobs, retries=reporter.retries,
            worker_restarts=reporter.worker_restarts,
            elapsed_seconds=reporter.elapsed_seconds(),
        )
        manifest.complete = complete
        return manifest

    def checkpoint() -> None:
        if manifest_path is not None:
            build_manifest(complete=False).save(manifest_path)

    # Read-through: completed cells are served from the cache, prior
    # quarantined failures are replayed as records (not re-run).
    for i, cfg in enumerate(cells):
        key = config_key(cfg) if isinstance(cfg, ExperimentConfig) else _fallback_key(cfg)
        cached = cache.load(cfg) if isinstance(cfg, ExperimentConfig) else None
        if cached is not None:
            outcomes[i] = CellOutcome(
                index=i, config=cfg, key=key, status="cached",
                attempts=0, wall_seconds=0.0, result=cached,
            )
            reporter.on_outcome(outcomes[i])
        elif key in prior_failed:
            rec = prior_failed[key]
            kind = rec.error_kind or ERR_UNKNOWN
            outcomes[i] = CellOutcome(
                index=i, config=cfg, key=key, status="failed",
                attempts=rec.attempts, wall_seconds=0.0, error=rec.error,
                error_kind=kind, worker_restarts=rec.worker_restarts,
            )
            reporter.note(
                f"resume: cell {i} ({key}) failed in the prior run "
                f"(error_kind={kind}); replaying its record — "
                "pass retry_failed to re-run it"
            )
            reporter.on_outcome(outcomes[i])
        else:
            if key in resume_keys:
                reporter.note(
                    f"resume: cell {i} ({key}) completed in the prior run "
                    "but is missing from the cache; re-running"
                )
            pending.append(_CellJob(index=i, config=cfg, key=key))
    checkpoint()

    def record_ok(job: _CellJob, result: Any, wall: float) -> None:
        outcomes[job.index] = CellOutcome(
            index=job.index, config=job.config, key=job.key, status="ok",
            attempts=job.attempts + 1, wall_seconds=wall, result=result,
            worker_restarts=job.worker_restarts,
        )
        cache.save(result)  # write-through
        reporter.on_outcome(outcomes[job.index])
        checkpoint()

    def record_failed(
        job: _CellJob, error: str, wall: float, error_kind: str = ERR_SIM
    ) -> None:
        outcomes[job.index] = CellOutcome(
            index=job.index, config=job.config, key=job.key, status="failed",
            attempts=job.attempts, wall_seconds=wall, error=error,
            error_kind=error_kind, worker_restarts=job.worker_restarts,
        )
        reporter.on_outcome(outcomes[job.index])
        checkpoint()

    def record_interrupted(job: _CellJob, error: str, wall: float = 0.0) -> None:
        outcomes[job.index] = CellOutcome(
            index=job.index, config=job.config, key=job.key,
            status="interrupted", attempts=job.attempts,
            wall_seconds=wall, error=error,
            worker_restarts=job.worker_restarts,
        )
        reporter.on_outcome(outcomes[job.index])
        checkpoint()

    was_interrupted = False
    if pending:
        # Supervised workers only help while several can actually run;
        # on a starved host (workers capped to 1) the in-process path
        # is strictly faster — unless a resource budget must be
        # enforced, which requires a preemptable worker process.
        workers = _effective_workers(jobs, len(pending), oversubscribe=oversubscribe)
        use_pool = jobs > 1 and (
            workers > 1 or timeout_s is not None or max_rss_mb is not None
        )
        if jobs > 1 and workers < jobs and use_pool:
            reporter.note(
                f"jobs={jobs} capped to {workers} worker(s) "
                f"({os.cpu_count() or 1} core(s), {len(pending)} pending cell(s))"
            )
        elif jobs > 1 and not use_pool:
            reporter.note(
                f"jobs={jobs} on {os.cpu_count() or 1} core(s): "
                "running in-process (a pool would only add overhead)"
            )
        restore_sigterm = _install_sigterm_handler()
        try:
            if not use_pool:
                _run_serial(
                    pending, fn, retry, reporter,
                    record_ok, record_failed, record_interrupted,
                )
            else:
                run_supervised(
                    deque(pending), fn, retry, workers, timeout_s,
                    max_rss_mb, reporter,
                    record_ok, record_failed, record_interrupted,
                    heartbeat_s=heartbeat_s,
                    poison_threshold=poison_threshold,
                )
        except KeyboardInterrupt:
            was_interrupted = True
        finally:
            restore_sigterm()

    reporter.finish()
    manifest = build_manifest(complete=not was_interrupted)
    if manifest_path is not None:
        manifest.save(manifest_path)
    result = CampaignResult(outcomes=outcomes, manifest=manifest)
    if was_interrupted:
        raise CampaignInterrupted(result, manifest_path)
    return result


def run_cells(configs: Sequence[Any], **kwargs) -> List[CellOutcome]:
    """:func:`run_campaign`, returning just the per-cell outcomes."""
    return run_campaign(configs, **kwargs).outcomes


def _fallback_key(cfg: Any) -> str:
    """Content key for non-ExperimentConfig payloads (uncached)."""
    return hashlib.sha256(repr(cfg).encode()).hexdigest()[:16]


def _run_serial(
    pending, fn, retry, reporter, record_ok, record_failed, record_interrupted
) -> None:
    """The ``jobs=1`` path: in-process, submission order, byte-identical."""
    for pos, job in enumerate(pending):
        while True:
            started = time.perf_counter()
            try:
                result = fn(job.config)
            except KeyboardInterrupt:
                # Ctrl-C mid-cell: the in-flight cell and everything
                # not yet started become ``interrupted`` records, then
                # the interrupt propagates for run_campaign to wrap.
                record_interrupted(
                    job, "interrupted while executing",
                    time.perf_counter() - started,
                )
                for later in pending[pos + 1:]:
                    record_interrupted(later, "interrupted before start")
                raise
            except Exception as exc:
                wall = time.perf_counter() - started
                job.attempts += 1
                kind = classify_exception(exc)
                error = format_error(exc)
                if kind not in NO_RETRY_KINDS and retry.should_retry(job.attempts):
                    reporter.on_retry(job.index, job.attempts, error)
                    delay = retry.delay_s(job.attempts)
                    if delay > 0:
                        time.sleep(delay)
                    continue
                record_failed(job, error, wall, error_kind=kind)
            else:
                record_ok(job, result, time.perf_counter() - started)
            break
