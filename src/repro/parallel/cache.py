"""Read-through / write-through result caching for campaigns.

Experiment cells are pure functions of their :class:`ExperimentConfig`
(the RNG registry is seeded from ``config.seed``), so a completed cell
never needs to be simulated again. :class:`CellCache` wraps the JSON
:class:`~repro.experiments.store.ResultStore` — keyed by
:func:`~repro.experiments.store.config_key` — behind the two-method
interface the executor uses, and counts hits/misses/stores for the run
manifest. :class:`NullCache` is the disabled drop-in.
"""

from __future__ import annotations

from typing import Optional, Union

from repro.experiments.runner import ExperimentResult
from repro.experiments.store import ResultStore


class NullCache:
    """Cache interface that never hits: every cell is simulated."""

    hits = 0
    misses = 0
    stores = 0

    def load(self, cfg) -> None:
        return None

    def save(self, result) -> None:
        return None


class CellCache:
    """Read-through/write-through cache over a :class:`ResultStore`.

    ``load`` returns the stored :class:`ExperimentResult` for a config
    (or None), ``save`` persists a fresh one. Non-``ExperimentResult``
    values (from custom ``run_fn`` callables) pass through uncached so
    the executor can run arbitrary work without corrupting the store.
    """

    def __init__(self, store: Union[ResultStore, str]) -> None:
        self.store = ResultStore(store) if isinstance(store, str) else store
        self.hits = 0
        self.misses = 0
        self.stores = 0

    def load(self, cfg) -> Optional[ExperimentResult]:
        try:
            cached = self.store.load(cfg)
        except Exception:
            # A corrupt/truncated entry (e.g. a campaign killed mid-write)
            # must not kill the next campaign: treat it as a miss and let
            # the fresh result overwrite it.
            cached = None
        if cached is not None:
            self.hits += 1
        else:
            self.misses += 1
        return cached

    def save(self, result) -> None:
        if isinstance(result, ExperimentResult):
            self.store.save(result)
            self.stores += 1


def as_cache(cache: Union[CellCache, ResultStore, str, None]) -> Union[CellCache, NullCache]:
    """Coerce the user-facing ``cache=`` argument to a cache object.

    Accepts an existing :class:`CellCache`, a :class:`ResultStore`, a
    directory path, or None (caching disabled).
    """
    if cache is None:
        return NullCache()
    if isinstance(cache, (CellCache, NullCache)):
        return cache
    return CellCache(cache)
