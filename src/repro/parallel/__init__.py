"""repro.parallel — fault-tolerant parallel experiment execution.

Paper artifacts (Table II, figures 5–10) and CC parameter-tuning
campaigns are grids of *independent* simulation cells; this package
fans such grids out over a process pool with deterministic seeding,
per-cell timeout + bounded retry, read-through/write-through result
caching, and progress/manifest telemetry:

* :mod:`repro.parallel.pool` — :func:`run_campaign` / :func:`run_cells`,
  the executor itself;
* :mod:`repro.parallel.supervisor` — the persistent-worker runtime
  behind ``jobs>1`` (heartbeats, crash isolation, poisoned-cell
  quarantine, resource budgets);
* :mod:`repro.parallel.errors` — the structured failure taxonomy
  (``crash | oom | timeout | config | sim | poisoned | unknown``);
* :mod:`repro.parallel.retry` — :class:`RetryPolicy`;
* :mod:`repro.parallel.cache` — :class:`CellCache` over the JSON
  :class:`~repro.experiments.store.ResultStore`;
* :mod:`repro.parallel.progress` — :class:`ProgressReporter` (live
  text + telemetry counters);
* :mod:`repro.parallel.manifest` — :class:`RunManifest` (the JSON run
  record).

Every experiment driver (``sweep``, ``run_table2``, the windy/moving
figures, and the ``ibcc-repro`` CLI) accepts ``jobs=``/``cache=`` and
routes through this executor; ``jobs=1`` reproduces the historical
serial behavior byte-for-byte.
"""

from repro.parallel.cache import CellCache, NullCache, as_cache
from repro.parallel.errors import ERROR_KINDS, NO_RETRY_KINDS
from repro.parallel.manifest import CellRecord, RunManifest
from repro.parallel.pool import (
    CampaignError,
    CampaignResult,
    CellOutcome,
    derive_seed,
    run_campaign,
    run_cells,
)
from repro.parallel.progress import ProgressReporter
from repro.parallel.retry import DEFAULT_CAMPAIGN_POLICY, NO_RETRY, RetryPolicy
from repro.parallel.supervisor import (
    DEFAULT_HEARTBEAT_S,
    DEFAULT_POISON_THRESHOLD,
    Supervisor,
)

__all__ = [
    "CampaignError",
    "CampaignResult",
    "CellOutcome",
    "CellCache",
    "CellRecord",
    "DEFAULT_CAMPAIGN_POLICY",
    "DEFAULT_HEARTBEAT_S",
    "DEFAULT_POISON_THRESHOLD",
    "ERROR_KINDS",
    "NO_RETRY",
    "NO_RETRY_KINDS",
    "NullCache",
    "ProgressReporter",
    "RetryPolicy",
    "RunManifest",
    "Supervisor",
    "as_cache",
    "derive_seed",
    "run_campaign",
    "run_cells",
]
