"""The congestion-control protocol and the shared rate-based scaffold.

:class:`CongestionControl` is the contract every mechanism satisfies —
it is exactly the surface the rest of the simulator already consumes
(:meth:`~repro.network.hca.Hca.pull` calls ``on_inject``,
:meth:`~repro.network.hca.Hca.on_packet_received` calls ``on_becn``,
:class:`~repro.traffic.generators.BNodeSource` gates eligibility on
``next_allowed``, :mod:`repro.faults` drives ``freeze``/``thaw``, and
:func:`repro.core.stats.snapshot_cc` reads the counters).

:class:`RateBasedCC` is the scaffold the non-IB mechanisms share: a
per-flow *injection-rate fraction* ``r`` in ``(0, 1]`` replaces the IB
CCT index. A flow at fraction ``r`` whose packets serialize in ``ser``
ns may start its next packet no earlier than ``ser / r`` after the
previous one — the same inter-packet-gap semantics as the IB CCT's
``ser * (1 + CCT[i])`` with ``r = 1 / (1 + CCT[i])``, so every
mechanism is throttling the very same injection path. Subclasses only
implement how feedback and the periodic timer move ``r``:

* rate changes happen **only** inside ``_on_feedback`` (a BECN/CNP
  arrived) or ``_on_timer`` (the recovery timer fired) — the property
  the hypothesis suite pins;
* with no feedback, successive timer fires must never decrease ``r``
  and must eventually restore ``r = 1`` (monotone recovery).
"""

from __future__ import annotations

from typing import (
    TYPE_CHECKING,
    Any,
    Dict,
    Hashable,
    Mapping,
    Optional,
    Protocol,
    runtime_checkable,
)

from repro.core.parameters import CCParams
from repro.network.packet import FlowKey, Packet

if TYPE_CHECKING:
    from repro.network.hca import Hca

#: Rates are snapped to exactly 1.0 once within this distance, so a
#: geometric recovery (e.g. DCQCN's (target+rate)/2) terminates and the
#: timer can stop rearming on a fully recovered flow.
FULL_RATE_SNAP = 1e-3


@runtime_checkable
class CongestionControl(Protocol):
    """What the HCA, generators, faults and stats expect of ``hca.cc``."""

    becns_applied: int
    timer_fires: int
    frozen: bool
    trace: Optional[Any]

    def on_inject(self, pkt: Packet) -> None:
        """A data packet of a flow entered the output buffer."""

    def on_becn(self, flow: FlowKey, sl: int = 0) -> None:
        """A congestion notification arrived for ``flow``."""

    def next_allowed(self, flow: FlowKey, sl: int = 0) -> float:
        """Earliest virtual time ``flow`` may inject its next packet."""

    def rate_of(self, flow: FlowKey, sl: int = 0) -> float:
        """Current injection-rate fraction of ``flow`` in ``(0, 1]``."""

    def freeze(self) -> None:
        """Fault injection: hold the recovery timer."""

    def thaw(self) -> None:
        """Resume recovery after :meth:`freeze`."""

    def throttled_flows(self) -> int:
        """Number of flows currently below full injection rate."""

    def deepest_level(self) -> int:
        """Severity of the deepest throttle (mechanism-defined integer
        scale; 0 when nothing is throttled)."""


class _RateState:
    """Per-flow state of a rate-based mechanism.

    ``extra`` holds mechanism-specific scalars (EWMA alpha, byte
    counters, ...) so subclasses stay slot-friendly without each
    defining its own state class.
    """

    __slots__ = ("rate", "next_time", "extra")

    def __init__(self) -> None:
        self.rate = 1.0
        self.next_time = 0.0
        self.extra: Dict[str, float] = {}


class RateBasedCC:
    """Shared reaction-point scaffold for rate-based mechanisms."""

    #: Registry name; subclasses override.
    name = "rate"

    __slots__ = (
        "hca",
        "params",
        "options",
        "min_rate",
        "timer_period_ns",
        "_states",
        "_timer_pending",
        "_byte_time",
        "becns_applied",
        "timer_fires",
        "frozen",
        "trace",
    )

    def __init__(self, hca: "Hca", params: CCParams, options: Mapping[str, Any]) -> None:
        self.hca = hca
        self.params = params
        self.options = dict(options)
        self.min_rate = float(self.options.get("min_rate", 1.0 / 256.0))
        if not 0.0 < self.min_rate <= 1.0:
            raise ValueError("min_rate must be in (0, 1]")
        # Recovery cadence defaults to the IB CCTI timer period so the
        # mechanisms are compared under the same feedback/decay clock.
        self.timer_period_ns = float(
            self.options.get("timer_period_ns", params.timer_period_ns)
        )
        if self.timer_period_ns <= 0:
            raise ValueError("timer_period_ns must be positive")
        self._states: Dict[Hashable, _RateState] = {}
        self._timer_pending = False
        self._byte_time = hca.obuf.link.byte_time_ns
        self.becns_applied = 0
        self.timer_fires = 0
        self.frozen = False  # fault injection: recovery timer held
        self.trace = None  # tracer (repro.trace), or None

    # -- keying (same QP/SL modes as the IB reaction point) -------------
    def _key(self, flow: FlowKey, sl: int = 0) -> Hashable:
        return flow if self.params.cc_mode == "qp" else sl

    # -- queries used by traffic generators ------------------------------
    def next_allowed(self, flow: FlowKey, sl: int = 0) -> float:
        state = self._states.get(self._key(flow, sl))
        if state is None or state.rate >= 1.0:
            return 0.0
        return state.next_time

    def rate_of(self, flow: FlowKey, sl: int = 0) -> float:
        state = self._states.get(self._key(flow, sl))
        return 1.0 if state is None else state.rate

    # -- event hooks ------------------------------------------------------
    def on_inject(self, pkt: Packet) -> None:
        state = self._states.get(self._key(pkt.flow, pkt.sl))
        if state is None:
            return
        self._count_inject(state, pkt)
        if state.rate >= 1.0:
            return
        ser = pkt.wire_size * self._byte_time
        state.next_time = self.hca.sim.now + ser / state.rate

    def on_becn(self, flow: FlowKey, sl: int = 0) -> None:
        key = self._key(flow, sl)
        state = self._states.get(key)
        if state is None:
            state = _RateState()
            self._states[key] = state
        self.becns_applied += 1
        if self.trace is not None:
            self.trace.becn(self.hca.sim.now, self.hca.node_id, flow[0], flow[1], sl)
        old = state.rate
        self._on_feedback(state)
        self._note_rate_change(key, sl, old, state)
        self._ensure_timer()

    # -- recovery timer ---------------------------------------------------
    def _ensure_timer(self) -> None:
        if not self._timer_pending:
            self._timer_pending = True
            self.hca.sim.schedule(self.timer_period_ns, self._timer_fire)

    def _timer_fire(self) -> None:
        self._timer_pending = False
        if self.frozen:
            # Fault injection: a frozen timer neither recovers nor
            # rearms; thaw() restarts recovery.
            return
        self.timer_fires += 1
        any_active = False
        changed = 0
        for key, state in self._states.items():
            old = state.rate
            self._on_timer(state)
            if state.rate != old:
                changed += 1
                sl = key if isinstance(key, int) else 0
                self._note_rate_change(key, sl, old, state)
            if state.rate < 1.0 or self._keeps_timer(state):
                any_active = True
        if self.trace is not None:
            self.trace.timer_fire(self.hca.sim.now, self.hca.node_id, changed)
        if any_active:
            self._ensure_timer()
        # A flow may now be allowed earlier than the generator planned.
        self.hca.kick()

    # -- fault injection (repro.faults) -----------------------------------
    def freeze(self) -> None:
        """Hold the recovery timer: rates stop recovering."""
        self.frozen = True

    def thaw(self) -> None:
        """Resume recovery; rearms the timer if any flow is throttled."""
        if not self.frozen:
            return
        self.frozen = False
        if any(
            s.rate < 1.0 or self._keeps_timer(s) for s in self._states.values()
        ):
            self._ensure_timer()

    # -- introspection ----------------------------------------------------
    def throttled_flows(self) -> int:
        return sum(1 for s in self._states.values() if s.rate < 1.0)

    def deepest_level(self) -> int:
        """Percent slowdown of the most-throttled flow (0..99)."""
        deepest = 0
        for state in self._states.values():
            level = int(round((1.0 - state.rate) * 100.0))
            if level > deepest:
                deepest = level
        return deepest

    # -- subclass surface --------------------------------------------------
    def _on_feedback(self, state: _RateState) -> None:
        """React to one congestion notification (must only lower or
        hold ``state.rate``)."""
        raise NotImplementedError

    def _on_timer(self, state: _RateState) -> None:
        """One recovery period elapsed (must never lower ``state.rate``
        when no feedback arrived since the last fire)."""
        raise NotImplementedError

    def _count_inject(self, state: _RateState, pkt: Packet) -> None:
        """Optional per-injection accounting (byte/packet counters)."""

    def _keeps_timer(self, state: _RateState) -> bool:
        """Whether a full-rate flow still needs timer service (e.g. an
        EWMA that has not fully decayed)."""
        return False

    # -- shared helpers ----------------------------------------------------
    def _clamp(self, rate: float) -> float:
        """Clamp into ``[min_rate, 1]``, snapping near-full to 1.0."""
        if rate < self.min_rate:
            return self.min_rate
        if rate >= 1.0 - FULL_RATE_SNAP:
            return 1.0
        return rate

    def _note_rate_change(
        self, key: Hashable, sl: int, old: float, state: _RateState
    ) -> None:
        if self.trace is not None and state.rate != old:
            ksrc, kdst = key if self.params.cc_mode == "qp" else (-1, sl)
            self.trace.rate_change(
                self.hca.sim.now, self.hca.node_id, ksrc, kdst, old, state.rate
            )
