"""DCTCP-style ECN-fraction EWMA scaling, registered as ``"dctcp"``.

DCTCP's insight is to scale the congestion response to the *extent* of
congestion: maintain an EWMA ``alpha`` of the fraction of packets that
came back marked and cut by ``alpha / 2`` instead of a blunt half.
Mapped onto this simulator's reaction point:

* per flow, packets injected and notifications received are counted
  over each recovery-timer period (one "observation window" — the
  closest analogue of DCTCP's per-RTT accounting that exists at the
  injection side of a fabric without acks);
* at every timer fire the window closes: ``F = marked / sent``,
  ``alpha = (1 - g) * alpha + g * F`` with gain ``g``;
* a window that saw congestion cuts ``rate *= 1 - alpha / 2``; a clean
  window recovers additively (``ai``) toward full rate.

All rate changes therefore happen on the timer (window close) or not
at all — feedback only marks the window — which satisfies the arena's
no-spontaneous-rate-change invariant by construction.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Mapping

from repro.cc.base import RateBasedCC, _RateState
from repro.cc.registry import register_mechanism
from repro.core.parameters import CCParams
from repro.network.packet import Packet

if TYPE_CHECKING:
    from repro.network.hca import Hca


class DctcpCC(RateBasedCC):
    """ECN-fraction EWMA reaction point."""

    name = "dctcp"

    __slots__ = ("gain", "ai")

    def __init__(
        self, hca: "Hca", params: CCParams, options: Mapping[str, Any]
    ) -> None:
        super().__init__(hca, params, options)
        self.gain = float(self.options["gain"])
        if not 0.0 < self.gain <= 1.0:
            raise ValueError("gain must be in (0, 1]")
        self.ai = float(self.options["ai"])
        if self.ai <= 0.0:
            raise ValueError("ai (additive increase) must be positive")

    def _on_feedback(self, state: _RateState) -> None:
        # Feedback only marks the current observation window; the rate
        # moves when the window closes at the next timer fire.
        state.extra["marked"] = state.extra.get("marked", 0.0) + 1.0

    def _count_inject(self, state: _RateState, pkt: Packet) -> None:
        state.extra["sent"] = state.extra.get("sent", 0.0) + 1.0

    def _on_timer(self, state: _RateState) -> None:
        marked = state.extra.get("marked", 0.0)
        sent = state.extra.get("sent", 0.0)
        alpha = state.extra.get("alpha", 0.0)
        # Notifications are CNP-coalesced (one may stand for a burst of
        # marks), so the fraction saturates at 1 rather than dividing
        # marked packets by marked notifications.
        fraction = min(1.0, marked / sent) if sent > 0.0 else (1.0 if marked else 0.0)
        alpha = (1.0 - self.gain) * alpha + self.gain * fraction
        state.extra["alpha"] = alpha
        state.extra["marked"] = 0.0
        state.extra["sent"] = 0.0
        if marked > 0.0:
            state.rate = self._clamp(state.rate * (1.0 - alpha / 2.0))
        elif state.rate < 1.0:
            state.rate = self._clamp(state.rate + self.ai)

    def _keeps_timer(self, state: _RateState) -> bool:
        # Keep serving a full-rate flow while its window still has
        # unprocessed marks (a notification may land between fires).
        return state.extra.get("marked", 0.0) > 0.0


DCTCP = register_mechanism(
    "dctcp",
    factory=lambda hca, params, options, shared: DctcpCC(hca, params, options),
    defaults={
        "gain": 1.0 / 16.0,  # DCTCP's g: EWMA weight of the new window
        "ai": 0.05,  # link-rate fraction regained per clean window
        "min_rate": 1.0 / 256.0,
    },
    description=(
        "DCTCP-style scaling: EWMA of the per-window notification "
        "fraction sets the cut depth (rate *= 1 - alpha/2); clean "
        "windows recover additively"
    ),
)
