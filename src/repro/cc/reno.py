"""Reno-style AIMD, registered as ``"reno"``.

The classic TCP-Reno congestion response mapped from a window onto the
injection-rate fraction (the exemplar ``Flow.on_ack`` dispatch in the
cloudcomputing congestion-sim does the same mapping at cwnd level):

* **multiplicative decrease** — every congestion notification halves
  the flow's rate (``md``, default 0.5), floored at ``min_rate``;
* **additive increase** — every recovery-timer period adds a fixed
  fraction of link rate (``ai``) until the flow is back at full rate.

Compared with the IB CCT the response to one notification is far
blunter (one BECN costs half the rate; one CCTI bump costs one table
step), which is exactly the contrast the arena is built to measure.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Mapping

from repro.cc.base import RateBasedCC, _RateState
from repro.cc.registry import register_mechanism
from repro.core.parameters import CCParams

if TYPE_CHECKING:
    from repro.network.hca import Hca


class RenoCC(RateBasedCC):
    """AIMD reaction point: halve on feedback, creep back on timer."""

    name = "reno"

    __slots__ = ("md", "ai")

    def __init__(
        self, hca: "Hca", params: CCParams, options: Mapping[str, Any]
    ) -> None:
        super().__init__(hca, params, options)
        self.md = float(self.options["md"])
        if not 0.0 < self.md < 1.0:
            raise ValueError("md (multiplicative decrease) must be in (0, 1)")
        self.ai = float(self.options["ai"])
        if self.ai <= 0.0:
            raise ValueError("ai (additive increase) must be positive")

    def _on_feedback(self, state: _RateState) -> None:
        state.rate = self._clamp(state.rate * self.md)

    def _on_timer(self, state: _RateState) -> None:
        if state.rate < 1.0:
            state.rate = self._clamp(state.rate + self.ai)


RENO = register_mechanism(
    "reno",
    factory=lambda hca, params, options, shared: RenoCC(hca, params, options),
    defaults={
        "md": 0.5,  # rate multiplier per congestion notification
        "ai": 0.05,  # link-rate fraction regained per timer period
        "min_rate": 1.0 / 256.0,
        # timer_period_ns defaults to the CCParams CCTI timer period.
    },
    description=(
        "Reno-style AIMD mapped to injection rate: halve on every "
        "notification, additively recover each timer period"
    ),
)
