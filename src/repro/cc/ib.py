"""The paper's IB FECN/BECN CCT mechanism, registered as ``"ib"``.

The implementation *is* :class:`repro.core.hca_cc.HcaCC` — the
registry entry only reroutes construction through the mechanism
factory. ``prepare`` builds the shared CCT with the exact
:func:`repro.core.cct.build_cct` call the manager always made, and the
factory forwards it to ``HcaCC(hca, params, cct)`` unchanged, so a run
selecting ``"ib"`` (explicitly or by default) replays the identical
event stream: the golden digests in ``tests/golden/digests.json`` are
the regression proof.

The ``"ib"`` mechanism has no registry-level options: its knobs are
the spec's own :class:`~repro.core.parameters.CCParams` (Table I),
which every mechanism receives anyway.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, List, Mapping

from repro.cc.registry import register_mechanism
from repro.core.cct import build_cct
from repro.core.hca_cc import HcaCC
from repro.core.parameters import CCParams

if TYPE_CHECKING:
    from repro.network.hca import Hca


def _prepare_cct(params: CCParams, options: Mapping[str, Any]) -> List[float]:
    """Build the network-wide shared CCT (one table, every HCA)."""
    return build_cct(
        params.ccti_limit, shape=params.cct_shape, slope=params.cct_slope
    )


def _build_ib(
    hca: "Hca", params: CCParams, options: Mapping[str, Any], shared: List[float]
) -> HcaCC:
    return HcaCC(hca, params, shared)


IB = register_mechanism(
    "ib",
    factory=_build_ib,
    prepare=_prepare_cct,
    defaults={},
    description=(
        "InfiniBand CCT throttling (the paper's mechanism): BECNs bump a "
        "per-flow CCT index, a periodic timer decays it, the table entry "
        "sets the injection-rate delay"
    ),
)
