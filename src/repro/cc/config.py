"""Congestion-control mechanism selection for an experiment.

The paper evaluates exactly one mechanism — IB FECN/BECN CCT
throttling — against one parameter set. :class:`CCConfig` makes the
mechanism itself an experiment axis: it names a registered
:mod:`repro.cc` mechanism and carries its per-mechanism parameter
overrides, and it participates in the result-store content key
(:func:`cc_config_to_dict`, cross-referenced by simlint KEY001) so an
arena cell never aliases a cache entry of a different mechanism.

``params`` is stored as a sorted tuple of ``(name, value)`` pairs —
hashable (the enclosing dataclasses are frozen) and deterministic in
serialization order regardless of how the mapping was supplied.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional, Tuple

#: The paper's mechanism; the default everywhere a CCConfig is absent.
DEFAULT_MECHANISM = "ib"


@dataclass(frozen=True)
class CCConfig:
    """Which congestion-control mechanism a run uses, and how tuned.

    ``mechanism`` names a registry entry (``"ib"``, ``"dctcp"``,
    ``"reno"``, ``"dcqcn"``, or anything registered via
    :func:`repro.cc.registry.register_mechanism`); ``params`` overrides
    that mechanism's default options. Construct with keyword overrides
    through :meth:`make`::

        CCConfig.make("dctcp", gain=0.125)
    """

    mechanism: str = DEFAULT_MECHANISM
    params: Tuple[Tuple[str, Any], ...] = field(default_factory=tuple)

    @classmethod
    def make(cls, mechanism: str = DEFAULT_MECHANISM, **params: Any) -> "CCConfig":
        """Build a config from keyword parameter overrides."""
        return cls(mechanism=mechanism, params=tuple(sorted(params.items())))

    def params_dict(self) -> Dict[str, Any]:
        """The parameter overrides as a plain dict."""
        return dict(self.params)

    def validate(self) -> "CCConfig":
        """Check the mechanism exists and every override names a real
        option; raises ``ValueError`` with an actionable message."""
        from repro.cc.registry import available_mechanisms, mechanism_spec

        if self.mechanism not in available_mechanisms():
            raise ValueError(
                f"unknown CC mechanism {self.mechanism!r}; registered: "
                + ", ".join(available_mechanisms())
            )
        spec = mechanism_spec(self.mechanism)
        unknown = sorted(set(self.params_dict()) - set(spec.defaults))
        if unknown:
            raise ValueError(
                f"unknown {self.mechanism!r} parameter(s) "
                f"{', '.join(unknown)}; available: "
                + (", ".join(sorted(spec.defaults)) or "(none)")
            )
        return self

    def resolved_options(self) -> Dict[str, Any]:
        """Mechanism defaults merged with this config's overrides."""
        from repro.cc.registry import mechanism_spec

        options = dict(mechanism_spec(self.mechanism).defaults)
        options.update(self.params_dict())
        return options


def cc_config_to_dict(cc: CCConfig) -> dict:
    """Serialize for the result-store content key (store.config_to_dict).

    Hand-rolled (not ``asdict``) so simlint KEY001 can cross-reference
    every :class:`CCConfig` field against the emitted keys.
    """
    return {
        "mechanism": cc.mechanism,
        "params": {str(k): v for k, v in cc.params},
    }


def cc_config_from_dict(data: Optional[Mapping[str, Any]]) -> Optional[CCConfig]:
    """Inverse of :func:`cc_config_to_dict`; ``None`` passes through."""
    if data is None:
        return None
    return CCConfig.make(data["mechanism"], **dict(data.get("params", {})))
