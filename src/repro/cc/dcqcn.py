"""DCQCN/RCM-style reaction point, registered as ``"dcqcn"``.

The RoCEv2 Rate-based Congestion Management reaction point (Liu et
al.'s PFC/RCM model, PAPERS.md), adapted to this simulator's feedback
plumbing (switch FECN marks → destination CNPs → source BECNs):

* **cut** — every CNP updates ``alpha = (1 - g) * alpha + g`` and cuts
  ``rate *= 1 - alpha / 2``, remembering the pre-cut rate as the
  *target rate*;
* **recovery** — increase events average the rate halfway back toward
  the target: the first ``fast_recovery_rounds`` events are *fast
  recovery* (target unchanged); subsequent events are *active
  increase* (target itself climbs by ``rai`` of link rate). Increase
  events come from the rate-increase **timer** and from the **byte
  counter** (every ``byte_counter`` injected bytes earns one extra
  event, folded in at the next timer fire so all rate changes stay on
  the feedback/timer clock and the no-spontaneous-change invariant
  holds); ``alpha`` also decays by ``g`` per timer period when no CNP
  arrived;
* **per-VL pause interaction** — a reaction point whose local output
  buffer VL is backed up past ``pause_threshold`` (fraction of obuf
  capacity, the PFC XOFF analogue) skips its increase events: ramping
  into a paused/backpressured VL only grows the head-of-line queue the
  pause exists to bound.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Mapping

from repro.cc.base import RateBasedCC, _RateState
from repro.cc.registry import register_mechanism
from repro.core.parameters import CCParams
from repro.network.packet import Packet

if TYPE_CHECKING:
    from repro.network.hca import Hca


class DcqcnCC(RateBasedCC):
    """RCM reaction point: alpha-scaled cuts, staged recovery."""

    name = "dcqcn"

    __slots__ = ("gain", "rai", "fast_rounds", "byte_counter", "pause_threshold")

    def __init__(
        self, hca: "Hca", params: CCParams, options: Mapping[str, Any]
    ) -> None:
        super().__init__(hca, params, options)
        self.gain = float(self.options["gain"])
        if not 0.0 < self.gain <= 1.0:
            raise ValueError("gain must be in (0, 1]")
        self.rai = float(self.options["rai"])
        if self.rai <= 0.0:
            raise ValueError("rai (active-increase step) must be positive")
        self.fast_rounds = int(self.options["fast_recovery_rounds"])
        if self.fast_rounds < 0:
            raise ValueError("fast_recovery_rounds must be >= 0")
        self.byte_counter = int(self.options["byte_counter"])
        if self.byte_counter <= 0:
            raise ValueError("byte_counter must be positive")
        self.pause_threshold = float(self.options["pause_threshold"])
        if not 0.0 < self.pause_threshold <= 1.0:
            raise ValueError("pause_threshold must be in (0, 1]")

    # -- cut ---------------------------------------------------------------
    def _on_feedback(self, state: _RateState) -> None:
        alpha = (1.0 - self.gain) * state.extra.get("alpha", 0.0) + self.gain
        state.extra["alpha"] = alpha
        state.extra["target"] = max(state.rate, self.min_rate)
        state.extra["rounds"] = 0.0
        state.extra["cnp_seen"] = 1.0
        state.rate = self._clamp_no_snap(state.rate * (1.0 - alpha / 2.0))

    # -- recovery ----------------------------------------------------------
    def _count_inject(self, state: _RateState, pkt: Packet) -> None:
        state.extra["bytes"] = state.extra.get("bytes", 0.0) + pkt.wire_size

    def _on_timer(self, state: _RateState) -> None:
        if not state.extra.get("cnp_seen"):
            # Quiet period: alpha keeps decaying toward zero.
            state.extra["alpha"] = (1.0 - self.gain) * state.extra.get("alpha", 0.0)
        state.extra["cnp_seen"] = 0.0
        if state.rate >= 1.0:
            return
        if self._vl_paused():
            # PFC-style pause interaction: hold increase events while
            # the local VL is backpressured past the XOFF threshold.
            return
        # One timer event plus one per byte_counter bytes sent since
        # the last fire (the RCM byte counter, folded into timer time).
        events = 1 + int(state.extra.get("bytes", 0.0) // self.byte_counter)
        state.extra["bytes"] = 0.0
        for _ in range(events):
            self._increase(state)
            if state.rate >= 1.0:
                break

    def _increase(self, state: _RateState) -> None:
        target = state.extra.get("target", 1.0)
        rounds = state.extra.get("rounds", 0.0)
        if rounds >= self.fast_rounds:
            target = min(1.0, target + self.rai)
        state.extra["target"] = target
        state.extra["rounds"] = rounds + 1.0
        # Halfway toward target; the base clamp snaps ~1 to exactly 1.
        state.rate = self._clamp(max(state.rate, (target + state.rate) / 2.0))

    def _vl_paused(self) -> bool:
        """Whether any HCA output-buffer VL queue is past XOFF."""
        obuf = self.hca.obuf
        threshold = self.pause_threshold * obuf.capacity
        return any(
            sum(p.wire_size for p in q) >= threshold for q in obuf.queues
        )

    def _keeps_timer(self, state: _RateState) -> bool:
        # Alpha decay continues after full recovery until negligible.
        return state.extra.get("alpha", 0.0) > 1e-6

    def _clamp_no_snap(self, rate: float) -> float:
        """Cut-side clamp: floor only (a cut must never snap up to 1)."""
        return rate if rate >= self.min_rate else self.min_rate


DCQCN = register_mechanism(
    "dcqcn",
    factory=lambda hca, params, options, shared: DcqcnCC(hca, params, options),
    defaults={
        "gain": 1.0 / 16.0,  # g: alpha EWMA weight per CNP / decay per period
        "rai": 0.05,  # active-increase target step (link-rate fraction)
        "fast_recovery_rounds": 5,
        "byte_counter": 150_000,  # bytes per extra increase event
        "pause_threshold": 0.5,  # obuf VL fraction acting as PFC XOFF
        "min_rate": 1.0 / 256.0,
    },
    description=(
        "DCQCN/RCM reaction point: alpha-scaled multiplicative cuts per "
        "CNP, fast-recovery then active-increase ramp driven by the "
        "rate-increase timer and byte counter, holding increases while "
        "the local VL is pause-backpressured"
    ),
)
