"""The congestion-control mechanism registry.

A mechanism is registered once, by name, with everything the
:class:`~repro.core.manager.CCManager` needs to install it on a
network:

* ``prepare(params, options)`` — run once per network; returns shared
  state every HCA's instance receives (the IB mechanism builds its CCT
  here, exactly as the manager always did, which is what keeps the
  default path byte-identical to the pre-registry code);
* ``factory(hca, params, options, shared)`` — build one reaction-point
  instance per HCA, satisfying :class:`repro.cc.base.CongestionControl`;
* ``defaults`` — the mechanism's tunable options, the universe
  :meth:`repro.cc.config.CCConfig.validate` checks overrides against.

Registering a new mechanism is the documented extension point (see
README "Congestion-control arena")::

    from repro.cc import register_mechanism

    register_mechanism(
        "mine",
        factory=lambda hca, params, options, shared: MyCC(hca, params, options),
        defaults={"gain": 0.5},
        description="my reaction point",
    )

Experiment cells then select it with ``CCConfig.make("mine", gain=1.0)``
or ``--cc mine:gain=1.0`` on the CLI, and ``repro arena`` includes it
in the cross-mechanism matrix automatically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Mapping, Optional, Tuple


def _no_shared(params: Any, options: Mapping[str, Any]) -> None:
    """Default ``prepare``: the mechanism needs no per-network state."""
    return None


@dataclass(frozen=True)
class MechanismSpec:
    """One registered congestion-control mechanism."""

    name: str
    factory: Callable[..., Any]
    description: str = ""
    defaults: Mapping[str, Any] = field(default_factory=dict)
    prepare: Callable[[Any, Mapping[str, Any]], Any] = _no_shared


_REGISTRY: Dict[str, MechanismSpec] = {}


def register_mechanism(
    name: str,
    *,
    factory: Callable[..., Any],
    description: str = "",
    defaults: Optional[Mapping[str, Any]] = None,
    prepare: Callable[[Any, Mapping[str, Any]], Any] = _no_shared,
    replace: bool = False,
) -> MechanismSpec:
    """Register (or with ``replace=True``, overwrite) a mechanism."""
    if not name or not name.isidentifier():
        raise ValueError(f"mechanism name must be an identifier (got {name!r})")
    if name in _REGISTRY and not replace:
        raise ValueError(f"mechanism {name!r} is already registered")
    spec = MechanismSpec(
        name=name,
        factory=factory,
        description=description,
        defaults=dict(defaults or {}),
        prepare=prepare,
    )
    _REGISTRY[name] = spec
    return spec


def mechanism_spec(name: str) -> MechanismSpec:
    """Look a mechanism up; raises ``ValueError`` naming the options."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown CC mechanism {name!r}; registered: "
            + ", ".join(available_mechanisms())
        ) from None


def available_mechanisms() -> Tuple[str, ...]:
    """Registered mechanism names, sorted for deterministic listings."""
    return tuple(sorted(_REGISTRY))
