"""Pluggable congestion control (the ``repro arena``'s subject).

The paper studies one mechanism — InfiniBand's FECN/BECN CCT
throttling. This package turns the mechanism into an axis: a
:class:`CongestionControl` protocol extracted from the seed reaction
point, a registry of implementations, and :class:`CCConfig` to select
one per experiment. Shipped mechanisms:

* ``"ib"`` — the paper's CCT mechanism (byte-identical default);
* ``"dctcp"`` — ECN-fraction EWMA scaling;
* ``"reno"`` — AIMD window-halving mapped to injection rate;
* ``"dcqcn"`` — RCM-style reaction point with byte counter and
  per-VL pause interaction.

Importing the package registers all four.
"""

from repro.cc.base import FULL_RATE_SNAP, CongestionControl, RateBasedCC
from repro.cc.config import (
    DEFAULT_MECHANISM,
    CCConfig,
    cc_config_from_dict,
    cc_config_to_dict,
)
from repro.cc.registry import (
    MechanismSpec,
    available_mechanisms,
    mechanism_spec,
    register_mechanism,
)

# Importing the mechanism modules runs their register_mechanism calls.
from repro.cc import dcqcn as _dcqcn  # noqa: F401
from repro.cc import dctcp as _dctcp  # noqa: F401
from repro.cc import ib as _ib  # noqa: F401
from repro.cc import reno as _reno  # noqa: F401

__all__ = [
    "FULL_RATE_SNAP",
    "CongestionControl",
    "RateBasedCC",
    "DEFAULT_MECHANISM",
    "CCConfig",
    "cc_config_from_dict",
    "cc_config_to_dict",
    "MechanismSpec",
    "available_mechanisms",
    "mechanism_spec",
    "register_mechanism",
]
