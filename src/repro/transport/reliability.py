"""Per-HCA reliable-delivery state: the Reliable Connection machinery.

Send side (per destination flow): packets are stamped with consecutive
PSNs at injection and held in an in-flight deque until cumulatively
acked. One retransmission timer per flow runs an RFC6298-style
srtt/rttvar RTO estimate with Karn's rule (no samples from
retransmitted packets), exponential backoff on consecutive timeouts,
and seeded jitter. A timeout re-queues every unacked packet for
retransmission through the HCA's normal injection path (retransmits
drain ahead of fresh generator traffic). ``max_retries`` consecutive
timeouts put the flow into ``FAILED``: pending packets are charged as
permanently lost, later injections of the flow are discarded at the
source, and the run completes degraded-but-valid.

Receive side (per source flow): in-order PSNs are accepted and
acknowledged with coalesced cumulative acks on the CNP VL; duplicates
and out-of-order arrivals are discarded before the sink counts them
(go-back-N — the fabric itself never reorders, so out-of-order means a
preceding packet was lost to a fault).

Everything runs in simulated event-time; the only randomness is the
RTO jitter, drawn from a keyed per-node RNG stream
(``rng.stream("transport", node)``) so transport-enabled runs remain
deterministic and jobs-invariant.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional

from repro.network.packet import Packet
from repro.transport.config import TransportConfig

FLOW_OK = "ok"
FLOW_RECOVERING = "recovering"
FLOW_FAILED = "failed"


class _Entry:
    """One unacked in-flight packet."""

    __slots__ = ("psn", "payload", "vl", "sl", "msg_id", "t_sent", "retx", "queued")

    def __init__(self, psn: int, payload: int, vl: int, sl: int, msg_id: int, t_sent: float) -> None:
        self.psn = psn
        self.payload = payload
        self.vl = vl
        self.sl = sl
        self.msg_id = msg_id
        self.t_sent = t_sent
        self.retx = 0
        self.queued = False


class _TxFlow:
    """Sender-side state for one (this node -> dst) flow."""

    __slots__ = (
        "dst",
        "next_psn",
        "acked_psn",
        "unacked",
        "srtt",
        "rttvar",
        "rto_ns",
        "consecutive_timeouts",
        "timer_id",
        "deadline",
        "state",
        "retx_packets",
        "retx_bytes",
        "timeouts",
        "dup_acks",
        "failed_discards",
        "recovery_start",
        "recovery_target",
        "recovery_ns",
    )

    def __init__(self, dst: int, rto_init_ns: float) -> None:
        self.dst = dst
        self.next_psn = 0
        self.acked_psn = -1
        self.unacked: deque = deque()
        self.srtt: Optional[float] = None
        self.rttvar = 0.0
        self.rto_ns = rto_init_ns
        self.consecutive_timeouts = 0
        self.timer_id: Optional[int] = None
        self.deadline = 0.0
        self.state = FLOW_OK
        self.retx_packets = 0
        self.retx_bytes = 0
        self.timeouts = 0
        self.dup_acks = 0
        self.failed_discards = 0
        self.recovery_start = 0.0
        self.recovery_target = -1
        self.recovery_ns = 0.0

    def pending_bytes(self) -> int:
        return sum(e.payload for e in self.unacked)


class _RxFlow:
    """Receiver-side state for one (src -> this node) flow."""

    __slots__ = (
        "src",
        "expected",
        "dup_discards",
        "ooo_discards",
        "acks_sent",
        "last_ack_t",
        "ack_pending",
    )

    def __init__(self, src: int) -> None:
        self.src = src
        self.expected = 0
        self.dup_discards = 0
        self.ooo_discards = 0
        self.acks_sent = 0
        self.last_ack_t = -float("inf")
        self.ack_pending = False


class HcaTransport:
    """One HCA's reliable-delivery engine (both flow directions)."""

    __slots__ = (
        "hca",
        "sim",
        "config",
        "rng",
        "node_id",
        "tx_flows",
        "rx_flows",
        "retx_queue",
    )

    def __init__(self, hca, config: TransportConfig, rng) -> None:
        self.hca = hca
        self.sim = hca.sim
        self.config = config
        self.rng = rng
        self.node_id = hca.node_id
        self.tx_flows: Dict[int, _TxFlow] = {}
        self.rx_flows: Dict[int, _RxFlow] = {}
        # (flow, entry, due) triples awaiting retransmission; drained by
        # Hca.pull ahead of fresh generator traffic.
        self.retx_queue: deque = deque()

    # -- send side -----------------------------------------------------
    def can_send(self, dst: int) -> bool:
        """Whether the flow to ``dst`` has in-flight window left.

        FAILED flows report True: their packets are accepted and
        discarded at registration, so a generator never wedges on a
        dead destination.
        """
        flow = self.tx_flows.get(dst)
        if flow is None or flow.state == FLOW_FAILED:
            return True
        return len(flow.unacked) < self.config.window_packets

    def register(self, pkt: Packet) -> bool:
        """Sequence a freshly injected data packet; False = discard.

        Called by :meth:`Hca.pull` before the packet reaches metrics,
        tracing, or the output buffer. A FAILED flow blackholes its
        traffic here (counted in ``failed_discards``).
        """
        flow = self.tx_flows.get(pkt.dst)
        if flow is None:
            flow = _TxFlow(pkt.dst, self.config.rto_init_ns)
            self.tx_flows[pkt.dst] = flow
        if flow.state == FLOW_FAILED:
            flow.failed_discards += 1
            return False
        psn = flow.next_psn
        flow.next_psn = psn + 1
        pkt.psn = psn
        flow.unacked.append(
            _Entry(psn, pkt.payload, pkt.vl, pkt.sl, pkt.msg_id, self.sim.now)
        )
        if flow.timer_id is None:
            self._arm_timer(flow)
        return True

    def next_retx(self) -> Optional[Packet]:
        """Build the next pending retransmission, or None when drained.

        Entries acked (or failed) after queueing are skipped — the
        queue holds references, not copies, so a late ack cancels the
        resend for free.
        """
        queue = self.retx_queue
        while queue:
            flow, entry, due = queue.popleft()
            entry.queued = False
            if flow.state == FLOW_FAILED or entry.psn <= flow.acked_psn:
                continue
            now = self.sim.now
            pkt = Packet.acquire(
                self.node_id,
                flow.dst,
                entry.payload,
                header=self.hca.config.header_bytes,
                vl=entry.vl,
                sl=entry.sl,
                msg_id=entry.msg_id,
            )
            pkt.psn = entry.psn
            pkt.t_inject = now
            entry.retx += 1
            entry.t_sent = now
            flow.retx_packets += 1
            flow.retx_bytes += entry.payload
            trace = self.hca.trace
            if trace is not None:
                trace.retx(
                    now, self.node_id, flow.dst, entry.psn, entry.retx,
                    entry.payload, due,
                )
            return pkt
        return None

    def on_ack(self, pkt: Packet) -> None:
        """Cumulative ack from ``pkt.src`` covering PSNs <= ``pkt.psn``."""
        flow = self.tx_flows.get(pkt.src)
        if flow is None or flow.state == FLOW_FAILED:
            return
        psn = pkt.psn
        if psn <= flow.acked_psn:
            flow.dup_acks += 1
            return
        now = self.sim.now
        sample = None
        unacked = flow.unacked
        while unacked and unacked[0].psn <= psn:
            entry = unacked.popleft()
            if entry.retx == 0:
                sample = now - entry.t_sent
        flow.acked_psn = psn
        flow.consecutive_timeouts = 0
        if sample is not None:
            # Karn's rule: only never-retransmitted packets sample RTT.
            self._update_rtt(flow, sample)
        flow.rto_ns = self._estimated_rto(flow)
        if unacked:
            # Lazy timer: push the deadline out; the already-scheduled
            # fire re-checks it instead of paying a heap cancel+push
            # per ack.
            self._arm_timer(flow)
        else:
            self._cancel_timer(flow)
        if flow.state == FLOW_RECOVERING and psn >= flow.recovery_target:
            flow.recovery_ns += now - flow.recovery_start
            flow.state = FLOW_OK
        # The window moved: window-blocked generator streams re-evaluate.
        self.hca.kick()

    def _update_rtt(self, flow: _TxFlow, sample: float) -> None:
        if flow.srtt is None:
            flow.srtt = sample
            flow.rttvar = sample / 2.0
        else:
            flow.rttvar = 0.75 * flow.rttvar + 0.25 * abs(flow.srtt - sample)
            flow.srtt = 0.875 * flow.srtt + 0.125 * sample

    def _estimated_rto(self, flow: _TxFlow) -> float:
        cfg = self.config
        if flow.srtt is None:
            base = cfg.rto_init_ns
        else:
            base = flow.srtt + 4.0 * flow.rttvar
        return min(max(base, cfg.rto_min_ns), cfg.rto_max_ns)

    def _arm_timer(self, flow: _TxFlow) -> None:
        """Set the flow's RTO deadline; schedule a fire only if none is.

        The physical event is scheduled at most once per quiet period:
        acks merely advance ``flow.deadline``, and a fire that lands
        before the (moved) deadline reschedules itself for the rest.
        """
        jitter = 1.0 + self.config.jitter_frac * (2.0 * self.rng.random() - 1.0)
        delay = flow.rto_ns * jitter
        flow.deadline = self.sim.now + delay
        if flow.timer_id is None:
            flow.timer_id = self.sim.schedule(delay, self._on_timeout, flow)

    def _cancel_timer(self, flow: _TxFlow) -> None:
        if flow.timer_id is not None:
            self.sim.cancel(flow.timer_id)
            flow.timer_id = None

    def _on_timeout(self, flow: _TxFlow) -> None:
        flow.timer_id = None
        if not flow.unacked or flow.state == FLOW_FAILED:
            return
        now = self.sim.now
        if now < flow.deadline:
            # Acks moved the deadline since this fire was queued: this
            # is not a timeout, just the lazy timer catching up.
            flow.timer_id = self.sim.schedule(
                flow.deadline - now, self._on_timeout, flow
            )
            return
        flow.consecutive_timeouts += 1
        flow.timeouts += 1
        if flow.consecutive_timeouts > self.config.max_retries:
            self._fail(flow)
            return
        if flow.state == FLOW_OK:
            flow.state = FLOW_RECOVERING
            flow.recovery_start = now
            flow.recovery_target = flow.next_psn - 1
        # Exponential backoff for the next deadline, then go-back-N:
        # everything unacked goes back on the wire.
        flow.rto_ns = min(flow.rto_ns * 2.0, self.config.rto_max_ns)
        for entry in flow.unacked:
            if not entry.queued:
                entry.queued = True
                self.retx_queue.append((flow, entry, now))
        self._arm_timer(flow)
        self.hca.kick()

    def _fail(self, flow: _TxFlow) -> None:
        """Retry budget exhausted: structured FAILED state, run goes on."""
        now = self.sim.now
        pending = flow.pending_bytes()
        trace = self.hca.trace
        if trace is not None:
            trace.flow_failed(
                now, self.node_id, flow.dst, flow.acked_psn, pending,
                flow.consecutive_timeouts,
            )
        flow.state = FLOW_FAILED
        # Unacked entries stay for the final flow summary; the retx
        # queue skips FAILED flows, and can_send/register blackhole
        # further traffic. The kick un-wedges a window-blocked source.
        self.hca.kick()

    # -- receive side --------------------------------------------------
    def on_data(self, pkt: Packet) -> bool:
        """Accept or discard an arriving data packet; False = discard."""
        st = self.rx_flows.get(pkt.src)
        if st is None:
            st = _RxFlow(pkt.src)
            self.rx_flows[pkt.src] = st
        psn = pkt.psn
        if psn == st.expected:
            st.expected = psn + 1
            self._note_ack(st)
            return True
        # Go-back-N: anything not exactly in order is a surplus copy
        # (dup) or implies a lost predecessor (ooo) — discard, and
        # re-ack so a sender whose acks were lost in flight advances.
        if psn < st.expected:
            st.dup_discards += 1
            reason = "dup"
        else:
            st.ooo_discards += 1
            reason = "ooo"
        trace = self.hca.trace
        if trace is not None:
            trace.drop(
                self.sim.now, "h", self.node_id, 0, pkt.vl, pkt.src, pkt.dst,
                pkt.payload, 0, reason,
            )
        self._note_ack(st)
        return False

    def _note_ack(self, st: _RxFlow) -> None:
        """Send a cumulative ack now, or coalesce into a trailing one."""
        if st.ack_pending:
            return
        now = self.sim.now
        wait = st.last_ack_t + self.config.ack_coalesce_ns - now
        if wait <= 0:
            self._send_ack(st)
        else:
            st.ack_pending = True
            self.sim.schedule(wait, self._flush_ack, st)

    def _flush_ack(self, st: _RxFlow) -> None:
        st.ack_pending = False
        self._send_ack(st)

    def _send_ack(self, st: _RxFlow) -> None:
        psn = st.expected - 1
        if psn < 0:
            return
        now = self.sim.now
        st.last_ack_t = now
        st.acks_sent += 1
        pkt = Packet.ack(self.node_id, st.src, psn, vl=self.hca.config.cnp_vl)
        pkt.t_inject = now
        trace = self.hca.trace
        if trace is not None:
            trace.ack(now, self.node_id, st.src, psn)
        self.hca.obuf.enqueue(pkt)

    # -- introspection -------------------------------------------------
    def failed_flows(self) -> int:
        return sum(1 for f in self.tx_flows.values() if f.state == FLOW_FAILED)


class TransportLayer:
    """Run-wide transport wiring: one :class:`HcaTransport` per HCA."""

    def __init__(self, network, config: TransportConfig, rng) -> None:
        self.network = network
        self.config = config
        self.transports: List[HcaTransport] = []
        self._rng = rng
        self._finalized = False

    def install(self) -> "TransportLayer":
        for hca in self.network.hcas:
            tr = HcaTransport(
                hca, self.config, self._rng.stream("transport", hca.node_id)
            )
            hca.transport = tr
            self.transports.append(tr)
        return self

    def finalize(self) -> "TransportLayer":
        """Seal the run: one ``flowsum`` trace record per sender flow.

        The auditor's strict conservation closes over these records —
        for every non-FAILED flow, delivered + still-pending payload
        must cover everything injected (no bytes permanently lost).
        Call after ``network.run`` returns, before the trace session
        closes. Idempotent.
        """
        if self._finalized:
            return self
        self._finalized = True
        for tr in self.transports:
            trace = tr.hca.trace
            if trace is None:
                continue
            now = tr.sim.now
            for dst, flow in tr.tx_flows.items():
                trace.flow_summary(
                    now, tr.node_id, dst, flow.state, flow.acked_psn,
                    flow.next_psn, flow.pending_bytes(), flow.retx_packets,
                    flow.timeouts,
                )
        return self
