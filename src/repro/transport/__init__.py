"""Reliable Connection transport: PSN sequencing, acks, retransmission.

The IB spec's congestion control (the paper's subject) assumes
Reliable Connection transport underneath: FECN/BECN throttling is only
meaningful if the fabric eventually delivers everything. The fault
layer (:mod:`repro.faults`) can lose packets in flight — this package
adds the recovery path so faulted runs degrade gracefully instead of
silently losing bytes.

* :class:`TransportConfig` — the knob set (window, RTO bounds, retry
  budget, ack coalescing); part of :class:`ExperimentConfig` and the
  result-store content key.
* :class:`HcaTransport` — one HCA's reliable-delivery state: per-flow
  PSN sequencing and in-flight window on the send side, cumulative
  ack generation and duplicate/out-of-order discard on the receive
  side, an RTO timer with srtt/rttvar estimation, exponential backoff
  with seeded jitter, and a bounded retry budget. On budget exhaustion
  a flow enters a structured ``FAILED`` state and the run completes
  degraded-but-valid.
* :class:`TransportLayer` — installs one :class:`HcaTransport` per HCA
  and seals the run with per-flow ``flowsum`` trace records, which the
  auditor uses for *strict* byte conservation (every dropped byte is
  retransmitted or attributed to a FAILED flow).

Everything runs in simulated event-time with seeded jitter, so
transport-enabled runs stay deterministic and jobs-invariant.
"""

from repro.transport.config import TransportConfig, transport_from_dict, transport_to_dict
from repro.transport.reliability import (
    FLOW_FAILED,
    FLOW_OK,
    FLOW_RECOVERING,
    HcaTransport,
    TransportLayer,
)

__all__ = [
    "TransportConfig",
    "transport_to_dict",
    "transport_from_dict",
    "HcaTransport",
    "TransportLayer",
    "FLOW_OK",
    "FLOW_RECOVERING",
    "FLOW_FAILED",
]
