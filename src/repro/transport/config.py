"""Transport configuration: the reliable-delivery knob set.

Defaults are sized for the simulated fabric (20 Gbit/s links, a few µs
base RTT, but *hundreds* of µs of credit-stall queueing once a hotspot
saturates): the minimum RTO sits well above the worst observed
congestion RTT so clean runs never retransmit spuriously, while the
maximum bounds the exponential backoff so a flow recovers promptly
once a transient fault clears. Fault tests at sub-millisecond sim
times should tune the RTOs down explicitly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class TransportConfig:
    """Reliable Connection transport parameters.

    ``window_packets`` — per-flow in-flight (unacked) packet cap; a
    sender whose window is full skips that flow until an ack frees it.
    ``rto_init_ns`` — retransmission timeout before any RTT sample.
    ``rto_min_ns``/``rto_max_ns`` — clamp for the srtt/rttvar-derived
    RTO and the exponential backoff.
    ``max_retries`` — consecutive timeouts a flow survives before it is
    declared ``FAILED`` (its pending bytes are charged as permanently
    lost and the run completes degraded-but-valid).
    ``ack_coalesce_ns`` — minimum spacing of acks per flow; arrivals
    inside the window share one trailing cumulative ack.
    ``jitter_frac`` — seeded uniform jitter applied to every armed RTO
    (``rto * (1 ± jitter_frac)``) so synchronized flows don't
    retransmit in lockstep. Deterministic: drawn from the run's keyed
    RNG registry.
    """

    window_packets: int = 32
    rto_init_ns: float = 1_000_000.0
    rto_min_ns: float = 500_000.0
    rto_max_ns: float = 8_000_000.0
    max_retries: int = 8
    ack_coalesce_ns: float = 10_000.0
    jitter_frac: float = 0.1

    def __post_init__(self) -> None:
        if self.window_packets < 1:
            raise ValueError("window_packets must be >= 1")
        if self.rto_init_ns <= 0 or self.rto_min_ns <= 0:
            raise ValueError("RTO values must be positive")
        if self.rto_max_ns < self.rto_min_ns:
            raise ValueError("rto_max_ns must be >= rto_min_ns")
        if self.max_retries < 1:
            raise ValueError("transport retry budget (max_retries) must be >= 1")
        if self.ack_coalesce_ns < 0:
            raise ValueError("ack_coalesce_ns must be >= 0")
        if not 0.0 <= self.jitter_frac < 1.0:
            raise ValueError("jitter_frac must be in [0, 1)")

    @property
    def min_retx_gap_ns(self) -> float:
        """Lower bound on the spacing of consecutive RTO fires per flow.

        Every armed timeout is at least ``rto_min * (1 - jitter_frac)``
        in the future — the auditor's no-retx-before-timeout invariant.
        """
        return self.rto_min_ns * (1.0 - self.jitter_frac)


def transport_to_dict(cfg: Optional[TransportConfig]) -> Optional[dict]:
    """Serialize for the result store / JSON manifests (None passes through)."""
    if cfg is None:
        return None
    return {
        "window_packets": cfg.window_packets,
        "rto_init_ns": cfg.rto_init_ns,
        "rto_min_ns": cfg.rto_min_ns,
        "rto_max_ns": cfg.rto_max_ns,
        "max_retries": cfg.max_retries,
        "ack_coalesce_ns": cfg.ack_coalesce_ns,
        "jitter_frac": cfg.jitter_frac,
    }


def transport_from_dict(data: Optional[dict]) -> Optional[TransportConfig]:
    """Inverse of :func:`transport_to_dict`."""
    if data is None:
        return None
    return TransportConfig(**data)
