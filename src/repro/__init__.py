"""repro — InfiniBand congestion control, reproduced.

A packet-level discrete-event simulator of InfiniBand fat-tree
networks with the full IB congestion control mechanism (FECN/BECN
closed-loop rate throttling), built to reproduce Gran et al.,
*Exploring the Scope of the InfiniBand Congestion Control Mechanism*,
IPDPS 2012.

Quick start::

    from repro import quick_simulation

    result = quick_simulation(radix=4, cc=True, sim_time_ns=2e6)
    print(result["rates_gbps"])

or assemble the pieces yourself — see ``examples/quickstart.py``.
"""

from repro.engine import Simulator, RngRegistry
from repro.network import Network, NetworkConfig, Hca, HcaConfig, LinkConfig, Switch
from repro.core import CCParams, CCManager, build_cct
from repro.cc import CCConfig, available_mechanisms, register_mechanism
from repro.topology import (
    three_stage_fat_tree,
    sun_dcs_648,
    folded_clos,
    topology_from_graph,
    Topology,
)
from repro.traffic import BNodeSource, FixedRateSource, HotspotSchedule, assign_roles
from repro.metrics import Collector, group_rates, tmax_gbps, jain_fairness
from repro.trace import TraceAuditor, TraceSession, TraceSpec
from repro.transport import TransportConfig, TransportLayer

__version__ = "1.0.0"

__all__ = [
    "Simulator",
    "RngRegistry",
    "Network",
    "NetworkConfig",
    "Hca",
    "HcaConfig",
    "LinkConfig",
    "Switch",
    "CCParams",
    "CCManager",
    "CCConfig",
    "available_mechanisms",
    "register_mechanism",
    "build_cct",
    "three_stage_fat_tree",
    "sun_dcs_648",
    "folded_clos",
    "topology_from_graph",
    "Topology",
    "BNodeSource",
    "FixedRateSource",
    "HotspotSchedule",
    "assign_roles",
    "Collector",
    "group_rates",
    "tmax_gbps",
    "jain_fairness",
    "TraceAuditor",
    "TraceSession",
    "TraceSpec",
    "TransportConfig",
    "TransportLayer",
    "quick_simulation",
]


def quick_simulation(
    *,
    radix: int = 4,
    cc: bool = True,
    sim_time_ns: float = 2_000_000.0,
    warmup_ns: float = 200_000.0,
    n_hotspots: int = 1,
    seed: int = 1,
):
    """One-call demo: contributors saturate hotspots on a small fat-tree.

    Returns a dict with per-node receive rates and CC statistics. For
    real experiments use :mod:`repro.experiments`.
    """
    topo = three_stage_fat_tree(radix)
    sim = Simulator()
    rng = RngRegistry(seed)
    collector = Collector(topo.n_hosts, warmup_ns=warmup_ns)
    net = Network(sim, topo, NetworkConfig(), collector=collector)

    manager = None
    if cc:
        manager = CCManager(CCParams.paper_table1()).install(net)

    hotspots = list(range(n_hotspots))
    schedule = HotspotSchedule(hotspots)
    for node in range(topo.n_hosts):
        if node in hotspots:
            continue
        src = BNodeSource(
            node,
            topo.n_hosts,
            1.0,
            rng.stream("gen", node),
            hotspot=(lambda s=schedule: s.target(0)),
        )
        src.bind(net.hcas[node])
        net.hcas[node].attach_generator(src)
    net.run(until=sim_time_ns)

    return {
        "rates_gbps": collector.all_rx_rates_gbps(sim_time_ns),
        "total_gbps": collector.total_rx_rate_gbps(sim_time_ns),
        "fecn_marks": manager.total_marks() if manager else 0,
        "becns": manager.total_becns() if manager else 0,
        "events": sim.events_executed,
    }
