"""Per-tenant fair queueing and admission control for the daemon.

**Fairness.** Each tenant owns a priority queue of still-queued
flights; dispatch slots rotate round-robin across tenants that have
work, so a tenant that dumps a thousand-cell campaign cannot starve a
tenant submitting single cells. Within one tenant, flights order by
``(priority, submission seq)`` — priority 0 is most urgent, ties run
in submission order.

**Admission.** The daemon sheds load *at the door* instead of letting
the backlog grow unboundedly: a submission that would push the queue
past ``max_queued``, the total unfinished-cell budget past
``max_inflight``, or one tenant's backlog past ``max_tenant_queued``
is rejected with HTTP 429 and a ``Retry-After`` estimate derived from
the observed service rate (queued work ÷ workers × average cell wall
time). Clients that honor Retry-After converge on the daemon's actual
throughput.
"""

from __future__ import annotations

import heapq
import math
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.serve.singleflight import FLIGHT_QUEUED, Flight


class FairScheduler:
    """Round-robin across tenants, ``(priority, seq)`` within a tenant.

    Cancelled flights are lazily skipped at pop time (cheap removal
    without heap surgery).
    """

    def __init__(self) -> None:
        #: tenant -> heap of (priority, seq, Flight); OrderedDict keeps
        #: the round-robin rotation deterministic.
        self._queues: OrderedDict[str, List[Tuple[int, int, Flight]]] = (
            OrderedDict()
        )

    def push(self, flight: Flight) -> None:
        heap = self._queues.get(flight.tenant)
        if heap is None:
            heap = []
            self._queues[flight.tenant] = heap
        heapq.heappush(heap, (flight.priority, flight.seq, flight))

    def pop(self) -> Optional[Flight]:
        """The next runnable flight under fair rotation, or None."""
        for tenant in list(self._queues):
            heap = self._queues[tenant]
            flight = None
            while heap:
                _, _, candidate = heapq.heappop(heap)
                if candidate.state == FLIGHT_QUEUED:
                    flight = candidate
                    break
            if not heap:
                del self._queues[tenant]
            if flight is not None:
                if tenant in self._queues:
                    # Rotate: this tenant goes to the back of the ring.
                    self._queues.move_to_end(tenant)
                return flight
        return None

    def clear(self) -> List[Flight]:
        """Drop every queued flight (daemon drain); returns them."""
        dropped = []
        for heap in self._queues.values():
            dropped.extend(
                f for _, _, f in heap if f.state == FLIGHT_QUEUED
            )
        self._queues.clear()
        return dropped

    def __len__(self) -> int:
        return sum(
            1
            for heap in self._queues.values()
            for _, _, f in heap
            if f.state == FLIGHT_QUEUED
        )

    def queued_for(self, tenant: str) -> int:
        return sum(
            1
            for _, _, f in self._queues.get(tenant, [])
            if f.state == FLIGHT_QUEUED
        )

    def tenants(self) -> List[str]:
        return [t for t in self._queues if self.queued_for(t)]


@dataclass
class AdmissionLimits:
    """The daemon's load-shedding knobs (CLI ``--max-*`` flags)."""

    #: Queued-flight ceiling across all tenants.
    max_queued: int = 512
    #: One tenant's queued-flight ceiling.
    max_tenant_queued: int = 256
    #: Total unfinished admitted cells (queued + executing).
    max_inflight: int = 2048
    #: Cells a single campaign may carry.
    max_campaign_cells: int = 4096


class ShedLoad(Exception):
    """The admission controller refused a submission (HTTP 429)."""

    def __init__(self, reason: str, retry_after_s: int) -> None:
        super().__init__(reason)
        self.reason = reason
        self.retry_after_s = retry_after_s


class AdmissionController:
    """Decides, per submission, whether the daemon takes the work."""

    def __init__(self, limits: AdmissionLimits, workers: int) -> None:
        self.limits = limits
        self.workers = max(1, workers)
        #: EWMA of completed-cell wall seconds, seeding the Retry-After
        #: estimate before any cell has finished.
        self._avg_wall_s = 1.0
        self.shed_count = 0
        self.shed_by_reason: Dict[str, int] = {}

    def observe_wall(self, wall_s: float) -> None:
        """Fold one completed cell's wall time into the service rate."""
        if wall_s > 0:
            self._avg_wall_s += 0.2 * (wall_s - self._avg_wall_s)

    def retry_after_s(self, backlog: int) -> int:
        """Seconds until ~half the current backlog should have drained."""
        est = backlog * self._avg_wall_s / (2.0 * self.workers)
        return max(1, min(600, math.ceil(est)))

    def admit(
        self,
        *,
        tenant: str,
        new_flights: int,
        queued: int,
        tenant_queued: int,
        inflight_cells: int,
    ) -> None:
        """Raise :class:`ShedLoad` if the submission must be shed."""
        limits = self.limits
        backlog = queued + inflight_cells
        if queued + new_flights > limits.max_queued:
            self._shed("queue_full")
            raise ShedLoad(
                f"queue depth {queued} + {new_flights} new cell(s) exceeds "
                f"max_queued={limits.max_queued}",
                self.retry_after_s(backlog),
            )
        if tenant_queued + new_flights > limits.max_tenant_queued:
            self._shed("tenant_quota")
            raise ShedLoad(
                f"tenant {tenant!r} backlog {tenant_queued} + {new_flights} "
                f"exceeds max_tenant_queued={limits.max_tenant_queued}",
                self.retry_after_s(tenant_queued),
            )
        if inflight_cells + queued + new_flights > limits.max_inflight:
            self._shed("inflight_budget")
            raise ShedLoad(
                f"in-flight budget exhausted: {inflight_cells} executing + "
                f"{queued} queued + {new_flights} new exceeds "
                f"max_inflight={limits.max_inflight}",
                self.retry_after_s(backlog),
            )

    def _shed(self, reason: str) -> None:
        self.shed_count += 1
        self.shed_by_reason[reason] = self.shed_by_reason.get(reason, 0) + 1
