"""The daemon's HTTP façade: routing, SSE, signals, lifecycle.

Routes (all JSON, all ``Connection: close``)::

    GET  /v1/healthz                  liveness + drain flag
    GET  /v1/stats                    queue/flight/shed/dedup counters
    POST /v1/campaigns                submit {"cells": [...], "tenant", "priority"}
    GET  /v1/campaigns/{id}           full campaign state (per-cell taxonomy)
    POST /v1/campaigns/{id}/cancel    cancel queued/running cells
    GET  /v1/campaigns/{id}/events    SSE progress stream
    GET  /v1/results/{key}            raw stored result bytes

Submission answers ``202`` with the campaign summary, ``400`` with a
per-cell problem list for invalid configs, ``429 + Retry-After`` when
admission sheds the load, and ``503`` while draining. SIGTERM/SIGINT
trigger the graceful drain: the listener closes (no new admissions),
executing cells finish within the drain budget, every manifest is
flushed, and the process exits — a subsequent start replays the
manifests (see :meth:`~repro.serve.service.CampaignService.recover`).
"""

from __future__ import annotations

import asyncio
import logging
import os
import signal
from typing import Optional, Tuple

from repro.serve.http import (
    HttpError,
    Request,
    Response,
    SSEStream,
    read_request,
    send_response,
)
from repro.serve.service import Campaign, CampaignService

log = logging.getLogger("repro.serve")


class ServeApp:
    """Binds a :class:`CampaignService` to an asyncio TCP listener."""

    def __init__(
        self,
        service: CampaignService,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        ready_file: Optional[str] = None,
    ) -> None:
        self.service = service
        self.host = host
        self.port = port
        #: When set, "host port" is written here once the listener is
        #: up — how subprocess tests discover an ephemeral port.
        self.ready_file = ready_file
        self.bound_port: Optional[int] = None
        #: The running loop, exposed so embedders (tests) can inject
        #: thread-safe shutdown requests.
        self.loop: Optional[asyncio.AbstractEventLoop] = None
        self._shutdown = asyncio.Event()

    # -- lifecycle -----------------------------------------------------

    async def run(self) -> None:
        loop = asyncio.get_running_loop()
        self.loop = loop
        recovered = self.service.start(loop)
        server = await asyncio.start_server(self._handle, self.host, self.port)
        self.bound_port = server.sockets[0].getsockname()[1]
        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(sig, self._shutdown.set)
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass  # non-POSIX loop: Ctrl-C still lands as KeyboardInterrupt
        log.info(
            "repro serve listening on %s:%d (workers=%d, store=%s); "
            "recovered %s",
            self.host, self.bound_port, self.service.workers,
            self.service.store.directory, recovered,
        )
        if self.ready_file:
            # File I/O stays off the loop thread (CON001): clients may
            # already be connecting by the time the ready file lands.
            await loop.run_in_executor(None, self._write_ready_file)

        async with server:
            await self._shutdown.wait()
            # Stop admitting first (new connections refused), then let
            # the service finish/checkpoint what is already executing.
            server.close()
            await server.wait_closed()
        await self.service.drain(loop)
        log.info("repro serve: drain complete, exiting")

    def _write_ready_file(self) -> None:
        """Atomically publish "host port" for subprocess discovery."""
        assert self.ready_file is not None
        tmp = self.ready_file + ".tmp"
        with open(tmp, "w") as fh:
            fh.write(f"{self.host} {self.bound_port}\n")
        os.replace(tmp, self.ready_file)

    def request_shutdown(self) -> None:
        self._shutdown.set()

    # -- per-connection handling ---------------------------------------

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            try:
                request = await read_request(reader)
                if request is None:
                    return
                await self._dispatch(request, writer)
            except HttpError as exc:
                await send_response(writer, Response.json(
                    exc.body(), status=exc.status, headers=exc.headers,
                ))
        except (ConnectionError, asyncio.IncompleteReadError):
            return  # the client went away mid-exchange; nothing to answer
        except Exception:
            log.exception("unhandled error serving a request")
            try:
                await send_response(
                    writer, Response.json({"error": "internal error"}, status=500)
                )
            except (ConnectionError, OSError):
                return
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                return

    async def _dispatch(
        self, request: Request, writer: asyncio.StreamWriter
    ) -> None:
        parts: Tuple[str, ...] = tuple(
            p for p in request.path.split("/") if p
        )
        method = request.method
        response: Optional[Response] = None

        if parts == ("v1", "healthz"):
            self._require(method, "GET", parts)
            response = Response.json({
                "ok": True, "draining": self.service.draining,
            })
        elif parts == ("v1", "stats"):
            self._require(method, "GET", parts)
            response = Response.json(self.service.stats())
        elif parts == ("v1", "campaigns"):
            self._require(method, "POST", parts)
            campaign = self.service.submit(request.json())
            log.info(
                "submitted campaign %s: tenant=%s cells=%d",
                campaign.id, campaign.tenant, len(campaign.cells),
            )
            response = Response.json(campaign.summary(), status=202)
        elif len(parts) == 3 and parts[:2] == ("v1", "campaigns"):
            self._require(method, "GET", parts)
            campaign = self.service.get(parts[2])
            response = Response.json(campaign.summary(include_cells=True))
        elif len(parts) == 4 and parts[:2] == ("v1", "campaigns") \
                and parts[3] == "cancel":
            self._require(method, "POST", parts)
            campaign = self.service.cancel(parts[2])
            response = Response.json(campaign.summary())
        elif len(parts) == 4 and parts[:2] == ("v1", "campaigns") \
                and parts[3] == "events":
            self._require(method, "GET", parts)
            campaign = self.service.get(parts[2])
            await self._stream_events(campaign, writer)
            return
        elif len(parts) == 3 and parts[:2] == ("v1", "results"):
            self._require(method, "GET", parts)
            body = self.service.result_bytes(parts[2])
            response = Response(
                status=200,
                headers={"Content-Type": "application/json"},
                body=body,
            )
        else:
            raise HttpError(404, f"no route {method} /{'/'.join(parts)}")

        await send_response(writer, response)

    @staticmethod
    def _require(method: str, expected: str, parts: Tuple[str, ...]) -> None:
        if method != expected:
            raise HttpError(
                405,
                f"{method} not allowed on /{'/'.join(parts)} (use {expected})",
                headers={"Allow": expected},
            )

    async def _stream_events(
        self, campaign: Campaign, writer: asyncio.StreamWriter
    ) -> None:
        """SSE: a snapshot, then deltas until the campaign finishes."""
        stream = SSEStream(writer)
        await stream.start()
        await stream.event(
            "snapshot", campaign.summary(include_cells=True)
        )
        if campaign.done:
            return
        queue = self.service.subscribe(campaign)
        try:
            while True:
                try:
                    name, payload = await asyncio.wait_for(
                        queue.get(), timeout=10.0
                    )
                except asyncio.TimeoutError:
                    await stream.comment()
                    continue
                await stream.event(name, payload)
                if name == "drain":
                    return
                if name == "campaign" and payload.get("done"):
                    return
        finally:
            self.service.unsubscribe(campaign, queue)


def run_app(service: CampaignService, **kwargs) -> None:
    """Blocking entry point: run the daemon until drain completes."""
    app = ServeApp(service, **kwargs)
    try:
        asyncio.run(app.run())
    except KeyboardInterrupt:  # pragma: no cover - non-POSIX fallback
        pass
