"""Synthetic load driver for the campaign daemon.

Drives a running ``repro serve`` with a thundering-herd workload from
many concurrent submitter threads — a configurable fraction submit the
*same* config (exercising single-flight dedup), the rest submit unique
configs (exercising fan-out and fair queueing across tenants), and a
few submissions are deliberately invalid (exercising the structured
400 path). It then waits for every accepted campaign to finish and
reports a machine-readable summary: throughput, dedup hit rate, shed
count, and whether the single-flight invariant held (the daemon's
``simulations_started`` ledger must not exceed the number of unique
configs submitted).

Used three ways: the CI ``serve-smoke`` job (``--check`` exits
non-zero when an invariant fails), the measured numbers quoted in
EXPERIMENTS.md, and ad-hoc stress runs::

    python -m repro.serve.loadgen --host 127.0.0.1 --port 8642 \\
        --submissions 200 --submitters 32 --dup-fraction 0.5 --check
"""

from __future__ import annotations

import argparse
import json
import sys
import threading
import time
from typing import List, Optional

from repro.serve.client import ServeClient

#: A deliberately tiny scale profile so load tests measure the daemon,
#: not the simulator. (radix-4 fat-tree, sub-millisecond sim windows.)
MICRO_SCALE = {
    "name": "loadgen-micro",
    "radix": 4,
    "n_hotspots": 2,
    "sim_time_ns": 6e5,
    "warmup_ns": 2e5,
    "cct_slope": 0.5,
    "moving_sim_time_ns": 4e5,
    "moving_lifetimes_ns": [2e5],
    "marking_rate": 3,
}


def micro_cell(seed: int = 3, **overrides) -> dict:
    """A minimal valid cell config for load generation."""
    cell = {
        "scale": dict(MICRO_SCALE),
        "seed": seed,
        "sim_time_ns": 6e5,
        "warmup_ns": 2e5,
    }
    cell.update(overrides)
    return cell


INVALID_CELL = {"scale": dict(MICRO_SCALE), "seed": 3, "p": 7.5}


def run_load(
    host: str,
    port: int,
    *,
    submissions: int = 200,
    submitters: int = 32,
    dup_fraction: float = 0.5,
    invalid: int = 1,
    tenants: int = 4,
    wait_timeout_s: float = 600.0,
) -> dict:
    """Fire the workload; returns the summary report dict."""
    client = ServeClient(host, port, timeout_s=wait_timeout_s)
    base_sims = client.stats()["simulations_started"]

    # Build the submission plan up front so threads just pop work.
    # Duplicate submissions all carry seed=1000; unique ones get a
    # distinct seed each, i.e. a distinct config key.
    plan: List[dict] = []
    n_dup = int(submissions * dup_fraction)
    for i in range(submissions):
        if i < n_dup:
            cells = [micro_cell(seed=1000)]
        else:
            cells = [micro_cell(seed=2000 + i)]
        plan.append({
            "cells": cells,
            "tenant": f"tenant-{i % max(1, tenants)}",
        })
    for _ in range(invalid):
        plan.append({"cells": [dict(INVALID_CELL)], "tenant": "tenant-bad"})
    unique_keys = 1 + (submissions - n_dup)  # dup config + unique configs

    lock = threading.Lock()
    accepted: List[str] = []
    shed = 0
    rejected_400 = 0
    errors: List[str] = []
    cursor = [0]

    def submitter() -> None:
        nonlocal shed, rejected_400
        while True:
            with lock:
                if cursor[0] >= len(plan):
                    return
                item = plan[cursor[0]]
                cursor[0] += 1
            try:
                response = client.submit(
                    item["cells"], tenant=item["tenant"]
                )
            except Exception as exc:
                with lock:
                    errors.append(f"submit raised {exc!r}")
                continue
            with lock:
                if response.status == 202:
                    accepted.append(response.json()["id"])
                elif response.status == 429:
                    shed += 1
                    if response.retry_after_s is None:
                        errors.append("429 without Retry-After")
                elif response.status == 400:
                    rejected_400 += 1
                    if "problems" not in (response.json() or {}):
                        errors.append("400 without a problems list")
                else:
                    errors.append(f"unexpected status {response.status}")

    started = time.monotonic()
    threads = [
        threading.Thread(target=submitter, name=f"loadgen-{i}")
        for i in range(submitters)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    submit_elapsed = time.monotonic() - started

    deadline = time.monotonic() + wait_timeout_s
    unfinished = list(accepted)
    while unfinished and time.monotonic() < deadline:
        unfinished = [
            cid for cid in unfinished if not client.campaign(cid)["done"]
        ]
        if unfinished:
            time.sleep(0.2)
    total_elapsed = time.monotonic() - started

    stats = client.stats()
    sims = stats["simulations_started"] - base_sims
    cells_total = sum(len(item["cells"]) for item in plan[:submissions])
    dedup_hits = stats["dedup_joins"] + stats["cache_hits"]
    report = {
        "submissions": submissions,
        "invalid_submissions": invalid,
        "submitters": submitters,
        "accepted": len(accepted),
        "shed_429": shed,
        "rejected_400": rejected_400,
        "unfinished": len(unfinished),
        "cells_submitted": cells_total,
        "unique_configs": unique_keys,
        "simulations_started": sims,
        "dedup_hits": dedup_hits,
        "dedup_hit_rate": (
            round(dedup_hits / max(1, cells_total), 4)
        ),
        "submit_wall_s": round(submit_elapsed, 3),
        "total_wall_s": round(total_elapsed, 3),
        "throughput_cells_per_s": round(
            len(accepted) / max(total_elapsed, 1e-9), 2
        ),
        "daemon_stats": stats,
        "errors": errors[:20],
        "checks": {
            # The single-flight invariant: with shed submissions some
            # unique configs may never have been admitted, so <= is the
            # bound — strictly more sims than unique configs means a
            # duplicate actually ran.
            "single_flight": sims <= unique_keys,
            "invalid_rejected": rejected_400 == invalid,
            "all_finished": not unfinished,
            "no_client_errors": not errors,
        },
    }
    return report


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve.loadgen",
        description="Synthetic thundering-herd load for repro serve.",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, required=True)
    parser.add_argument("--submissions", type=int, default=200)
    parser.add_argument("--submitters", type=int, default=32)
    parser.add_argument("--dup-fraction", type=float, default=0.5)
    parser.add_argument("--invalid", type=int, default=1)
    parser.add_argument("--tenants", type=int, default=4)
    parser.add_argument("--wait-timeout-s", type=float, default=600.0)
    parser.add_argument(
        "--check", action="store_true",
        help="exit non-zero unless every invariant check passed",
    )
    parser.add_argument("--out", help="also write the JSON report to PATH")
    args = parser.parse_args(argv)

    report = run_load(
        args.host, args.port,
        submissions=args.submissions,
        submitters=args.submitters,
        dup_fraction=args.dup_fraction,
        invalid=args.invalid,
        tenants=args.tenants,
        wait_timeout_s=args.wait_timeout_s,
    )
    text = json.dumps(report, indent=2, sort_keys=True)
    print(text)
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(text + "\n")
    if args.check and not all(report["checks"].values()):
        failed = [k for k, v in report["checks"].items() if not v]
        print(f"loadgen checks FAILED: {', '.join(failed)}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
