"""Single-flight deduplication of identical simulation requests.

A campaign cell is a pure function of its config, identified by
``store.config_key``. When a thundering herd of clients submits the
same config, exactly one simulation must run: the first submission
creates a :class:`Flight`, every later submission *joins* it as a
waiter, and when the flight lands its result fans out to every waiting
cell across every waiting campaign. Completed keys never take off at
all — they are served straight from the shared
:class:`~repro.experiments.store.ResultStore`.

The registry is single-threaded by construction: it is only touched
from the daemon's event loop, so membership checks and joins are
race-free without locks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

#: A waiter: (campaign, cell-state) — resolved together when the
#: flight lands. Typed loosely to avoid an import cycle with service.
Waiter = Tuple[Any, Any]

FLIGHT_QUEUED = "queued"
FLIGHT_RUNNING = "running"
FLIGHT_CANCELLED = "cancelled"


@dataclass
class Flight:
    """One in-flight (or queued) simulation shared by N waiting cells."""

    key: str
    config: Any
    tenant: str       # the tenant that caused the flight (accounting)
    priority: int     # best (lowest) priority among its waiters
    seq: int          # global submission order, tie-break within priority
    state: str = FLIGHT_QUEUED
    waiters: List[Waiter] = field(default_factory=list)

    def join(self, campaign: Any, cell: Any) -> None:
        self.waiters.append((campaign, cell))
        # A high-priority join pulls a still-queued shared flight
        # forward; a running flight is already past scheduling.
        if campaign.priority < self.priority and self.state == FLIGHT_QUEUED:
            self.priority = campaign.priority

    def detach(self, campaign: Any, cell: Any) -> None:
        """Remove one waiter (cancellation); the flight itself lives on
        while any other campaign still waits or the work is running."""
        try:
            self.waiters.remove((campaign, cell))
        except ValueError:  # pragma: no cover - already detached
            pass

    @property
    def abandoned(self) -> bool:
        return not self.waiters


class SingleFlight:
    """The in-flight registry: config key → :class:`Flight`."""

    def __init__(self) -> None:
        self._flights: Dict[str, Flight] = {}
        self._seq = 0
        #: Cells that joined an existing flight instead of launching
        #: their own simulation (the dedup win counter).
        self.joins = 0

    def __len__(self) -> int:
        return len(self._flights)

    def __contains__(self, key: str) -> bool:
        return key in self._flights

    def get(self, key: str) -> Optional[Flight]:
        return self._flights.get(key)

    def open(
        self, key: str, config: Any, tenant: str, priority: int
    ) -> Flight:
        """Register a new flight for ``key`` (must not already exist)."""
        if key in self._flights:
            raise ValueError(f"flight for {key} already open")
        self._seq += 1
        flight = Flight(
            key=key, config=config, tenant=tenant,
            priority=priority, seq=self._seq,
        )
        self._flights[key] = flight
        return flight

    def join(self, key: str, campaign: Any, cell: Any) -> Flight:
        """Attach a waiter to the existing flight for ``key``."""
        flight = self._flights[key]
        flight.join(campaign, cell)
        self.joins += 1
        return flight

    def land(self, key: str) -> Optional[Flight]:
        """Remove and return the flight for ``key`` (terminal)."""
        return self._flights.pop(key, None)

    def queued_flights(self) -> List[Flight]:
        return [
            f for f in self._flights.values() if f.state == FLIGHT_QUEUED
        ]

    def all(self) -> List[Flight]:
        return list(self._flights.values())
