"""Synchronous client for the campaign daemon (tests, load-gen, CI).

Deliberately stdlib-only (``http.client`` + a raw socket for SSE) so
the same client runs inside the repo's test suite, the CI smoke job
and ad-hoc shells with no extra dependencies. Every call opens a fresh
connection — the daemon is ``Connection: close`` by design.
"""

from __future__ import annotations

import http.client
import json
import socket
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple


@dataclass
class ApiResponse:
    """One HTTP exchange's outcome."""

    status: int
    headers: Dict[str, str]
    body: bytes

    def json(self) -> Any:
        return json.loads(self.body) if self.body else None

    @property
    def retry_after_s(self) -> Optional[int]:
        value = self.headers.get("retry-after")
        return int(value) if value is not None else None


class ServeError(RuntimeError):
    """An API call returned an unexpected status."""

    def __init__(self, response: ApiResponse, context: str) -> None:
        self.response = response
        super().__init__(
            f"{context}: HTTP {response.status} "
            f"{response.body[:500].decode(errors='replace')}"
        )


class ServeClient:
    """Talks to one ``repro serve`` daemon."""

    def __init__(self, host: str, port: int, timeout_s: float = 60.0) -> None:
        self.host = host
        self.port = port
        self.timeout_s = timeout_s

    # -- transport -----------------------------------------------------

    def request(
        self, method: str, path: str, payload: Any = None
    ) -> ApiResponse:
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout_s
        )
        try:
            body = None
            headers = {}
            if payload is not None:
                body = json.dumps(payload).encode()
                headers["Content-Type"] = "application/json"
            conn.request(method, path, body=body, headers=headers)
            response = conn.getresponse()
            return ApiResponse(
                status=response.status,
                headers={k.lower(): v for k, v in response.getheaders()},
                body=response.read(),
            )
        finally:
            conn.close()

    def _expect(
        self, method: str, path: str, payload: Any, statuses: Tuple[int, ...]
    ) -> ApiResponse:
        response = self.request(method, path, payload)
        if response.status not in statuses:
            raise ServeError(response, f"{method} {path}")
        return response

    # -- API surface ---------------------------------------------------

    def healthz(self) -> dict:
        return self._expect("GET", "/v1/healthz", None, (200,)).json()

    def stats(self) -> dict:
        return self._expect("GET", "/v1/stats", None, (200,)).json()

    def submit(
        self,
        cells: List[dict],
        *,
        tenant: str = "default",
        priority: int = 10,
    ) -> ApiResponse:
        """Submit a campaign; returns the raw response (202/400/429/503
        are all legitimate outcomes callers branch on)."""
        return self.request("POST", "/v1/campaigns", {
            "cells": cells, "tenant": tenant, "priority": priority,
        })

    def campaign(self, campaign_id: str) -> dict:
        return self._expect(
            "GET", f"/v1/campaigns/{campaign_id}", None, (200,)
        ).json()

    def cancel(self, campaign_id: str) -> dict:
        return self._expect(
            "POST", f"/v1/campaigns/{campaign_id}/cancel", None, (200,)
        ).json()

    def result_bytes(self, key: str) -> bytes:
        return self._expect("GET", f"/v1/results/{key}", None, (200,)).body

    def wait(
        self,
        campaign_id: str,
        *,
        timeout_s: float = 120.0,
        poll_s: float = 0.1,
    ) -> dict:
        """Poll until the campaign is done; returns its final state."""
        deadline = time.monotonic() + timeout_s
        while True:
            state = self.campaign(campaign_id)
            if state["done"]:
                return state
            if time.monotonic() > deadline:
                raise TimeoutError(
                    f"campaign {campaign_id} not done after {timeout_s}s: "
                    f"{state['counts']}"
                )
            time.sleep(poll_s)

    def events(
        self,
        campaign_id: str,
        *,
        max_events: Optional[int] = None,
        timeout_s: float = 30.0,
    ) -> List[Tuple[str, Any]]:
        """Consume the SSE stream until the campaign finishes.

        Returns ``(event name, payload)`` pairs; stops at ``max_events``,
        at a terminal ``campaign``/``drain`` event, or at the socket
        timeout (returning whatever arrived by then).
        """
        out: List[Tuple[str, Any]] = []
        with socket.create_connection(
            (self.host, self.port), timeout=timeout_s
        ) as sock:
            sock.sendall(
                f"GET /v1/campaigns/{campaign_id}/events HTTP/1.1\r\n"
                f"Host: {self.host}\r\n\r\n".encode()
            )
            fh = sock.makefile("rb")
            while True:  # skip the response head
                line = fh.readline()
                if line in (b"\r\n", b""):
                    break
            name = None
            try:
                for raw in fh:
                    line = raw.decode().strip()
                    if line.startswith("event:"):
                        name = line.partition(":")[2].strip()
                    elif line.startswith("data:") and name is not None:
                        payload = json.loads(line.partition(":")[2])
                        out.append((name, payload))
                        if name == "drain":
                            break
                        if name == "campaign" and payload.get("done"):
                            break
                        if max_events is not None and len(out) >= max_events:
                            break
                        name = None
            except socket.timeout:
                pass  # return what we have; callers assert on content
        return out
