"""Campaign lifecycle, replay, and fan-out: the daemon's core state.

Everything in this module runs on the asyncio event loop thread —
submission, cancellation, flight bookkeeping, SSE publication, drain.
The only other actors are the executor thread and its workers, and the
sole crossing point is :meth:`CampaignService._on_done`, delivered via
``loop.call_soon_threadsafe``. That single-threaded discipline is what
makes the single-flight registry race-free without locks.

Durability model (everything under ``<store>/serve/``):

* ``campaigns/<id>.json`` — the campaign *spec*: tenant, priority,
  cancellation flag and the full config of every cell (written
  atomically on submit and on cancel);
* ``campaigns/<id>.manifest.json`` — a standard
  :class:`~repro.parallel.manifest.RunManifest`, checkpointed after
  every terminal cell exactly like batch campaigns do;
* ``sim.log`` — the append-only ledger of simulations actually
  started (written by workers, see
  :class:`~repro.serve.executor.SimRunner`).

On startup :meth:`CampaignService.recover` replays the specs in
submission order: cells whose key is already in the
:class:`~repro.experiments.store.ResultStore` come back as ``cached``
(never re-simulated), cells their manifest recorded as ``failed`` are
replayed as failed records (a poisoned cell must not burn workers
again after every restart), and everything else — queued, running or
interrupted at the moment of the crash — re-enters the queue through
the normal single-flight path. A SIGKILL therefore costs at most the
cells that were mid-execution, and duplicates are structurally
impossible: completed keys short-circuit before any flight opens.
"""

from __future__ import annotations

import asyncio
import dataclasses
import logging
import os
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.experiments.config import SCALES, ConfigError
from repro.experiments.store import (
    ResultStore,
    atomic_write_json,
    config_from_dict,
    config_key,
    config_to_dict,
    load_json_or_quarantine,
)
from repro.parallel.manifest import RunManifest
from repro.parallel.retry import DEFAULT_CAMPAIGN_POLICY, RetryPolicy
from repro.serve.executor import CampaignExecutor, CellDone
from repro.serve.http import HttpError
from repro.serve.scheduler import (
    AdmissionController,
    AdmissionLimits,
    FairScheduler,
    ShedLoad,
)
from repro.serve.singleflight import (
    FLIGHT_CANCELLED,
    FLIGHT_QUEUED,
    FLIGHT_RUNNING,
    SingleFlight,
)

log = logging.getLogger("repro.serve")

CELL_QUEUED = "queued"
CELL_RUNNING = "running"
CELL_OK = "ok"
CELL_CACHED = "cached"
CELL_FAILED = "failed"
CELL_INTERRUPTED = "interrupted"
CELL_CANCELLED = "cancelled"

#: States a cell can never leave.
TERMINAL_STATES = frozenset(
    {CELL_OK, CELL_CACHED, CELL_FAILED, CELL_INTERRUPTED, CELL_CANCELLED}
)


@dataclass
class CellState:
    """One submitted cell's live state inside a campaign."""

    index: int
    key: str
    config: Any
    status: str = CELL_QUEUED
    #: True when this cell joined a flight another submission opened
    #: (the thundering-herd dedup path).
    dedup: bool = False
    attempts: int = 0
    wall_seconds: float = 0.0
    error: Optional[str] = None
    #: Structured taxonomy kind for failed cells
    #: (crash|oom|timeout|config|sim|poisoned|unknown).
    error_kind: Optional[str] = None
    worker_restarts: int = 0
    #: True when recovery replayed this terminal state from the prior
    #: incarnation's manifest instead of observing it live.
    replayed: bool = False

    def to_dict(self) -> dict:
        return {
            "index": self.index,
            "key": self.key,
            "status": self.status,
            "dedup": self.dedup,
            "attempts": self.attempts,
            "wall_seconds": self.wall_seconds,
            "error": self.error,
            "error_kind": self.error_kind,
            "worker_restarts": self.worker_restarts,
            "replayed": self.replayed,
        }


@dataclass
class _OutcomeView:
    """Adapter: a CellState viewed as a manifest-compatible outcome."""

    index: int
    config: Any
    key: str
    status: str
    attempts: int
    wall_seconds: float
    error: Optional[str]
    error_kind: Optional[str]
    worker_restarts: int
    result: Any = None


@dataclass
class Campaign:
    """One submitted campaign: cells plus its SSE subscribers."""

    id: str
    tenant: str
    priority: int
    created_at: float
    cells: List[CellState] = field(default_factory=list)
    cancelled: bool = False
    subscribers: List[asyncio.Queue] = field(default_factory=list)

    @property
    def done(self) -> bool:
        return all(c.status in TERMINAL_STATES for c in self.cells)

    def counts(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for cell in self.cells:
            out[cell.status] = out.get(cell.status, 0) + 1
        return out

    def summary(self, *, include_cells: bool = False) -> dict:
        out = {
            "id": self.id,
            "tenant": self.tenant,
            "priority": self.priority,
            "created_at": self.created_at,
            "cancelled": self.cancelled,
            "done": self.done,
            "total": len(self.cells),
            "counts": self.counts(),
            "dedup_joins": sum(1 for c in self.cells if c.dedup),
        }
        if include_cells:
            out["cells"] = [c.to_dict() for c in self.cells]
        return out


class CampaignService:
    """All campaign state; every method runs on the event loop thread."""

    def __init__(
        self,
        store_dir: str,
        *,
        workers: int,
        limits: Optional[AdmissionLimits] = None,
        retry: Optional[RetryPolicy] = None,
        timeout_s: Optional[float] = None,
        max_rss_mb: Optional[float] = None,
        drain_timeout_s: float = 30.0,
    ) -> None:
        self.store = ResultStore(store_dir)
        self.serve_dir = os.path.join(store_dir, "serve")
        self.campaigns_dir = os.path.join(self.serve_dir, "campaigns")
        os.makedirs(self.campaigns_dir, exist_ok=True)
        self.sim_log = os.path.join(self.serve_dir, "sim.log")
        self.workers = max(1, workers)
        self.limits = limits or AdmissionLimits()
        self.retry = retry or DEFAULT_CAMPAIGN_POLICY
        self.timeout_s = timeout_s
        self.max_rss_mb = max_rss_mb
        self.drain_timeout_s = drain_timeout_s

        self.flights = SingleFlight()
        self.scheduler = FairScheduler()
        self.admission = AdmissionController(self.limits, self.workers)
        self.campaigns: Dict[str, Campaign] = {}
        self.executor: Optional[CampaignExecutor] = None
        self.draining = False
        self.started_at = time.time()
        self.cache_hits = 0
        self._done_counts: Dict[str, int] = {}

    # -- lifecycle -----------------------------------------------------

    def start(self, loop: asyncio.AbstractEventLoop) -> dict:
        """Wire the executor, replay prior state, start the fleet."""
        self.executor = CampaignExecutor(
            loop=loop,
            store=self.store,
            on_done=self._on_done,
            workers=self.workers,
            retry=self.retry,
            timeout_s=self.timeout_s,
            max_rss_mb=self.max_rss_mb,
            sim_log=self.sim_log,
        )
        recovered = self.recover()
        self.executor.start()
        self._pump()
        return recovered

    async def drain(self, loop: asyncio.AbstractEventLoop) -> None:
        """Graceful shutdown: shed the queue, finish executing cells.

        Queued flights become ``interrupted`` cells (their campaigns'
        manifests record them, so the next incarnation re-queues them);
        executing cells get up to ``drain_timeout_s`` to finish and
        land in the store like any other result.
        """
        if self.draining:
            return
        self.draining = True
        dropped = self.scheduler.clear()
        log.info(
            "drain: shedding %d queued flight(s), waiting on %d executing",
            len(dropped), self.executor.executing() if self.executor else 0,
        )
        for flight in dropped:
            flight.state = FLIGHT_CANCELLED
            self.flights.land(flight.key)
            for campaign, cell in flight.waiters:
                self._settle(
                    campaign, cell, CELL_INTERRUPTED,
                    error="daemon drained before the cell started",
                )
        for campaign in self.campaigns.values():
            # Manifest writes are file I/O: off the loop thread (CON001)
            # so SSE streams keep flowing while drain checkpoints.
            await loop.run_in_executor(None, self._checkpoint, campaign)

        if self.executor is not None:
            finished = await loop.run_in_executor(
                None, self.executor.stop, self.drain_timeout_s
            )
            # Let any final call_soon_threadsafe terminal events land.
            await asyncio.sleep(0.05)
            if not finished:
                log.warning(
                    "drain: executor did not stop within %.0fs; abandoning "
                    "executing cell(s)", self.drain_timeout_s,
                )

        for flight in self.flights.all():
            self.flights.land(flight.key)
            for campaign, cell in flight.waiters:
                if cell.status not in TERMINAL_STATES:
                    self._settle(
                        campaign, cell, CELL_INTERRUPTED,
                        error="daemon stopped while the cell was executing",
                    )
        for campaign in self.campaigns.values():
            await loop.run_in_executor(None, self._checkpoint, campaign)
            self._publish(campaign, "drain", {"draining": True})

    # -- submission ----------------------------------------------------

    def submit(self, payload: Any) -> Campaign:
        """Admit one campaign; raises HttpError (400/429/503) otherwise."""
        if self.draining:
            raise HttpError(
                503, "daemon is draining; resubmit after restart",
                headers={"Retry-After": "30"},
            )
        cells_data, tenant, priority = self._parse_payload(payload)
        parsed = self._parse_cells(cells_data)

        # Admission counts only flights this submission would *open*:
        # cached keys and joins of open flights add no simulation load.
        new_keys = {
            key for _, key in parsed
            if not self.store.contains_key(key) and key not in self.flights
        }
        try:
            self.admission.admit(
                tenant=tenant,
                new_flights=len(new_keys),
                queued=len(self.scheduler),
                tenant_queued=self.scheduler.queued_for(tenant),
                inflight_cells=self.executor.inflight() if self.executor else 0,
            )
        except ShedLoad as exc:
            raise HttpError(
                429, exc.reason,
                payload={"shed": True},
                headers={"Retry-After": str(exc.retry_after_s)},
            )

        campaign = Campaign(
            id="c" + os.urandom(8).hex(),
            tenant=tenant,
            priority=priority,
            created_at=time.time(),
        )
        for i, (cfg, key) in enumerate(parsed):
            cell = CellState(index=i, key=key, config=cfg)
            campaign.cells.append(cell)
            self._attach(campaign, cell)
        self.campaigns[campaign.id] = campaign
        self._save_spec(campaign)
        self._checkpoint(campaign)
        self._pump()
        return campaign

    def _parse_payload(self, payload: Any) -> Tuple[list, str, int]:
        if isinstance(payload, list):
            payload = {"cells": payload}
        if not isinstance(payload, dict):
            raise HttpError(400, "payload must be an object or a list of cells")
        cells = payload.get("cells")
        if not isinstance(cells, list) or not cells:
            raise HttpError(400, "'cells' must be a non-empty list of configs")
        if len(cells) > self.limits.max_campaign_cells:
            raise HttpError(
                400,
                f"campaign carries {len(cells)} cells; the limit is "
                f"{self.limits.max_campaign_cells}",
            )
        tenant = payload.get("tenant", "default")
        if not isinstance(tenant, str) or not tenant:
            raise HttpError(400, "'tenant' must be a non-empty string")
        priority = payload.get("priority", 10)
        if not isinstance(priority, int) or isinstance(priority, bool) \
                or not 0 <= priority <= 100:
            raise HttpError(400, "'priority' must be an integer in [0, 100]")
        return cells, tenant, priority

    def _parse_cells(self, cells_data: list) -> List[Tuple[Any, str]]:
        """Each cell dict → (validated ExperimentConfig, config key).

        Collects *every* problem before raising so one 400 names every
        bad cell instead of failing them one at a time.
        """
        problems: List[dict] = []
        out: List[Tuple[Any, str]] = []
        for i, data in enumerate(cells_data):
            if not isinstance(data, dict):
                problems.append({"cell": i, "error": "cell must be an object"})
                continue
            data = dict(data)
            scale = data.get("scale")
            if isinstance(scale, str):
                if scale not in SCALES:
                    problems.append({
                        "cell": i,
                        "error": f"unknown scale {scale!r}; "
                                 f"one of {sorted(SCALES)} or a full profile",
                    })
                    continue
                data["scale"] = dataclasses.asdict(SCALES[scale])
            try:
                cfg = config_from_dict(data)
            except (KeyError, TypeError, ValueError) as exc:
                problems.append(
                    {"cell": i, "error": f"malformed config: {exc!r}"}
                )
                continue
            try:
                cfg.validate()
            except ConfigError as exc:
                problems.append({"cell": i, "error": str(exc)})
                continue
            out.append((cfg, config_key(cfg)))
        if problems:
            raise HttpError(
                400,
                f"{len(problems)} invalid cell(s)",
                payload={"problems": problems},
            )
        return out

    def _attach(self, campaign: Campaign, cell: CellState) -> None:
        """Route one cell: cache hit, flight join, or new flight."""
        if self.store.contains_key(cell.key):
            cell.status = CELL_CACHED
            self.cache_hits += 1
            return
        flight = self.flights.get(cell.key)
        if flight is not None:
            cell.dedup = True
            self.flights.join(cell.key, campaign, cell)
            if flight.state == FLIGHT_RUNNING:
                cell.status = CELL_RUNNING
            return
        flight = self.flights.open(
            cell.key, cell.config, campaign.tenant, campaign.priority
        )
        flight.waiters.append((campaign, cell))
        self.scheduler.push(flight)

    # -- execution pump ------------------------------------------------

    def _pump(self) -> None:
        """Feed the executor while it has worker capacity."""
        if self.draining or self.executor is None:
            return
        while self.executor.inflight() < self.workers:
            flight = self.scheduler.pop()
            if flight is None:
                return
            if flight.abandoned:
                # Every waiter cancelled while it queued; never run it.
                flight.state = FLIGHT_CANCELLED
                self.flights.land(flight.key)
                continue
            flight.state = FLIGHT_RUNNING
            self.executor.submit(flight.config, flight.key)
            for campaign, cell in flight.waiters:
                cell.status = CELL_RUNNING
                self._publish(campaign, "cell", cell.to_dict())

    def _on_done(self, done: CellDone) -> None:
        """Terminal event from the executor thread (runs on the loop)."""
        self.admission.observe_wall(done.wall_seconds)
        self._done_counts[done.status] = (
            self._done_counts.get(done.status, 0) + 1
        )
        flight = self.flights.land(done.key)
        touched: List[Campaign] = []
        for campaign, cell in (flight.waiters if flight is not None else []):
            cell.attempts = done.attempts
            cell.wall_seconds = done.wall_seconds
            cell.worker_restarts = done.worker_restarts
            self._settle(
                campaign, cell, done.status,
                error=done.error, error_kind=done.error_kind,
            )
            if campaign not in touched:
                touched.append(campaign)
        for campaign in touched:
            self._checkpoint(campaign)
            if campaign.done:
                self._publish(
                    campaign, "campaign", campaign.summary()
                )
        self._pump()

    def _settle(
        self,
        campaign: Campaign,
        cell: CellState,
        status: str,
        *,
        error: Optional[str] = None,
        error_kind: Optional[str] = None,
    ) -> None:
        cell.status = status
        cell.error = error
        cell.error_kind = error_kind
        self._publish(campaign, "cell", cell.to_dict())

    # -- cancellation --------------------------------------------------

    def cancel(self, campaign_id: str) -> Campaign:
        campaign = self.get(campaign_id)
        if campaign.cancelled:
            return campaign  # idempotent
        campaign.cancelled = True
        for cell in campaign.cells:
            if cell.status in TERMINAL_STATES:
                continue
            flight = self.flights.get(cell.key)
            if flight is not None:
                flight.detach(campaign, cell)
                if flight.abandoned and flight.state == FLIGHT_QUEUED:
                    # Nobody wants it and it never started: retire it.
                    # (A running flight finishes and lands in the store
                    # — the work is already sunk and the result reusable.)
                    flight.state = FLIGHT_CANCELLED
                    self.flights.land(flight.key)
            self._settle(
                campaign, cell, CELL_CANCELLED, error="cancelled by client"
            )
        self._save_spec(campaign)
        self._checkpoint(campaign)
        self._publish(campaign, "campaign", campaign.summary())
        return campaign

    # -- recovery ------------------------------------------------------

    def recover(self) -> dict:
        """Replay campaign specs + manifests from a prior incarnation."""
        specs = []
        for name in sorted(os.listdir(self.campaigns_dir)):
            if name.endswith(".manifest.json") or not name.endswith(".json"):
                continue
            data = load_json_or_quarantine(
                os.path.join(self.campaigns_dir, name)
            )
            if data is None or "id" not in data or "cells" not in data:
                log.warning("recover: skipping unreadable spec %s", name)
                continue
            specs.append(data)
        specs.sort(key=lambda d: d.get("created_at", 0.0))

        requeued = cached = replayed_failed = 0
        for data in specs:
            campaign = Campaign(
                id=data["id"],
                tenant=data.get("tenant", "default"),
                priority=data.get("priority", 10),
                created_at=data.get("created_at", 0.0),
                cancelled=bool(data.get("cancelled", False)),
            )
            failed_by_key: Dict[str, Any] = {}
            manifest_path = self._manifest_path(campaign.id)
            if os.path.exists(manifest_path):
                try:
                    prior = RunManifest.load(manifest_path)
                except (ValueError, TypeError, OSError) as exc:
                    log.warning(
                        "recover: unreadable manifest for %s (%r); "
                        "treating all cells as unfinished",
                        campaign.id, exc,
                    )
                else:
                    failed_by_key = {c.key: c for c in prior.failed_cells()}

            for i, cd in enumerate(data["cells"]):
                try:
                    cfg = config_from_dict(cd["config"])
                except (KeyError, TypeError, ValueError) as exc:
                    log.warning(
                        "recover: campaign %s cell %d is unparseable (%r); "
                        "dropping it", campaign.id, i, exc,
                    )
                    continue
                cell = CellState(index=i, key=config_key(cfg), config=cfg)
                campaign.cells.append(cell)
                if campaign.cancelled:
                    cell.status = CELL_CANCELLED
                    cell.error = "cancelled by client"
                elif self.store.contains_key(cell.key):
                    # Completed keys are never re-simulated: the store
                    # is the source of truth, the manifest only a log.
                    cell.status = CELL_CACHED
                    cell.replayed = True
                    self.cache_hits += 1
                    cached += 1
                elif cell.key in failed_by_key:
                    rec = failed_by_key[cell.key]
                    cell.status = CELL_FAILED
                    cell.error = rec.error
                    cell.error_kind = rec.error_kind
                    cell.attempts = rec.attempts
                    cell.worker_restarts = rec.worker_restarts
                    cell.replayed = True
                    replayed_failed += 1
                else:
                    self._attach(campaign, cell)
                    if not cell.dedup:
                        requeued += 1
            self.campaigns[campaign.id] = campaign
            self._checkpoint(campaign)

        if specs:
            log.info(
                "recover: %d campaign(s): %d cell(s) served from store, "
                "%d failure record(s) replayed, %d flight(s) re-queued",
                len(specs), cached, replayed_failed, requeued,
            )
        return {
            "campaigns": len(specs),
            "cached_cells": cached,
            "replayed_failures": replayed_failed,
            "requeued_flights": requeued,
        }

    # -- durability ----------------------------------------------------

    def _spec_path(self, campaign_id: str) -> str:
        return os.path.join(self.campaigns_dir, f"{campaign_id}.json")

    def _manifest_path(self, campaign_id: str) -> str:
        return os.path.join(self.campaigns_dir, f"{campaign_id}.manifest.json")

    def _save_spec(self, campaign: Campaign) -> None:
        atomic_write_json(self._spec_path(campaign.id), {
            "id": campaign.id,
            "tenant": campaign.tenant,
            "priority": campaign.priority,
            "created_at": campaign.created_at,
            "cancelled": campaign.cancelled,
            "cells": [
                {"key": c.key, "config": config_to_dict(c.config)}
                for c in campaign.cells
            ],
        })

    def _checkpoint(self, campaign: Campaign) -> None:
        """Flush the campaign's RunManifest (terminal cells only)."""
        manifest = RunManifest(jobs=self.workers)
        for cell in campaign.cells:
            if cell.status not in TERMINAL_STATES:
                continue
            status, error = cell.status, cell.error
            if status == CELL_CANCELLED:
                # The manifest vocabulary has no "cancelled"; map it to
                # interrupted (recovery skips the campaign anyway via
                # the spec's cancelled flag).
                status = CELL_INTERRUPTED
            manifest.add(_OutcomeView(
                index=cell.index, config=cell.config, key=cell.key,
                status=status, attempts=cell.attempts,
                wall_seconds=cell.wall_seconds, error=error,
                error_kind=cell.error_kind,
                worker_restarts=cell.worker_restarts,
            ))
        manifest.worker_restarts = sum(
            c.worker_restarts for c in campaign.cells
        )
        manifest.complete = campaign.done
        manifest.save(self._manifest_path(campaign.id))

    # -- queries -------------------------------------------------------

    def get(self, campaign_id: str) -> Campaign:
        campaign = self.campaigns.get(campaign_id)
        if campaign is None:
            raise HttpError(404, f"no campaign {campaign_id!r}")
        return campaign

    def result_bytes(self, key: str) -> bytes:
        """The stored result's raw bytes (byte-identical replay proof)."""
        path = self.store._existing_path(key)
        if path is None:
            raise HttpError(404, f"no stored result for key {key!r}")
        with open(path, "rb") as fh:
            return fh.read()

    def simulations_started(self) -> int:
        """Lines in the sim log = simulations workers actually began."""
        try:
            with open(self.sim_log, "rb") as fh:
                return sum(1 for _ in fh)
        except FileNotFoundError:
            return 0

    def stats(self) -> dict:
        return {
            "uptime_s": time.time() - self.started_at,
            "workers": self.workers,
            "draining": self.draining,
            "campaigns": len(self.campaigns),
            "queued_flights": len(self.scheduler),
            "open_flights": len(self.flights),
            "executing": self.executor.executing() if self.executor else 0,
            "inflight": self.executor.inflight() if self.executor else 0,
            "cache_hits": self.cache_hits,
            "dedup_joins": self.flights.joins,
            "cells_done": dict(self._done_counts),
            "shed": {
                "total": self.admission.shed_count,
                "by_reason": dict(self.admission.shed_by_reason),
            },
            "retries": self.executor.reporter.retries if self.executor else 0,
            "worker_restarts": (
                self.executor.reporter.worker_restarts if self.executor else 0
            ),
            "simulations_started": self.simulations_started(),
            "tenants_queued": self.scheduler.tenants(),
        }

    # -- SSE pub/sub ---------------------------------------------------

    def subscribe(self, campaign: Campaign) -> asyncio.Queue:
        queue: asyncio.Queue = asyncio.Queue(maxsize=256)
        campaign.subscribers.append(queue)
        return queue

    def unsubscribe(self, campaign: Campaign, queue: asyncio.Queue) -> None:
        try:
            campaign.subscribers.remove(queue)
        except ValueError:  # pragma: no cover - double unsubscribe
            pass

    def _publish(self, campaign: Campaign, name: str, payload: dict) -> None:
        for queue in campaign.subscribers:
            try:
                queue.put_nowait((name, payload))
            except asyncio.QueueFull:
                # A consumer that cannot keep up loses deltas; it still
                # converges via the snapshot on reconnect.
                continue
