"""``repro serve`` — a crash-safe, multi-tenant campaign daemon.

The batch drivers (:mod:`repro.parallel`) run one campaign per
process; this package turns the same supervised-worker runtime into a
long-lived service: an asyncio HTTP/JSON daemon that admits campaigns
from many tenants, deduplicates identical configs down to a single
simulation (single-flight keyed by ``store.config_key``), schedules
fairly across tenants, sheds overload with ``429 + Retry-After``,
streams per-cell progress over SSE, drains gracefully on SIGTERM, and
replays its run manifests on restart so completed keys are never
re-simulated.

Layering (each module only imports downward):

* :mod:`repro.serve.http` — hardened HTTP/1.1 + SSE primitives
* :mod:`repro.serve.singleflight` — the in-flight dedup registry
* :mod:`repro.serve.scheduler` — tenant fair queueing + admission
* :mod:`repro.serve.executor` — service-mode supervised worker fleet
* :mod:`repro.serve.service` — campaign state, durability, recovery
* :mod:`repro.serve.app` — routing, SSE streaming, signal handling
* :mod:`repro.serve.cli` — the ``ibcc-repro serve`` entry point
* :mod:`repro.serve.client` / :mod:`repro.serve.loadgen` — stdlib
  client and the synthetic load driver (tests + CI smoke)
"""

from repro.serve.client import ApiResponse, ServeClient, ServeError
from repro.serve.scheduler import AdmissionLimits
from repro.serve.service import Campaign, CampaignService, CellState

__all__ = [
    "ApiResponse",
    "AdmissionLimits",
    "Campaign",
    "CampaignService",
    "CellState",
    "ServeClient",
    "ServeError",
]
