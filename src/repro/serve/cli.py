"""``ibcc-repro serve`` — run the campaign daemon.

Examples::

    ibcc-repro serve --store .ibcc-cache --jobs 4
    ibcc-repro serve --store /var/lib/ibcc --jobs 8 --port 8642 \\
        --timeout-s 900 --max-rss-mb 2048 --max-queued 1024
    ibcc-repro serve --store .ibcc-cache --jobs 2 --port 0 \\
        --ready-file /tmp/serve.ready       # tests: ephemeral port

The daemon serves the HTTP/JSON API documented in
:mod:`repro.serve.app`; SIGTERM drains gracefully and a restart
replays campaign manifests (completed keys are never re-simulated).
"""

from __future__ import annotations

import argparse
import logging
from typing import List, Optional

from repro.parallel.retry import RetryPolicy
from repro.serve.app import ServeApp, run_app
from repro.serve.scheduler import AdmissionLimits
from repro.serve.service import CampaignService


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="ibcc-repro serve",
        description="Crash-safe multi-tenant campaign daemon.",
    )
    parser.add_argument(
        "--store", required=True,
        help="result store directory (shared cache + serve/ state)",
    )
    parser.add_argument(
        "--jobs", type=int, default=2,
        help="worker processes executing cells (default 2)",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument(
        "--port", type=int, default=8642,
        help="listen port (0 = ephemeral; see --ready-file)",
    )
    parser.add_argument(
        "--ready-file",
        help="write 'host port' here once listening (for test harnesses)",
    )
    parser.add_argument(
        "--timeout-s", type=float, default=None,
        help="per-cell wall-clock budget (taxonomy kind 'timeout')",
    )
    parser.add_argument(
        "--max-rss-mb", type=float, default=None,
        help="per-worker RSS budget via RLIMIT_AS (taxonomy kind 'oom')",
    )
    parser.add_argument(
        "--retries", type=int, default=3,
        help="max attempts per cell for retryable failures (default 3)",
    )
    parser.add_argument("--max-queued", type=int, default=512)
    parser.add_argument("--max-tenant-queued", type=int, default=256)
    parser.add_argument("--max-inflight", type=int, default=2048)
    parser.add_argument("--max-campaign-cells", type=int, default=4096)
    parser.add_argument(
        "--drain-timeout-s", type=float, default=30.0,
        help="seconds executing cells get to finish on SIGTERM",
    )
    parser.add_argument("--log-level", default="INFO")
    parser.add_argument(
        "--log-file", help="log here instead of stderr",
    )
    return parser


def build_service(args: argparse.Namespace) -> CampaignService:
    limits = AdmissionLimits(
        max_queued=args.max_queued,
        max_tenant_queued=args.max_tenant_queued,
        max_inflight=args.max_inflight,
        max_campaign_cells=args.max_campaign_cells,
    )
    return CampaignService(
        args.store,
        workers=args.jobs,
        limits=limits,
        retry=RetryPolicy(max_attempts=max(1, args.retries), backoff_s=0.5),
        timeout_s=args.timeout_s,
        max_rss_mb=args.max_rss_mb,
        drain_timeout_s=args.drain_timeout_s,
    )


def serve_main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    logging.basicConfig(
        level=getattr(logging, args.log_level.upper(), logging.INFO),
        filename=args.log_file,
        format="%(asctime)s %(levelname)s %(name)s: %(message)s",
    )
    run_app(
        build_service(args),
        host=args.host,
        port=args.port,
        ready_file=args.ready_file,
    )
    return 0


# Re-exported for embedding (tests run the app inside their own loop).
__all__ = ["build_parser", "build_service", "serve_main", "ServeApp"]
