"""Minimal, hardened HTTP/1.1 primitives for the campaign daemon.

The container deliberately carries no async HTTP framework, and the
daemon's API surface is tiny (JSON in, JSON out, one SSE stream), so
this module implements exactly what ``repro serve`` needs on top of
``asyncio`` streams:

* request parsing with hard limits (request line, header block, body
  size) — an abusive or broken client produces a structured 4xx, never
  an unbounded buffer or a stuck reader;
* one-shot ``Connection: close`` responses (keep-alive buys nothing for
  a submit/poll API and would complicate the drain path);
* a Server-Sent-Events writer for the per-campaign progress stream.

Every connection is fully isolated: a handler crash is caught by the
app layer and turned into a 500 for that one client.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple
from urllib.parse import parse_qsl, unquote, urlsplit

#: Hard limits an untrusted client cannot exceed.
MAX_REQUEST_LINE = 8 * 1024
MAX_HEADER_BYTES = 32 * 1024
MAX_BODY_BYTES = 16 * 1024 * 1024


class HttpError(Exception):
    """A request-level failure with a definite HTTP status.

    Raised by the parser (malformed/oversized requests) and by API
    handlers (validation failures, admission shedding); the app layer
    renders it as a structured JSON error response.
    """

    def __init__(
        self,
        status: int,
        message: str,
        *,
        payload: Optional[dict] = None,
        headers: Optional[Dict[str, str]] = None,
    ) -> None:
        super().__init__(message)
        self.status = status
        self.message = message
        self.payload = payload
        self.headers = headers or {}

    def body(self) -> dict:
        out = {"error": self.message}
        if self.payload:
            out.update(self.payload)
        return out


_REASONS = {
    200: "OK", 202: "Accepted", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 409: "Conflict", 413: "Payload Too Large",
    429: "Too Many Requests", 500: "Internal Server Error",
    503: "Service Unavailable",
}


@dataclass
class Request:
    """One parsed HTTP request."""

    method: str
    path: str
    query: Dict[str, str]
    headers: Dict[str, str]
    body: bytes = b""

    def json(self) -> Any:
        """The body parsed as JSON; raises :class:`HttpError` (400)."""
        if not self.body:
            raise HttpError(400, "request body must be JSON (got empty body)")
        try:
            return json.loads(self.body)
        except (ValueError, UnicodeDecodeError) as exc:
            raise HttpError(400, f"request body is not valid JSON: {exc}")


async def read_request(reader: asyncio.StreamReader) -> Optional[Request]:
    """Parse one request off the stream; None on clean EOF.

    Raises :class:`HttpError` for anything malformed or oversized so
    the caller can answer with a real status instead of dropping the
    connection silently.
    """
    try:
        line = await reader.readline()
    except (ConnectionError, OSError):
        return None
    if not line:
        return None
    if len(line) > MAX_REQUEST_LINE:
        raise HttpError(400, "request line too long")
    try:
        method, target, version = line.decode("latin-1").split()
    except ValueError:
        raise HttpError(400, "malformed request line")
    if not version.startswith("HTTP/1."):
        raise HttpError(400, f"unsupported protocol {version!r}")

    headers: Dict[str, str] = {}
    total = 0
    while True:
        line = await reader.readline()
        total += len(line)
        if total > MAX_HEADER_BYTES:
            raise HttpError(400, "header block too large")
        if line in (b"\r\n", b"\n", b""):
            break
        name, sep, value = line.decode("latin-1").partition(":")
        if not sep:
            raise HttpError(400, f"malformed header line {line!r}")
        headers[name.strip().lower()] = value.strip()

    body = b""
    length = headers.get("content-length")
    if length is not None:
        try:
            n = int(length)
        except ValueError:
            raise HttpError(400, f"bad Content-Length {length!r}")
        if n < 0:
            raise HttpError(400, f"bad Content-Length {length!r}")
        if n > MAX_BODY_BYTES:
            raise HttpError(413, f"body exceeds {MAX_BODY_BYTES} bytes")
        try:
            body = await reader.readexactly(n)
        except (asyncio.IncompleteReadError, ConnectionError, OSError):
            raise HttpError(400, "body shorter than Content-Length")
    elif headers.get("transfer-encoding"):
        raise HttpError(400, "chunked request bodies are not supported")

    split = urlsplit(target)
    query = {k: v for k, v in parse_qsl(split.query)}
    return Request(
        method=method.upper(),
        path=unquote(split.path),
        query=query,
        headers=headers,
        body=body,
    )


@dataclass
class Response:
    """One response, always ``Connection: close``."""

    status: int = 200
    headers: Dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    @classmethod
    def json(
        cls, payload: Any, *, status: int = 200,
        headers: Optional[Dict[str, str]] = None,
    ) -> "Response":
        return cls(
            status=status,
            headers={"Content-Type": "application/json", **(headers or {})},
            body=(json.dumps(payload, sort_keys=True) + "\n").encode(),
        )

    def head(self) -> bytes:
        reason = _REASONS.get(self.status, "Unknown")
        lines = [f"HTTP/1.1 {self.status} {reason}"]
        headers = dict(self.headers)
        headers.setdefault("Content-Length", str(len(self.body)))
        headers.setdefault("Connection", "close")
        for name, value in headers.items():
            if value != "":  # empty value = suppress the default header
                lines.append(f"{name}: {value}")
        return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")


async def send_response(
    writer: asyncio.StreamWriter, response: Response
) -> None:
    writer.write(response.head() + response.body)
    await writer.drain()


class SSEStream:
    """A Server-Sent-Events writer over an asyncio stream.

    The response head is written on construction via :meth:`start`;
    events then flow until the caller stops or the client goes away
    (surfacing as ``ConnectionError`` from :meth:`event`).
    """

    def __init__(self, writer: asyncio.StreamWriter) -> None:
        self._writer = writer

    async def start(self) -> None:
        head = Response(
            status=200,
            headers={
                "Content-Type": "text/event-stream",
                "Cache-Control": "no-store",
                "Connection": "close",
                # Content-Length intentionally suppressed: the stream
                # ends when the connection closes.
                "Content-Length": "",
            },
        ).head()
        self._writer.write(head)
        await self._writer.drain()

    async def event(self, name: str, payload: Any) -> None:
        data = json.dumps(payload, sort_keys=True)
        self._writer.write(f"event: {name}\ndata: {data}\n\n".encode())
        await self._writer.drain()

    async def comment(self, text: str = "keep-alive") -> None:
        """A heartbeat comment line (ignored by SSE clients)."""
        self._writer.write(f": {text}\n\n".encode())
        await self._writer.drain()


def route_key(method: str, parts: Tuple[str, ...]) -> str:
    """A compact log label like ``GET /v1/campaigns/{id}``."""
    return f"{method} /" + "/".join(parts)
