"""The daemon's execution backend: a service-mode supervised fleet.

:class:`~repro.parallel.supervisor.Supervisor` was built to run one
campaign's pending deque to exhaustion and tear its workers down. The
daemon needs the same machinery — persistent workers, heartbeats,
liveness deadlines, per-cell budgets, the poison circuit breaker and
the ``crash|oom|timeout|config|sim|poisoned`` taxonomy — but running
*forever* over a queue that grows as campaigns arrive. Rather than
fork the runtime, :class:`_ServiceSupervisor` subclasses it with a
service loop: workers spawn lazily when work exists, idle through
quiet periods, and the loop only exits once a stop event is set *and*
the backlog has drained (graceful drain keeps executing cells).

:class:`CampaignExecutor` owns that loop on a dedicated thread. The
threading contract with the rest of the daemon:

* the event loop thread *only* appends jobs to the shared deque
  (``submit``) and reads counters for stats;
* the executor thread runs every supervisor callback — it writes
  results to the :class:`~repro.experiments.store.ResultStore` there
  (disk I/O stays off the event loop), then posts one terminal
  :class:`CellDone` back via ``loop.call_soon_threadsafe``;
* all campaign/flight state mutation happens on the event loop when
  that callback fires.

:class:`SimRunner` is the picklable per-cell function shipped to the
workers. Before simulating it appends the cell's config key to an
optional *sim log* with a single ``O_APPEND`` write — an append-only
ledger of **simulations actually started**, which is how the restart
tests prove that replay + single-flight never re-simulate a completed
key.
"""

from __future__ import annotations

import asyncio
import logging
import os
import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Optional

from repro.experiments.runner import run_experiment
from repro.parallel.retry import RetryPolicy
from repro.parallel.supervisor import (
    DEFAULT_HEARTBEAT_S,
    DEFAULT_POISON_THRESHOLD,
    Supervisor,
)

if TYPE_CHECKING:
    from repro.experiments.config import ExperimentConfig
    from repro.experiments.store import ResultStore

log = logging.getLogger("repro.serve")


class SimRunner:
    """Picklable cell function: ledger append, then the simulation."""

    def __init__(self, sim_log: Optional[str] = None) -> None:
        self.sim_log = sim_log

    def __call__(self, config: "ExperimentConfig") -> Any:
        if self.sim_log:
            from repro.experiments.store import config_key

            line = (config_key(config) + "\n").encode()
            # One O_APPEND write is atomic on POSIX, so concurrent
            # workers never interleave partial lines.
            fd = os.open(self.sim_log, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
            try:
                os.write(fd, line)
            finally:
                os.close(fd)
        return run_experiment(config)


@dataclass
class CellJob:
    """Supervisor-side mutable state of one dispatched flight."""

    index: int
    config: Any
    key: str
    attempts: int = 0
    started: float = 0.0
    not_before: float = 0.0
    seq: int = -1
    worker_restarts: int = 0


@dataclass
class CellDone:
    """One terminal outcome, posted from the executor thread."""

    key: str
    status: str  # "ok" | "failed" | "interrupted"
    wall_seconds: float
    attempts: int
    worker_restarts: int
    error: Optional[str] = None
    error_kind: Optional[str] = None
    stored_path: Optional[str] = None


class _ServiceReporter:
    """Supervisor telemetry sink for daemon mode: log lines + counters."""

    def __init__(self) -> None:
        self.retries = 0
        self.worker_restarts = 0

    def note(self, message: str) -> None:
        log.info("%s", message)

    def on_retry(self, index: int, attempts: int, error: str) -> None:
        self.retries += 1
        log.warning("cell %d retry %d: %s", index, attempts, error)

    def on_worker_restart(self, worker_id: int, message: str) -> None:
        self.worker_restarts += 1
        log.warning("%s", message)


class _ServiceSupervisor(Supervisor):
    """The campaign supervisor, re-aimed at an unbounded queue.

    Differences from the one-campaign :meth:`Supervisor.run`:

    * the queue is external and long-lived — the daemon appends to it
      from another thread (``deque`` appends are atomic);
    * workers spawn lazily, sized to the backlog, instead of all at
      start-up, and idle workers stay warm between campaigns;
    * the loop exits only when ``stop_event`` is set and every
      dispatched cell has reached a terminal record — that *is* the
      graceful-drain semantic (the daemon stops feeding the queue and
      re-queues what never started).
    """

    def run_service(
        self, queue: "deque[CellJob]", stop_event: threading.Event
    ) -> None:
        self._queue = queue
        try:
            while self._queue or self._busy() or not stop_event.is_set():
                now = time.monotonic()
                self._ensure_workers()
                self._dispatch(now)
                self._poll(self._poll_timeout(now))
                self._enforce_deadlines()
        finally:
            self._shutdown()

    def _ensure_workers(self) -> None:
        want = min(self.n_workers, len(self._queue) + self._busy())
        while len(self._workers) < want:
            self._spawn()


class CampaignExecutor:
    """Owns the service supervisor's thread and its terminal callbacks."""

    def __init__(
        self,
        *,
        loop: asyncio.AbstractEventLoop,
        store: "ResultStore",
        on_done: Callable[[CellDone], None],
        workers: int,
        retry: RetryPolicy,
        timeout_s: Optional[float] = None,
        max_rss_mb: Optional[float] = None,
        sim_log: Optional[str] = None,
        heartbeat_s: float = DEFAULT_HEARTBEAT_S,
        poison_threshold: int = DEFAULT_POISON_THRESHOLD,
    ) -> None:
        self._loop = loop
        self._store = store
        self._on_done = on_done
        self._queue: "deque[CellJob]" = deque()
        self._stop = threading.Event()
        self._next_index = 0
        self.reporter = _ServiceReporter()
        self.workers = workers
        self._supervisor = _ServiceSupervisor(
            SimRunner(sim_log),
            workers=workers,
            retry=retry,
            reporter=self.reporter,
            record_ok=self._record_ok,
            record_failed=self._record_failed,
            record_interrupted=self._record_interrupted,
            timeout_s=timeout_s,
            max_rss_mb=max_rss_mb,
            heartbeat_s=heartbeat_s,
            poison_threshold=poison_threshold,
        )
        self._thread = threading.Thread(
            target=self._supervisor.run_service,
            args=(self._queue, self._stop),
            name="repro-serve-executor",
            daemon=True,
        )

    def start(self) -> None:
        self._thread.start()

    # -- event-loop-side API -------------------------------------------

    def submit(self, config: "ExperimentConfig", key: str) -> None:
        """Queue one flight for execution (event loop thread)."""
        self._next_index += 1
        self._queue.append(CellJob(index=self._next_index, config=config, key=key))

    def inflight(self) -> int:
        """Dispatched-but-not-terminal cells (queued here + executing)."""
        return len(self._queue) + self._supervisor._busy()

    def executing(self) -> int:
        return self._supervisor._busy()

    def stop(self, timeout_s: float = 30.0) -> bool:
        """Drain: no new dispatches, executing cells finish; True if done."""
        self._stop.set()
        if not self._thread.is_alive():
            return True
        self._thread.join(timeout_s)
        return not self._thread.is_alive()

    # -- executor-thread callbacks -------------------------------------
    # These run on the supervisor thread. Store writes happen HERE so
    # result serialization/fsync never blocks the event loop; only the
    # small CellDone record crosses the thread boundary.

    def _record_ok(self, job: CellJob, result: Any, wall: float) -> None:
        try:
            path = self._store.save(result)
        except Exception as exc:
            # A result we cannot persist is a failed cell as far as the
            # waiters are concerned: nothing durable exists to serve.
            self._post(CellDone(
                key=job.key, status="failed", wall_seconds=wall,
                attempts=job.attempts + 1, worker_restarts=job.worker_restarts,
                error=f"result could not be stored: {exc!r}", error_kind="sim",
            ))
            return
        self._post(CellDone(
            key=job.key, status="ok", wall_seconds=wall,
            attempts=job.attempts + 1, worker_restarts=job.worker_restarts,
            stored_path=path,
        ))

    def _record_failed(
        self, job: CellJob, error: str, wall: float, error_kind: str = "sim"
    ) -> None:
        self._post(CellDone(
            key=job.key, status="failed", wall_seconds=wall,
            attempts=job.attempts, worker_restarts=job.worker_restarts,
            error=error, error_kind=error_kind,
        ))

    def _record_interrupted(
        self, job: CellJob, error: str, wall: float = 0.0
    ) -> None:
        self._post(CellDone(
            key=job.key, status="interrupted", wall_seconds=wall,
            attempts=job.attempts, worker_restarts=job.worker_restarts,
            error=error,
        ))

    def _post(self, done: CellDone) -> None:
        try:
            self._loop.call_soon_threadsafe(self._on_done, done)
        except RuntimeError:  # pragma: no cover - loop already closed
            log.warning("dropping terminal event for %s: loop closed", done.key)
