"""Declarative fault specifications.

A :class:`FaultSpec` names one fabric-level event — *what* goes wrong,
*where*, *when*, and for *how long*. A :class:`FaultSchedule` is an
ordered collection of specs; a :class:`ChaosSpec` is the compact,
seedable alternative that expands into a concrete schedule
deterministically (:func:`repro.faults.chaos.chaos_schedule`).

All three are frozen dataclasses of scalars: picklable (they ride into
pool workers inside an :class:`~repro.experiments.config.ExperimentConfig`),
hashable, and JSON round-trippable (``--faults SPEC.json``). Because a
schedule is part of the experiment configuration, it participates in
the result-store content key — a faulted run never aliases a fault-free
cache entry.

Fault kinds
-----------

==================  ====================================================
kind                semantics
==================  ====================================================
``link_down``       the directed link transmitted by the target output
                    port goes dark: no new transmissions start, and the
                    packet being serialized when the link dies is lost
                    on the wire (packets already propagating still
                    deliver). ``duration_ns > 0`` brings the link back
                    up — a *flap* — re-syncing flow-control credits as
                    a real link retrain does.
``degrade``         the target link's rate is scaled by ``value``
                    (frequency/voltage scaling, a faulty cable);
                    ``duration_ns > 0`` restores the original rate.
``cnp_drop``        while active, each CNP the target HCA would return
                    is dropped with probability ``value`` — lossy
                    control signaling.
``cnp_delay``       while active, CNPs from the target HCA are delayed
                    by ``value`` ns before entering the output buffer.
``cnp_dup``         while active, each CNP is duplicated with
                    probability ``value`` (spurious notification
                    retransmits).
``timer_freeze``    the target HCA's CC recovery timer stops
                    decrementing CCT indices — throttled flows stay
                    throttled for the window.
``switch_pause``    every output port of the target switch stops
                    transmitting (a blinking switch); in-flight packets
                    complete, nothing is dropped, backpressure builds.
==================  ====================================================

Targets: link faults address an output port — either a switch port
(``switch``/``port``) or an HCA's uplink (``node``). HCA faults
(``cnp_*``, ``timer_freeze``) address ``node``, or every HCA when
``node`` is -1. ``switch_pause`` addresses ``switch``.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from typing import Iterator, Optional, Tuple, Union

#: Fault kinds targeting one directed link (an output port).
LINK_KINDS = ("link_down", "degrade")
#: Fault kinds targeting HCA-side CC machinery.
HCA_KINDS = ("cnp_drop", "cnp_delay", "cnp_dup", "timer_freeze")
#: Fault kinds targeting a whole switch.
SWITCH_KINDS = ("switch_pause",)

ALL_KINDS = LINK_KINDS + HCA_KINDS + SWITCH_KINDS


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled fabric fault (see module docstring for kinds).

    ``duration_ns == 0`` means the fault persists to the end of the
    run (no recovery event is scheduled). ``-1`` marks an unused or
    wildcard target field.
    """

    kind: str
    at_ns: float
    duration_ns: float = 0.0
    switch: int = -1
    port: int = -1
    node: int = -1
    value: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in ALL_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}")
        if self.at_ns < 0:
            raise ValueError("at_ns must be non-negative")
        if self.duration_ns < 0:
            raise ValueError("duration_ns must be non-negative")
        if self.kind in LINK_KINDS:
            has_switch_port = self.switch >= 0 and self.port >= 0
            has_node = self.node >= 0
            if has_switch_port == has_node:
                raise ValueError(
                    f"{self.kind} needs either (switch, port) or node, "
                    "not both and not neither"
                )
        if self.kind in SWITCH_KINDS and self.switch < 0:
            raise ValueError(f"{self.kind} needs a switch target")
        if self.kind == "degrade" and not 0.0 < self.value <= 1.0:
            raise ValueError("degrade value (rate factor) must be in (0, 1]")
        if self.kind in ("cnp_drop", "cnp_dup") and not 0.0 <= self.value <= 1.0:
            raise ValueError(f"{self.kind} value (probability) must be in [0, 1]")
        if self.kind == "cnp_delay" and self.value < 0:
            raise ValueError("cnp_delay value (ns) must be non-negative")

    @property
    def ends_at_ns(self) -> Optional[float]:
        """When recovery fires, or None for a permanent fault."""
        return self.at_ns + self.duration_ns if self.duration_ns > 0 else None

    # -- convenience constructors ---------------------------------------
    @classmethod
    def link_flap(
        cls,
        at_ns: float,
        duration_ns: float,
        *,
        switch: int = -1,
        port: int = -1,
        node: int = -1,
    ) -> "FaultSpec":
        """A link that dies at ``at_ns`` and retrains ``duration_ns`` later."""
        if duration_ns <= 0:
            raise ValueError("a flap needs a positive duration")
        return cls("link_down", at_ns, duration_ns, switch=switch, port=port, node=node)

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "FaultSpec":
        return cls(**data)


@dataclass(frozen=True)
class FaultSchedule:
    """An ordered, immutable collection of :class:`FaultSpec` actions."""

    specs: Tuple[FaultSpec, ...] = ()

    def __post_init__(self) -> None:
        # Tolerate lists/generators at construction; store a tuple so
        # the schedule stays hashable and frozen.
        if not isinstance(self.specs, tuple):
            object.__setattr__(self, "specs", tuple(self.specs))

    @property
    def empty(self) -> bool:
        return not self.specs

    def __len__(self) -> int:
        return len(self.specs)

    def __iter__(self) -> Iterator[FaultSpec]:
        return iter(self.specs)

    def extended(self, *specs: FaultSpec) -> "FaultSchedule":
        """A new schedule with ``specs`` appended."""
        return FaultSchedule(self.specs + tuple(specs))

    # -- serialization ---------------------------------------------------
    def to_dict(self) -> dict:
        return {"type": "schedule", "specs": [s.to_dict() for s in self.specs]}

    @classmethod
    def from_dict(cls, data: dict) -> "FaultSchedule":
        return cls(tuple(FaultSpec.from_dict(s) for s in data.get("specs", ())))

    def to_json(self, *, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "FaultSchedule":
        return faults_from_dict(json.loads(text))

    @classmethod
    def load(cls, path: str) -> "FaultSchedule":
        """Read a schedule from a ``--faults`` JSON file."""
        with open(path) as fh:
            return cls.from_json(fh.read())


@dataclass(frozen=True)
class ChaosSpec:
    """A seedable description of a *randomized* fault schedule.

    Each rate is the expected number of fault events of that class per
    millisecond of simulated time; the concrete events (times, targets,
    durations, intensities) are drawn by
    :func:`repro.faults.chaos.chaos_schedule` from a PRNG seeded only
    by ``seed`` — the same spec over the same topology and duration
    always expands to the identical schedule, so chaos runs are
    reproducible, digest-stable, and cacheable.
    """

    seed: int
    link_flap: float = 0.0
    degrade: float = 0.0
    cnp_drop: float = 0.0
    timer_freeze: float = 0.0
    switch_pause: float = 0.0

    def __post_init__(self) -> None:
        for name in ("link_flap", "degrade", "cnp_drop", "timer_freeze", "switch_pause"):
            if getattr(self, name) < 0:
                raise ValueError(f"chaos rate {name} must be non-negative")

    @property
    def empty(self) -> bool:
        return not any(
            (self.link_flap, self.degrade, self.cnp_drop,
             self.timer_freeze, self.switch_pause)
        )

    def to_dict(self) -> dict:
        out = asdict(self)
        out["type"] = "chaos"
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "ChaosSpec":
        data = {k: v for k, v in data.items() if k != "type"}
        return cls(**data)


#: What an ExperimentConfig's ``faults`` field may hold.
FaultPlan = Union[FaultSchedule, ChaosSpec]


def faults_to_dict(plan: Optional[FaultPlan]) -> Optional[dict]:
    """Serialize a fault plan (or None) for config/result JSON."""
    return None if plan is None else plan.to_dict()


def faults_from_dict(data: Optional[dict]) -> Optional[FaultPlan]:
    """Rebuild a fault plan from :func:`faults_to_dict` output."""
    if data is None:
        return None
    kind = data.get("type")
    if kind == "chaos":
        return ChaosSpec.from_dict(data)
    if kind == "schedule":
        return FaultSchedule.from_dict(data)
    raise ValueError(f"unknown fault plan type {kind!r}")
