"""Deterministic fault injection for the simulated fabric.

Declarative fault plans (:class:`FaultSpec` / :class:`FaultSchedule` /
seedable :class:`ChaosSpec`) are applied to a live network by the
:class:`FaultInjector`, which routes every onset and recovery through
the simulator's event queue — faulted runs are exactly as reproducible
as clean ones, and an empty plan leaves the event stream byte-identical
to no injector at all.
"""

from repro.faults.chaos import chaos_schedule
from repro.faults.injector import CnpFaultFilter, FaultInjector
from repro.faults.spec import (
    ALL_KINDS,
    ChaosSpec,
    FaultPlan,
    FaultSchedule,
    FaultSpec,
    faults_from_dict,
    faults_to_dict,
)

__all__ = [
    "ALL_KINDS",
    "ChaosSpec",
    "CnpFaultFilter",
    "FaultInjector",
    "FaultPlan",
    "FaultSchedule",
    "FaultSpec",
    "chaos_schedule",
    "faults_from_dict",
    "faults_to_dict",
]
