"""Event-time fault injection: apply a :class:`FaultSchedule` to a run.

The :class:`FaultInjector` turns each declarative
:class:`~repro.faults.spec.FaultSpec` into ordinary simulator events:
one onset event at ``at_ns`` and, for windowed faults, one recovery
event at ``at_ns + duration_ns``. Faults therefore interleave with
traffic in deterministic ``(time, sequence)`` order exactly like every
other event — a faulted run is as reproducible as a clean one, and an
*empty* schedule leaves the event stream byte-identical to an
uninstalled injector (nothing is scheduled, no RNG stream is drawn, no
component hook is touched).

Every applied transition emits a ``fault`` trace record *before* the
action takes effect, so the online auditor
(:class:`repro.trace.auditor.TraceAuditor`) always learns about a link
going down before any transmission could violate it, and about a link
coming back up before ``recover()`` restarts the port.

CNP faults install a :class:`CnpFaultFilter` on the targeted HCAs at
:meth:`FaultInjector.install` time; window onsets then only flip the
filter's parameters. The filter's randomness comes from per-node keyed
streams of the run's :class:`~repro.engine.rng.RngRegistry`
(``("faults", "cnp", node)``), so existing streams are never perturbed.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.faults.spec import FaultSchedule, FaultSpec
from repro.network.ports import LinkConfig, OutputPort


class CnpFaultFilter:
    """Per-HCA CNP fault stage: drop / delay / duplicate notifications.

    Installed on ``hca.cnp_fault``; :meth:`on_cnp` replaces the direct
    emission path of :meth:`repro.network.hca.Hca.send_cnp`. All
    parameters default to inactive (the filter then behaves exactly
    like the unfiltered path, modulo its presence on the attribute);
    the injector toggles them at window edges.
    """

    __slots__ = (
        "rng",
        "drop_prob",
        "delay_ns",
        "dup_prob",
        "cnps_dropped",
        "cnps_delayed",
        "cnps_duplicated",
    )

    def __init__(self, rng=None) -> None:
        self.rng = rng
        self.drop_prob = 0.0
        self.delay_ns = 0.0
        self.dup_prob = 0.0
        self.cnps_dropped = 0
        self.cnps_delayed = 0
        self.cnps_duplicated = 0

    def on_cnp(self, hca, dst: int) -> None:
        """Filter one notification ``hca`` wants to return to ``dst``."""
        if self.drop_prob > 0.0 and self.rng.random() < self.drop_prob:
            self.cnps_dropped += 1
            trace = hca.trace
            if trace is not None:
                trace.drop(
                    hca.sim.now, "h", hca.node_id, 0, hca.config.cnp_vl,
                    hca.node_id, dst, 0, 1, "cnp",
                )
            return
        if self.dup_prob > 0.0 and self.rng.random() < self.dup_prob:
            self.cnps_duplicated += 1
            hca._emit_cnp(dst)
        if self.delay_ns > 0.0:
            self.cnps_delayed += 1
            hca.sim.schedule(self.delay_ns, hca._emit_cnp, dst)
        else:
            hca._emit_cnp(dst)


class FaultInjector:
    """Schedules and applies one :class:`FaultSchedule` on a network."""

    __slots__ = (
        "network",
        "sim",
        "schedule",
        "_rng",
        "filters",
        "_orig_links",
        "onsets_applied",
        "recoveries_applied",
    )

    def __init__(self, network, schedule: FaultSchedule, *, rng=None) -> None:
        self.network = network
        self.sim = network.sim
        self.schedule = schedule
        self._rng = rng
        # node_id -> CnpFaultFilter, for HCAs targeted by any cnp_* spec.
        self.filters: Dict[int, CnpFaultFilter] = {}
        # (kind, node, port) -> LinkConfig before the first active degrade.
        self._orig_links: Dict[Tuple[str, int, int], LinkConfig] = {}
        self.onsets_applied = 0
        self.recoveries_applied = 0

    # -- wiring --------------------------------------------------------
    def install(self) -> "FaultInjector":
        """Schedule every spec's onset/recovery; install CNP filters.

        A no-op for an empty schedule: nothing enters the event heap
        and no component attribute is touched.
        """
        for spec in self.schedule:
            if spec.kind.startswith("cnp_"):
                for hca in self._target_hcas(spec):
                    if hca.cnp_fault is None:
                        rng = None
                        if self._rng is not None:
                            rng = self._rng.stream("faults", "cnp", hca.node_id)
                        hca.cnp_fault = CnpFaultFilter(rng)
                    self.filters[hca.node_id] = hca.cnp_fault
            self.sim.schedule_at(spec.at_ns, self._apply, spec)
            ends = spec.ends_at_ns
            if ends is not None:
                self.sim.schedule_at(ends, self._recover, spec)
        return self

    # -- target resolution ---------------------------------------------
    def _port(self, spec: FaultSpec) -> Tuple[OutputPort, str, int, int]:
        """The output port a link fault addresses: (port, kind, node, idx)."""
        if spec.node >= 0:
            return self.network.hcas[spec.node].obuf, "h", spec.node, 0
        sw = self.network.switches[spec.switch]
        return sw.output_ports[spec.port], "s", spec.switch, spec.port

    def _target_hcas(self, spec: FaultSpec) -> List:
        """The HCAs an HCA-side fault addresses (-1 = every HCA)."""
        if spec.node >= 0:
            return [self.network.hcas[spec.node]]
        return list(self.network.hcas)

    def _record(self, action: str, kind: str, node: int, port: int, value: float = 0.0) -> None:
        tracer = self.sim.trace
        if tracer is not None:
            tracer.fault(self.sim.now, action, kind, node, port, value)

    # -- onset ---------------------------------------------------------
    def _apply(self, spec: FaultSpec) -> None:
        self.onsets_applied += 1
        kind = spec.kind
        if kind == "link_down":
            port, k, node, idx = self._port(spec)
            self._record("link_down", k, node, idx)
            port.fail()
        elif kind == "degrade":
            port, k, node, idx = self._port(spec)
            key = (k, node, idx)
            if key not in self._orig_links:
                self._orig_links[key] = port.link
            orig = self._orig_links[key]
            self._record("degrade", k, node, idx, spec.value)
            port.link = LinkConfig(orig.rate_gbps * spec.value, port.link.prop_delay_ns)
        elif kind == "switch_pause":
            self._record("switch_pause", "s", spec.switch, -1)
            for out in self.network.switches[spec.switch].output_ports:
                out.pause()
        elif kind == "timer_freeze":
            for hca in self._target_hcas(spec):
                if hca.cc is not None:
                    self._record("timer_freeze", "h", hca.node_id, -1)
                    hca.cc.freeze()
        else:  # cnp_drop / cnp_delay / cnp_dup
            for hca in self._target_hcas(spec):
                self._record(kind, "h", hca.node_id, -1, spec.value)
                self._set_cnp_param(hca.cnp_fault, kind, spec.value)

    # -- recovery ------------------------------------------------------
    def _recover(self, spec: FaultSpec) -> None:
        self.recoveries_applied += 1
        kind = spec.kind
        if kind == "link_down":
            port, k, node, idx = self._port(spec)
            # Record first: recover() may restart transmission in this
            # same event, and the auditor must already know the link is up.
            self._record("link_up", k, node, idx)
            port.recover()
        elif kind == "degrade":
            port, k, node, idx = self._port(spec)
            orig = self._orig_links.pop((k, node, idx), None)
            self._record("restore", k, node, idx)
            if orig is not None:
                port.link = LinkConfig(orig.rate_gbps, port.link.prop_delay_ns)
        elif kind == "switch_pause":
            self._record("switch_resume", "s", spec.switch, -1)
            for out in self.network.switches[spec.switch].output_ports:
                out.recover()
        elif kind == "timer_freeze":
            for hca in self._target_hcas(spec):
                if hca.cc is not None:
                    self._record("timer_thaw", "h", hca.node_id, -1)
                    hca.cc.thaw()
        else:  # cnp_* window closes
            for hca in self._target_hcas(spec):
                self._record(kind + "_end", "h", hca.node_id, -1)
                self._set_cnp_param(hca.cnp_fault, kind, 0.0)

    @staticmethod
    def _set_cnp_param(filt: Optional[CnpFaultFilter], kind: str, value: float) -> None:
        if filt is None:
            return
        if kind == "cnp_drop":
            filt.drop_prob = value
        elif kind == "cnp_delay":
            filt.delay_ns = value
        elif kind == "cnp_dup":
            filt.dup_prob = value

    # -- introspection -------------------------------------------------
    def dropped_packets(self) -> int:
        """Packets lost on downed links, network-wide."""
        total = sum(
            out.dropped_packets
            for sw in self.network.switches
            for out in sw.output_ports
        )
        total += sum(h.obuf.dropped_packets for h in self.network.hcas)
        return total

    def cnps_dropped(self) -> int:
        """Notifications suppressed by CNP fault filters."""
        return sum(f.cnps_dropped for f in self.filters.values())
