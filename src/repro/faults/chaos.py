"""Deterministic chaos: expand a :class:`ChaosSpec` into a schedule.

The expansion is a pure function of ``(spec, topology shape, run
duration)``: every draw comes from a PRNG seeded only by the spec's
seed, so the same chaos spec expands to byte-identical schedules in
every worker process at any ``jobs`` value — chaos runs stay
reproducible, digest-stable, and cacheable.

Event counts per fault class follow a Poisson law with mean
``rate x simulated milliseconds`` (a rate of 0 disables the class);
start times land in the middle 80 % of the run so warmup and the final
measurement edge stay clean, and every chaos fault recovers before the
run ends (durations are windows, not permanent outages).
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.faults.spec import ChaosSpec, FaultSchedule, FaultSpec

# Chaos faults start inside this fraction of the run [lo, hi).
_START_LO = 0.1
_START_HI = 0.8
# Window length bounds as fractions of the run.
_DUR_LO = 0.02
_DUR_HI = 0.15


def _window(rng: np.random.Generator, sim_time_ns: float) -> tuple:
    at = float(rng.uniform(_START_LO, _START_HI)) * sim_time_ns
    duration = float(rng.uniform(_DUR_LO, _DUR_HI)) * sim_time_ns
    return at, duration


def chaos_schedule(
    spec: ChaosSpec,
    *,
    topology,
    sim_time_ns: float,
) -> FaultSchedule:
    """Draw the concrete :class:`FaultSchedule` for one chaos run.

    ``topology`` supplies the target pools: switch/port addressing uses
    the folded-Clos metadata when present (uplink ports of leaf
    switches — the fabric-internal links the paper's degrade scenarios
    target) and falls back to any switch output port otherwise.
    """
    if spec.empty or sim_time_ns <= 0:
        return FaultSchedule()
    # Chaos expansion runs at config time, before any RngRegistry
    # exists (the schedule itself becomes part of the config/store
    # key). A private generator seeded only by (0xFA417, spec.seed)
    # keeps the expansion a pure function of the spec.
    rng = np.random.Generator(np.random.PCG64(  # simlint: disable=DET001
        np.random.SeedSequence([0xFA417, int(spec.seed)])
    ))
    sim_ms = sim_time_ns / 1e6
    n_switches = len(topology.switches)
    n_hosts = topology.n_hosts
    meta = topology.meta or {}
    hosts_per_leaf = meta.get("hosts_per_leaf")
    n_leaves = meta.get("n_leaves")
    n_spines = meta.get("n_spines")

    def fabric_port(rng: np.random.Generator) -> tuple:
        """A (switch, port) pick biased to fabric-internal links."""
        if hosts_per_leaf is not None and n_leaves and n_spines:
            leaf = int(rng.integers(n_leaves))
            spine = int(rng.integers(n_spines))
            return leaf, hosts_per_leaf + spine
        sw = int(rng.integers(n_switches))
        port = int(rng.integers(topology.switches[sw].n_ports))
        return sw, port

    specs: List[FaultSpec] = []

    for _ in range(int(rng.poisson(spec.link_flap * sim_ms))):
        at, duration = _window(rng, sim_time_ns)
        sw, port = fabric_port(rng)
        specs.append(FaultSpec.link_flap(at, duration, switch=sw, port=port))

    for _ in range(int(rng.poisson(spec.degrade * sim_ms))):
        at, duration = _window(rng, sim_time_ns)
        sw, port = fabric_port(rng)
        factor = float(rng.uniform(0.1, 0.6))
        specs.append(FaultSpec(
            "degrade", at, duration, switch=sw, port=port, value=factor
        ))

    for _ in range(int(rng.poisson(spec.cnp_drop * sim_ms))):
        at, duration = _window(rng, sim_time_ns)
        node = int(rng.integers(n_hosts))
        prob = float(rng.uniform(0.3, 0.9))
        specs.append(FaultSpec("cnp_drop", at, duration, node=node, value=prob))

    for _ in range(int(rng.poisson(spec.timer_freeze * sim_ms))):
        at, duration = _window(rng, sim_time_ns)
        node = int(rng.integers(n_hosts))
        specs.append(FaultSpec("timer_freeze", at, duration, node=node))

    for _ in range(int(rng.poisson(spec.switch_pause * sim_ms))):
        at, duration = _window(rng, sim_time_ns)
        specs.append(FaultSpec(
            "switch_pause", at, duration, switch=int(rng.integers(n_switches))
        ))

    # Stable ordering regardless of draw order above: by onset time,
    # then by construction order for ties.
    order = sorted(range(len(specs)), key=lambda i: (specs[i].at_ns, i))
    return FaultSchedule(tuple(specs[i] for i in order))
