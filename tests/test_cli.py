"""Tests for the command-line interface."""

import pytest

from repro.experiments.cli import build_parser, main


class TestParser:
    def test_artifacts_accepted(self):
        parser = build_parser()
        for art in ("table2", "fig5", "fig6", "fig7", "fig8", "fig9a", "fig9b", "fig10"):
            assert parser.parse_args([art]).artifact == art

    def test_unknown_artifact_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig11"])

    def test_scale_choices(self):
        args = build_parser().parse_args(["table2", "--scale", "paper"])
        assert args.scale == "paper"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table2", "--scale", "huge"])

    def test_defaults(self):
        args = build_parser().parse_args(["fig10"])
        assert args.scale == "default"
        assert args.p == 60
        assert args.seed == 7
        assert args.jobs == 1
        assert args.cache_dir is None
        assert args.no_cache is False
        assert args.manifest is None

    def test_parallel_flags(self):
        args = build_parser().parse_args(
            ["table2", "--jobs", "4", "--cache-dir", "/tmp/c", "--no-cache",
             "--manifest", "/tmp/m.json"]
        )
        assert args.jobs == 4
        assert args.cache_dir == "/tmp/c"
        assert args.no_cache is True
        assert args.manifest == "/tmp/m.json"

    def test_invalid_jobs_is_exit_code_2(self):
        assert main(["table2", "--jobs", "0"]) == 2

    def test_cache_dir_that_is_a_file_is_exit_code_2(self, tmp_path):
        not_a_dir = tmp_path / "occupied"
        not_a_dir.write_text("")
        assert main(["table2", "--cache-dir", str(not_a_dir)]) == 2

    def test_faults_artifact_accepted(self):
        assert build_parser().parse_args(["faults"]).artifact == "faults"

    def test_fault_flags(self):
        args = build_parser().parse_args(
            ["table2", "--faults", "spec.json", "--resume", "run.json"]
        )
        assert args.faults == "spec.json"
        assert args.resume == "run.json"

    def test_parse_chaos(self):
        from repro.experiments.cli import parse_chaos

        spec = parse_chaos("7")
        assert spec.seed == 7 and spec.link_flap == 0.05
        spec = parse_chaos("3:link_flap=0.1,cnp_drop=0.2")
        assert (spec.seed, spec.link_flap, spec.cnp_drop) == (3, 0.1, 0.2)
        assert spec.degrade == 0.0
        with pytest.raises(ValueError):
            parse_chaos("3:warp_core=0.1")
        with pytest.raises(ValueError):
            parse_chaos("notanint")

    def test_faults_and_chaos_are_exclusive(self):
        assert main(["table2", "--faults", "a.json", "--chaos", "7"]) == 2

    def test_missing_faults_file_is_exit_code_2(self, tmp_path):
        assert main(["table2", "--faults", str(tmp_path / "nope.json")]) == 2

    def test_bad_chaos_spec_is_exit_code_2(self):
        assert main(["table2", "--chaos", "7:warp_core=0.1"]) == 2

    def test_faults_artifact_rejects_fault_flags(self):
        assert main(["faults", "--chaos", "7"]) == 2


class TestMainSmoke:
    """End-to-end CLI runs at quick scale with a coarse sweep.

    These are the slowest tests in the suite (a few seconds each); they
    guarantee every artifact path actually executes.
    """

    def test_fig8_single_point_sweep(self, capsys):
        # p-step 100 -> only p=0 and p=100: cheapest windy run.
        assert main(["fig8", "--scale", "quick", "--p-step", "100", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "Windy forest, 100% B nodes" in out
        assert "peak improvement" in out

    def test_fig8_parallel_cached_rerun_matches(self, capsys, tmp_path):
        # Same artifact with --jobs 2 and a cache: output identical, and
        # the second invocation is served entirely from the cache.
        argv = ["fig8", "--scale", "quick", "--p-step", "100", "--seed", "3",
                "--jobs", "2", "--cache-dir", str(tmp_path),
                "--manifest", str(tmp_path / "run.json")]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert main(argv) == 0
        second = capsys.readouterr().out
        assert first == second
        assert "Windy forest, 100% B nodes" in first

        import json

        manifest = json.loads((tmp_path / "run.json").read_text())
        assert manifest["cache_hits"] == manifest["total_cells"] == 4


class TestTransportFlags:
    def test_transport_flag_parses(self):
        assert build_parser().parse_args(["faults"]).transport is False
        assert build_parser().parse_args(["faults", "--transport"]).transport
        args = build_parser().parse_args(
            ["faults", "--transport", "--no-transport"]
        )
        assert args.transport is False

    def test_recovery_stats_requires_transport(self):
        assert main(["faults", "--recovery-stats", "out.json"]) == 2

    def test_recovery_stats_payload(self, tmp_path):
        from repro.experiments.cli import _write_recovery_stats
        from repro.experiments.config import ExperimentConfig
        from repro.experiments.runner import ExperimentResult
        from repro.transport import TransportConfig

        import json

        res = ExperimentResult(
            config=ExperimentConfig(
                name="cell", transport=TransportConfig()
            ),
            rates_gbps=[], hotspots=[], groups={}, tmax=0.0,
            n_b=0, n_c=0, n_v=0, fecn_marks=0, becns=0, events=0,
            wall_seconds=0.0, retx_packets=5, retx_bytes=10240,
            transport_timeouts=2, failed_flows=1,
            flow_health=[{"src": 0, "dst": 3, "state": "failed"}],
        )
        path = tmp_path / "recovery.json"
        _write_recovery_stats(str(path), [res])
        data = json.loads(path.read_text())
        assert data["total_retx_packets"] == 5
        assert data["total_failed_flows"] == 1
        (cell,) = data["cells"].values()
        assert cell["transport_timeouts"] == 2
        assert cell["flow_health"][0]["dst"] == 3


class TestCcFlags:
    def test_arena_artifact_accepted(self):
        args = build_parser().parse_args(["arena", "--quick"])
        assert args.artifact == "arena"
        assert args.quick is True

    def test_parse_cc(self):
        from repro.experiments.cli import parse_cc

        cc = parse_cc("reno")
        assert cc.mechanism == "reno" and cc.params == ()
        cc = parse_cc("dctcp:gain=0.125,ai=0.1")
        assert cc.mechanism == "dctcp"
        assert cc.params_dict() == {"gain": 0.125, "ai": 0.1}
        with pytest.raises(ValueError):
            parse_cc("warp_drive")
        with pytest.raises(ValueError):
            parse_cc("reno:warp=1")

    def test_bad_cc_spec_is_exit_code_2(self):
        assert main(["table2", "--cc", "warp_drive"]) == 2
        assert main(["table2", "--cc", "reno:warp=1"]) == 2

    def test_quick_and_out_dir_are_arena_only(self, tmp_path):
        assert main(["table2", "--quick"]) == 2
        assert main(["table2", "--out-dir", str(tmp_path)]) == 2

    def test_arena_rejects_faults_chaos_and_transport(self):
        assert main(["arena", "--chaos", "7"]) == 2
        assert main(["arena", "--faults", "a.json"]) == 2
        assert main(["arena", "--transport"]) == 2

    def test_arena_quick_smoke(self, capsys, tmp_path):
        """The acceptance run: full quick matrix + CSV/JSON artifacts."""
        assert main(
            ["arena", "--quick", "--scale", "quick",
             "--out-dir", str(tmp_path)]
        ) == 0
        out = capsys.readouterr().out
        assert "Congestion-control arena" in out
        for scenario in ("silent", "windy", "moving"):
            assert f"{scenario} scenario:" in out
        for mechanism in ("off", "ib", "dctcp", "reno", "dcqcn"):
            assert mechanism in out

        import csv as csv_mod
        import json

        with open(tmp_path / "arena.csv") as fh:
            rows = list(csv_mod.DictReader(fh))
        assert {r["scenario"] for r in rows} == {"silent", "windy", "moving"}
        assert {r["cc_mechanism"] for r in rows} == {
            "off", "ib", "dctcp", "reno", "dcqcn"
        }
        data = json.loads((tmp_path / "arena.json").read_text())
        assert set(data["mechanisms"]) == {"ib", "dctcp", "reno", "dcqcn"}

    def test_single_mechanism_arena_via_cc_flag(self, capsys):
        assert main(
            ["arena", "--quick", "--scale", "quick", "--cc", "reno"]
        ) == 0
        out = capsys.readouterr().out
        assert "reno" in out
        assert "dctcp" not in out


class TestStoreGc:
    def test_gc_lists_then_purges(self, capsys, tmp_path):
        (tmp_path / "aaaa.json.corrupt").write_text("not json{")
        (tmp_path / "bbbb.json").write_text("{}")
        assert main(["store", "gc", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "aaaa.json.corrupt" in out and "1 quarantined" in out
        assert (tmp_path / "aaaa.json.corrupt").exists()

        assert main(["store", "gc", str(tmp_path), "--purge"]) == 0
        out = capsys.readouterr().out
        assert "purged 1" in out
        assert not (tmp_path / "aaaa.json.corrupt").exists()
        assert (tmp_path / "bbbb.json").exists()  # real entries untouched

    def test_gc_missing_directory_is_exit_code_2(self, tmp_path):
        assert main(["store", "gc", str(tmp_path / "nope")]) == 2

    def test_gc_collects_a_real_quarantine(self, capsys, tmp_path):
        # End to end: a corrupt cache entry is quarantined by a load,
        # then collected by store gc.
        from repro.experiments.config import ExperimentConfig
        from repro.experiments.store import ResultStore, config_key

        from tests.conftest import MICRO_SCALE

        cfg = ExperimentConfig(scale=MICRO_SCALE, seed=3)
        store = ResultStore(str(tmp_path))
        (tmp_path / f"{config_key(cfg)}.json").write_text("{trunca")
        assert store.load(cfg) is None  # quarantines the bad entry
        assert main(["store", "gc", str(tmp_path), "--purge"]) == 0
        assert "purged 1" in capsys.readouterr().out
