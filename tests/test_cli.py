"""Tests for the command-line interface."""

import pytest

from repro.experiments.cli import build_parser, main


class TestParser:
    def test_artifacts_accepted(self):
        parser = build_parser()
        for art in ("table2", "fig5", "fig6", "fig7", "fig8", "fig9a", "fig9b", "fig10"):
            assert parser.parse_args([art]).artifact == art

    def test_unknown_artifact_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig11"])

    def test_scale_choices(self):
        args = build_parser().parse_args(["table2", "--scale", "paper"])
        assert args.scale == "paper"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table2", "--scale", "huge"])

    def test_defaults(self):
        args = build_parser().parse_args(["fig10"])
        assert args.scale == "default"
        assert args.p == 60
        assert args.seed == 7


class TestMainSmoke:
    """End-to-end CLI runs at quick scale with a coarse sweep.

    These are the slowest tests in the suite (a few seconds each); they
    guarantee every artifact path actually executes.
    """

    def test_fig8_single_point_sweep(self, capsys):
        # p-step 100 -> only p=0 and p=100: cheapest windy run.
        assert main(["fig8", "--scale", "quick", "--p-step", "100", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "Windy forest, 100% B nodes" in out
        assert "peak improvement" in out
