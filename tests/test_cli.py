"""Tests for the command-line interface."""

import pytest

from repro.experiments.cli import build_parser, main


class TestParser:
    def test_artifacts_accepted(self):
        parser = build_parser()
        for art in ("table2", "fig5", "fig6", "fig7", "fig8", "fig9a", "fig9b", "fig10"):
            assert parser.parse_args([art]).artifact == art

    def test_unknown_artifact_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig11"])

    def test_scale_choices(self):
        args = build_parser().parse_args(["table2", "--scale", "paper"])
        assert args.scale == "paper"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table2", "--scale", "huge"])

    def test_defaults(self):
        args = build_parser().parse_args(["fig10"])
        assert args.scale == "default"
        assert args.p == 60
        assert args.seed == 7
        assert args.jobs == 1
        assert args.cache_dir is None
        assert args.no_cache is False
        assert args.manifest is None

    def test_parallel_flags(self):
        args = build_parser().parse_args(
            ["table2", "--jobs", "4", "--cache-dir", "/tmp/c", "--no-cache",
             "--manifest", "/tmp/m.json"]
        )
        assert args.jobs == 4
        assert args.cache_dir == "/tmp/c"
        assert args.no_cache is True
        assert args.manifest == "/tmp/m.json"

    def test_invalid_jobs_is_exit_code_2(self):
        assert main(["table2", "--jobs", "0"]) == 2

    def test_cache_dir_that_is_a_file_is_exit_code_2(self, tmp_path):
        not_a_dir = tmp_path / "occupied"
        not_a_dir.write_text("")
        assert main(["table2", "--cache-dir", str(not_a_dir)]) == 2

    def test_faults_artifact_accepted(self):
        assert build_parser().parse_args(["faults"]).artifact == "faults"

    def test_fault_flags(self):
        args = build_parser().parse_args(
            ["table2", "--faults", "spec.json", "--resume", "run.json"]
        )
        assert args.faults == "spec.json"
        assert args.resume == "run.json"

    def test_parse_chaos(self):
        from repro.experiments.cli import parse_chaos

        spec = parse_chaos("7")
        assert spec.seed == 7 and spec.link_flap == 0.05
        spec = parse_chaos("3:link_flap=0.1,cnp_drop=0.2")
        assert (spec.seed, spec.link_flap, spec.cnp_drop) == (3, 0.1, 0.2)
        assert spec.degrade == 0.0
        with pytest.raises(ValueError):
            parse_chaos("3:warp_core=0.1")
        with pytest.raises(ValueError):
            parse_chaos("notanint")

    def test_faults_and_chaos_are_exclusive(self):
        assert main(["table2", "--faults", "a.json", "--chaos", "7"]) == 2

    def test_missing_faults_file_is_exit_code_2(self, tmp_path):
        assert main(["table2", "--faults", str(tmp_path / "nope.json")]) == 2

    def test_bad_chaos_spec_is_exit_code_2(self):
        assert main(["table2", "--chaos", "7:warp_core=0.1"]) == 2

    def test_faults_artifact_rejects_fault_flags(self):
        assert main(["faults", "--chaos", "7"]) == 2


class TestMainSmoke:
    """End-to-end CLI runs at quick scale with a coarse sweep.

    These are the slowest tests in the suite (a few seconds each); they
    guarantee every artifact path actually executes.
    """

    def test_fig8_single_point_sweep(self, capsys):
        # p-step 100 -> only p=0 and p=100: cheapest windy run.
        assert main(["fig8", "--scale", "quick", "--p-step", "100", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "Windy forest, 100% B nodes" in out
        assert "peak improvement" in out

    def test_fig8_parallel_cached_rerun_matches(self, capsys, tmp_path):
        # Same artifact with --jobs 2 and a cache: output identical, and
        # the second invocation is served entirely from the cache.
        argv = ["fig8", "--scale", "quick", "--p-step", "100", "--seed", "3",
                "--jobs", "2", "--cache-dir", str(tmp_path),
                "--manifest", str(tmp_path / "run.json")]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert main(argv) == 0
        second = capsys.readouterr().out
        assert first == second
        assert "Windy forest, 100% B nodes" in first

        import json

        manifest = json.loads((tmp_path / "run.json").read_text())
        assert manifest["cache_hits"] == manifest["total_cells"] == 4
