"""Property-based tests over the simulation core (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import RngRegistry, Simulator
from repro.metrics import Collector
from repro.network import Network, NetworkConfig
from repro.topology import three_stage_fat_tree
from repro.traffic import BNodeSource, HotspotSchedule


class TestSimulatorOrdering:
    @given(st.lists(st.floats(min_value=0.0, max_value=1e6), min_size=1, max_size=100))
    @settings(max_examples=50, deadline=None)
    def test_events_fire_in_nondecreasing_time(self, delays):
        sim = Simulator()
        fired = []
        for d in delays:
            sim.schedule(d, lambda: fired.append(sim.now))
        sim.run()
        assert fired == sorted(fired)
        assert len(fired) == len(delays)


class TestConservation:
    """Byte conservation: lossless fabric never creates or drops data."""

    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        p=st.sampled_from([0.0, 0.3, 0.7, 1.0]),
        cc=st.booleans(),
    )
    @settings(max_examples=12, deadline=None)
    def test_rx_never_exceeds_tx(self, seed, p, cc):
        from repro.core import CCManager, CCParams

        topo = three_stage_fat_tree(4)
        sim = Simulator()
        rng = RngRegistry(seed)
        col = Collector(topo.n_hosts, warmup_ns=0.0)
        net = Network(sim, topo, NetworkConfig(), collector=col)
        if cc:
            CCManager(CCParams.paper_table1().with_(cct_slope=0.5)).install(net)
        schedule = HotspotSchedule([0])
        for node in range(1, topo.n_hosts):
            gen = BNodeSource(
                node,
                topo.n_hosts,
                p,
                rng.stream("gen", node),
                hotspot=lambda: 0,
            )
            gen.bind(net.hcas[node])
            net.hcas[node].attach_generator(gen)
        net.run(until=5e5)

        total_tx = sum(col.tx_bytes)
        total_rx = sum(col.rx_bytes)
        assert total_rx <= total_tx
        # Whatever is missing is genuinely buffered in the fabric (plus
        # packets inside HCA output buffers / in flight on links).
        buffered = net.total_buffered_bytes()
        obufs = sum(h.obuf.queue_bytes for h in net.hcas)
        for sw in net.switches:
            obufs += sum(o.queue_bytes for o in sw.output_ports)
        # Wire overhead: allow header bytes per packet plus a few
        # packets of slack for in-flight serialization.
        tx_pkts = sum(col.tx_packets)
        slack = 30 * tx_pkts + 10 * 4156
        assert total_tx - total_rx <= buffered + obufs + slack

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=8, deadline=None)
    def test_per_node_injection_cap_respected(self, seed):
        topo = three_stage_fat_tree(4)
        sim = Simulator()
        rng = RngRegistry(seed)
        col = Collector(topo.n_hosts, warmup_ns=0.0)
        net = Network(sim, topo, NetworkConfig(), collector=col)
        for node in range(topo.n_hosts):
            gen = BNodeSource(node, topo.n_hosts, 0.0, rng.stream("gen", node))
            gen.bind(net.hcas[node])
            net.hcas[node].attach_generator(gen)
        horizon = 1e6
        net.run(until=horizon)
        for node in range(topo.n_hosts):
            rate = col.tx_bytes[node] * 8.0 / horizon
            assert rate <= 13.5 * 1.02 + 4096 * 8 / horizon


class TestDeterminism:
    @given(seed=st.integers(min_value=0, max_value=1_000))
    @settings(max_examples=5, deadline=None)
    def test_identical_runs_identical_outcomes(self, seed):
        def run():
            topo = three_stage_fat_tree(4)
            sim = Simulator()
            rng = RngRegistry(seed)
            col = Collector(topo.n_hosts, warmup_ns=0.0)
            net = Network(sim, topo, NetworkConfig(), collector=col)
            for node in range(topo.n_hosts):
                gen = BNodeSource(node, topo.n_hosts, 0.0, rng.stream("gen", node))
                gen.bind(net.hcas[node])
                net.hcas[node].attach_generator(gen)
            net.run(until=3e5)
            return list(col.rx_bytes), sim.events_executed

        assert run() == run()
