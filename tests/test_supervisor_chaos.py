"""Chaos harness for the supervised persistent-worker runtime.

The acceptance bar for PR 8 mirrors how PR 7 proved speed: prove
robustness by *attacking* the runtime. A seeded, deterministic kill
schedule SIGKILLs workers mid-campaign and the campaign must still
complete with trace digests byte-identical to an unmolested ``jobs=1``
run; a cell that kills workers every time it runs must be quarantined
(``error_kind="poisoned"``) without aborting the campaign; resource
budgets must surface as structured ``oom``/``timeout`` records; and
SIGTERM must drain exactly like Ctrl-C.

Set ``REPRO_CHAOS_ARTIFACT_DIR`` to keep the chaos manifest and the
supervisor log (the CI ``worker-chaos-smoke`` job uploads them on
failure).
"""

from __future__ import annotations

import json
import os
import random
import signal
import subprocess
import sys
import textwrap
import time

import pytest

from repro.experiments import ExperimentConfig
from repro.experiments.runner import TracedRun, run_experiment
from repro.experiments.store import config_key
from repro.parallel import (
    ERROR_KINDS,
    ProgressReporter,
    RetryPolicy,
    RunManifest,
    run_campaign,
)

from tests.conftest import MICRO_SCALE

#: The seed of the deterministic kill schedule. Changing it changes
#: *which* cells get their worker killed, never whether the campaign
#: survives.
KILL_SEED = 1234


def micro_cfg(**kw):
    return ExperimentConfig(
        scale=MICRO_SCALE, seed=3, sim_time_ns=1e6, warmup_ns=3e5, **kw
    )


def micro_grid(n=4):
    return [micro_cfg(cc=False).with_(seed=s) for s in range(1, n + 1)]


def seeded_kill_keys(cells, k, seed=KILL_SEED):
    """The deterministic kill schedule: which cells lose their worker."""
    keys = [config_key(c) for c in cells]
    return set(random.Random(seed).sample(keys, k))


def artifact_dir(tmp_path):
    """Where the chaos manifest + supervisor log land (CI uploads it)."""
    out = os.environ.get("REPRO_CHAOS_ARTIFACT_DIR") or str(tmp_path)
    os.makedirs(out, exist_ok=True)
    return out


class ChaosSigkill:
    """Picklable run_fn that SIGKILLs its own worker on schedule.

    The first attempt of every cell in ``kill_keys`` kills the worker
    *before* simulating anything; a marker file records the attempt so
    the retried attempt runs clean. The kill therefore perturbs only
    the harness — the surviving attempt is the same pure function of
    the config, which is exactly why the digests must come out
    byte-identical to a serial run.
    """

    def __init__(self, kill_keys, marker_dir, inner=None):
        self.kill_keys = set(kill_keys)
        self.marker_dir = marker_dir
        self.inner = inner if inner is not None else TracedRun()

    def __call__(self, cfg):
        key = config_key(cfg)
        if key in self.kill_keys:
            marker = os.path.join(self.marker_dir, key)
            if not os.path.exists(marker):
                with open(marker, "w") as fh:
                    fh.write(str(os.getpid()))
                os.kill(os.getpid(), signal.SIGKILL)
        return self.inner(cfg)


class MixedChaos:
    """Picklable run_fn: some cells always crash, some never finish."""

    def __init__(self, poison_keys=(), slow_keys=()):
        self.poison_keys = set(poison_keys)
        self.slow_keys = set(slow_keys)

    def __call__(self, cfg):
        key = config_key(cfg)
        if key in self.poison_keys:
            os.kill(os.getpid(), signal.SIGKILL)
        if key in self.slow_keys:
            time.sleep(60)
        return run_experiment(cfg)


class Recorder:
    """run_fn that records which seeds actually get simulated."""

    def __init__(self):
        self.seeds = []

    def __call__(self, cfg):
        self.seeds.append(cfg.seed)
        return run_experiment(cfg)


def _sleep_forever(cfg):
    time.sleep(60)
    return cfg


def _hoard_memory(cfg):
    hoard = []
    for _ in range(4096):  # up to 4 GiB in 1 MiB chunks
        hoard.append(bytearray(1024 * 1024))
    return len(hoard)


def _vm_size_mb():
    with open("/proc/self/status") as fh:
        for line in fh:
            if line.startswith("VmSize:"):
                return int(line.split()[1]) / 1024.0
    return 0.0


# ---------------------------------------------------------------------------
# The acceptance test: seeded SIGKILL chaos at jobs=4, digests
# byte-identical to an unmolested jobs=1 run.


class TestSigkillChaosDigests:
    def test_chaos_campaign_matches_unmolested_serial_run(self, tmp_path):
        cells = micro_grid(8)
        serial = run_campaign(cells, jobs=1, run_fn=TracedRun())
        assert all(o.ok for o in serial.outcomes)

        out_dir = artifact_dir(tmp_path)
        marker_dir = os.path.join(str(tmp_path), "markers")
        os.makedirs(marker_dir, exist_ok=True)
        kill_keys = seeded_kill_keys(cells, k=3)
        manifest_path = os.path.join(out_dir, "chaos-manifest.json")
        log_path = os.path.join(out_dir, "chaos-supervisor.log")

        with open(log_path, "w") as log_fh:
            chaos = run_campaign(
                cells, jobs=4, oversubscribe=True,
                run_fn=ChaosSigkill(kill_keys, marker_dir),
                retry=RetryPolicy(max_attempts=3),
                progress=ProgressReporter(stream=log_fh),
                manifest_path=manifest_path,
            )

        # Every scheduled kill actually fired, each costing one worker.
        assert sorted(os.listdir(marker_dir)) == sorted(kill_keys)
        assert chaos.manifest.worker_restarts == len(kill_keys)
        # The campaign still completed every cell...
        assert all(o.ok for o in chaos.outcomes)
        assert chaos.manifest.failures == 0
        # ...and the results are byte-identical to the serial run.
        assert chaos.manifest.digests() == serial.manifest.digests()
        assert all(d is not None for d in chaos.manifest.digests().values())
        # The checkpointed manifest agrees with the in-memory one.
        saved = RunManifest.load(manifest_path)
        assert saved.digests() == serial.manifest.digests()
        assert saved.worker_restarts == len(kill_keys)
        # The supervisor log narrates the kills (the CI artifact).
        with open(log_path) as fh:
            log_text = fh.read()
        assert log_text.count("died (exit -9)") == len(kill_keys)

    def test_kill_schedule_is_deterministic(self):
        cells = micro_grid(8)
        assert seeded_kill_keys(cells, 3) == seeded_kill_keys(cells, 3)
        assert seeded_kill_keys(cells, 3) != seeded_kill_keys(
            cells, 3, seed=KILL_SEED + 1
        )


# ---------------------------------------------------------------------------
# Poisoned-cell circuit breaker


class TestPoisonQuarantine:
    def test_poisoned_cell_is_quarantined_without_aborting(self, tmp_path):
        cells = micro_grid(6)
        poison = {config_key(cells[2])}
        result = run_campaign(
            cells, jobs=4, oversubscribe=True,
            run_fn=MixedChaos(poison_keys=poison),
            retry=RetryPolicy(max_attempts=5),
        )
        # The campaign finished: five clean cells, one quarantined.
        assert [o.status for o in result.outcomes].count("ok") == 5
        (failed,) = result.failed
        assert failed.index == 2
        assert failed.error_kind == "poisoned"
        assert "killed 2 worker(s)" in failed.error
        # The breaker tripped at the threshold, not at max_attempts.
        assert failed.worker_restarts == 2
        assert failed.attempts == 2
        # Every failure record carries a taxonomy kind.
        for o in result.failed:
            assert o.error_kind in ERROR_KINDS
        rec = [c for c in result.manifest.cells if c.status == "failed"]
        assert [c.error_kind for c in rec] == ["poisoned"]
        assert rec[0].worker_restarts == 2

    def test_poison_threshold_is_tunable(self, tmp_path):
        cells = micro_grid(3)
        poison = {config_key(cells[0])}
        result = run_campaign(
            cells, jobs=2, oversubscribe=True,
            run_fn=MixedChaos(poison_keys=poison),
            retry=RetryPolicy(max_attempts=6),
            poison_threshold=3,
        )
        (failed,) = result.failed
        assert failed.error_kind == "poisoned"
        assert failed.worker_restarts == 3


# ---------------------------------------------------------------------------
# Resource budgets: wall clock and RSS


class TestResourceBudgets:
    def test_timeout_budget_surfaces_as_timeout_kind(self):
        result = run_campaign(
            [{"cell": 0}], jobs=2, oversubscribe=True,
            run_fn=_sleep_forever, timeout_s=0.5,
        )
        (outcome,) = result.outcomes
        assert outcome.status == "failed"
        assert outcome.error_kind == "timeout"
        assert "TimeoutError" in outcome.error
        assert outcome.worker_restarts == 1
        assert result.manifest.worker_restarts == 1

    def test_timeout_kills_do_not_trip_the_poison_breaker(self):
        # Two timeouts kill two workers, but timeout kills are
        # *expected* deaths: the cell must stay "timeout", never
        # escalate to "poisoned".
        result = run_campaign(
            [{"cell": 0}], jobs=2, oversubscribe=True,
            run_fn=_sleep_forever, timeout_s=0.4,
            retry=RetryPolicy(max_attempts=2),
        )
        (outcome,) = result.outcomes
        assert outcome.status == "failed"
        assert outcome.error_kind == "timeout"
        assert outcome.attempts == 2
        assert outcome.worker_restarts == 2

    @pytest.mark.skipif(
        sys.platform != "linux",
        reason="RLIMIT_AS enforcement is exercised on Linux",
    )
    def test_rss_budget_surfaces_as_oom_kind(self):
        # Budget = current address space + headroom, so the worker
        # boots fine but the 4 GiB hoard hits the limit and fails with
        # MemoryError *inside* the worker — which survives.
        budget = _vm_size_mb() + 512
        result = run_campaign(
            [{"cell": 0}], jobs=2, oversubscribe=True,
            run_fn=_hoard_memory, max_rss_mb=budget,
        )
        (outcome,) = result.outcomes
        assert outcome.status == "failed"
        assert outcome.error_kind == "oom"
        assert "MemoryError" in outcome.error
        # The worker classified its own failure; no worker was killed.
        assert result.manifest.worker_restarts == 0


# ---------------------------------------------------------------------------
# Resume × quarantine: failed records replay, --retry-failed re-runs


class TestResumeQuarantine:
    def _quarantined_manifest(self, tmp_path, cells):
        """Run a campaign leaving one poisoned and one timed-out cell."""
        cache_dir = str(tmp_path / "cache")
        manifest_path = str(tmp_path / "run.json")
        run_campaign(
            cells, jobs=4, oversubscribe=True, cache=cache_dir,
            manifest_path=manifest_path,
            run_fn=MixedChaos(
                poison_keys={config_key(cells[1])},
                slow_keys={config_key(cells[2])},
            ),
            timeout_s=0.6,
            retry=RetryPolicy(max_attempts=2),
        )
        saved = RunManifest.load(manifest_path)
        kinds = {c.key: c.error_kind for c in saved.failed_cells()}
        assert kinds == {
            config_key(cells[1]): "poisoned",
            config_key(cells[2]): "timeout",
        }
        return cache_dir, manifest_path

    def test_resume_replays_quarantine_records_without_rerunning(self, tmp_path):
        cells = micro_grid(4)
        cache_dir, manifest_path = self._quarantined_manifest(tmp_path, cells)
        recorder = Recorder()
        resumed = run_campaign(
            cells, jobs=1, cache=cache_dir,
            resume_from=manifest_path, run_fn=recorder,
        )
        # Nothing was simulated: completed cells came from the cache,
        # quarantined cells were replayed as failed records.
        assert recorder.seeds == []
        assert [o.status for o in resumed.outcomes] == [
            "cached", "failed", "failed", "cached",
        ]
        assert resumed.outcomes[1].error_kind == "poisoned"
        assert resumed.outcomes[2].error_kind == "timeout"
        assert "TimeoutError" in resumed.outcomes[2].error

    def test_retry_failed_reruns_exactly_the_failed_set(self, tmp_path):
        cells = micro_grid(4)
        cache_dir, manifest_path = self._quarantined_manifest(tmp_path, cells)
        recorder = Recorder()
        resumed = run_campaign(
            cells, jobs=1, cache=cache_dir,
            resume_from=manifest_path, retry_failed=True, run_fn=recorder,
        )
        # Exactly the two failed cells re-ran — this time cleanly.
        assert recorder.seeds == [cells[1].seed, cells[2].seed]
        assert [o.status for o in resumed.outcomes] == [
            "cached", "ok", "ok", "cached",
        ]
        assert resumed.manifest.failures == 0
        assert resumed.manifest.complete is True

    def test_old_manifest_without_error_kind_backfills_unknown(self, tmp_path):
        cells = micro_grid(2)
        manifest_path = str(tmp_path / "old.json")
        # A manifest from before the taxonomy existed: failed records
        # carry only the stringified error.
        with open(manifest_path, "w") as fh:
            json.dump({
                "jobs": 1, "total_cells": 2, "ok": 1, "cache_hits": 0,
                "failures": 1, "interrupted": 0, "retries": 0,
                "worker_seconds": 0.2, "elapsed_seconds": 0.2,
                "complete": True,
                "cells": [
                    {"index": 0, "key": config_key(cells[0]),
                     "name": "", "status": "ok", "attempts": 1,
                     "wall_seconds": 0.1},
                    {"index": 1, "key": config_key(cells[1]),
                     "name": "", "status": "failed", "attempts": 1,
                     "wall_seconds": 0.1, "error": "RuntimeError: boom"},
                ],
            }, fh)
        loaded = RunManifest.load(manifest_path)
        assert loaded.failed_cells()[0].error_kind == "unknown"
        assert loaded.worker_restarts == 0

        recorder = Recorder()
        resumed = run_campaign(
            cells, jobs=1, resume_from=manifest_path, run_fn=recorder,
        )
        # No cache here: the ok cell re-runs (cache miss), the failed
        # record replays with the backfilled kind.
        assert recorder.seeds == [cells[0].seed]
        assert resumed.outcomes[1].status == "failed"
        assert resumed.outcomes[1].error_kind == "unknown"
        assert resumed.outcomes[1].error == "RuntimeError: boom"


# ---------------------------------------------------------------------------
# SIGTERM drains the supervised pool exactly like Ctrl-C


_SIGTERM_CHILD = textwrap.dedent("""
    import sys, time
    sys.path.insert(0, {src!r})
    sys.path.insert(0, {root!r})
    from repro.experiments.runner import run_experiment
    from repro.parallel import run_campaign
    from repro.parallel.pool import CampaignInterrupted
    from tests.test_supervisor_chaos import micro_grid

    def slow_run(cfg):
        time.sleep(0.4)   # widen the window a SIGTERM can land in
        return run_experiment(cfg)

    print("ready", flush=True)
    try:
        run_campaign(
            micro_grid(8), jobs=4, oversubscribe=True, cache={cache!r},
            manifest_path={manifest!r}, run_fn=slow_run,
        )
    except CampaignInterrupted:
        sys.exit(17)
    sys.exit(0)
""")


class TestSigtermDrain:
    def test_sigterm_drains_and_checkpoints_like_ctrl_c(self, tmp_path):
        cells = micro_grid(8)
        cache_dir = str(tmp_path / "cache")
        manifest_path = str(tmp_path / "run.json")
        root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        script = tmp_path / "child.py"
        script.write_text(_SIGTERM_CHILD.format(
            src=os.path.join(root, "src"), root=root,
            cache=cache_dir, manifest=manifest_path,
        ))
        proc = subprocess.Popen(
            [sys.executable, str(script)],
            stdout=subprocess.PIPE, stderr=subprocess.DEVNULL, text=True,
        )
        assert proc.stdout.readline().strip() == "ready"
        time.sleep(1.5)  # a few cells complete, several remain
        proc.send_signal(signal.SIGTERM)
        assert proc.wait(timeout=60) == 17

        saved = RunManifest.load(manifest_path)
        assert saved.complete is False
        assert saved.ok >= 1, "SIGTERM landed before any cell finished"
        assert saved.ok + saved.interrupted == 8
        assert saved.failures == 0

        # Drained cells are in the cache; resume completes the grid and
        # matches a fresh uninterrupted campaign.
        resumed = run_campaign(
            cells, jobs=1, cache=cache_dir, resume_from=manifest_path
        )
        expected = run_campaign(cells, jobs=1)
        for got, want in zip(resumed.results, expected.results):
            assert got.rates_gbps == want.rates_gbps
            assert got.events == want.events
        statuses = [o.status for o in resumed.outcomes]
        assert statuses.count("cached") >= saved.ok


# ---------------------------------------------------------------------------
# Worker reuse: the whole point of persistence


class TestWorkerPersistence:
    def test_many_cells_run_on_few_workers(self, tmp_path):
        # 12 cells at jobs=2 must not spawn 12 processes: track worker
        # pids via the results themselves.
        result = run_campaign(
            [{"cell": i} for i in range(12)], jobs=2, oversubscribe=True,
            run_fn=_report_pid,
        )
        pids = {o.result for o in result.outcomes}
        assert all(o.ok for o in result.outcomes)
        assert len(pids) <= 2
        assert result.manifest.worker_restarts == 0


def _report_pid(cfg):
    return os.getpid()
