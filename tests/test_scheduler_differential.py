"""Differential harness: HeapScheduler vs CalendarScheduler.

The calendar queue is a performance substitute for the reference heap,
so the two must agree on *every* observable: pop order (ascending
``(time, seq)`` with seq breaking timestamp ties), behavior under
``until`` horizons, ``peek``, and ``len``. These properties drive
random operation sequences through both structures — and through full
:class:`~repro.engine.Simulator` instances, where callbacks schedule
follow-up events into the bucket currently being drained (the calendar
queue's ``insort`` path) — and assert bit-equal traces.

The golden-digest suites extend the same guarantee to whole experiment
cells; this file is the fast, shrinkable end of that spectrum.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import Simulator
from repro.engine.scheduler import (
    SCHEDULERS,
    CalendarScheduler,
    HeapScheduler,
    make_scheduler,
    scheduler_from_env,
)

# Widths chosen to stress every calendar regime on the same sequences:
# sub-event buckets (everything crosses buckets), the shipped default,
# and one giant bucket (degenerates to a single sorted list).
WIDTHS = (1.0, 256.0, 1e9)

# Delays mix exact bucket boundaries, sub-bucket jitter, and far-future
# outliers (retransmission-timer territory).
DELAYS = st.one_of(
    st.sampled_from([0.0, 1.0, 50.0, 255.0, 256.0, 257.0, 512.0, 1e6]),
    st.floats(min_value=0.0, max_value=1e5, allow_nan=False, width=32),
)

OPS = st.lists(
    st.one_of(
        st.tuples(st.just("push"), DELAYS),
        st.tuples(st.just("pop"), st.none()),
        st.tuples(st.just("pop_until"), st.floats(min_value=0.0, max_value=2e5)),
        st.tuples(st.just("peek"), st.none()),
    ),
    min_size=1,
    max_size=200,
)


def _noop() -> None:
    pass


def run_ops(sched, ops):
    """Interpret an op sequence; return the full observable trace.

    ``push`` times are ``now + delay`` where ``now`` tracks the last
    popped timestamp — the same "never schedule in the past" contract
    the Simulator enforces, which the calendar's insort path relies on.
    """
    trace = []
    now = 0.0
    seq = 0
    for op, val in ops:
        if op == "push":
            sched.push(now + val, seq, _noop, None)
            seq += 1
            trace.append(("len", len(sched)))
        elif op == "pop":
            entry = sched.pop(None)
            if entry is not None:
                now = entry[0]
            trace.append(("pop", entry[:2] if entry else None, len(sched)))
        elif op == "pop_until":
            entry = sched.pop(now + val)
            if entry is not None:
                now = entry[0]
            trace.append(("pop", entry[:2] if entry else None, len(sched)))
        else:
            entry = sched.peek()
            trace.append(("peek", entry[:2] if entry else None, len(sched)))
    while True:
        entry = sched.pop(None)
        if entry is None:
            break
        trace.append(("drain", entry[:2]))
    trace.append(("empty", len(sched)))
    return trace


class TestSchedulerDifferential:
    @given(ops=OPS)
    @settings(max_examples=200)
    def test_identical_observable_trace(self, ops):
        reference = run_ops(HeapScheduler(), ops)
        for width in WIDTHS:
            assert run_ops(CalendarScheduler(width_ns=width), ops) == reference

    @given(
        times=st.lists(
            st.floats(min_value=0.0, max_value=4096.0, allow_nan=False),
            min_size=1,
            max_size=80,
        )
    )
    @settings(max_examples=100)
    def test_tie_break_is_scheduling_order(self, times):
        """Equal timestamps must pop in push (seq) order — both impls."""
        for sched in (HeapScheduler(), CalendarScheduler()):
            for seq, t in enumerate(times):
                sched.push(t, seq, _noop, None)
            popped = []
            while True:
                entry = sched.pop(None)
                if entry is None:
                    break
                popped.append(entry[:2])
            assert popped == sorted(popped)
            assert len(popped) == len(times)


def run_cascade(scheduler, root_delays, child_delays, fanout, until):
    """A simulation whose callbacks schedule more work while running.

    Children land at small relative delays, so under the calendar queue
    many of them fall into the bucket being drained — the insort path a
    static push/pop sequence never reaches.
    """
    sim = Simulator(scheduler=scheduler)
    order = []
    budget = [300]

    def fire(label):
        order.append((sim.now, label))
        if budget[0] <= 0:
            return
        for k in range(fanout):
            budget[0] -= 1
            child = label * fanout + k + 1
            sim.schedule(child_delays[child % len(child_delays)], fire, child)

    for i, d in enumerate(root_delays):
        sim.schedule(d, fire, i)
    sim.run(until=until)
    return order, sim.now, sim.events_executed, sim.pending


class TestSimulatorDifferential:
    @given(
        root_delays=st.lists(DELAYS, min_size=1, max_size=20),
        child_delays=st.lists(
            st.floats(min_value=0.0, max_value=600.0, allow_nan=False),
            min_size=1,
            max_size=10,
        ),
        fanout=st.integers(min_value=1, max_value=3),
    )
    @settings(max_examples=60, deadline=None)
    def test_cascading_schedules_identical(self, root_delays, child_delays, fanout):
        ref = run_cascade("heapq", root_delays, child_delays, fanout, until=5e4)
        cal = run_cascade("calendar", root_delays, child_delays, fanout, until=5e4)
        assert cal == ref

    @given(
        delays=st.lists(DELAYS, min_size=2, max_size=40),
        cancels=st.lists(st.integers(min_value=0, max_value=1000), max_size=15),
        reschedules=st.lists(st.integers(min_value=0, max_value=1000), max_size=10),
    )
    @settings(max_examples=80, deadline=None)
    def test_cancel_and_reschedule_identical(self, delays, cancels, reschedules):
        """Tombstoned and re-issued events fire identically either way."""

        def drive(scheduler):
            sim = Simulator(scheduler=scheduler)
            fired = []
            ids = [sim.schedule(d, fired.append, i) for i, d in enumerate(delays)]
            for pick in cancels:
                sim.cancel(ids[pick % len(ids)])
            for j, pick in enumerate(reschedules):
                victim = pick % len(ids)
                sim.cancel(ids[victim])
                ids[victim] = sim.schedule(
                    delays[victim] + 0.5, fired.append, 1000 + j
                )
            sim.run()
            return fired, sim.now, sim.pending

        assert drive("calendar") == drive("heapq")


class TestCalendarEdges:
    """Directed cases for the calendar's internal transitions."""

    def test_push_into_draining_bucket_keeps_order(self):
        sched = CalendarScheduler(width_ns=256.0)
        for seq, t in enumerate([10.0, 100.0, 200.0]):
            sched.push(t, seq, _noop, None)
        assert sched.pop(None)[:2] == (10.0, 0)
        # The clock is inside bucket 0; these land in the sorted remainder.
        sched.push(150.0, 3, _noop, None)
        sched.push(100.0, 4, _noop, None)  # tie with seq 1, must pop after
        got = []
        while True:
            entry = sched.pop(None)
            if entry is None:
                break
            got.append(entry[:2])
        assert got == [(100.0, 1), (100.0, 4), (150.0, 3), (200.0, 2)]

    def test_until_horizon_leaves_head_queued(self):
        for sched in (HeapScheduler(), CalendarScheduler()):
            sched.push(300.0, 0, _noop, None)
            assert sched.pop(100.0) is None
            assert len(sched) == 1
            assert sched.pop(300.0)[:2] == (300.0, 0)
            assert sched.pop(None) is None

    def test_peek_advances_across_empty_buckets(self):
        sched = CalendarScheduler(width_ns=1.0)
        sched.push(5000.0, 0, _noop, None)
        assert sched.peek()[:2] == (5000.0, 0)
        assert len(sched) == 1
        assert sched.pop(None)[:2] == (5000.0, 0)
        assert sched.peek() is None

    def test_exact_bucket_boundary_times(self):
        sched = CalendarScheduler(width_ns=256.0)
        times = [256.0, 255.9999, 256.0001, 512.0, 0.0]
        for seq, t in enumerate(times):
            sched.push(t, seq, _noop, None)
        got = [sched.pop(None)[:2] for _ in times]
        assert got == sorted(got)

    def test_width_must_be_positive(self):
        with pytest.raises(ValueError):
            CalendarScheduler(width_ns=0.0)


class TestSelection:
    def test_registry_names(self):
        assert set(SCHEDULERS) == {"heapq", "calendar"}

    def test_make_scheduler_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown scheduler"):
            make_scheduler("splay")

    def test_make_scheduler_passthrough(self):
        sched = CalendarScheduler()
        assert make_scheduler(sched) is sched
        with pytest.raises(TypeError):
            make_scheduler(object())  # type: ignore[arg-type]

    def test_env_selection(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCHEDULER", raising=False)
        assert scheduler_from_env() == "heapq"
        assert Simulator().scheduler_name == "heapq"
        monkeypatch.setenv("REPRO_SCHEDULER", "calendar")
        assert scheduler_from_env() == "calendar"
        assert Simulator().scheduler_name == "calendar"
        # Explicit argument beats the environment.
        assert Simulator(scheduler="heapq").scheduler_name == "heapq"
