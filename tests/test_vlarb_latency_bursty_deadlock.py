"""Tests for the extension substrates: weighted VL arbitration, latency
tracking, bursty traffic and deadlock detection."""

import numpy as np
import pytest

from repro.engine import RngRegistry, Simulator
from repro.metrics import Collector
from repro.metrics.latency import LatencyTracker
from repro.network import Network, NetworkConfig
from repro.network.deadlock import DeadlockWatchdog, detect_deadlock
from repro.network.ports import LinkConfig, OutputPort
from repro.network.vlarb import VlArbitrationTable, install_vl_arbitration
from repro.network.packet import Packet
from repro.topology import three_stage_fat_tree, torus
from repro.traffic import FixedRateSource
from repro.traffic.bursty import BurstySource

from tests.conftest import attach_fixed_flow, attach_hotspot_contributors, build_network

MS = 1e6


class Capture:
    def __init__(self):
        self.packets = []

    def deliver(self, pkt):
        self.packets.append(pkt)


class TestVlArbitrationTable:
    def _port(self, sim, table, n_vls=2):
        port = OutputPort(sim, LinkConfig(), n_vls=n_vls)
        port.credits = [10.0**9] * n_vls
        port.vlarb = table
        peer = Capture()
        port.peer = peer
        return port, peer

    def test_validation(self):
        with pytest.raises(ValueError):
            VlArbitrationTable([0], [0])  # weight < 1
        with pytest.raises(ValueError):
            VlArbitrationTable([0, 1], [1])  # length mismatch
        with pytest.raises(ValueError):
            VlArbitrationTable([], [])

    def test_strict_priority(self):
        sim = Simulator()
        port, peer = self._port(sim, VlArbitrationTable([0, 1], [1, 1]))
        for i in range(3):
            port.enqueue(Packet(0, 1, 1000, header=0, vl=0, msg_id=i))
        for i in range(3):
            port.enqueue(Packet(0, 1, 1000, header=0, vl=1, msg_id=10 + i))
        sim.run()
        vls = [p.vl for p in peer.packets]
        # After the first (already in flight) packet, VL1 drains fully
        # before VL0 resumes.
        assert vls[1:4] == [1, 1, 1]

    def test_priority_vl_does_not_starve_when_empty(self):
        sim = Simulator()
        port, peer = self._port(sim, VlArbitrationTable([0, 1], [1, 1]))
        port.enqueue(Packet(0, 1, 1000, header=0, vl=0))
        sim.run()
        assert len(peer.packets) == 1

    def test_weighted_share_within_level(self):
        sim = Simulator()
        port, peer = self._port(sim, VlArbitrationTable([0, 0], [3, 1]))
        for _ in range(40):
            port.enqueue(Packet(0, 1, 2048, header=0, vl=0))
            port.enqueue(Packet(0, 1, 2048, header=0, vl=1))
        sim.run()
        first = [p.vl for p in peer.packets[:32]]
        share0 = first.count(0) / len(first)
        assert share0 == pytest.approx(0.75, abs=0.1)

    def test_blocked_priority_vl_yields(self):
        sim = Simulator()
        port, peer = self._port(sim, VlArbitrationTable([0, 1], [1, 1]))
        port.credits[1] = 0.0  # the high-priority VL has no credits
        port.enqueue(Packet(0, 1, 1000, header=0, vl=1))
        port.enqueue(Packet(0, 1, 1000, header=0, vl=0))
        sim.run()
        assert [p.vl for p in peer.packets] == [0]

    def test_install_covers_all_ports(self):
        sim = Simulator()
        net, _, _ = build_network(sim, radix=4)
        count = install_vl_arbitration(net, [0, 1], [1, 1])
        n_switch_ports = sum(sw.n_ports for sw in net.switches)
        assert count == n_switch_ports + len(net.hcas)
        # Tables are per-port instances (independent deficit state).
        assert net.switches[0].output_ports[0].vlarb is not net.hcas[0].obuf.vlarb

    def test_install_validates_vl_count(self):
        sim = Simulator()
        net, _, _ = build_network(sim, radix=4)
        with pytest.raises(ValueError):
            install_vl_arbitration(net, [0], [1])

    def test_network_runs_with_vlarb_installed(self):
        sim = Simulator()
        net, col, _ = build_network(sim, radix=4)
        install_vl_arbitration(net, [0, 1], [1, 1])
        attach_fixed_flow(net, RngRegistry(1), src=0, dst=5, rate_gbps=10.0)
        net.run(until=2 * MS)
        assert col.rx_rate_gbps(5, 2 * MS) == pytest.approx(10.0, rel=0.05)


class TestLatencyTracker:
    def test_records_and_reduces(self):
        sim = Simulator()
        inner = Collector(8)
        tracker = LatencyTracker(inner, warmup_ns=0.0)
        net, _, _ = build_network(sim, radix=4, collector=tracker)
        attach_fixed_flow(net, RngRegistry(1), src=0, dst=5, rate_gbps=10.0)
        net.run(until=1 * MS)
        assert tracker.count() > 100
        pcts = tracker.percentiles([5])
        assert 0 < pcts[50.0] <= pcts[99.0]
        # Uncongested 3-hop path: a few microseconds at most.
        assert pcts[99.0] < 20_000.0

    def test_inner_collector_still_counts(self):
        sim = Simulator()
        inner = Collector(8)
        tracker = LatencyTracker(inner)
        net, _, _ = build_network(sim, radix=4, collector=tracker)
        attach_fixed_flow(net, RngRegistry(1), src=0, dst=5, rate_gbps=10.0)
        net.run(until=1 * MS)
        assert inner.rx_bytes[5] > 0
        # Delegation: collector API reachable through the tracker.
        assert tracker.rx_bytes[5] == inner.rx_bytes[5]

    def test_congestion_raises_latency(self):
        def run(congested):
            sim = Simulator()
            tracker = LatencyTracker(Collector(8), warmup_ns=0.5 * MS)
            net, _, _ = build_network(sim, radix=4, collector=tracker)
            rng = RngRegistry(1)
            if congested:
                attach_hotspot_contributors(net, rng, hotspot=5, contributors=[1, 2, 3])
            attach_fixed_flow(net, rng, src=0, dst=5, rate_gbps=1.0)
            net.run(until=3 * MS)
            return tracker.percentiles([5])[50.0]

        assert run(congested=True) > 3 * run(congested=False)

    def test_empty_samples_rejected(self):
        tracker = LatencyTracker(Collector(4))
        with pytest.raises(ValueError):
            tracker.percentiles()


class TestBurstySource:
    def test_validation(self):
        with pytest.raises(ValueError):
            BurstySource(0, 8, 0.0, np.random.default_rng(0), burst_ns=0)

    def test_long_run_load_is_duty_cycled(self):
        rng = np.random.default_rng(3)
        gen = BurstySource(
            0, 8, 0.0, rng, burst_ns=50_000.0, idle_ns=150_000.0,
            inj_rate_gbps=13.5,
        )
        sent = 0
        now = 0.0
        horizon = 20 * MS
        while now < horizon:
            pkt, t = gen.next_packet(now)
            if pkt is not None:
                sent += pkt.payload
                continue
            if t is None:
                break
            now = t
        rate = sent * 8 / horizon
        # Duty cycle 25% of 13.5 -> ~3.4 Gbit/s.
        assert rate == pytest.approx(0.25 * 13.5, rel=0.3)

    def test_idle_phase_emits_nothing(self):
        rng = np.random.default_rng(3)
        gen = BurstySource(0, 8, 0.0, rng, burst_ns=1000.0, idle_ns=1e9)
        # Force the generator into a known idle phase.
        gen._in_burst = False
        gen._phase_end = 5000.0
        pkt, t = gen.next_packet(1000.0)
        assert pkt is None and t == 5000.0
        # At the phase boundary a new burst starts and packets flow.
        pkt, t = gen.next_packet(5000.0)
        assert pkt is not None

    def test_runs_in_network(self):
        sim = Simulator()
        net, col, _ = build_network(sim, radix=4)
        rng = RngRegistry(1)
        gen = BurstySource(
            0, 8, 0.0, rng.stream("g"), burst_ns=100_000.0, idle_ns=100_000.0
        )
        gen.bind(net.hcas[0])
        net.hcas[0].attach_generator(gen)
        net.run(until=3 * MS)
        assert sum(col.rx_bytes) > 0
        assert gen.bursts > 1


class TestDeadlock:
    def test_healthy_network_reports_clean(self):
        sim = Simulator()
        net, _, _ = build_network(sim, radix=4)
        attach_fixed_flow(net, RngRegistry(1), src=0, dst=5, rate_gbps=10.0)
        net.run(until=1 * MS)
        # Drain: stop the generator, let everything complete.
        net.hcas[0].gen = None
        net.sim.run()
        report = detect_deadlock(net)
        assert not report.deadlocked
        assert "no deadlock" in report.format()

    def test_torus_ring_deadlocks_without_dateline(self):
        # All-to-all-ish saturation around a 4-ring on one data VL:
        # cyclic buffer dependencies wedge (real hardware would too
        # without dateline VLs).
        sim = Simulator()
        topo = torus([4])
        col = Collector(topo.n_hosts)
        net = Network(sim, topo, NetworkConfig(), collector=col)
        rng = RngRegistry(2)
        # Each node floods its +2 neighbour: every packet crosses two
        # ring links, keeping all four directional buffers loaded.
        for node in range(4):
            gen = FixedRateSource(node, 4, (node + 2) % 4, 20.0, rng.stream("g", node))
            gen.bind(net.hcas[node])
            net.hcas[node].attach_generator(gen)
        fired = []
        DeadlockWatchdog(net, 0.5 * MS, on_deadlock=fired.append).start()
        net.run(until=10 * MS)
        if fired:  # the watchdog saw it live
            assert fired[0].deadlocked
            assert fired[0].buffered_bytes > 0
            assert "DEADLOCK" in fired[0].format()
        else:
            # Otherwise it must at least wedge by the end: no progress.
            assert net.total_buffered_bytes() > 0

    def test_watchdog_validation(self):
        sim = Simulator()
        net, _, _ = build_network(sim, radix=4)
        with pytest.raises(ValueError):
            DeadlockWatchdog(net, 0.0)
