"""Every example script must at least parse and expose main().

Full example runs take seconds to minutes; the examples are exercised
manually and in documentation. This guard keeps them importable (syntax
and import errors fail fast in CI) without paying their runtime.
"""

import ast
import pathlib

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).parent.parent / "examples").glob("*.py")
)


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
def test_example_parses_and_has_main(path):
    tree = ast.parse(path.read_text())
    top_level_defs = {
        node.name for node in tree.body if isinstance(node, ast.FunctionDef)
    }
    assert "main" in top_level_defs, f"{path.name} lacks a main()"
    # Guarded entry point so imports never trigger a run.
    guards = [
        node
        for node in tree.body
        if isinstance(node, ast.If)
        and isinstance(node.test, ast.Compare)
        and getattr(node.test.left, "id", "") == "__name__"
    ]
    assert guards, f"{path.name} lacks an if __name__ guard"


def test_examples_present():
    assert len(EXAMPLES) >= 5
