"""Tests for the EXPERIMENTS.md report generator."""

import pytest

from repro.experiments.report import PAPER_TABLE2, generate_report

from tests.conftest import MICRO_SCALE


class TestPaperConstants:
    def test_table2_improvement_is_paper_seven_fold(self):
        imp = PAPER_TABLE2["total_throughput_cc"] / PAPER_TABLE2["total_throughput_no_cc"]
        assert imp == pytest.approx(7.14, abs=0.05)

    def test_non_hotspot_recovery_ratio(self):
        # Paper: >1200% improvement for non-hotspots by enabling CC.
        ratio = (
            PAPER_TABLE2["hotspots_cc_non_hotspot_avg"]
            / PAPER_TABLE2["hotspots_no_cc_non_hotspot_avg"]
        )
        assert ratio > 12.0


@pytest.mark.slow
class TestGenerateReport:
    def test_full_report_at_micro_scale(self):
        text = generate_report(MICRO_SCALE, seed=3, p_values=(0.0, 0.6, 1.0))
        # Every artifact section is present.
        for heading in (
            "# EXPERIMENTS",
            "## Table I",
            "## Table II",
            "## Figure 5",
            "## Figure 6",
            "## Figure 7",
            "## Figure 8",
            "## Figure 9",
            "## Figure 10",
        ):
            assert heading in text, heading
        # Paper reference values are embedded alongside measurements.
        assert "13.602" in text  # paper hotspot rate
        assert "seventeen-fold" in text
        # Markdown tables are well-formed (same pipe count per row).
        for block in text.split("\n\n"):
            rows = [l for l in block.splitlines() if l.startswith("|")]
            if rows:
                counts = {r.count("|") for r in rows}
                assert len(counts) == 1, block[:120]
