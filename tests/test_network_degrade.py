"""Tests for link degradation and in-fabric congestion roots."""

import pytest

from repro.core import CCManager, CCParams
from repro.engine import RngRegistry, Simulator
from repro.network.degrade import (
    degrade_link,
    degrade_uplink_between,
    degraded_ports,
    restore_link,
)

from tests.conftest import attach_fixed_flow, build_network

MS = 1e6


class TestDegrade:
    def test_validation(self):
        sim = Simulator()
        net, _, _ = build_network(sim, radix=4)
        with pytest.raises(ValueError):
            degrade_link(net, 0, 0, 0.0)
        with pytest.raises(ValueError):
            degrade_link(net, 0, 0, 1.5)

    def test_rate_scaled(self):
        sim = Simulator()
        net, _, _ = build_network(sim, radix=4)
        new_rate = degrade_link(net, 0, 2, 0.25)
        assert new_rate == pytest.approx(5.0)
        assert degraded_ports(net) == [(0, 2, pytest.approx(5.0))]

    def test_restore_round_trip(self):
        sim = Simulator()
        net, _, _ = build_network(sim, radix=4)
        base = net.switches[0].output_ports[2].link.rate_gbps
        degrade_link(net, 0, 2, 0.25)
        assert degraded_ports(net)
        restored = restore_link(net, 0, 2)
        assert restored == pytest.approx(base)
        assert net.switches[0].output_ports[2].link.rate_gbps == pytest.approx(base)
        assert degraded_ports(net) == []

    def test_restore_never_degraded_is_noop(self):
        sim = Simulator()
        net, _, _ = build_network(sim, radix=4)
        base = net.switches[0].output_ports[2].link.rate_gbps
        assert restore_link(net, 0, 2) == pytest.approx(base)
        assert degraded_ports(net) == []

    def test_uplink_helper_targets_right_port(self):
        sim = Simulator()
        net, _, _ = build_network(sim, radix=4)
        sw, port = degrade_uplink_between(net, leaf=1, spine=0, factor=0.5)
        assert (sw, port) == (1, 2)  # hosts_per_leaf=2, spine 0 -> port 2

    def test_throughput_follows_degraded_link(self):
        sim = Simulator()
        net, col, _ = build_network(sim, radix=4)
        # Host 0 -> host 5 crosses leaf 0's uplink to spine (5 % 2 = 1).
        degrade_uplink_between(net, leaf=0, spine=1, factor=0.25)  # 5 Gbit/s
        attach_fixed_flow(net, RngRegistry(1), src=0, dst=5, rate_gbps=13.5)
        net.run(until=3 * MS)
        rate = col.rx_rate_gbps(5, 3 * MS)
        assert rate == pytest.approx(5.0, rel=0.1)

    def test_degraded_uplink_roots_in_fabric_and_marks(self):
        # Two full-rate flows share a 5 Gbit/s uplink: the slow port is
        # the congestion root *inside* the fabric. It keeps earning
        # credits from its healthy downstream, so the credit rule
        # classifies it as a root and CC marks there - no Victim Mask
        # involved (that port is switch-facing).
        sim = Simulator()
        params = CCParams.paper_table1().with_(cct_slope=0.5, marking_rate=0)
        net, col, mgr = build_network(sim, radix=4, cc=True, cc_params=params)
        sw, port = degrade_uplink_between(net, leaf=0, spine=1, factor=0.25)
        rng = RngRegistry(1)
        attach_fixed_flow(net, rng, src=0, dst=5, rate_gbps=13.5)
        attach_fixed_flow(net, rng, src=1, dst=7, rate_gbps=13.5)
        net.run(until=4 * MS)
        scc = mgr.switch_cc[sw]
        assert scc.marks > 0
        assert not scc.victim_mask[port]
        # Both flows got throttled toward the 5 Gbit/s bottleneck share.
        assert mgr.total_becns() > 0

    def test_cc_shares_degraded_link_fairly(self):
        from repro.metrics import Collector, jain_fairness

        sim = Simulator()
        params = CCParams.paper_table1().with_(cct_slope=0.5, marking_rate=0)
        col = Collector(8, warmup_ns=2 * MS, track_pairs=True)
        net, col, mgr = build_network(
            sim, radix=4, collector=col, cc=True, cc_params=params
        )
        degrade_uplink_between(net, leaf=0, spine=1, factor=0.25)
        rng = RngRegistry(1)
        attach_fixed_flow(net, rng, src=0, dst=5, rate_gbps=13.5)
        attach_fixed_flow(net, rng, src=1, dst=7, rate_gbps=13.5)
        net.run(until=8 * MS)
        a = col.rx_by_src.get((0, 5), 0)
        b = col.rx_by_src.get((1, 7), 0)
        assert jain_fairness([a, b]) > 0.9
        total = (a + b) * 8 / (6 * MS)
        assert total == pytest.approx(5.0, rel=0.25)
