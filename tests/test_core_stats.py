"""Tests for CC statistics snapshots."""

from repro.core import CcSnapshot, snapshot_cc
from repro.core.stats import HcaCcStats
from repro.engine import RngRegistry, Simulator

from tests.conftest import attach_hotspot_contributors, build_network

MS = 1e6


def congested_snapshot():
    sim = Simulator()
    net, _, mgr = build_network(sim, radix=4, cc=True)
    attach_hotspot_contributors(net, RngRegistry(1), hotspot=0, contributors=range(1, 8))
    net.run(until=3 * MS)
    return net, mgr, snapshot_cc(net, mgr)


class TestSnapshot:
    def test_totals_match_manager(self):
        net, mgr, snap = congested_snapshot()
        assert snap.total_marks == mgr.total_marks() > 0
        assert snap.total_becns == mgr.total_becns() > 0
        assert snap.throttled_flows == mgr.throttled_flows()
        assert snap.time_ns == net.sim.now

    def test_per_switch_marks_sum(self):
        _, mgr, snap = congested_snapshot()
        assert sum(snap.per_switch_marks.values()) == snap.total_marks

    def test_hca_entries_complete(self):
        net, _, snap = congested_snapshot()
        assert len(snap.hcas) == len(net.hcas)
        assert sum(h.becns_applied for h in snap.hcas) == snap.total_becns

    def test_hottest_hcas_sorted(self):
        _, _, snap = congested_snapshot()
        hot = snap.hottest_hcas(3)
        cctis = [h.deepest_ccti for h in hot]
        assert cctis == sorted(cctis, reverse=True)
        assert hot[0].deepest_ccti > 0

    def test_marking_ratio_with_marking_rate_zero_equivalent(self):
        # Bench-profile Marking_Rate 3 -> roughly a quarter marked.
        _, _, snap = congested_snapshot()
        assert 0.1 < snap.marking_ratio <= 1.0

    def test_format_prints_key_lines(self):
        _, _, snap = congested_snapshot()
        text = snap.format()
        assert "FECN marks" in text
        assert "throttled flows" in text
        assert "deepest throttles" in text

    def test_empty_snapshot_ratio(self):
        snap = CcSnapshot(
            time_ns=0.0, total_marks=0, total_eligible=0, total_becns=0,
            total_cnps=0, throttled_flows=0,
        )
        assert snap.marking_ratio == 0.0
        assert snap.hottest_hcas() == []
