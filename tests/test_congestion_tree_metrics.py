"""Tests for the congestion-tree observation helpers."""

from repro.engine import RngRegistry, Simulator
from repro.metrics import congested_ports, congestion_snapshot

from tests.conftest import attach_hotspot_contributors, build_network


class TestCongestionObservation:
    def _congested_network(self):
        sim = Simulator()
        net, col, _ = build_network(sim)  # no CC: tree grows freely
        attach_hotspot_contributors(
            net, RngRegistry(1), hotspot=0, contributors=range(1, 8)
        )
        net.run(until=2e6)
        return net

    def test_idle_network_has_no_congestion(self):
        sim = Simulator()
        net, _, _ = build_network(sim)
        net.run(until=1e5)
        assert congested_ports(net) == []

    def test_hotspot_port_detected_as_congested(self):
        net = self._congested_network()
        ports = congested_ports(net)
        att = net.topology.host_attachment(0)
        assert (att.switch_id, att.switch_port) in ports

    def test_tree_spans_multiple_switches(self):
        # Without CC the backlog reaches the spine: congestion spreading.
        net = self._congested_network()
        switches = {sw for sw, _ in congested_ports(net)}
        assert len(switches) >= 2

    def test_snapshot_structure(self):
        net = self._congested_network()
        snap = congestion_snapshot(net)
        assert snap["time_ns"] == net.sim.now
        assert set(snap["buffered_bytes"]) == {
            sw.node_id for sw in net.switches
        }
        for port, feeders in snap["branches"].items():
            assert port in snap["congested_ports"]
            assert feeders  # a congested port has at least one feeder

    def test_fraction_parameter(self):
        net = self._congested_network()
        strict = congested_ports(net, fraction=0.9)
        loose = congested_ports(net, fraction=0.05)
        assert set(strict) <= set(loose)
