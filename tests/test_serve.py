"""The campaign daemon: units + in-process API integration.

The in-process tests run the real ServeApp (real sockets, real worker
processes) on an ephemeral port inside a thread; subprocess crash
tests live in ``test_serve_replay.py``.
"""

import asyncio
import threading
import time

import pytest

from repro.serve.app import ServeApp
from repro.serve.client import ServeClient, ServeError
from repro.serve.http import HttpError, read_request
from repro.serve.loadgen import micro_cell
from repro.serve.scheduler import (
    AdmissionController,
    AdmissionLimits,
    FairScheduler,
    ShedLoad,
)
from repro.serve.service import CampaignService
from repro.serve.singleflight import FLIGHT_CANCELLED, SingleFlight


# ---------------------------------------------------------------------------
# units: fair scheduler


def _flight(registry, key, tenant, priority=10):
    return registry.open(key, config=None, tenant=tenant, priority=priority)


class TestFairScheduler:
    def test_round_robin_across_tenants(self):
        reg, sched = SingleFlight(), FairScheduler()
        # Tenant A floods before tenant B submits a single flight.
        for i in range(3):
            sched.push(_flight(reg, f"a{i}", "alice"))
        sched.push(_flight(reg, "b0", "bob"))
        order = [sched.pop().key for _ in range(4)]
        # Bob's lone flight runs second, not behind Alice's backlog.
        assert order == ["a0", "b0", "a1", "a2"]

    def test_priority_orders_within_tenant(self):
        reg, sched = SingleFlight(), FairScheduler()
        sched.push(_flight(reg, "low", "alice", priority=50))
        sched.push(_flight(reg, "high", "alice", priority=1))
        assert sched.pop().key == "high"
        assert sched.pop().key == "low"

    def test_cancelled_flights_lazily_skipped(self):
        reg, sched = SingleFlight(), FairScheduler()
        doomed = _flight(reg, "x", "alice")
        sched.push(doomed)
        sched.push(_flight(reg, "y", "alice"))
        doomed.state = FLIGHT_CANCELLED
        assert len(sched) == 1
        assert sched.pop().key == "y"
        assert sched.pop() is None

    def test_clear_returns_only_queued(self):
        reg, sched = SingleFlight(), FairScheduler()
        doomed = _flight(reg, "x", "alice")
        live = _flight(reg, "y", "bob")
        sched.push(doomed)
        sched.push(live)
        doomed.state = FLIGHT_CANCELLED
        assert [f.key for f in sched.clear()] == ["y"]
        assert len(sched) == 0


class TestAdmission:
    def test_queue_ceiling_sheds_with_retry_after(self):
        ctl = AdmissionController(AdmissionLimits(max_queued=4), workers=2)
        with pytest.raises(ShedLoad) as exc:
            ctl.admit(
                tenant="t", new_flights=3, queued=2,
                tenant_queued=0, inflight_cells=0,
            )
        assert exc.value.retry_after_s >= 1
        assert ctl.shed_by_reason == {"queue_full": 1}

    def test_tenant_quota_independent_of_global_queue(self):
        ctl = AdmissionController(
            AdmissionLimits(max_queued=100, max_tenant_queued=2), workers=2
        )
        with pytest.raises(ShedLoad, match="tenant"):
            ctl.admit(
                tenant="greedy", new_flights=1, queued=5,
                tenant_queued=2, inflight_cells=0,
            )

    def test_inflight_budget(self):
        ctl = AdmissionController(AdmissionLimits(max_inflight=4), workers=2)
        with pytest.raises(ShedLoad, match="in-flight"):
            ctl.admit(
                tenant="t", new_flights=2, queued=1,
                tenant_queued=1, inflight_cells=2,
            )

    def test_within_limits_admits(self):
        ctl = AdmissionController(AdmissionLimits(), workers=2)
        ctl.admit(
            tenant="t", new_flights=10, queued=0,
            tenant_queued=0, inflight_cells=0,
        )
        assert ctl.shed_count == 0

    def test_retry_after_tracks_observed_service_rate(self):
        ctl = AdmissionController(AdmissionLimits(), workers=2)
        fast = ctl.retry_after_s(backlog=100)
        for _ in range(50):
            ctl.observe_wall(30.0)  # cells got much slower
        assert ctl.retry_after_s(backlog=100) > fast


# ---------------------------------------------------------------------------
# units: single-flight registry


class TestSingleFlight:
    def test_join_counts_dedup_and_pulls_priority_forward(self):
        reg = SingleFlight()
        flight = reg.open("k", config=None, tenant="a", priority=50)

        class _Campaign:
            priority = 3

        reg.join("k", _Campaign(), object())
        assert reg.joins == 1
        assert flight.priority == 3  # queued flight rescheduled hotter

    def test_duplicate_open_rejected(self):
        reg = SingleFlight()
        reg.open("k", config=None, tenant="a", priority=1)
        with pytest.raises(ValueError, match="already open"):
            reg.open("k", config=None, tenant="b", priority=1)

    def test_land_removes(self):
        reg = SingleFlight()
        reg.open("k", config=None, tenant="a", priority=1)
        assert reg.land("k").key == "k"
        assert "k" not in reg
        assert reg.land("k") is None


# ---------------------------------------------------------------------------
# units: HTTP parsing hardening


def _parse(raw: bytes):
    async def run():
        reader = asyncio.StreamReader()
        reader.feed_data(raw)
        reader.feed_eof()
        return await read_request(reader)

    return asyncio.run(run())


class TestHttpParsing:
    def test_parses_request_line_query_and_body(self):
        req = _parse(
            b"POST /v1/campaigns?x=1 HTTP/1.1\r\n"
            b"Content-Type: application/json\r\n"
            b"Content-Length: 2\r\n\r\n{}"
        )
        assert req.method == "POST"
        assert req.path == "/v1/campaigns"
        assert req.query == {"x": "1"}
        assert req.json() == {}

    def test_clean_eof_returns_none(self):
        assert _parse(b"") is None

    def test_malformed_request_line_is_400(self):
        with pytest.raises(HttpError) as exc:
            _parse(b"GARBAGE\r\n\r\n")
        assert exc.value.status == 400

    def test_oversized_body_is_413(self):
        with pytest.raises(HttpError) as exc:
            _parse(
                b"POST / HTTP/1.1\r\nContent-Length: 99999999999\r\n\r\n"
            )
        assert exc.value.status == 413

    def test_truncated_body_is_400(self):
        with pytest.raises(HttpError) as exc:
            _parse(b"POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc")
        assert exc.value.status == 400

    def test_chunked_rejected(self):
        with pytest.raises(HttpError) as exc:
            _parse(b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n")
        assert exc.value.status == 400

    def test_bad_json_body_is_400(self):
        req = _parse(
            b"POST / HTTP/1.1\r\nContent-Length: 4\r\n\r\n{bad"
        )
        with pytest.raises(HttpError) as exc:
            req.json()
        assert exc.value.status == 400


# ---------------------------------------------------------------------------
# in-process daemon fixture


class Daemon:
    """A real ServeApp on an ephemeral port, on a background thread."""

    def __init__(self, store_dir, **service_kw):
        service_kw.setdefault("workers", 2)
        self.service = CampaignService(str(store_dir), **service_kw)
        self.app = ServeApp(self.service, host="127.0.0.1", port=0)
        self.thread = threading.Thread(
            target=lambda: asyncio.run(self.app.run()), daemon=True
        )
        self.thread.start()
        deadline = time.monotonic() + 10
        while self.app.bound_port is None:
            assert time.monotonic() < deadline, "daemon never bound"
            time.sleep(0.01)
        self.client = ServeClient("127.0.0.1", self.app.bound_port)

    def stop(self):
        if self.thread.is_alive():
            self.app.loop.call_soon_threadsafe(self.app.request_shutdown)
            self.thread.join(timeout=60)
        assert not self.thread.is_alive(), "daemon failed to drain"


@pytest.fixture
def daemon_factory(tmp_path):
    started = []

    def start(subdir="store", **kw):
        d = Daemon(tmp_path / subdir, **kw)
        started.append(d)
        return d

    yield start
    for d in started:
        d.stop()


# ---------------------------------------------------------------------------
# API integration


class TestServeApi:
    def test_submit_run_cache_and_result_fetch(self, daemon_factory):
        d = daemon_factory()
        c = d.client
        r = c.submit(
            [micro_cell(seed=11), micro_cell(seed=11), micro_cell(seed=12)],
            tenant="alice",
        )
        assert r.status == 202
        state = c.wait(r.json()["id"], timeout_s=120)
        assert state["counts"] == {"ok": 3}
        assert state["dedup_joins"] == 1  # within-campaign duplicate joined

        # Same configs again: pure cache, zero new simulations.
        before = c.stats()["simulations_started"]
        r2 = c.submit([micro_cell(seed=11), micro_cell(seed=12)])
        state2 = c.wait(r2.json()["id"], timeout_s=30)
        assert state2["counts"] == {"cached": 2}
        assert c.stats()["simulations_started"] == before

        key = state["cells"][0]["key"]
        raw = c.result_bytes(key)
        assert raw == c.result_bytes(key)  # stable bytes
        import json as _json

        assert "rates_gbps" in _json.loads(raw)

    def test_invalid_cells_rejected_with_per_cell_problems(
        self, daemon_factory
    ):
        d = daemon_factory()
        bad = micro_cell()
        bad["p"] = 9.0
        worse = {"seed": 1}  # no scale at all
        r = d.client.submit([micro_cell(), bad, worse])
        assert r.status == 400
        problems = r.json()["problems"]
        assert [p["cell"] for p in problems] == [1, 2]
        assert "p must be in [0, 1]" in problems[0]["error"]
        # Nothing was admitted.
        assert d.client.stats()["campaigns"] == 0

    def test_payload_shape_validation(self, daemon_factory):
        d = daemon_factory()
        assert d.client.submit([]).status == 400
        assert d.client.request(
            "POST", "/v1/campaigns", {"cells": [micro_cell()], "priority": -1}
        ).status == 400
        assert d.client.request("POST", "/v1/campaigns", "nope").status == 400

    def test_unknown_routes_and_methods(self, daemon_factory):
        d = daemon_factory()
        assert d.client.request("GET", "/v1/nope").status == 404
        assert d.client.request("DELETE", "/v1/campaigns").status == 405
        assert d.client.request("GET", "/v1/results/deadbeef").status == 404
        with pytest.raises(ServeError):
            d.client.campaign("missing")

    def test_admission_sheds_with_retry_after(self, daemon_factory):
        d = daemon_factory(
            subdir="shed-store",
            limits=AdmissionLimits(max_queued=1, max_inflight=3),
            workers=1,
        )
        statuses = []
        responses = []
        for i in range(12):
            r = d.client.submit([micro_cell(seed=500 + i)])
            statuses.append(r.status)
            responses.append(r)
        assert 429 in statuses, statuses
        shed = [r for r in responses if r.status == 429]
        assert all(r.retry_after_s >= 1 for r in shed)
        assert all(r.json()["shed"] for r in shed)
        stats = d.client.stats()
        assert stats["shed"]["total"] == len(shed)
        # Accepted campaigns still complete despite the pressure.
        for r in responses:
            if r.status == 202:
                d.client.wait(r.json()["id"], timeout_s=120)

    def test_cancel_queued_cells(self, daemon_factory):
        d = daemon_factory(subdir="cancel-store", workers=1)
        # One worker + several distinct cells: most of them queue.
        r = d.client.submit([micro_cell(seed=700 + i) for i in range(6)])
        assert r.status == 202
        cid = r.json()["id"]
        state = d.client.cancel(cid)
        assert state["cancelled"] is True
        final = d.client.wait(cid, timeout_s=120)
        counts = final["counts"]
        assert counts.get("cancelled", 0) >= 1, counts
        # Cancel is idempotent.
        assert d.client.cancel(cid)["cancelled"] is True
        # The daemon still serves fresh work afterwards.
        r2 = d.client.submit([micro_cell(seed=790)])
        assert d.client.wait(r2.json()["id"], timeout_s=120)["counts"] == {
            "ok": 1
        }

    def test_sse_stream_snapshot_deltas_and_terminal_event(
        self, daemon_factory
    ):
        d = daemon_factory()
        r = d.client.submit([micro_cell(seed=900)])
        events = d.client.events(r.json()["id"], timeout_s=120)
        names = [n for n, _ in events]
        assert names[0] == "snapshot"
        assert names[-1] == "campaign"
        assert events[-1][1]["done"] is True
        cell_events = [p for n, p in events if n == "cell"]
        assert any(p["status"] == "ok" for p in cell_events)

    def test_sse_on_finished_campaign_is_just_the_snapshot(
        self, daemon_factory
    ):
        d = daemon_factory()
        r = d.client.submit([micro_cell(seed=901)])
        d.client.wait(r.json()["id"], timeout_s=120)
        events = d.client.events(r.json()["id"], timeout_s=30)
        assert [n for n, _ in events] == ["snapshot"]
        assert events[0][1]["done"] is True

    def test_stats_shape(self, daemon_factory):
        d = daemon_factory()
        stats = d.client.stats()
        for field in (
            "workers", "draining", "campaigns", "queued_flights",
            "cache_hits", "dedup_joins", "shed", "simulations_started",
            "cells_done", "worker_restarts",
        ):
            assert field in stats, field

    def test_failure_taxonomy_surfaces_per_cell(self, daemon_factory):
        # A daemon whose per-cell budget no simulation can meet: every
        # cell must fail with the structured "timeout" taxonomy kind.
        d = daemon_factory(
            subdir="tax-store", workers=2, timeout_s=0.05, retry=None,
        )
        r = d.client.submit([micro_cell(seed=950)])
        assert r.status == 202
        final = d.client.wait(r.json()["id"], timeout_s=120)
        (cell,) = final["cells"]
        assert cell["status"] == "failed"
        assert cell["error_kind"] == "timeout"
        assert "exceeded" in cell["error"]


# ---------------------------------------------------------------------------
# the thundering herd: >=100 concurrent submissions, exactly 1 simulation


class TestThunderingHerd:
    def test_hundred_duplicate_submissions_run_one_simulation(
        self, daemon_factory
    ):
        d = daemon_factory(subdir="herd-store", workers=2)
        c = d.client
        cell = micro_cell(seed=4242)
        n_clients = 100
        barrier = threading.Barrier(n_clients)
        results = [None] * n_clients

        def client_thread(i):
            barrier.wait()
            r = c.submit([cell], tenant=f"tenant-{i % 8}")
            results[i] = r.status if r.status != 202 else r.json()["id"]

        threads = [
            threading.Thread(target=client_thread, args=(i,))
            for i in range(n_clients)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        cids = [r for r in results if isinstance(r, str)]
        assert len(cids) == n_clients, results  # nothing shed at defaults
        payloads = set()
        for cid in cids:
            state = c.wait(cid, timeout_s=180)
            (cell_state,) = state["cells"]
            assert cell_state["status"] in ("ok", "cached"), state
            payloads.add(c.result_bytes(cell_state["key"]))
        # Every client got the same stored bytes...
        assert len(payloads) == 1
        # ...and the ledger proves exactly one simulation ever started.
        assert c.stats()["simulations_started"] == 1
        stats = c.stats()
        assert stats["dedup_joins"] + stats["cache_hits"] == n_clients - 1
