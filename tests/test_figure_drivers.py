"""Tests for the windy/moving figure data structures and formatting."""

import pytest

from repro.experiments import run_moving_figure, run_windy_figure
from repro.metrics import line_chart

from tests.conftest import MICRO_SCALE


@pytest.fixture(scope="module")
def windy_fig():
    return run_windy_figure(1.0, MICRO_SCALE, p_values=(0.0, 0.6, 1.0), seed=3)


@pytest.fixture(scope="module")
def moving_fig():
    return run_moving_figure(MICRO_SCALE, b_fraction=1.0, p=0.6, label="t", seed=3)


class TestWindyFigure:
    def test_series_alignment(self, windy_fig):
        series = windy_fig.series()
        lengths = {len(v) for v in series.values()}
        assert lengths == {3}
        assert series["p"] == [0.0, 60.0, 100.0]

    def test_tmax_decreasing_in_p(self, windy_fig):
        tmax = windy_fig.series()["tmax"]
        assert tmax == sorted(tmax, reverse=True)

    def test_peak_improvement_is_max(self, windy_fig):
        peak = windy_fig.peak_improvement()
        assert peak.improvement == max(pt.improvement for pt in windy_fig.points)

    def test_format_has_all_rows(self, windy_fig):
        text = windy_fig.format()
        assert "100% B nodes" in text
        assert len([l for l in text.splitlines() if l.strip() and l.lstrip()[0].isdigit()]) == 3

    def test_chartable(self, windy_fig):
        series = windy_fig.series()
        chart = line_chart(
            {"on": series["non_hotspot_on"], "off": series["non_hotspot_off"]},
            series["p"],
        )
        assert "on" in chart and "off" in chart


class TestMovingFigure:
    def test_series_alignment(self, moving_fig):
        series = moving_fig.series()
        n = len(MICRO_SCALE.moving_lifetimes_ns)
        assert all(len(v) == n for v in series.values())

    def test_lifetimes_in_ms(self, moving_fig):
        lifetimes = moving_fig.series()["lifetime_ms"]
        assert lifetimes == [lt / 1e6 for lt in MICRO_SCALE.moving_lifetimes_ns]

    def test_format(self, moving_fig):
        text = moving_fig.format()
        assert "Moving hotspots" in text and "improv" in text

    def test_improvement_definition(self, moving_fig):
        pt = moving_fig.points[0]
        assert pt.improvement == pytest.approx(pt.on.all_nodes / pt.off.all_nodes)
