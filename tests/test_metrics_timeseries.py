"""Tests for time-series sampling."""

import pytest

from repro.engine import RngRegistry, Simulator
from repro.metrics import TimeSeries

from tests.conftest import attach_hotspot_contributors, build_network


class TestTimeSeries:
    def test_sampling_cadence(self):
        sim = Simulator()
        ts = TimeSeries(sim, 100.0, {"clock": lambda: sim.now}).start()
        sim.run(until=1000.0)
        assert ts.times == pytest.approx([100.0 * i for i in range(1, 11)])
        assert ts.samples["clock"] == pytest.approx(ts.times)

    def test_multiple_probes_sampled_together(self):
        sim = Simulator()
        counter = {"n": 0}

        def bump():
            counter["n"] += 1
            return counter["n"]

        ts = TimeSeries(sim, 50.0, {"a": bump, "b": lambda: 7.0}).start()
        sim.run(until=200.0)
        assert len(ts.samples["a"]) == len(ts.samples["b"]) == len(ts.times)
        assert ts.samples["b"] == [7.0] * len(ts.times)

    def test_stop_halts_sampling(self):
        sim = Simulator()
        ts = TimeSeries(sim, 100.0, {"x": lambda: 0.0}).start()
        sim.schedule(250.0, ts.stop)
        sim.run(until=1000.0)
        assert len(ts.times) == 2

    def test_validation(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            TimeSeries(sim, 0.0, {"x": lambda: 0.0})
        with pytest.raises(ValueError):
            TimeSeries(sim, 1.0, {})

    def test_start_idempotent(self):
        sim = Simulator()
        ts = TimeSeries(sim, 100.0, {"x": lambda: 1.0})
        ts.start()
        ts.start()
        sim.run(until=300.0)
        assert len(ts.times) == 3  # not doubled


class TestProbes:
    def test_rate_and_queue_probes_on_live_network(self):
        sim = Simulator()
        net, col, _ = build_network(sim)
        attach_hotspot_contributors(
            net, RngRegistry(1), hotspot=0, contributors=range(1, 8)
        )
        att = net.topology.host_attachment(0)
        interval = 1e5
        ts = TimeSeries(
            sim,
            interval,
            {
                "hotspot_gbps": TimeSeries.rate_probe(col, 0, interval),
                "root_queue": TimeSeries.queue_probe(
                    net.switches[att.switch_id], att.switch_port
                ),
            },
        ).start()
        net.run(until=2e6)
        # The hotspot ramps to its sink cap and the root queue builds.
        assert max(ts.samples["hotspot_gbps"]) > 12.0
        assert max(ts.samples["root_queue"]) > 0.0

    def test_throttle_probe(self):
        from repro.core import CCParams

        sim = Simulator()
        net, col, mgr = build_network(
            sim, cc=True,
            cc_params=CCParams.paper_table1().with_(cct_slope=0.5, marking_rate=3),
        )
        attach_hotspot_contributors(
            net, RngRegistry(1), hotspot=0, contributors=range(1, 8)
        )
        ts = TimeSeries(sim, 1e5, {"throttled": TimeSeries.throttle_probe(mgr)}).start()
        net.run(until=3e6)
        assert max(ts.samples["throttled"]) > 0
