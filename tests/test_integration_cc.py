"""End-to-end congestion-control behaviour tests.

These exercise the full closed loop: threshold detection -> FECN marks
-> CNP return on the dedicated VL -> CCTI throttling -> recovery, and
the system-level properties the paper reports (victim recovery,
parking-lot fairness, negligible cost for innocent traffic).
"""

import pytest

from repro.core import CCManager, CCParams
from repro.engine import RngRegistry, Simulator
from repro.metrics import Collector, jain_fairness
from repro.network import Network, NetworkConfig

from tests.conftest import attach_fixed_flow, attach_hotspot_contributors, build_network

MS = 1e6


def cc_params(**kw):
    base = dict(cct_slope=0.5, marking_rate=3)
    base.update(kw)
    return CCParams.paper_table1().with_(**base)


class TestClosedLoop:
    def _hotspot_run(self, cc, sim_ns=6 * MS, radix=4, params=None):
        sim = Simulator()
        col = Collector(radix * (radix // 2), warmup_ns=sim_ns * 0.33, track_pairs=True)
        net, col, mgr = build_network(
            sim, radix=radix, collector=col, cc=cc, cc_params=params or cc_params()
        )
        n = net.topology.n_hosts
        attach_hotspot_contributors(net, RngRegistry(1), hotspot=0, contributors=range(1, n))
        net.run(until=sim_ns)
        return net, col, mgr, sim_ns

    def test_marks_and_becns_flow(self):
        net, col, mgr, _ = self._hotspot_run(cc=True)
        assert mgr.total_marks() > 0
        assert mgr.total_becns() > 0

    def test_contributors_get_throttled(self):
        net, _, mgr, _ = self._hotspot_run(cc=True)
        assert mgr.throttled_flows() > 0

    def test_hotspot_utilization_stays_high(self):
        _, col, _, t = self._hotspot_run(cc=True, sim_ns=12 * MS)
        # CC must keep the bottleneck busy: paper sees a 2.5% drop; we
        # allow up to ~15% at this micro scale (4-node leaf, short run).
        assert col.rx_rate_gbps(0, t) > 13.6 * 0.85

    def test_no_marks_without_congestion(self):
        sim = Simulator()
        net, col, mgr = build_network(sim, cc=True, cc_params=cc_params())
        attach_fixed_flow(net, RngRegistry(1), src=0, dst=7, rate_gbps=5.0)
        net.run(until=2 * MS)
        assert mgr.total_marks() == 0
        assert col.rx_rate_gbps(7, 2 * MS) == pytest.approx(5.0, rel=0.02)

    def test_cc_fixes_parking_lot_fairness(self):
        net, col, _, _ = self._hotspot_run(cc=True, sim_ns=10 * MS)
        per_flow = [col.rx_by_src.get((s, 0), 0) for s in range(1, 8)]
        assert jain_fairness(per_flow) > 0.9  # vs ~0.49 without CC

    def test_throttle_recovers_after_congestion_ends(self):
        sim = Simulator()
        net, col, mgr = build_network(sim, cc=True, cc_params=cc_params())
        n = net.topology.n_hosts
        rng = RngRegistry(1)
        _, gens = attach_hotspot_contributors(net, rng, hotspot=0, contributors=range(1, n))
        net.run(until=3 * MS)
        assert mgr.throttled_flows() > 0
        # Silence all contributors; the CCTI timer should drain state.
        for node in range(1, n):
            net.hcas[node].gen = None
        # Worst case the deepest flow sits at CCTI_Limit = 127; give
        # the timer enough expiries to unwind it completely.
        net.run(until=sim.now + 140 * mgr.params.timer_period_ns)
        assert mgr.throttled_flows() == 0


class TestVictimRecovery:
    def _victim_scenario(self, cc):
        # Same layout as the no-CC HOL test: contributors 2..6 -> hotspot
        # 0; victim 7 -> 8 shares the leaf-1 uplink to spine 0.
        sim = Simulator()
        net, col, mgr = build_network(
            sim, radix=8, cc=cc, cc_params=cc_params()
        )
        rng = RngRegistry(1)
        attach_hotspot_contributors(net, rng, hotspot=0, contributors=range(2, 7))
        attach_fixed_flow(net, rng, src=7, dst=8, rate_gbps=13.5)
        net.run(until=8 * MS)
        return col.rx_rate_gbps(8, 8 * MS)

    def test_cc_unblocks_the_victim(self):
        without = self._victim_scenario(cc=False)
        with_cc = self._victim_scenario(cc=True)
        assert with_cc > 2 * without
        assert with_cc > 13.5 * 0.6  # the bulk of its injection rate back


class TestVictimMaskMatters:
    def _run(self, victim_mask):
        # A nearly wedged sink (0.5 Gbit/s) keeps the hotspot HCA ibuf
        # full, so the HCA-facing root port holds ~no credits. Only the
        # Victim Mask lets it enter the congestion state (footnote 2 of
        # the paper); without it the root is misclassified as a victim.
        from repro.network import HcaConfig, NetworkConfig

        sim = Simulator()
        params = cc_params(victim_mask_hca_ports=victim_mask)
        cfg = NetworkConfig(hca=HcaConfig(sink_rate_gbps=0.5))
        net, col, mgr = build_network(
            sim, radix=4, cc=True, cc_params=params, net_cfg=cfg
        )
        n = net.topology.n_hosts
        attach_hotspot_contributors(net, RngRegistry(1), hotspot=0, contributors=range(1, n))
        net.run(until=5 * MS)
        return mgr

    def test_without_mask_the_root_cannot_mark(self):
        masked = self._run(victim_mask=True)
        unmasked = self._run(victim_mask=False)
        assert masked.total_marks() > 5 * max(1, unmasked.total_marks())


class TestQpVsSlMode:
    def _two_flow_run(self, mode):
        # Source 1 sends both a hotspot flow (to 0, congested) and an
        # innocent flow is emulated by source 2 -> 3 sharing source 1's
        # SL. In SL mode, throttling source 1's hotspot flow also hits
        # its other-destination traffic; emulate with a B node that
        # splits traffic between the hotspot and an idle node.
        from repro.traffic import BNodeSource

        sim = Simulator()
        params = cc_params(cc_mode=mode)
        net, col, mgr = build_network(sim, radix=4, cc=True, cc_params=params)
        n = net.topology.n_hosts
        rng = RngRegistry(1)
        # Contributors 2.. saturate hotspot 0.
        attach_hotspot_contributors(net, rng, hotspot=0, contributors=range(2, n))
        # Node 1 splits: half to the hotspot, half uniform.
        gen = BNodeSource(
            1, n, 0.5, rng.stream("gen", 1), hotspot=lambda: 0
        )
        gen.bind(net.hcas[1])
        net.hcas[1].attach_generator(gen)
        net.run(until=8 * MS)
        # Return what node 1 delivered to non-hotspot destinations.
        total = col.tx_bytes[1]
        hotspot_part = col.rx_by_src.get((1, 0), 0) if col.track_pairs else None
        return col, total

    def test_sl_mode_punishes_innocent_traffic(self):
        _, qp_total = self._two_flow_run("qp")
        _, sl_total = self._two_flow_run("sl")
        # Under SL-level CC the whole service level of node 1 is
        # throttled, so it moves less total traffic than under QP-level
        # CC (the paper's argument for QP-level operation).
        assert sl_total < qp_total * 0.9
