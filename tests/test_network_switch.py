"""Unit tests for the Switch compound module."""

import pytest

from repro.engine import Simulator
from repro.network.packet import Packet
from repro.network.switch import Switch


class Capture:
    def __init__(self):
        self.packets = []

    def deliver(self, pkt):
        self.packets.append(pkt)


class TestSwitchConstruction:
    def test_port_counts(self):
        sw = Switch(Simulator(), 0, 36)
        assert len(sw.input_ports) == 36
        assert len(sw.output_ports) == 36
        assert len(sw.arbiters) == 36

    def test_arbiters_wired_to_outputs(self):
        sw = Switch(Simulator(), 0, 4)
        for i, out in enumerate(sw.output_ports):
            assert out.on_space is not None
            assert out.port_index == i

    def test_no_cc_by_default(self):
        sw = Switch(Simulator(), 0, 4)
        assert sw.cc is None
        assert all(out.cc is None for out in sw.output_ports)


class TestRouting:
    def _wired(self, sim, lft):
        sw = Switch(sim, 7, 3)
        sw.set_lft(lft)
        sinks = []
        for out in sw.output_ports:
            out.credits = [10.0**9] * sw.n_vls
            sink = Capture()
            out.peer = sink
            sinks.append(sink)
        return sw, sinks

    def test_route_follows_lft(self):
        sim = Simulator()
        sw, sinks = self._wired(sim, [0, 1, 2, 1])
        sw.input_ports[0].deliver(Packet(9, 3, 100, header=0))
        sim.run()
        assert len(sinks[1].packets) == 1

    def test_unroutable_destination(self):
        sim = Simulator()
        sw, _ = self._wired(sim, [0, -1])
        with pytest.raises(RuntimeError, match="no route"):
            sw.input_ports[0].deliver(Packet(9, 1, 100, header=0))

    def test_route_method_direct(self):
        sw = Switch(Simulator(), 0, 4)
        sw.set_lft([3, 2, 1, 0])
        assert sw.route(Packet(9, 1, 10)) == 2


class TestIntrospection:
    def test_total_buffered_counts_all_ibufs(self):
        sim = Simulator()
        sw = Switch(sim, 0, 2, obuf_capacity=0)
        sw.set_lft([0, 1])
        sw.input_ports[0].deliver(Packet(5, 1, 300, header=0))
        sw.input_ports[1].deliver(Packet(6, 0, 200, header=0))
        assert sw.total_buffered() == 500

    def test_queued_bytes_per_output(self):
        sim = Simulator()
        sw = Switch(sim, 0, 2, obuf_capacity=0)
        sw.set_lft([0, 1])
        sw.input_ports[0].deliver(Packet(5, 1, 300, header=0))
        assert sw.queued_bytes(1, 0) == 300
        assert sw.queued_bytes(0, 0) == 0

    def test_repr(self):
        assert "ports=4" in repr(Switch(Simulator(), 3, 4))
