"""Tests for switch-side congestion detection and FECN marking."""

import pytest

from repro.core.parameters import CCParams
from repro.core.switch_cc import SwitchCC
from repro.engine import Simulator
from repro.network.packet import Packet
from repro.network.switch import Switch


def make_switch_cc(sim=None, *, params=None, ibuf_capacity=16384, n_ports=4):
    sim = sim or Simulator()
    sw = Switch(sim, 0, n_ports, ibuf_capacity=ibuf_capacity, obuf_capacity=0)
    sw.set_lft(list(range(n_ports)))
    scc = SwitchCC(sw, params or CCParams.paper_table1())
    scc.attach()
    return sw, scc


def fill_voq(sw, out_port, nbytes, *, in_port=0, vl=0, src=9):
    """Queue data for an output port (obuf is zero-sized, so it stays)."""
    queued = 0
    while queued < nbytes:
        sw.input_ports[in_port].deliver(
            Packet(src, out_port, 2048, header=0, vl=vl)
        )
        queued += 2048


class TestCongestionState:
    def test_below_threshold_not_congested(self):
        sw, scc = make_switch_cc()
        # Threshold at weight 15 is capacity/16 = 1024 B.
        assert not scc.in_congestion_state(1, 0, credits_after=5000.0, wire_size=2048)

    def test_above_threshold_with_credits_is_root(self):
        sw, scc = make_switch_cc()
        fill_voq(sw, 1, 4096)
        assert scc.in_congestion_state(1, 0, credits_after=5000.0, wire_size=2048)

    def test_above_threshold_without_credits_is_victim(self):
        sw, scc = make_switch_cc()
        fill_voq(sw, 1, 4096)
        assert not scc.in_congestion_state(1, 0, credits_after=0.0, wire_size=2048)
        # Less than one packet of slack is still a victim (sub-packet
        # remainders must not register as "credits to output data").
        assert not scc.in_congestion_state(1, 0, credits_after=2047.0, wire_size=2048)

    def test_victim_mask_overrides_credit_rule(self):
        sw, scc = make_switch_cc()
        fill_voq(sw, 1, 4096)
        scc.set_victim_mask(1)
        assert scc.in_congestion_state(1, 0, credits_after=0.0, wire_size=2048)

    def test_threshold_weight_zero_never_marks(self):
        sw, scc = make_switch_cc(params=CCParams.paper_table1().with_(threshold=0))
        fill_voq(sw, 1, 16000)
        pkt = Packet(9, 1, 2048, header=0)
        scc.on_transmit(1, pkt, credits_after=5000.0)
        assert not pkt.fecn and scc.marks == 0


class TestMarking:
    def _congest_and_transmit(self, scc, sw, pkt, credits=5000.0):
        fill_voq(sw, 1, 4096)
        scc.on_transmit(1, pkt, credits_after=credits)
        return pkt

    def test_marks_when_congested(self):
        sw, scc = make_switch_cc()
        pkt = self._congest_and_transmit(scc, sw, Packet(9, 1, 2048, header=0))
        assert pkt.fecn and scc.marks == 1

    def test_no_mark_when_victim(self):
        sw, scc = make_switch_cc()
        pkt = self._congest_and_transmit(
            scc, sw, Packet(9, 1, 2048, header=0), credits=0.0
        )
        assert not pkt.fecn

    def test_packet_size_floor(self):
        sw, scc = make_switch_cc(
            params=CCParams.paper_table1().with_(packet_size=1024)
        )
        small = self._congest_and_transmit(scc, sw, Packet(9, 1, 512, header=0))
        assert not small.fecn
        big = Packet(9, 1, 2048, header=0)
        scc.on_transmit(1, big, credits_after=5000.0)
        assert big.fecn

    def test_marking_rate_skips(self):
        sw, scc = make_switch_cc(
            params=CCParams.paper_table1().with_(marking_rate=2)
        )
        fill_voq(sw, 1, 8192)
        marked = []
        for _ in range(9):
            pkt = Packet(9, 1, 2048, header=0)
            scc.on_transmit(1, pkt, credits_after=5000.0)
            marked.append(pkt.fecn)
        # Mark one, then skip marking_rate=2 eligible packets.
        assert marked == [True, False, False, True, False, False, True, False, False]

    def test_marking_rate_zero_marks_all(self):
        sw, scc = make_switch_cc()
        fill_voq(sw, 1, 8192)
        for _ in range(5):
            pkt = Packet(9, 1, 2048, header=0)
            scc.on_transmit(1, pkt, credits_after=5000.0)
            assert pkt.fecn

    def test_eligible_counter(self):
        sw, scc = make_switch_cc(
            params=CCParams.paper_table1().with_(marking_rate=1)
        )
        fill_voq(sw, 1, 8192)
        for _ in range(4):
            scc.on_transmit(1, Packet(9, 1, 2048, header=0), credits_after=5000.0)
        assert scc.eligible == 4
        assert scc.marks == 2

    def test_per_port_marking_state_independent(self):
        sw, scc = make_switch_cc(
            params=CCParams.paper_table1().with_(marking_rate=1)
        )
        fill_voq(sw, 1, 8192)
        fill_voq(sw, 2, 8192)
        a = Packet(9, 1, 2048, header=0)
        b = Packet(9, 2, 2048, header=0)
        scc.on_transmit(1, a, credits_after=5000.0)
        scc.on_transmit(2, b, credits_after=5000.0)
        assert a.fecn and b.fecn  # both ports start at "mark first"


class TestIntegrationWithOutputPort:
    def test_output_port_invokes_marking(self):
        sim = Simulator()
        sw = Switch(sim, 0, 2, ibuf_capacity=16384, obuf_capacity=4096)
        sw.set_lft([0, 1])
        scc = SwitchCC(sw, CCParams.paper_table1())
        scc.attach()
        scc.set_victim_mask(1)
        sink = type("S", (), {"deliver": lambda self, p: None})()
        sw.output_ports[1].peer = sink
        sw.output_ports[1].credits = [10.0**9] * sw.n_vls
        # Enough packets that the VoQ backlog exceeds the threshold.
        for _ in range(6):
            sw.input_ports[0].deliver(Packet(9, 1, 2048, header=0))
        sim.run()
        assert scc.marks > 0

    def test_control_packets_never_marked(self):
        sw, scc = make_switch_cc()
        fill_voq(sw, 1, 8192)
        cnp = Packet.cnp(9, 1)
        # The output port skips the CC hook for control packets; calling
        # on_transmit directly must still not mark (payload < any size)
        # -- but the real guarantee is the is_control check in the port.
        from repro.network.ports import LinkConfig, OutputPort

        sim = Simulator()
        port = OutputPort(sim, LinkConfig(), n_vls=1)
        port.credits = [10.0**9]
        port.peer = type("S", (), {"deliver": lambda self, p: None})()
        port.cc = scc
        port.port_index = 1
        port.enqueue(cnp)
        sim.run()
        assert not cnp.fecn
