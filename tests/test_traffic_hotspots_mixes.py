"""Tests for hotspot schedules and node-mix assignment."""

import numpy as np
import pytest

from repro.engine import Simulator
from repro.traffic.hotspots import HotspotSchedule
from repro.traffic.mixes import assign_roles


def rng():
    return np.random.default_rng(7)


class KickCounter:
    def __init__(self):
        self.kicks = 0

    def kick(self):
        self.kicks += 1


class TestStaticSchedule:
    def test_targets(self):
        s = HotspotSchedule([3, 9])
        assert s.n_subsets == 2
        assert s.target(0) == 3 and s.target(1) == 9

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            HotspotSchedule([])

    def test_static_never_moves(self):
        sim = Simulator()
        s = HotspotSchedule([3])
        s.install(sim, [])
        sim.schedule(1e9, lambda: None)
        sim.run()
        assert s.moves == 0 and s.target(0) == 3

    def test_moving_requires_rng(self):
        with pytest.raises(ValueError, match="rng"):
            HotspotSchedule([3], lifetime_ns=1e6)

    def test_bad_lifetime(self):
        with pytest.raises(ValueError):
            HotspotSchedule([3], lifetime_ns=0.0, rng=rng())


class TestMovingSchedule:
    def _moving(self, sim, lifetime=1e6, n_subsets=2, n_nodes=16):
        return HotspotSchedule.choose_initial(
            n_subsets, n_nodes, rng(), lifetime_ns=lifetime
        ), sim

    def test_moves_once_per_lifetime(self):
        sim = Simulator()
        s, _ = self._moving(sim)
        s.install(sim, [])
        sim.run(until=3.5e6)
        assert s.moves == 3

    def test_kicks_all_hcas_on_move(self):
        sim = Simulator()
        s, _ = self._moving(sim)
        hcas = [KickCounter() for _ in range(4)]
        s.install(sim, hcas)
        sim.run(until=1.5e6)
        assert all(h.kicks == 1 for h in hcas)

    def test_targets_change_and_stay_distinct(self):
        sim = Simulator()
        s, _ = self._moving(sim, n_subsets=4, n_nodes=32)
        before = list(s.current_targets)
        s.install(sim, [])
        sim.run(until=1.5e6)
        after = list(s.current_targets)
        assert after != before
        assert len(set(after)) == 4

    def test_choose_initial_distinct(self):
        s = HotspotSchedule.choose_initial(8, 64, rng())
        assert len(set(s.current_targets)) == 8

    def test_choose_initial_too_many(self):
        with pytest.raises(ValueError):
            HotspotSchedule.choose_initial(9, 8, rng())


class TestAssignRoles:
    def test_fractions(self):
        mix = assign_roles(
            100, b_fraction=0.5, n_subsets=4, hotspots=[0, 1, 2, 3], rng=rng()
        )
        assert len(mix.b_nodes) == 50
        assert len(mix.c_nodes) == 40  # 80% of the remaining 50
        assert len(mix.v_nodes) == 10

    def test_paper_silent_mix(self):
        mix = assign_roles(
            648, b_fraction=0.0, n_subsets=8, hotspots=list(range(8)), rng=rng()
        )
        assert len(mix.c_nodes) == 518  # 80% of 648, the paper's count
        assert len(mix.v_nodes) == 130

    def test_contributors_spread_over_subsets(self):
        mix = assign_roles(
            64, b_fraction=1.0, n_subsets=4, hotspots=[0, 1, 2, 3], rng=rng()
        )
        counts = [0] * 4
        for subset in mix.subset_of.values():
            counts[subset] += 1
        assert max(counts) - min(counts) <= 2

    def test_never_own_hotspot(self):
        for seed in range(10):
            r = np.random.default_rng(seed)
            hotspots = [0, 1, 2, 3]
            mix = assign_roles(
                32, b_fraction=1.0, n_subsets=4, hotspots=hotspots, rng=r
            )
            mix.validate_against(hotspots)  # raises on violation

    def test_v_nodes_have_no_subset(self):
        mix = assign_roles(
            32, b_fraction=0.0, n_subsets=2, hotspots=[0, 1], rng=rng()
        )
        assert all(n not in mix.subset_of for n in mix.v_nodes)

    def test_hotspot_count_must_match_subsets(self):
        with pytest.raises(ValueError):
            assign_roles(32, b_fraction=0.0, n_subsets=2, hotspots=[0], rng=rng())

    def test_deterministic_for_seed(self):
        a = assign_roles(64, b_fraction=0.25, n_subsets=2, hotspots=[0, 1],
                         rng=np.random.default_rng(5))
        b = assign_roles(64, b_fraction=0.25, n_subsets=2, hotspots=[0, 1],
                         rng=np.random.default_rng(5))
        assert a.roles == b.roles and a.subset_of == b.subset_of

    def test_roles_cover_every_node(self):
        mix = assign_roles(
            50, b_fraction=0.3, n_subsets=2, hotspots=[0, 1], rng=rng()
        )
        assert set(mix.roles) == set(range(50))
        assert set(mix.roles.values()) <= {"B", "C", "V"}
