"""Tests for topology blueprints, fat-tree builders and routing."""

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.topology import (
    HostLink,
    SwitchLink,
    SwitchSpec,
    Topology,
    folded_clos,
    host_path,
    link_load_for_pattern,
    path_ports,
    sun_dcs_648,
    three_stage_fat_tree,
    topology_from_graph,
    validate_lfts,
)


class TestFoldedClos:
    def test_dimensions(self):
        topo = folded_clos(4, 2, 3)
        assert topo.n_hosts == 12
        assert topo.n_switches == 6
        assert len(topo.host_links) == 12
        assert len(topo.switch_links) == 8

    def test_leaf_port_layout(self):
        topo = folded_clos(4, 2, 3)
        # Host 5 is the 3rd host (index 2) of leaf 1.
        hl = topo.host_attachment(5)
        assert hl.switch_id == 1 and hl.switch_port == 2

    def test_lft_local_delivery(self):
        topo = folded_clos(4, 2, 3)
        # Leaf 0 delivers its own hosts 0..2 on ports 0..2.
        assert topo.lfts[0][:3] == [0, 1, 2]

    def test_lft_dmodk_up_routing(self):
        topo = folded_clos(4, 2, 3)
        # Remote destinations leave leaf 0 via port 3 + (d mod 2).
        assert topo.lfts[0][3] == 3 + (3 % 2)
        assert topo.lfts[0][4] == 3 + (4 % 2)

    def test_spine_routes_to_destination_leaf(self):
        topo = folded_clos(4, 2, 3)
        spine0 = topo.lfts[4]
        assert spine0[0] == 0 and spine0[11] == 3

    def test_invalid_dimensions(self):
        with pytest.raises(ValueError):
            folded_clos(0, 1, 1)


class TestThreeStageFatTree:
    def test_radix_relation(self):
        topo = three_stage_fat_tree(8)
        assert topo.n_hosts == 32
        assert topo.meta["n_leaves"] == 8
        assert topo.meta["n_spines"] == 4
        assert topo.meta["hosts_per_leaf"] == 4

    def test_all_crossbars_same_radix(self):
        topo = three_stage_fat_tree(8)
        assert all(s.n_ports == 8 for s in topo.switches)

    def test_odd_radix_rejected(self):
        with pytest.raises(ValueError):
            three_stage_fat_tree(7)

    def test_sun_dcs_648(self):
        topo = sun_dcs_648()
        assert topo.n_hosts == 648
        assert topo.n_switches == 54
        assert all(s.n_ports == 36 for s in topo.switches)
        assert topo.name == "sun-dcs-648"

    @given(radix=st.sampled_from([2, 4, 6, 8, 10, 12]))
    @settings(max_examples=6, deadline=None)
    def test_every_pair_routable(self, radix):
        validate_lfts(three_stage_fat_tree(radix))


class TestPaths:
    def test_local_pair_stays_in_leaf(self):
        topo = three_stage_fat_tree(4)
        # Hosts 0 and 1 share leaf 0: path crosses exactly one switch.
        path = host_path(topo, 0, 1)
        assert path == [("host", 0), ("switch", 0), ("host", 1)]

    def test_remote_pair_crosses_three_stages(self):
        topo = three_stage_fat_tree(4)
        path = host_path(topo, 0, 7)  # leaf 0 -> leaf 3
        switches = [n for n in path if n[0] == "switch"]
        assert len(switches) == 3  # leaf, spine, leaf

    def test_same_host(self):
        topo = three_stage_fat_tree(4)
        assert host_path(topo, 3, 3) == [("host", 3)]

    def test_path_ports_end_at_destination_leaf(self):
        topo = three_stage_fat_tree(4)
        hops = path_ports(topo, 0, 7)
        last_sw, last_port = hops[-1]
        att = topo.host_attachment(7)
        assert (last_sw, last_port) == (att.switch_id, att.switch_port)

    def test_hotspot_convergence(self):
        # All flows toward one destination share its final link: the
        # root of the congestion tree.
        topo = three_stage_fat_tree(4)
        flows = [(s, 0) for s in range(1, 8)]
        load = link_load_for_pattern(topo, flows)
        att = topo.host_attachment(0)
        assert load[(att.switch_id, att.switch_port)] == 7

    def test_dmodk_spreads_destinations(self):
        topo = three_stage_fat_tree(4)
        # Distinct remote destinations from one source use both spines.
        spines_used = set()
        for dst in range(4, 8):
            for sw, port in path_ports(topo, 0, dst):
                if sw >= 4:  # spine ids start at n_leaves
                    spines_used.add(sw)
        assert len(spines_used) == 2


class TestValidation:
    def _tiny(self):
        return Topology(
            n_hosts=2,
            switches=[SwitchSpec(0, 3)],
            host_links=[HostLink(0, 0, 0), HostLink(1, 0, 1)],
            switch_links=[],
            lfts=[[0, 1]],
        )

    def test_valid_passes(self):
        self._tiny().validate()

    def test_duplicate_host(self):
        topo = self._tiny()
        topo.host_links.append(HostLink(1, 0, 2))
        with pytest.raises(ValueError, match="twice"):
            topo.validate()

    def test_port_collision(self):
        topo = self._tiny()
        topo.host_links[1] = HostLink(1, 0, 0)
        with pytest.raises(ValueError, match="used twice"):
            topo.validate()

    def test_bad_lft_length(self):
        topo = self._tiny()
        topo.lfts = [[0]]
        with pytest.raises(ValueError, match="wrong length"):
            topo.validate()

    def test_bad_lft_port(self):
        topo = self._tiny()
        topo.lfts = [[0, 99]]
        with pytest.raises(ValueError, match="bad port"):
            topo.validate()

    def test_noncontiguous_hosts(self):
        topo = self._tiny()
        topo.host_links[1] = HostLink(5, 0, 1)
        with pytest.raises(ValueError, match="0..n_hosts-1"):
            topo.validate()

    def test_missing_lft(self):
        topo = self._tiny()
        topo.lfts = []
        with pytest.raises(ValueError, match="one LFT"):
            topo.validate()


class TestGraphTopology:
    def _line_graph(self):
        # h0 - s0 - s1 - h1
        g = nx.Graph()
        g.add_edge(("h", 0), ("s", 0))
        g.add_edge(("s", 0), ("s", 1))
        g.add_edge(("s", 1), ("h", 1))
        return g

    def test_conversion(self):
        topo = topology_from_graph(self._line_graph())
        assert topo.n_hosts == 2
        assert topo.n_switches == 2
        validate_lfts(topo)

    def test_routing_through_line(self):
        topo = topology_from_graph(self._line_graph())
        path = host_path(topo, 0, 1)
        assert [n[0] for n in path] == ["host", "switch", "switch", "host"]

    def test_ring_topology(self):
        g = nx.Graph()
        for i in range(4):
            g.add_edge(("h", i), ("s", i))
            g.add_edge(("s", i), ("s", (i + 1) % 4))
        topo = topology_from_graph(g, name="ring4")
        validate_lfts(topo)
        assert topo.name == "ring4"

    def test_host_with_two_links_rejected(self):
        g = self._line_graph()
        g.add_edge(("h", 0), ("s", 1))
        with pytest.raises(ValueError, match="exactly one switch"):
            topology_from_graph(g)

    def test_noncontiguous_host_ids_rejected(self):
        g = nx.Graph()
        g.add_edge(("h", 0), ("s", 0))
        g.add_edge(("h", 2), ("s", 0))
        with pytest.raises(ValueError, match="contiguous"):
            topology_from_graph(g)

    def test_empty_graph_rejected(self):
        with pytest.raises(ValueError):
            topology_from_graph(nx.Graph())
