"""Unit tests for repro.trace: records, sinks, digests, auditor, session."""

from __future__ import annotations

import json
import os

import pytest

from repro.engine import RngRegistry, Simulator
from repro.trace import (
    ALL_EVENTS,
    DigestSink,
    JsonlSink,
    RingBufferSink,
    TraceAuditor,
    TraceSession,
    TraceViolation,
    Tracer,
    canonical_line,
    digest_of_jsonl,
    digest_of_records,
)
from repro.trace.auditor import MAX_STORED_VIOLATIONS

from tests.conftest import attach_hotspot_contributors, build_network


# ---------------------------------------------------------------- records

def test_canonical_line_is_tuple_repr():
    rec = ("tx", 125.0, "s", 3, 1, 0, 7, 2, 2304, 0, 7936.0)
    assert canonical_line(rec) == repr(rec)


def test_event_tags_unique():
    assert len(set(ALL_EVENTS)) == len(ALL_EVENTS)


# ---------------------------------------------------------------- digests

RECORDS = [
    ("inj", 0.0, 1, 0, 0, 2048),
    ("tx", 10.0, "h", 1, 0, 0, 1, 0, 2304, 0, 7936.0),
    ("rx", 125.5, 0, 1, 0, 0, 2048, 0, 0, 0),
    ("end", 125.5, 3),
]


def test_digest_deterministic_and_order_sensitive():
    d1 = digest_of_records(RECORDS)
    d2 = digest_of_records(RECORDS)
    assert d1 == d2
    assert len(d1) == 16
    assert d1 != digest_of_records(list(reversed(RECORDS)))
    assert d1 != digest_of_records(RECORDS[:-1])


def test_digest_sink_streaming_matches_batch():
    sink = DigestSink()
    for rec in RECORDS:
        sink.write(rec)
    assert sink.hexdigest() == digest_of_records(RECORDS)
    assert sink.records_hashed == len(RECORDS)


def test_jsonl_round_trips_to_same_digest(tmp_path):
    path = str(tmp_path / "trace.jsonl")
    sink = JsonlSink(path)
    for rec in RECORDS:
        sink.write(rec)
    sink.close()
    assert sink.records_written == len(RECORDS)
    # Every line is a JSON array whose reparse equals the original tuple.
    with open(path) as fh:
        reread = [tuple(json.loads(line)) for line in fh]
    assert reread == [tuple(r) for r in RECORDS]
    assert digest_of_jsonl(path) == digest_of_records(RECORDS)


# ------------------------------------------------------------------ sinks

def test_ring_buffer_keeps_most_recent():
    ring = RingBufferSink(maxlen=2)
    for rec in RECORDS:
        ring.write(rec)
    assert ring.records == RECORDS[-2:]
    assert len(ring) == 2


def test_ring_buffer_rejects_nonpositive_size():
    with pytest.raises(ValueError):
        RingBufferSink(maxlen=0)


# ----------------------------------------------------------------- tracer

def test_typed_hooks_build_schema_tuples():
    ring = RingBufferSink(maxlen=100)
    tr = Tracer([ring])
    tr.inject(1.0, 5, 0, 0, 2048)
    tr.tx(2.0, "s", 9, 1, 0, 5, 0, 2304, 1, 512.0)
    tr.rx(3.0, 0, 5, 0, 0, 2048, 1, 0, 0)
    tr.fecn_mark(2.0, 9, 1, 0, 5, 0, 9216)
    tr.cnp(3.5, 0, 5)
    tr.becn(4.0, 5, 5, 0, 0)
    tr.ccti_change(4.0, 5, 5, 0, 0, 4)
    tr.timer_fire(6.0, 5, 1)
    tr.end(6.0, 42)
    tags = [rec[0] for rec in ring.records]
    assert tags == ["inj", "tx", "rx", "fecn", "cnp", "becn", "ccti", "timer", "end"]
    assert tr.records_emitted == 9
    assert ring.records[1] == ("tx", 2.0, "s", 9, 1, 0, 5, 0, 2304, 1, 512.0)
    assert ring.records[6] == ("ccti", 4.0, 5, 5, 0, 0, 4)


# ---------------------------------------------------------------- auditor

def _clean_auditor():
    a = TraceAuditor(ccti_limit=127)
    a.observe(("inj", 0.0, 1, 0, 0, 2048))
    return a


def test_auditor_accepts_clean_stream():
    a = _clean_auditor()
    a.observe(("tx", 10.0, "h", 1, 0, 0, 1, 0, 2304, 0, 7936.0))
    a.observe(("rx", 125.5, 0, 1, 0, 0, 2048, 0, 0, 0))
    a.observe(("rx", 126.0, 1, 0, 1, 0, 0, 0, 1, 1))  # a CNP: ctrl+becn
    a.observe(("ccti", 126.0, 1, 1, 0, 0, 127))
    assert a.ok
    assert a.summary() == ""


def test_auditor_flags_time_reversal():
    a = _clean_auditor()
    a.observe(("cnp", 100.0, 1, 0))
    a.observe(("cnp", 99.0, 1, 0))
    assert not a.ok
    assert "time went backwards" in a.violations[0]


def test_auditor_flags_negative_credit():
    a = _clean_auditor()
    a.observe(("tx", 1.0, "s", 9, 0, 0, 1, 0, 2304, 0, -64.0))
    assert "negative credit" in a.violations[0]


def test_auditor_flags_misdelivery():
    a = _clean_auditor()
    a.observe(("rx", 1.0, 3, 1, 0, 0, 2048, 0, 0, 0))
    assert "misdelivery" in a.violations[0]


@pytest.mark.parametrize(
    "fecn,becn,ctrl,expect",
    [
        (1, 1, 1, "control packet carries FECN"),
        (0, 0, 1, "control packet without BECN"),
        (0, 1, 0, "BECN on a data packet"),
    ],
)
def test_auditor_flags_inconsistent_flags(fecn, becn, ctrl, expect):
    a = _clean_auditor()
    a.observe(("rx", 1.0, 0, 1, 0, 0, 2048, fecn, becn, ctrl))
    assert any(expect in v for v in a.violations)


def test_auditor_flags_byte_fabrication():
    a = TraceAuditor()
    a.observe(("inj", 0.0, 1, 0, 0, 2048))
    a.observe(("rx", 10.0, 0, 1, 0, 0, 2048, 0, 0, 0))
    assert a.ok  # delivered == injected is fine
    a.observe(("rx", 20.0, 0, 1, 0, 0, 2048, 0, 0, 0))
    assert not a.ok
    assert "byte conservation" in a.violations[0]


def test_auditor_flags_ccti_out_of_bounds():
    a = TraceAuditor(ccti_limit=127)
    a.observe(("ccti", 1.0, 1, 1, 0, 127, 128))
    a.observe(("ccti", 2.0, 1, 1, 0, 0, -1))
    assert a.violation_count == 2
    assert all("outside [0, 127]" in v for v in a.violations)


def test_auditor_flags_becn_at_non_source():
    a = TraceAuditor()
    a.observe(("becn", 1.0, 2, 1, 0, 0))
    assert "non-source" in a.violations[0]


def test_auditor_strict_raises():
    a = TraceAuditor(strict=True)
    with pytest.raises(TraceViolation):
        a.observe(("rx", 1.0, 3, 1, 0, 0, 2048, 0, 0, 0))


def test_auditor_bounds_stored_violations():
    a = TraceAuditor()
    for i in range(MAX_STORED_VIOLATIONS + 50):
        a.observe(("becn", float(i), 2, 1, 0, 0))
    assert a.violation_count == MAX_STORED_VIOLATIONS + 50
    assert len(a.violations) == MAX_STORED_VIOLATIONS
    assert "more" in a.summary().splitlines()[-1]


# ---------------------------------------------------------------- session

def _run_traced(tmp_path, **session_kw):
    sim = Simulator()
    rng = RngRegistry(7)
    net, collector, manager = build_network(sim, cc=True)
    session = TraceSession(**session_kw).install(sim, net, manager)
    attach_hotspot_contributors(net, rng, 0, [1, 2, 3])
    net.run(until=3e5)
    session.close()
    return sim, net, manager, session


def test_session_traces_live_run(tmp_path):
    path = str(tmp_path / "run.jsonl")
    sim, net, manager, session = _run_traced(
        tmp_path, jsonl_path=path, ring=50
    )
    assert session.records_emitted > 100
    assert session.violation_count == 0
    # CC was active, so the trace saw the full event vocabulary.
    with open(path) as fh:
        tags = {json.loads(line)[0] for line in fh}
    assert {"inj", "tx", "rx", "fecn", "cnp", "becn", "ccti"} <= tags
    # Digest recomputes from the JSONL file.
    assert digest_of_jsonl(path) == session.digest
    # The ring holds the tail, ending with the end record.
    assert session.records[-1] == ("end", sim.now, sim.events_executed)


def test_session_close_uninstalls_hooks(tmp_path):
    sim, net, manager, session = _run_traced(tmp_path, ring=10)
    assert sim.trace is None
    assert all(h.trace is None and h.obuf.trace is None for h in net.hcas)
    assert all(
        out.trace is None for sw in net.switches for out in sw.output_ports
    )
    assert all(scc.trace is None for scc in manager.switch_cc)
    assert all(hcc.trace is None for hcc in manager.hca_cc)
    # close() is idempotent: the end record is emitted exactly once.
    emitted = session.records_emitted
    session.close()
    assert session.records_emitted == emitted


def test_session_digest_disabled(tmp_path):
    _, _, _, session = _run_traced(tmp_path, digest=False, ring=10)
    assert session.digest is None
    assert session.records  # ring still captured


def test_untraced_components_default_to_null_hooks(sim):
    net, _, manager = build_network(sim, cc=True)
    assert sim.trace is None
    assert all(h.trace is None for h in net.hcas)
    assert all(hcc.trace is None for hcc in manager.hca_cc)
