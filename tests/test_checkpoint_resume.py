"""Crash-safety tests: atomic stores, interrupts, checkpoint/resume.

The acceptance bar for the harness hardening: a campaign killed
mid-run (in-process ``KeyboardInterrupt`` or a real ``SIGINT`` to a
separate process) must leave an atomic manifest + cache behind, and
resuming from that manifest must reproduce the uninterrupted results
bit-for-bit with no corrupt store files.
"""

from __future__ import annotations

import glob
import json
import os
import signal
import subprocess
import sys
import textwrap
import time

import pytest

from repro.experiments import ExperimentConfig
from repro.experiments.runner import run_experiment
from repro.experiments.store import (
    ResultStore,
    atomic_write_json,
    load_json_or_quarantine,
)
from repro.parallel import RunManifest, run_campaign
from repro.parallel.pool import CampaignInterrupted

from tests.conftest import MICRO_SCALE

try:
    from hypothesis import given
    from hypothesis import strategies as st
except ImportError:  # pragma: no cover - hypothesis ships with the image
    given = None


def micro_cfg(**kw):
    return ExperimentConfig(
        scale=MICRO_SCALE, seed=3, sim_time_ns=1e6, warmup_ns=3e5, **kw
    )


def micro_grid(n=4):
    return [micro_cfg(cc=False).with_(seed=s) for s in range(1, n + 1)]


def _stray_files(root):
    """Leftover tmp/corrupt artifacts anywhere under ``root``."""
    return (
        glob.glob(os.path.join(root, "**", "*.tmp"), recursive=True)
        + glob.glob(os.path.join(root, "**", "*.corrupt"), recursive=True)
    )


# ---------------------------------------------------------------------------
# Atomic writes + corrupt-entry quarantine


class TestAtomicStore:
    def test_atomic_write_leaves_no_tmp(self, tmp_path):
        path = str(tmp_path / "out.json")
        atomic_write_json(path, {"a": 1})
        assert json.load(open(path)) == {"a": 1}
        assert _stray_files(str(tmp_path)) == []

    def test_corrupt_json_is_quarantined_not_raised(self, tmp_path):
        path = str(tmp_path / "bad.json")
        with open(path, "w") as fh:
            fh.write('{"truncated": ')
        assert load_json_or_quarantine(path) is None
        assert not os.path.exists(path)
        assert os.path.exists(path + ".corrupt")

    def test_missing_file_is_a_plain_miss(self, tmp_path):
        assert load_json_or_quarantine(str(tmp_path / "nope.json")) is None
        assert _stray_files(str(tmp_path)) == []

    def test_store_load_quarantines_corrupt_entry(self, tmp_path):
        store = ResultStore(str(tmp_path))
        res = run_experiment(micro_cfg(cc=False))
        store.save(res)
        path = store._path(res.config)
        with open(path, "w") as fh:
            fh.write("not json at all")
        assert store.load(res.config) is None  # miss, not an exception
        assert os.path.exists(path + ".corrupt")
        # The next save heals the entry.
        store.save(res)
        assert store.load(res.config) is not None

    def test_store_load_quarantines_schema_mismatch(self, tmp_path):
        store = ResultStore(str(tmp_path))
        res = run_experiment(micro_cfg(cc=False))
        store.save(res)
        path = store._path(res.config)
        atomic_write_json(path, {"valid_json": "wrong shape"})
        assert store.load(res.config) is None
        assert os.path.exists(path + ".corrupt")


class TestManifestCheckpoint:
    def test_save_is_atomic_and_round_trips(self, tmp_path):
        manifest = RunManifest(total_cells=3, ok=1, interrupted=2, complete=False)
        path = str(tmp_path / "run.json")
        manifest.save(path)
        assert _stray_files(str(tmp_path)) == []
        loaded = RunManifest.load(path)
        assert loaded.complete is False
        assert loaded.interrupted == 2 and loaded.ok == 1

    def test_completed_keys_excludes_failures_and_interrupts(self):
        from repro.parallel.pool import CellOutcome

        def outcome(i, key, status, error=None):
            return CellOutcome(
                index=i, config=micro_cfg(), key=key, status=status,
                attempts=1, wall_seconds=0.1, error=error,
            )

        manifest = RunManifest.from_outcomes([
            outcome(0, "a", "ok"),
            outcome(1, "b", "cached"),
            outcome(2, "c", "failed", error="boom"),
            outcome(3, "d", "interrupted"),
        ])
        assert manifest.completed_keys() == {"a", "b"}
        assert manifest.interrupted == 1 and manifest.failures == 1


# ---------------------------------------------------------------------------
# In-process interrupt + resume (serial executor)


class InterruptAfter:
    """run_fn that raises KeyboardInterrupt after ``n`` successful cells."""

    def __init__(self, n):
        self.n = n
        self.calls = 0

    def __call__(self, cfg):
        self.calls += 1
        if self.calls > self.n:
            raise KeyboardInterrupt
        return run_experiment(cfg)


class Recorder:
    """run_fn that records which seeds actually get simulated."""

    def __init__(self):
        self.seeds = []

    def __call__(self, cfg):
        self.seeds.append(cfg.seed)
        return run_experiment(cfg)


class TestSerialInterruptResume:
    def test_interrupt_checkpoints_and_resume_completes(self, tmp_path):
        cells = micro_grid(4)
        cache_dir = str(tmp_path / "cache")
        manifest_path = str(tmp_path / "run.json")
        with pytest.raises(CampaignInterrupted) as excinfo:
            run_campaign(
                cells, jobs=1, cache=cache_dir,
                manifest_path=manifest_path, run_fn=InterruptAfter(2),
            )
        partial = excinfo.value.result.manifest
        assert partial.ok == 2 and partial.interrupted == 2
        assert "resume with" in str(excinfo.value)

        # The checkpoint on disk agrees with the in-memory summary.
        saved = RunManifest.load(manifest_path)
        assert saved.complete is False
        assert len(saved.completed_keys()) == 2

        # Resume: the two completed cells replay from the cache, only
        # the interrupted ones are simulated.
        recorder = Recorder()
        resumed = run_campaign(
            cells, jobs=1, cache=cache_dir,
            manifest_path=str(tmp_path / "resumed.json"),
            resume_from=manifest_path, run_fn=recorder,
        )
        assert recorder.seeds == [cells[2].seed, cells[3].seed]
        assert [o.status for o in resumed.outcomes] == [
            "cached", "cached", "ok", "ok",
        ]
        final = RunManifest.load(str(tmp_path / "resumed.json"))
        assert final.complete is True and final.failures == 0

    def test_resume_accepts_manifest_object(self, tmp_path):
        cells = micro_grid(2)
        cache_dir = str(tmp_path / "cache")
        first = run_campaign(cells, jobs=1, cache=cache_dir)
        resumed = run_campaign(
            cells, jobs=1, cache=cache_dir, resume_from=first.manifest
        )
        assert all(o.status == "cached" for o in resumed.outcomes)

    def test_resume_reruns_completed_cell_missing_from_cache(self, tmp_path):
        cells = micro_grid(2)
        cache_dir = str(tmp_path / "cache")
        manifest_path = str(tmp_path / "run.json")
        run_campaign(
            cells, jobs=1, cache=cache_dir, manifest_path=manifest_path
        )
        # Lose one cached entry; resume must simulate it again instead
        # of returning a hole.
        os.remove(ResultStore(cache_dir)._path(cells[0]))
        resumed = run_campaign(
            cells, jobs=1, cache=cache_dir, resume_from=manifest_path
        )
        assert [o.status for o in resumed.outcomes] == ["ok", "cached"]
        assert all(o.result is not None for o in resumed.outcomes)


# ---------------------------------------------------------------------------
# Real SIGINT to a separate process, then resume (the acceptance test)


_CHILD_SCRIPT = textwrap.dedent("""
    import sys, time
    sys.path.insert(0, {src!r})
    sys.path.insert(0, {root!r})
    from repro.experiments.runner import run_experiment
    from repro.parallel import run_campaign
    from repro.parallel.pool import CampaignInterrupted
    from tests.test_checkpoint_resume import micro_grid

    def slow_run(cfg):
        time.sleep(0.4)   # widen the window a SIGINT can land in
        return run_experiment(cfg)

    print("ready", flush=True)
    try:
        run_campaign(
            micro_grid(8), jobs=1, cache={cache!r},
            manifest_path={manifest!r}, run_fn=slow_run,
        )
    except CampaignInterrupted:
        sys.exit(17)
    sys.exit(0)
""")


class TestKillResilience:
    def test_sigint_then_resume_matches_uninterrupted(self, tmp_path):
        cells = micro_grid(8)
        cache_dir = str(tmp_path / "cache")
        manifest_path = str(tmp_path / "run.json")
        root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        script = tmp_path / "child.py"
        script.write_text(_CHILD_SCRIPT.format(
            src=os.path.join(root, "src"), root=root,
            cache=cache_dir, manifest=manifest_path,
        ))
        proc = subprocess.Popen(
            [sys.executable, str(script)],
            stdout=subprocess.PIPE, stderr=subprocess.DEVNULL, text=True,
        )
        assert proc.stdout.readline().strip() == "ready"
        time.sleep(1.5)  # a few cells complete, several remain
        proc.send_signal(signal.SIGINT)
        assert proc.wait(timeout=60) == 17

        saved = RunManifest.load(manifest_path)
        assert saved.complete is False
        assert saved.ok >= 1, "SIGINT landed before any cell finished"
        assert saved.ok + saved.interrupted == 8
        assert _stray_files(str(tmp_path)) == []

        # Resume and compare against a fresh uninterrupted campaign.
        resumed = run_campaign(
            cells, jobs=1, cache=cache_dir, resume_from=manifest_path
        )
        expected = run_campaign(cells, jobs=1)
        for got, want in zip(resumed.results, expected.results):
            assert got.rates_gbps == want.rates_gbps
            assert got.events == want.events
            assert (got.fecn_marks, got.becns) == (want.fecn_marks, want.becns)
        statuses = [o.status for o in resumed.outcomes]
        assert statuses.count("cached") == saved.ok
        assert _stray_files(str(tmp_path)) == []


# ---------------------------------------------------------------------------
# derive_seed: cross-process stability + collision resistance


class TestDeriveSeedProperties:
    def test_collision_free_over_10k_pairs(self):
        from repro.parallel import derive_seed

        seeds = {derive_seed(b, i) for b in range(100) for i in range(100)}
        assert len(seeds) == 10_000

    def test_stable_across_processes_and_hash_seeds(self):
        from repro.parallel import derive_seed

        pairs = [(7, 0), (7, 1), (0, 0), (2**31, 999), (-3, 12)]
        local = [derive_seed(b, i) for b, i in pairs]
        src = os.path.join(
            os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"
        )
        code = (
            "import sys, json; sys.path.insert(0, sys.argv[1]); "
            "from repro.parallel import derive_seed; "
            "print(json.dumps([derive_seed(b, i) "
            f"for b, i in {pairs!r}]))"
        )
        for hash_seed in ("0", "1", "random"):
            env = dict(os.environ, PYTHONHASHSEED=hash_seed)
            out = subprocess.run(
                [sys.executable, "-c", code, src],
                capture_output=True, text=True, env=env, check=True,
            )
            assert json.loads(out.stdout) == local

    if given is not None:

        @given(
            st.lists(
                st.tuples(
                    st.integers(min_value=-(2**63), max_value=2**63),
                    st.integers(min_value=0, max_value=2**20),
                ),
                unique=True, min_size=2, max_size=50,
            )
        )
        def test_distinct_pairs_distinct_seeds(self, pairs):
            from repro.parallel import derive_seed

            derived = [derive_seed(b, i) for b, i in pairs]
            assert len(set(derived)) == len(pairs)
            assert all(0 <= s < 2**64 for s in derived)
