"""Tests for CCParams (the paper's Table I) and the CCT builder."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cct import build_cct, ird_gap_ns
from repro.core.parameters import CCTI_TIMER_UNIT_NS, CCParams


class TestPaperTable1:
    def test_exact_values(self):
        p = CCParams.paper_table1()
        assert p.ccti_increase == 1
        assert p.ccti_limit == 127
        assert p.ccti_min == 0
        assert p.ccti_timer == 150
        assert p.threshold == 15
        assert p.marking_rate == 0
        assert p.packet_size == 0

    def test_timer_period(self):
        # 150 ticks of 1.024 us = 153.6 us.
        assert CCParams.paper_table1().timer_period_ns == pytest.approx(153_600.0)
        assert CCTI_TIMER_UNIT_NS == 1024.0

    def test_qp_mode_default(self):
        assert CCParams.paper_table1().cc_mode == "qp"


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"threshold": -1},
            {"threshold": 16},
            {"marking_rate": -1},
            {"packet_size": -5},
            {"ccti_increase": 0},
            {"ccti_min": 10, "ccti_limit": 5},
            {"ccti_timer": 0},
            {"cct_shape": "weird"},
            {"cct_slope": -1.0},
            {"cc_mode": "port"},
        ],
    )
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(ValueError):
            CCParams(**kwargs)

    def test_with_copies(self):
        base = CCParams.paper_table1()
        derived = base.with_(threshold=7)
        assert derived.threshold == 7
        assert base.threshold == 15  # original untouched


class TestThresholdMapping:
    def test_weight_zero_disables(self):
        assert CCParams(threshold=0).threshold_bytes(16384) == float("inf")

    def test_weight_15_is_lowest_threshold(self):
        p15 = CCParams(threshold=15).threshold_bytes(16384)
        p1 = CCParams(threshold=1).threshold_bytes(16384)
        assert p15 < p1
        assert p15 == pytest.approx(16384 / 16)
        assert p1 == pytest.approx(16384 * 15 / 16)

    def test_uniformly_decreasing(self):
        vals = [CCParams(threshold=w).threshold_bytes(16000) for w in range(1, 16)]
        diffs = [vals[i] - vals[i + 1] for i in range(len(vals) - 1)]
        assert all(d == pytest.approx(1000.0) for d in diffs)


class TestCctBuilder:
    def test_entry_zero_is_zero(self):
        for shape in ("linear", "exponential"):
            assert build_cct(127, shape=shape)[0] == 0.0

    def test_length(self):
        assert len(build_cct(127)) == 128

    def test_linear_slope(self):
        cct = build_cct(10, shape="linear", slope=2.0)
        assert cct[5] == pytest.approx(10.0)

    def test_exponential_growth(self):
        cct = build_cct(32, shape="exponential", slope=8.0)
        assert cct[32] > 4 * cct[16] > 0

    def test_unknown_shape(self):
        with pytest.raises(ValueError):
            build_cct(4, shape="cubic")

    def test_negative_limit(self):
        with pytest.raises(ValueError):
            build_cct(-1)

    @given(
        limit=st.integers(min_value=1, max_value=200),
        slope=st.floats(min_value=0.0, max_value=16.0),
        shape=st.sampled_from(["linear", "exponential"]),
    )
    @settings(max_examples=50, deadline=None)
    def test_monotone_non_negative(self, limit, slope, shape):
        cct = build_cct(limit, shape=shape, slope=slope)
        assert all(v >= 0 for v in cct)
        assert all(a <= b for a, b in zip(cct, cct[1:]))


class TestIrdGap:
    def test_zero_entry_no_gap(self):
        assert ird_gap_ns(0.0, 2078, 0.4) == 0.0

    def test_gap_relative_to_packet_length(self):
        # Twice the packet -> twice the gap (spec: IRD relative to length).
        one = ird_gap_ns(3.0, 1000, 0.4)
        two = ird_gap_ns(3.0, 2000, 0.4)
        assert two == pytest.approx(2 * one)

    def test_rate_interpretation(self):
        # CCT value v throttles a flow to 1/(1+v) of link rate:
        # time per packet becomes ser * (1 + v).
        ser = 2078 * 0.4
        gap = ird_gap_ns(4.0, 2078, 0.4)
        assert (ser + gap) / ser == pytest.approx(5.0)
