"""Unit tests for the Host Channel Adapter."""

import pytest

from repro.engine import Simulator
from repro.network.hca import Hca, HcaConfig
from repro.network.packet import Packet
from repro.network.ports import LinkConfig, OutputPort


class Capture:
    def __init__(self):
        self.packets = []

    def deliver(self, pkt):
        self.packets.append(pkt)


class ScriptedGen:
    """A generator emitting a fixed list of (ready-now) packets."""

    def __init__(self, packets):
        self.pending = list(packets)

    def bind(self, hca):
        pass

    def next_packet(self, now):
        if self.pending:
            return self.pending.pop(0), None
        return None, None


class TestHcaConfig:
    def test_defaults_match_paper(self):
        cfg = HcaConfig()
        assert cfg.inj_rate_gbps == 13.5
        assert cfg.sink_rate_gbps == 13.6
        assert cfg.mtu == 2048
        assert cfg.msg_packets == 2

    def test_cnp_on_dedicated_vl_by_default(self):
        cfg = HcaConfig()
        assert cfg.n_vls == 2 and cfg.cnp_vl == 1

    def test_invalid_rates(self):
        with pytest.raises(ValueError):
            HcaConfig(inj_rate_gbps=0)
        with pytest.raises(ValueError):
            HcaConfig(sink_rate_gbps=-1)

    def test_invalid_cnp_vl(self):
        with pytest.raises(ValueError):
            HcaConfig(n_vls=1, cnp_vl=1)

    def test_invalid_coalesce(self):
        with pytest.raises(ValueError):
            HcaConfig(cnp_coalesce_ns=-1.0)


class TestInjection:
    def test_generator_packets_reach_the_wire(self):
        sim = Simulator()
        hca = Hca(sim, 0)
        hca.obuf.credits = [10.0**9] * 2
        peer = Capture()
        hca.obuf.peer = peer
        pkts = [Packet(0, 1, 2048) for _ in range(3)]
        hca.attach_generator(ScriptedGen(pkts))
        sim.run()
        assert peer.packets == pkts

    def test_t_inject_stamped(self):
        sim = Simulator()
        hca = Hca(sim, 0)
        hca.obuf.credits = [10.0**9] * 2
        hca.obuf.peer = Capture()
        pkt = Packet(0, 1, 2048)
        hca.attach_generator(ScriptedGen([pkt]))
        sim.run()
        assert pkt.t_inject >= 0.0

    def test_wake_scheduled_for_future_work(self):
        sim = Simulator()
        hca = Hca(sim, 0)
        hca.obuf.credits = [10.0**9] * 2
        peer = Capture()
        hca.obuf.peer = peer

        class LaterGen:
            def __init__(self):
                self.emitted = False

            def next_packet(self, now):
                if now < 500.0:
                    return None, 500.0
                if not self.emitted:
                    self.emitted = True
                    return Packet(0, 1, 100), None
                return None, None

        hca.attach_generator(LaterGen())
        sim.run()
        assert len(peer.packets) == 1
        assert sim.now >= 500.0

    def test_obuf_backpressure_pauses_generator(self):
        sim = Simulator()
        hca = Hca(sim, 0, config=HcaConfig(obuf_capacity=4500))
        hca.obuf.credits = [0.0, 0.0]  # wire wedged: nothing leaves
        hca.obuf.peer = Capture()
        pkts = [Packet(0, 1, 2048) for _ in range(5)]
        gen = ScriptedGen(pkts)
        hca.attach_generator(gen)
        sim.run()
        # Two packets fit (2 x 2078 = 4156 <= 4500); the rest wait.
        assert len(gen.pending) == 3


class TestSink:
    def test_sink_rate_paces_consumption(self):
        sim = Simulator()
        hca = Hca(sim, 1)
        upstream = OutputPort(sim, LinkConfig(), n_vls=2)
        hca.input_port.upstream = upstream
        received = []
        hca.metrics = type(
            "M",
            (),
            {
                "record_rx": lambda self, n, p, t: received.append(t),
                "record_tx": lambda self, n, p, t: None,
            },
        )()
        # Deliver two packets at t=0; service is serial at 13.6 Gbit/s.
        hca.input_port.deliver(Packet(0, 1, 2048, header=0))
        hca.input_port.deliver(Packet(0, 1, 2048, header=0))
        sim.run()
        per_pkt = 2048 * 8 / 13.6
        assert received[0] == pytest.approx(per_pkt)
        assert received[1] == pytest.approx(2 * per_pkt)

    def test_credits_returned_after_service(self):
        sim = Simulator()
        hca = Hca(sim, 1)
        upstream = OutputPort(sim, LinkConfig(), n_vls=2)
        hca.input_port.upstream = upstream
        hca.input_port.deliver(Packet(0, 1, 2048, header=0))
        sim.run()
        assert upstream.credits[0] == pytest.approx(2048.0)

    def test_ibuf_overflow_detected(self):
        sim = Simulator()
        hca = Hca(sim, 1, config=HcaConfig(ibuf_capacity=1000))
        with pytest.raises(RuntimeError, match="overflow"):
            hca.input_port.deliver(Packet(0, 1, 2048, header=0))


class TestCnpPath:
    def _hca_with_cc(self, sim, coalesce=0.0):
        hca = Hca(sim, 1, config=HcaConfig(cnp_coalesce_ns=coalesce))
        hca.obuf.credits = [10.0**9] * 2
        peer = Capture()
        hca.obuf.peer = peer
        hca.cc = type(
            "CC",
            (),
            {
                "on_becn": lambda self, flow, sl: None,
                "on_inject": lambda self, pkt: None,
                "next_allowed": lambda self, flow, sl=0: 0.0,
            },
        )()
        return hca, peer

    def test_fecn_triggers_cnp(self):
        sim = Simulator()
        hca, peer = self._hca_with_cc(sim)
        pkt = Packet(0, 1, 2048, header=0)
        pkt.fecn = True
        hca.input_port.deliver(pkt)
        sim.run()
        assert len(peer.packets) == 1
        cnp = peer.packets[0]
        assert cnp.becn and cnp.dst == 0 and cnp.flow == (0, 1)

    def test_cnp_uses_dedicated_vl(self):
        sim = Simulator()
        hca, peer = self._hca_with_cc(sim)
        pkt = Packet(0, 1, 2048, header=0)
        pkt.fecn = True
        hca.input_port.deliver(pkt)
        sim.run()
        assert peer.packets[0].vl == hca.config.cnp_vl == 1

    def test_no_cnp_without_cc(self):
        sim = Simulator()
        hca = Hca(sim, 1)
        hca.obuf.credits = [10.0**9] * 2
        peer = Capture()
        hca.obuf.peer = peer
        pkt = Packet(0, 1, 2048, header=0)
        pkt.fecn = True
        hca.input_port.deliver(pkt)
        sim.run()
        assert peer.packets == []

    def test_cnp_coalescing_per_source(self):
        sim = Simulator()
        hca, peer = self._hca_with_cc(sim, coalesce=10_000.0)
        for _ in range(3):
            pkt = Packet(0, 1, 2048, header=0)
            pkt.fecn = True
            hca.input_port.deliver(pkt)
        sim.run()
        assert hca.cnps_sent == 1  # burst coalesced

    def test_coalescing_does_not_suppress_other_sources(self):
        sim = Simulator()
        hca, peer = self._hca_with_cc(sim, coalesce=10_000.0)
        for src in (0, 2, 3):
            pkt = Packet(src, 1, 2048, header=0)
            pkt.fecn = True
            hca.input_port.deliver(pkt)
        sim.run()
        assert hca.cnps_sent == 3

    def test_becn_forwarded_to_cc(self):
        sim = Simulator()
        hca = Hca(sim, 0)
        hca.obuf.credits = [10.0**9] * 2
        hca.obuf.peer = Capture()
        seen = []
        hca.cc = type(
            "CC",
            (),
            {
                "on_becn": lambda self, flow, sl: seen.append(flow),
                "on_inject": lambda self, pkt: None,
                "next_allowed": lambda self, flow, sl=0: 0.0,
            },
        )()
        cnp = Packet.cnp(1, 0)
        hca.input_port.deliver(cnp)
        sim.run()
        assert seen == [(0, 1)]
        assert hca.becns_received == 1
