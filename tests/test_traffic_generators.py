"""Tests for the Frame-I traffic generator (B/C/V node roles)."""

import numpy as np
import pytest

from repro.traffic.generators import BNodeSource, FixedRateSource


def rng():
    return np.random.default_rng(42)


def drain(gen, duration_ns, *, step_from=0.0):
    """Pull packets as fast as the generator allows until duration."""
    out = []
    now = step_from
    while now < duration_ns:
        pkt, t = gen.next_packet(now)
        if pkt is not None:
            out.append((now, pkt))
            continue
        if t is None or t >= duration_ns:
            break
        now = t
    return out


class TestConstruction:
    def test_p_requires_hotspot(self):
        with pytest.raises(ValueError, match="hotspot"):
            BNodeSource(0, 8, 0.5, rng())

    def test_p_range(self):
        with pytest.raises(ValueError):
            BNodeSource(0, 8, 1.5, rng(), hotspot=lambda: 1)

    def test_needs_two_nodes(self):
        with pytest.raises(ValueError):
            BNodeSource(0, 1, 0.0, rng())

    def test_fixed_rate_source_rejects_self(self):
        with pytest.raises(ValueError):
            FixedRateSource(3, 8, 3, 10.0, rng())


class TestVNode:
    def test_only_uniform_traffic(self):
        gen = BNodeSource(0, 8, 0.0, rng())
        pkts = [p for _, p in drain(gen, 1e6)]
        assert pkts
        assert all(p.dst != 0 for p in pkts)

    def test_uniform_covers_all_destinations(self):
        gen = BNodeSource(0, 8, 0.0, rng())
        dsts = {p.dst for _, p in drain(gen, 5e6)}
        assert dsts == set(range(1, 8))

    def test_rate_respects_injection_cap(self):
        gen = BNodeSource(0, 8, 0.0, rng(), inj_rate_gbps=13.5)
        pkts = drain(gen, 1e6)
        payload = sum(p.payload for _, p in pkts)
        assert payload * 8 / 1e6 <= 13.5 * 1.05  # small burst tolerance

    def test_messages_are_two_packets_same_destination(self):
        gen = BNodeSource(0, 8, 0.0, rng(), msg_packets=2)
        pkts = [p for _, p in drain(gen, 1e6)]
        pairs = zip(pkts[0::2], pkts[1::2])
        for a, b in pairs:
            assert a.msg_id == b.msg_id
            assert a.dst == b.dst


class TestCNode:
    def test_all_traffic_to_hotspot(self):
        gen = BNodeSource(0, 8, 1.0, rng(), hotspot=lambda: 5)
        pkts = [p for _, p in drain(gen, 1e6)]
        assert pkts and all(p.dst == 5 for p in pkts)

    def test_stalls_when_hotspot_is_self(self):
        gen = BNodeSource(0, 8, 1.0, rng(), hotspot=lambda: 0)
        pkt, t = gen.next_packet(0.0)
        assert pkt is None and t is None  # waits for an external kick

    def test_follows_hotspot_move(self):
        target = {"hs": 5}
        gen = BNodeSource(0, 8, 1.0, rng(), hotspot=lambda: target["hs"])
        first = [p for _, p in drain(gen, 5e5)]
        target["hs"] = 3
        second = [p for _, p in drain(gen, 1e6, step_from=5e5)]
        assert all(p.dst == 5 for p in first)
        # After the move, new messages head to the new hotspot.
        assert second and all(p.dst in (3, 5) for p in second)
        assert any(p.dst == 3 for p in second)


class TestBNode:
    def test_share_split(self):
        gen = BNodeSource(0, 16, 0.5, rng(), hotspot=lambda: 7)
        pkts = [p for _, p in drain(gen, 5e6)]
        hs = sum(p.payload for p in pkts if p.dst == 7)
        total = sum(p.payload for p in pkts)
        # Uniform traffic may also hit node 7 (1/15 of it), so the
        # hotspot share is slightly above p.
        assert hs / total == pytest.approx(0.5, abs=0.08)

    def test_both_streams_progress(self):
        gen = BNodeSource(0, 16, 0.7, rng(), hotspot=lambda: 7)
        pkts = [p for _, p in drain(gen, 2e6)]
        assert any(p.dst == 7 for p in pkts)
        assert any(p.dst != 7 for p in pkts)

    def test_throttled_hotspot_stream_does_not_block_uniform(self):
        # Frame I's key requirement: a CC-throttled hotspot stream
        # leaves the uniform stream free to use its own share.
        class Throttle:
            def next_allowed(self, flow, sl=0):
                return 1e9 if flow[1] == 7 else 0.0

        class FakeHca:
            cc = Throttle()
            transport = None

        gen = BNodeSource(0, 16, 0.5, rng(), hotspot=lambda: 7)
        gen.bind(FakeHca())
        pkts = [p for _, p in drain(gen, 2e6)]
        uniform = [p for p in pkts if p.dst != 7]
        assert uniform  # kept flowing
        # And the uniform stream respects its own (1-p) cap: 6.75 Gbit/s.
        payload = sum(p.payload for p in uniform)
        assert payload * 8 / 2e6 <= 6.75 * 1.1

    def test_uniform_share_not_exceeded_even_when_hotspot_idle(self):
        gen = BNodeSource(0, 16, 0.8, rng(), hotspot=lambda: 0)  # hs = self
        # Hotspot stream stalls (self); uniform must stay at 20%.
        pkts = drain(gen, 2e6)
        payload = sum(p.payload for _, p in pkts)
        assert payload * 8 / 2e6 <= 0.2 * 13.5 * 1.1


class TestThrottleRetry:
    def test_retry_time_propagated(self):
        class Throttle:
            def next_allowed(self, flow, sl=0):
                return 777.0

        class FakeHca:
            cc = Throttle()
            transport = None

        gen = BNodeSource(0, 8, 1.0, rng(), hotspot=lambda: 5)
        gen.bind(FakeHca())
        pkt, t = gen.next_packet(0.0)
        assert pkt is None and t == 777.0

    def test_counters(self):
        gen = BNodeSource(0, 8, 0.0, rng())
        drain(gen, 1e6)
        assert gen.packets_emitted > 0
        assert gen.messages_started * gen.msg_packets >= gen.packets_emitted
