"""Tests for the network-wide CC manager."""

from repro.core import CCManager, CCParams
from repro.engine import Simulator
from repro.metrics import Collector
from repro.network import Network, NetworkConfig
from repro.topology import three_stage_fat_tree


def installed(params=None):
    sim = Simulator()
    topo = three_stage_fat_tree(4)
    net = Network(sim, topo, NetworkConfig(), collector=Collector(topo.n_hosts))
    mgr = CCManager(params).install(net)
    return net, mgr


class TestInstall:
    def test_every_switch_gets_cc(self):
        net, mgr = installed()
        assert len(mgr.switch_cc) == len(net.switches)
        assert all(sw.cc is scc for sw, scc in zip(net.switches, mgr.switch_cc))

    def test_every_output_port_hooked(self):
        net, _ = installed()
        for sw in net.switches:
            assert all(out.cc is sw.cc for out in sw.output_ports)

    def test_every_hca_gets_cc(self):
        net, mgr = installed()
        assert len(mgr.hca_cc) == len(net.hcas)
        assert all(h.cc is hcc for h, hcc in zip(net.hcas, mgr.hca_cc))

    def test_victim_mask_on_hca_facing_ports_only(self):
        net, mgr = installed()
        masked = {
            (sw_id, port)
            for sw_id, scc in enumerate(mgr.switch_cc)
            for port, flag in enumerate(scc.victim_mask)
            if flag
        }
        expected = {
            (hl.switch_id, hl.switch_port) for hl in net.topology.host_links
        }
        assert masked == expected

    def test_victim_mask_can_be_disabled(self):
        _, mgr = installed(
            CCParams.paper_table1().with_(victim_mask_hca_ports=False)
        )
        assert not any(any(scc.victim_mask) for scc in mgr.switch_cc)

    def test_shared_cct(self):
        _, mgr = installed()
        assert all(hcc.cct is mgr.cct for hcc in mgr.hca_cc)

    def test_default_params_are_paper_values(self):
        _, mgr = installed()
        assert mgr.params.threshold == 15
        assert mgr.params.ccti_limit == 127


class TestAggregates:
    def test_counters_start_at_zero(self):
        _, mgr = installed()
        assert mgr.total_marks() == 0
        assert mgr.total_becns() == 0
        assert mgr.throttled_flows() == 0
