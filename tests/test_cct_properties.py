"""Property-based tests for CCT construction and IRD arithmetic.

The CCT is the one CC data structure whose shape the spec leaves open;
these properties hold for *every* legal (limit, slope) combination,
not just the table-1 defaults the example tests exercise.
"""

from __future__ import annotations

import math

from hypothesis import given
from hypothesis import strategies as st

from repro.core import build_cct
from repro.core.cct import ird_gap_ns
from repro.core.stats import CcSnapshot

limits = st.integers(min_value=0, max_value=255)
slopes = st.floats(
    min_value=0.0, max_value=16.0, allow_nan=False, allow_infinity=False
)
shapes = st.sampled_from(["linear", "exponential"])


@given(limit=limits, slope=slopes, shape=shapes)
def test_cct_shape_invariants(limit, slope, shape):
    table = build_cct(limit, shape=shape, slope=slope)
    # Exactly limit+1 entries, indices 0..limit.
    assert len(table) == limit + 1
    # A flow at index 0 is unthrottled.
    assert table[0] == 0.0
    # Entries are non-negative and non-decreasing: raising the CCTI
    # never *increases* a flow's injection rate.
    assert all(v >= 0.0 for v in table)
    assert all(b >= a for a, b in zip(table, table[1:]))


@given(limit=st.integers(min_value=1, max_value=255), shape=shapes)
def test_cct_steeper_slope_throttles_harder(limit, shape):
    shallow = build_cct(limit, shape=shape, slope=1.0)
    steep = build_cct(limit, shape=shape, slope=4.0)
    assert all(s >= h for s, h in zip(steep, shallow))
    assert steep[limit] > shallow[limit]


@given(
    # Subnormal CCT entries (< ~1e-308) aren't meaningful throttles and
    # break float multiplication linearity through double rounding.
    cct_value=st.floats(
        min_value=0.0, max_value=1e3, allow_nan=False, allow_subnormal=False
    ),
    wire=st.integers(min_value=1, max_value=4200),
    byte_time=st.floats(min_value=1e-3, max_value=10.0, allow_nan=False),
)
def test_ird_gap_scales_linearly(cct_value, wire, byte_time):
    gap = ird_gap_ns(cct_value, wire, byte_time)
    assert gap >= 0.0
    # IRD is relative to the packet's own serialization time: doubling
    # the wire size doubles the gap, and zero CCT entry means no gap.
    assert math.isclose(ird_gap_ns(cct_value, 2 * wire, byte_time), 2 * gap)
    assert ird_gap_ns(0.0, wire, byte_time) == 0.0
    # CCT[i] is the delay in units of serialization time.
    assert math.isclose(gap, cct_value * (wire * byte_time))


@given(marks=st.integers(min_value=0, max_value=10**6))
def test_marking_ratio_zero_eligible_edge(marks):
    # With no eligible packets the ratio is defined as 0.0 — never a
    # ZeroDivisionError, even if marks were (nonsensically) nonzero.
    snap = CcSnapshot(
        time_ns=0.0,
        total_marks=marks,
        total_eligible=0,
        total_becns=0,
        total_cnps=0,
        throttled_flows=0,
    )
    assert snap.marking_ratio == 0.0


@given(
    marks=st.integers(min_value=0, max_value=1000),
    extra=st.integers(min_value=0, max_value=1000),
)
def test_marking_ratio_bounded(marks, extra):
    snap = CcSnapshot(
        time_ns=0.0,
        total_marks=marks,
        total_eligible=marks + extra,
        total_becns=0,
        total_cnps=0,
        throttled_flows=0,
    )
    if marks + extra:
        assert 0.0 <= snap.marking_ratio <= 1.0
