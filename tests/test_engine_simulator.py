"""Unit tests for the discrete-event kernel."""

import pytest

from repro.engine import Simulator, SimulationError


class TestScheduling:
    def test_events_fire_in_time_order(self):
        sim = Simulator()
        order = []
        sim.schedule(30.0, order.append, 3)
        sim.schedule(10.0, order.append, 1)
        sim.schedule(20.0, order.append, 2)
        sim.run()
        assert order == [1, 2, 3]

    def test_simultaneous_events_fire_in_scheduling_order(self):
        sim = Simulator()
        order = []
        for i in range(10):
            sim.schedule(5.0, order.append, i)
        sim.run()
        assert order == list(range(10))

    def test_clock_advances_to_event_time(self):
        sim = Simulator()
        seen = []
        sim.schedule(12.5, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [12.5]
        assert sim.now == 12.5

    def test_schedule_relative_is_from_now(self):
        sim = Simulator()
        times = []

        def chain():
            times.append(sim.now)
            if len(times) < 3:
                sim.schedule(2.0, chain)

        sim.schedule(1.0, chain)
        sim.run()
        assert times == [1.0, 3.0, 5.0]

    def test_schedule_at_absolute(self):
        sim = Simulator()
        out = []
        sim.schedule_at(7.0, out.append, "x")
        sim.run()
        assert out == ["x"] and sim.now == 7.0

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule(-1.0, lambda: None)

    def test_schedule_in_past_rejected(self):
        sim = Simulator()
        sim.schedule(10.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(5.0, lambda: None)

    def test_fn_without_arg_called_without_arg(self):
        sim = Simulator()
        hits = []
        sim.schedule(1.0, lambda: hits.append("no-arg"))
        sim.run()
        assert hits == ["no-arg"]


class TestRunUntil:
    def test_until_excludes_later_events(self):
        sim = Simulator()
        fired = []
        sim.schedule(5.0, fired.append, "early")
        sim.schedule(15.0, fired.append, "late")
        sim.run(until=10.0)
        assert fired == ["early"]
        assert sim.now == 10.0

    def test_until_boundary_event_included(self):
        sim = Simulator()
        fired = []
        sim.schedule(10.0, fired.append, "at")
        sim.run(until=10.0)
        assert fired == ["at"]

    def test_clock_set_to_until_even_with_empty_heap(self):
        sim = Simulator()
        sim.run(until=42.0)
        assert sim.now == 42.0

    def test_resume_after_until(self):
        sim = Simulator()
        fired = []
        sim.schedule(5.0, fired.append, 1)
        sim.schedule(15.0, fired.append, 2)
        sim.run(until=10.0)
        sim.run()
        assert fired == [1, 2]


class TestCancel:
    def test_cancelled_event_does_not_fire(self):
        sim = Simulator()
        fired = []
        eid = sim.schedule(5.0, fired.append, "x")
        sim.cancel(eid)
        sim.run()
        assert fired == []

    def test_cancel_one_of_many(self):
        sim = Simulator()
        fired = []
        ids = [sim.schedule(float(i), fired.append, i) for i in range(5)]
        sim.cancel(ids[2])
        sim.run()
        assert fired == [0, 1, 3, 4]

    def test_double_cancel_is_noop(self):
        sim = Simulator()
        eid = sim.schedule(1.0, lambda: None)
        sim.cancel(eid)
        sim.cancel(eid)
        sim.run()  # must not raise

    def test_peek_skips_cancelled(self):
        sim = Simulator()
        eid = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        sim.cancel(eid)
        assert sim.peek() == 2.0


class TestSafetyAndIntrospection:
    def test_event_budget_enforced(self):
        sim = Simulator(max_events=10)

        def storm():
            sim.schedule(1.0, storm)

        sim.schedule(1.0, storm)
        with pytest.raises(SimulationError):
            sim.run()

    def test_events_executed_counter(self):
        sim = Simulator()
        for i in range(7):
            sim.schedule(float(i), lambda: None)
        sim.run()
        assert sim.events_executed == 7

    def test_pending_count(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        assert sim.pending == 2

    def test_step_single_event(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, fired.append, "a")
        sim.schedule(2.0, fired.append, "b")
        assert sim.step() is True
        assert fired == ["a"]
        assert sim.step() is True
        assert sim.step() is False

    def test_not_reentrant(self):
        sim = Simulator()
        errors = []

        def nested():
            try:
                sim.run()
            except SimulationError as e:
                errors.append(e)

        sim.schedule(1.0, nested)
        sim.run()
        assert len(errors) == 1

    def test_peek_empty(self):
        assert Simulator().peek() is None
