"""Tests for torus/mesh topologies and dimension-order routing."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.topology import host_path, mesh, torus, validate_lfts
from repro.topology.torus import _coords, _index


class TestCoordinateMath:
    def test_roundtrip(self):
        dims = [3, 4, 5]
        for i in range(60):
            assert _index(_coords(i, dims), dims) == i

    def test_row_major(self):
        assert _coords(0, [2, 3]) == (0, 0)
        assert _coords(5, [2, 3]) == (1, 2)


class TestStructure:
    def test_ring(self):
        topo = torus([4])
        assert topo.n_hosts == 4
        assert topo.n_switches == 4
        assert len(topo.switch_links) == 4  # a full ring

    def test_mesh_has_fewer_links(self):
        assert len(mesh([4]).switch_links) == 3
        assert len(mesh([3, 3]).switch_links) == 12
        assert len(torus([3, 3]).switch_links) == 18

    def test_2d_torus_dimensions(self):
        topo = torus([4, 4])
        assert topo.n_hosts == 16
        assert all(s.n_ports == 5 for s in topo.switches)  # host + 2*2

    def test_3d(self):
        topo = torus([2, 3, 4])
        assert topo.n_hosts == 24
        validate_lfts(topo)

    def test_k2_has_single_link_per_dim(self):
        # k=2: +1 and wraparound are the same neighbour; only one cable.
        topo = torus([2, 2])
        assert len(topo.switch_links) == 4

    def test_invalid_dims(self):
        with pytest.raises(ValueError):
            torus([])
        with pytest.raises(ValueError):
            torus([1, 4])

    def test_names(self):
        assert torus([4, 4]).name == "torus-4x4"
        assert mesh([4, 4]).name == "mesh-4x4"


class TestRouting:
    @given(
        dims=st.lists(st.integers(min_value=2, max_value=4), min_size=1, max_size=3),
        wrap=st.booleans(),
    )
    @settings(max_examples=20, deadline=None)
    def test_every_pair_routable(self, dims, wrap):
        validate_lfts(torus(dims, wrap=wrap))

    def test_dimension_order(self):
        # In a 4x4 mesh, 0 -> 15 first corrects dim 0 (rows), then dim 1.
        topo = mesh([4, 4])
        path = host_path(topo, 0, 15)
        switches = [n[1] for n in path if n[0] == "switch"]
        coords = [_coords(s, [4, 4]) for s in switches]
        rows = [c[0] for c in coords]
        cols = [c[1] for c in coords]
        # Rows adjust first (monotone), then columns.
        assert rows == sorted(rows)
        assert cols[: rows.count(0)] == [0] * rows.count(0)

    def test_wraparound_takes_short_way(self):
        topo = torus([8])
        # 0 -> 7 is one hop backwards around the ring, not 7 forwards.
        path = host_path(topo, 0, 7)
        switches = [n for n in path if n[0] == "switch"]
        assert len(switches) == 2

    def test_mesh_never_wraps(self):
        topo = mesh([8])
        path = host_path(topo, 0, 7)
        switches = [n for n in path if n[0] == "switch"]
        assert len(switches) == 8

    def test_torus_runs_in_simulator(self):
        # End-to-end sanity: a flow crosses a 3x3 torus.
        from repro.engine import RngRegistry, Simulator
        from repro.metrics import Collector
        from repro.network import Network, NetworkConfig
        from repro.traffic import FixedRateSource

        topo = torus([3, 3])
        sim = Simulator()
        col = Collector(topo.n_hosts, warmup_ns=0.0)
        net = Network(sim, topo, NetworkConfig(), collector=col)
        gen = FixedRateSource(0, topo.n_hosts, 8, 10.0, RngRegistry(1).stream("g"))
        gen.bind(net.hcas[0])
        net.hcas[0].attach_generator(gen)
        net.run(until=1e6)
        assert col.rx_rate_gbps(8, 1e6) == pytest.approx(10.0, rel=0.05)
